"""Tests for the hierarchical interpolation predictors.

The central invariant: the gather path (random access) is bit-identical
to the grid path (bulk decompression), on every parity offset, shape
parity, and interpolation kind.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    lattice_shape,
    nonzero_offsets,
    subblock_shape,
    take_subblock,
)
from repro.core.predict import (
    interp_axis_midpoints,
    predict_block,
    predict_points,
)


def _full_index(ts):
    grids = np.meshgrid(*[np.arange(t) for t in ts], indexing="ij")
    return tuple(g.ravel() for g in grids)


class TestGridGatherEquality:
    @pytest.mark.parametrize(
        "shape", [(9, 10), (8, 8), (7, 9, 11), (8, 8, 8), (4, 5, 6), (16, 3, 9)]
    )
    @pytest.mark.parametrize("interp", ["direct", "linear", "cubic"])
    def test_bit_identical(self, shape, interp, rng):
        C = take_subblock(
            rng.normal(size=shape).astype(np.float32), (0,) * len(shape)
        )
        for eps in nonzero_offsets(len(shape)):
            ts = subblock_shape(shape, eps)
            if any(t == 0 for t in ts):
                continue
            full = predict_block(C, eps, ts, interp)
            pts = predict_points(C, eps, _full_index(ts), interp)
            assert np.array_equal(pts, full.ravel()), (shape, eps)

    def test_windowed_gather_matches(self, rng):
        # region + origin + full_shape: the random-access configuration
        shape = (20, 18, 16)
        C = take_subblock(rng.normal(size=shape).astype(np.float32), (0, 0, 0))
        eps = (1, 1, 0)
        ts = subblock_shape(shape, eps)
        full = predict_block(C, eps, ts, "cubic")
        origin = (2, 3, 0)
        region = C[2:9, 3:8, :]
        kr = [np.arange(4, 6), np.arange(5, 6), np.arange(0, ts[2])]
        grids = np.meshgrid(*kr, indexing="ij")
        idx = tuple(g.ravel() for g in grids)
        got = predict_points(
            region, eps, idx, "cubic", origin=origin, full_shape=C.shape
        )
        ref = full[4:6, 5:6, :].ravel()
        assert np.array_equal(got, ref)

    def test_origin_requires_full_shape(self, rng):
        C = rng.normal(size=(8, 8)).astype(np.float32)
        with pytest.raises(ValueError):
            predict_points(
                C, (1, 0), (np.array([0]), np.array([0])), origin=(0, 0)
            )


class TestExactness:
    def test_linear_exact_on_linear_field(self):
        n = 21
        x = np.arange(n, dtype=np.float64)
        C = 3 * x[:, None] + 2 * np.arange(7)[None, :] + 1
        for eps in [(1, 0), (0, 1), (1, 1)]:
            ts = subblock_shape((2 * n - 1, 13), eps)
            ts = tuple(
                min(t, s) for t, s in zip(ts, (n - eps[0], 7 - eps[1]))
            )
            pred = predict_block(C, eps, (n - eps[0], 7 - eps[1]), "linear")
            xm = x[: n - eps[0]] + eps[0] * 0.5
            ym = np.arange(7 - eps[1]) + eps[1] * 0.5
            true = 3 * xm[:, None] + 2 * ym[None, :] + 1
            # interior only (boundary falls back to copy)
            assert np.abs(pred[:-1, :-1] - true[:-1, :-1]).max() < 1e-12

    def test_cubic_exact_on_cubic_polynomial(self):
        n = 33
        x = np.arange(n, dtype=np.float64)
        C = (0.5 * x**3 - x**2 + 3 * x)[:, None] * np.ones((1, 5))
        pred = predict_block(C, (1, 0), (n - 1, 5), "cubic")
        xm = x[:-1] + 0.5
        true = (0.5 * xm**3 - xm**2 + 3 * xm)[:, None] * np.ones((1, 5))
        interior = slice(1, n - 3)
        assert np.abs(pred[interior] - true[interior]).max() < 1e-9

    def test_cubic_beats_linear_on_smooth_field(self):
        x = np.linspace(0, 3, 40)
        C = np.sin(x)[:, None] * np.cos(x / 2)[None, :]
        true_mid = np.sin(x[:-1] + x[1] / 2 * 0 + (x[1] - x[0]) / 2)[
            :, None
        ] * np.cos(x / 2)[None, :]
        lin = predict_block(C, (1, 0), (39, 40), "linear")
        cub = predict_block(C, (1, 0), (39, 40), "cubic")
        interior = slice(1, 36)
        el = np.abs(lin[interior] - true_mid[interior]).max()
        ec = np.abs(cub[interior] - true_mid[interior]).max()
        assert ec < el

    def test_diagonal_weights_sum_to_one(self):
        # constant field must be predicted exactly (interior AND edges)
        C = np.full((9, 9, 9), 7.25, dtype=np.float64)
        for eps in nonzero_offsets(3):
            ts = subblock_shape((17, 17, 17), eps)
            for interp in ("direct", "linear", "cubic"):
                for mode in ("diagonal", "tensor"):
                    pred = predict_block(C, eps, ts, interp, mode)
                    assert np.all(pred == 7.25), (eps, interp, mode)


class TestBoundaries:
    def test_last_midpoint_of_even_axis_copies(self):
        # even fine axis: final midpoint has no right neighbor
        C = np.arange(4, dtype=np.float64)[:, None] * np.ones((1, 3))
        pred = predict_block(C, (1, 0), (4, 3), "linear")
        assert np.all(pred[3] == C[3])  # clamped average == copy

    def test_tiny_coarse_axes(self, rng):
        for cs in [(1, 5), (2, 2), (1, 1)]:
            C = rng.normal(size=cs)
            eps = (1, 0)
            ts = (cs[0], cs[1])
            pred = predict_block(C, eps, ts, "cubic")
            assert pred.shape == ts

    def test_empty_target(self, rng):
        # fine shape (1, 5): a size-1 axis has no odd-parity points
        C = rng.normal(size=(1, 3))
        pred = predict_block(C, (1, 1), (0, 2), "cubic")
        assert pred.shape == (0, 2)

    def test_rejects_aligned_mismatch(self, rng):
        C = rng.normal(size=(4, 4))
        with pytest.raises(ValueError):
            predict_block(C, (1, 0), (4, 3), "linear")

    def test_rejects_zero_offset(self, rng):
        C = rng.normal(size=(4, 4))
        with pytest.raises(ValueError):
            predict_block(C, (0, 0), (4, 4), "linear")

    def test_rejects_unknown_interp(self, rng):
        C = rng.normal(size=(4, 4))
        with pytest.raises(ValueError):
            predict_block(C, (1, 0), (4, 4), "quintic")

    def test_tensor_gather_unsupported(self, rng):
        C = rng.normal(size=(8, 8))
        with pytest.raises(NotImplementedError):
            predict_points(
                C,
                (1, 0),
                (np.array([2]), np.array([2])),
                "cubic",
                mode="tensor",
            )


class TestMidpointOperator:
    def test_midpoints_linear(self):
        C = np.array([0.0, 2.0, 4.0, 8.0])
        out = interp_axis_midpoints(C, 0, 3, "linear")
        assert np.allclose(out, [1.0, 3.0, 6.0])

    def test_midpoints_cubic_matches_eq6(self):
        C = np.array([1.0, 2.0, 4.0, 7.0, 11.0])
        out = interp_axis_midpoints(C, 0, 4, "cubic")
        # interior point k=1 uses the Eq. 6 stencil
        expected = (9 / 16) * (C[1] + C[2]) - (1 / 16) * (C[0] + C[3])
        assert out[1] == pytest.approx(expected)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            interp_axis_midpoints(np.zeros(4), 0, 3, "nearest")

    @given(
        st.integers(2, 40),
        st.integers(0, 2**31),
        st.sampled_from(["linear", "cubic"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_midpoint_within_neighbor_envelope_property(
        self, n, seed, interp
    ):
        # linear midpoints stay within [min, max] of neighbors; cubic
        # can overshoot but must stay within the global envelope + the
        # stencil's worst-case overshoot (bounded weights)
        C = np.random.default_rng(seed).uniform(-1, 1, n)
        t = n - 1
        out = interp_axis_midpoints(C, 0, t, interp)
        bound = 1.0 if interp == "linear" else 1.25
        assert np.all(np.abs(out) <= bound + 1e-12)
