"""The ``repro.util.jit`` facade: byte-determinism and the kill switch.

The facade's contract (DESIGN.md §10) is *bit-identity*: with the
compiled kernels engaged, every archive byte and every reconstruction
bit must equal the pure-NumPy reference path's.  These tests pin that
contract where it is cheapest to break silently:

* every golden fixture — committed archives decode bit-exactly in both
  modes, and committed inputs re-encode to the same bytes in both;
* value-edge inputs — NaN, infinities, denormals, constant fields —
  where a compiled kernel's rounding or classification could diverge
  from numpy's without failing any smooth-field test;
* the ``STZ_JIT=0`` kill switch — the facade must disengage completely
  (wrappers return ``None``) and the reference path must carry the
  whole pipeline alone.

When no compiler is available the facade reports unavailable and every
identity test collapses to reference-vs-reference — still a valid run,
by design (the facade may never make availability an error).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.api import compress, compress_chunked, decompress
from repro.core.random_access import stz_decompress_roi
from repro.core.stream import MULTI_MAGIC
from repro.core.streaming import StreamingDecompressor
from repro.encoding.huffman import (
    huffman_decode,
    huffman_decode_range,
    huffman_encode,
)
from repro.util import jit

GOLDEN = Path(__file__).parent / "golden"

FIXTURES = sorted(p.stem for p in GOLDEN.glob("*.stz"))


def _decode_all(blob: bytes) -> list[np.ndarray]:
    """Every reconstruction in an archive (multi-frame aware)."""
    if bytes(blob[:4]) == MULTI_MAGIC:
        return list(StreamingDecompressor(blob))
    return [decompress(blob)]


def _bits(arrays: list[np.ndarray]) -> list[bytes]:
    """Bit-exact fingerprints (``==`` would treat NaN as unequal)."""
    return [np.ascontiguousarray(a).tobytes() for a in arrays]


class TestGoldenIdentity:
    @pytest.mark.parametrize("name", FIXTURES)
    def test_decode_bit_identical_both_modes(self, name):
        blob = (GOLDEN / f"{name}.stz").read_bytes()
        with jit.override(True):
            on = _bits(_decode_all(blob))
        with jit.override(False):
            off = _bits(_decode_all(blob))
        assert on == off, name
        # and both match the committed reconstruction bit-exactly
        recon = np.load(GOLDEN / f"{name}_recon.npy")
        assert b"".join(on) == np.ascontiguousarray(recon).tobytes(), name

    @pytest.mark.parametrize("name", FIXTURES)
    def test_reencode_bit_identical_both_modes(self, name):
        data = np.load(GOLDEN / f"{name}_input.npy")
        if data.ndim > 3:  # multi-frame inputs: encode the first step
            data = data[0]
        eb = 1e-3 * float(np.nanmax(data) - np.nanmin(data) or 1.0)
        with jit.override(True):
            on_plain = compress(data, eb)
            on_chunked = compress_chunked(data, eb, chunks=16)
        with jit.override(False):
            off_plain = compress(data, eb)
            off_chunked = compress_chunked(data, eb, chunks=16)
        assert on_plain == off_plain, name
        assert on_chunked == off_chunked, name


def _edge_fields() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(11)
    smooth = np.cumsum(rng.standard_normal((20, 21, 22)), axis=1)
    nanfield = smooth.copy()
    nanfield[::5, 3, :] = np.nan
    inffield = smooth.copy()
    inffield[0, 0, 0] = np.inf
    inffield[7, :, 2] = -np.inf
    denormal = (rng.standard_normal((16, 16, 16)) * 1e-310).astype(
        np.float64
    )
    return {
        "constant": np.full((17, 13, 9), 2.75),
        "constant_zero": np.zeros((8, 8, 8), dtype=np.float32),
        "nan": nanfield,
        "inf": inffield,
        "denormal_f64": denormal,
        "denormal_f32": (
            rng.standard_normal((16, 16, 16)) * 1e-41
        ).astype(np.float32),
        "mixed_extreme": np.array(
            [[np.nan, np.inf, -np.inf, 0.0, -0.0, 5e-324, 1e308, -1e308]]
            * 9
        ),
    }


@pytest.mark.conformance
class TestValueEdgeIdentity:
    @pytest.mark.parametrize("case", sorted(_edge_fields()))
    @pytest.mark.parametrize("f32", [False, True])
    def test_edge_values_bit_identical(self, case, f32):
        data = _edge_fields()[case]
        if f32:
            data = data.astype(np.float32)
        results = {}
        for mode in (True, False):
            with jit.override(mode):
                blob = compress(data, 1e-3)
                recon = decompress(blob)
            results[mode] = (blob, recon.tobytes(), recon.dtype)
        assert results[True] == results[False], case

    @pytest.mark.parametrize("f32", [False, True])
    def test_edge_values_chunked_identical(self, f32):
        data = _edge_fields()["nan"]
        if f32:
            data = data.astype(np.float32)
        with jit.override(True):
            on = compress_chunked(data, 1e-3, chunks=8)
        with jit.override(False):
            off = compress_chunked(data, 1e-3, chunks=8)
        assert on == off


class TestDecodeKernels:
    """The decode-side kernels (DESIGN.md §10): the compiled Huffman
    walk, the fused predict+dequantize, and the reassembly scatter must
    be byte-identical twins of the reference path on every surface that
    routes through them."""

    @pytest.mark.parametrize("m", [5, 300, 5000, 123457])
    def test_huffman_decode_identical_both_modes(self, m):
        rng = np.random.default_rng(m)
        syms = rng.integers(0, 97, size=m).astype(np.uint32)
        syms[: m // 3] = 42  # skewed so codes have mixed lengths
        seg = huffman_encode(syms)
        with jit.override(True):
            on = huffman_decode(seg)
        with jit.override(False):
            off = huffman_decode(seg)
        assert on.tobytes() == off.tobytes()
        assert np.array_equal(on, syms)

    @pytest.mark.parametrize(
        "start,count",
        [(0, 10), (7, 1), (1000, 4096), (4095, 2), (0, 0), (12000, 457)],
    )
    def test_huffman_decode_range_identical_both_modes(self, start, count):
        rng = np.random.default_rng(3)
        syms = rng.integers(0, 300, size=12457).astype(np.uint32)
        seg = huffman_encode(syms)
        with jit.override(True):
            on = huffman_decode_range(seg, start, count)
        with jit.override(False):
            off = huffman_decode_range(seg, start, count)
        assert on.tobytes() == off.tobytes()
        assert np.array_equal(on, syms[start : start + count])

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_roi_identical_both_modes(self, dtype):
        rng = np.random.default_rng(7)
        data = np.cumsum(
            rng.standard_normal((40, 36, 33)), axis=0
        ).astype(dtype)
        blob = compress(data, 1e-3 * float(np.ptp(data)))
        roi = (slice(5, 30), slice(10, 30), slice(17, 18))
        with jit.override(True):
            on = stz_decompress_roi(blob, roi)
        with jit.override(False):
            off = stz_decompress_roi(blob, roi)
            full = decompress(blob)
        assert on.data.tobytes() == off.data.tobytes()
        # and the ROI is still a bit-exact crop of the full decode
        assert np.array_equal(on.data, full[roi])

    def test_scatter_matches_numpy(self):
        if not jit.has("scatter32"):
            pytest.skip("compiled kernels unavailable")
        rng = np.random.default_rng(5)
        for dtype in (np.float32, np.float64):
            for eps in [(0, 1, 0), (1, 1, 1), (1, 0, 1)]:
                fine = np.zeros((13, 11, 9), dtype=dtype)
                ref = np.zeros_like(fine)
                sl = tuple(slice(e, None, 2) for e in eps)
                vals = np.ascontiguousarray(
                    rng.standard_normal(fine[sl].shape).astype(dtype)
                )
                assert jit.scatter(fine[sl], vals)
                ref[sl] = vals
                assert fine.tobytes() == ref.tobytes(), (dtype, eps)

    def test_combine_dequant_matches_reference(self):
        """Strided region views — including the thin boundary-shell
        shapes that trigger the axis rotation — must reproduce the
        two-stage reference formula bit-exactly."""
        if not jit.has("dqc_f32"):
            pytest.skip("compiled kernels unavailable")
        rng = np.random.default_rng(9)
        C = rng.standard_normal((20, 19, 18)).astype(np.float32)
        radius = 1 << 15
        eb = 1e-4
        for region in [
            (slice(1, 17), slice(1, 16), slice(1, 15)),
            (slice(0, 16), slice(2, 17), slice(17, 18)),  # last dim 1
            (slice(3, 4), slice(0, 15), slice(0, 14)),
        ]:
            near = (C[region], np.roll(C, 1, 0)[region])
            outer = (np.roll(C, 2, 1)[region], np.roll(C, 1, 2)[region])
            shape = near[0].shape
            codes = rng.integers(
                radius - 500, radius + 500, size=shape
            ).astype(np.uint32)
            big = np.zeros((24, 24, 24), dtype=np.float32)
            out = big[tuple(slice(0, s) for s in shape)]
            ok = jit.combine_dequant(
                near, outer, 9 / 16, 1 / 16, codes, out, eb, radius, True
            )
            assert ok
            pred = (near[0] + near[1]) * np.float32(9 / 16) - (
                outer[0] + outer[1]
            ) * np.float32(1 / 16)
            want = pred + (
                codes.astype(np.float32) - np.float32(radius)
            ) * np.float32(2.0 * eb)
            assert out.tobytes() == want.tobytes(), region


class TestKillSwitch:
    def test_stz_jit_0_disengages_facade(self, monkeypatch):
        monkeypatch.setenv("STZ_JIT", "0")
        with jit.override(None):  # follow the env, not an outer override
            assert not jit.enabled()
            assert jit.status()["enabled"] is False
            # every wrapper must decline — the one-`if` fallback sites
            # then run pure NumPy
            x = np.linspace(0.0, 1.0, 64)
            p = np.zeros(64)
            assert jit.quantize(x, p, 1e-3, 1 << 15, False) is None
            assert jit.dequantize(
                np.zeros(64, np.uint32), p, 1e-3, 1 << 15, False
            ) is None
            assert jit.huffman_pack(
                np.zeros(8, np.uint32), np.full(2, 32, np.uint32), 4
            ) is None
            assert jit.huffman_tree(np.array([3, 2], np.int64)) is None
            assert jit.szx_pack(np.zeros(128, np.uint32), 4) is None
            assert jit.combine((x.reshape(8, 8),), (), 0.5, 0.0) is None
            # decode-side kernels decline too (DESIGN.md §10)
            assert jit.huffman_decode(
                np.zeros(16, np.uint8),
                np.zeros(1 << 16, np.uint32),
                np.zeros(1, np.int64),
                8,
                8,
            ) is None
            assert not jit.combine_dequant(
                (x.reshape(8, 8),), (), 1.0, 0.0,
                np.zeros((8, 8), np.uint32), np.empty((8, 8)),
                1e-3, 1 << 15, False,
            )
            assert not jit.scatter(
                np.zeros((8, 8))[::2], np.zeros((4, 8))
            )
            # the reference path carries the pipeline alone
            data = np.cumsum(
                np.random.default_rng(0).standard_normal((16, 16, 16)), 0
            )
            blob = compress(data, 1e-3)
            assert np.max(np.abs(decompress(blob) - data)) <= 1e-3

    def test_off_values_accepted(self, monkeypatch):
        for val in ("off", "false", "0", "OFF"):
            monkeypatch.setenv("STZ_JIT", val)
            with jit.override(None):
                assert not jit.enabled(), val
        monkeypatch.setenv("STZ_JIT", "1")
        with jit.override(None):
            assert jit.enabled()

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("STZ_JIT", "0")
        with jit.override(True):
            assert jit.enabled()
        with jit.override(False):
            monkeypatch.setenv("STZ_JIT", "1")
            assert not jit.enabled()

    def test_status_shape(self):
        st = jit.status()
        assert st["backend"] == "generated-c/ctypes"
        assert set(st) >= {
            "enabled", "loaded", "attempted", "library", "cache_dir",
            "error",
        }
