"""The ``repro.util.jit`` facade: byte-determinism and the kill switch.

The facade's contract (DESIGN.md §10) is *bit-identity*: with the
compiled kernels engaged, every archive byte and every reconstruction
bit must equal the pure-NumPy reference path's.  These tests pin that
contract where it is cheapest to break silently:

* every golden fixture — committed archives decode bit-exactly in both
  modes, and committed inputs re-encode to the same bytes in both;
* value-edge inputs — NaN, infinities, denormals, constant fields —
  where a compiled kernel's rounding or classification could diverge
  from numpy's without failing any smooth-field test;
* the ``STZ_JIT=0`` kill switch — the facade must disengage completely
  (wrappers return ``None``) and the reference path must carry the
  whole pipeline alone.

When no compiler is available the facade reports unavailable and every
identity test collapses to reference-vs-reference — still a valid run,
by design (the facade may never make availability an error).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.api import compress, compress_chunked, decompress
from repro.core.stream import MULTI_MAGIC
from repro.core.streaming import StreamingDecompressor
from repro.util import jit

GOLDEN = Path(__file__).parent / "golden"

FIXTURES = sorted(p.stem for p in GOLDEN.glob("*.stz"))


def _decode_all(blob: bytes) -> list[np.ndarray]:
    """Every reconstruction in an archive (multi-frame aware)."""
    if bytes(blob[:4]) == MULTI_MAGIC:
        return list(StreamingDecompressor(blob))
    return [decompress(blob)]


def _bits(arrays: list[np.ndarray]) -> list[bytes]:
    """Bit-exact fingerprints (``==`` would treat NaN as unequal)."""
    return [np.ascontiguousarray(a).tobytes() for a in arrays]


class TestGoldenIdentity:
    @pytest.mark.parametrize("name", FIXTURES)
    def test_decode_bit_identical_both_modes(self, name):
        blob = (GOLDEN / f"{name}.stz").read_bytes()
        with jit.override(True):
            on = _bits(_decode_all(blob))
        with jit.override(False):
            off = _bits(_decode_all(blob))
        assert on == off, name
        # and both match the committed reconstruction bit-exactly
        recon = np.load(GOLDEN / f"{name}_recon.npy")
        assert b"".join(on) == np.ascontiguousarray(recon).tobytes(), name

    @pytest.mark.parametrize("name", FIXTURES)
    def test_reencode_bit_identical_both_modes(self, name):
        data = np.load(GOLDEN / f"{name}_input.npy")
        if data.ndim > 3:  # multi-frame inputs: encode the first step
            data = data[0]
        eb = 1e-3 * float(np.nanmax(data) - np.nanmin(data) or 1.0)
        with jit.override(True):
            on_plain = compress(data, eb)
            on_chunked = compress_chunked(data, eb, chunks=16)
        with jit.override(False):
            off_plain = compress(data, eb)
            off_chunked = compress_chunked(data, eb, chunks=16)
        assert on_plain == off_plain, name
        assert on_chunked == off_chunked, name


def _edge_fields() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(11)
    smooth = np.cumsum(rng.standard_normal((20, 21, 22)), axis=1)
    nanfield = smooth.copy()
    nanfield[::5, 3, :] = np.nan
    inffield = smooth.copy()
    inffield[0, 0, 0] = np.inf
    inffield[7, :, 2] = -np.inf
    denormal = (rng.standard_normal((16, 16, 16)) * 1e-310).astype(
        np.float64
    )
    return {
        "constant": np.full((17, 13, 9), 2.75),
        "constant_zero": np.zeros((8, 8, 8), dtype=np.float32),
        "nan": nanfield,
        "inf": inffield,
        "denormal_f64": denormal,
        "denormal_f32": (
            rng.standard_normal((16, 16, 16)) * 1e-41
        ).astype(np.float32),
        "mixed_extreme": np.array(
            [[np.nan, np.inf, -np.inf, 0.0, -0.0, 5e-324, 1e308, -1e308]]
            * 9
        ),
    }


@pytest.mark.conformance
class TestValueEdgeIdentity:
    @pytest.mark.parametrize("case", sorted(_edge_fields()))
    @pytest.mark.parametrize("f32", [False, True])
    def test_edge_values_bit_identical(self, case, f32):
        data = _edge_fields()[case]
        if f32:
            data = data.astype(np.float32)
        results = {}
        for mode in (True, False):
            with jit.override(mode):
                blob = compress(data, 1e-3)
                recon = decompress(blob)
            results[mode] = (blob, recon.tobytes(), recon.dtype)
        assert results[True] == results[False], case

    @pytest.mark.parametrize("f32", [False, True])
    def test_edge_values_chunked_identical(self, f32):
        data = _edge_fields()["nan"]
        if f32:
            data = data.astype(np.float32)
        with jit.override(True):
            on = compress_chunked(data, 1e-3, chunks=8)
        with jit.override(False):
            off = compress_chunked(data, 1e-3, chunks=8)
        assert on == off


class TestKillSwitch:
    def test_stz_jit_0_disengages_facade(self, monkeypatch):
        monkeypatch.setenv("STZ_JIT", "0")
        with jit.override(None):  # follow the env, not an outer override
            assert not jit.enabled()
            assert jit.status()["enabled"] is False
            # every wrapper must decline — the one-`if` fallback sites
            # then run pure NumPy
            x = np.linspace(0.0, 1.0, 64)
            p = np.zeros(64)
            assert jit.quantize(x, p, 1e-3, 1 << 15, False) is None
            assert jit.dequantize(
                np.zeros(64, np.uint32), p, 1e-3, 1 << 15, False
            ) is None
            assert jit.huffman_pack(
                np.zeros(8, np.uint32), np.full(2, 32, np.uint32), 4
            ) is None
            assert jit.huffman_tree(np.array([3, 2], np.int64)) is None
            assert jit.szx_pack(np.zeros(128, np.uint32), 4) is None
            assert jit.combine((x.reshape(8, 8),), (), 0.5, 0.0) is None
            # the reference path carries the pipeline alone
            data = np.cumsum(
                np.random.default_rng(0).standard_normal((16, 16, 16)), 0
            )
            blob = compress(data, 1e-3)
            assert np.max(np.abs(decompress(blob) - data)) <= 1e-3

    def test_off_values_accepted(self, monkeypatch):
        for val in ("off", "false", "0", "OFF"):
            monkeypatch.setenv("STZ_JIT", val)
            with jit.override(None):
                assert not jit.enabled(), val
        monkeypatch.setenv("STZ_JIT", "1")
        with jit.override(None):
            assert jit.enabled()

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("STZ_JIT", "0")
        with jit.override(True):
            assert jit.enabled()
        with jit.override(False):
            monkeypatch.setenv("STZ_JIT", "1")
            assert not jit.enabled()

    def test_status_shape(self):
        st = jit.status()
        assert st["backend"] == "generated-c/ctypes"
        assert set(st) >= {
            "enabled", "loaded", "attempted", "library", "cache_dir",
            "error",
        }
