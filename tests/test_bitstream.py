"""Unit tests for vectorized bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitstream import (
    pack_bits,
    pack_codes,
    unpack_bits,
    windows_at,
)


class TestPackBits:
    def test_empty(self):
        packed, nbits = pack_bits(np.zeros(0, np.uint64), np.zeros(0, np.int64))
        assert nbits == 0
        assert packed.size == 0

    def test_single_bit(self):
        packed, nbits = pack_bits(np.array([1]), np.array([1]))
        assert nbits == 1
        assert packed[0] == 0b10000000

    def test_msb_first_within_code(self):
        # code 0b101 of length 3 -> bits 1,0,1 from the MSB
        packed, nbits = pack_bits(np.array([0b101]), np.array([3]))
        assert nbits == 3
        assert np.array_equal(unpack_bits(packed, 3), [1, 0, 1])

    def test_concatenation_order(self):
        codes = np.array([0b1, 0b01, 0b111])
        lens = np.array([1, 2, 3])
        packed, nbits = pack_bits(codes, lens)
        assert nbits == 6
        assert np.array_equal(unpack_bits(packed, 6), [1, 0, 1, 1, 1, 1])

    def test_zero_length_codes_emit_nothing(self):
        codes = np.array([0b11, 0b0, 0b1])
        lens = np.array([2, 0, 1])
        packed, nbits = pack_bits(codes, lens)
        assert nbits == 3
        assert np.array_equal(unpack_bits(packed, 3), [1, 1, 1])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(3, np.uint64), np.zeros(2, np.int64))


class TestPackCodes:
    def test_matches_pack_bits(self, rng):
        lens = rng.integers(1, 17, 500).astype(np.int64)
        codes = np.array(
            [rng.integers(0, 2**l) for l in lens], dtype=np.uint64
        )
        ref, nref = pack_bits(codes, lens)
        fast, nfast = pack_codes(codes.astype(np.uint32), lens)
        assert nref == nfast
        assert np.array_equal(ref, fast)

    def test_rejects_long_codes(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1], np.uint32), np.array([17]))

    def test_empty(self):
        packed, nbits = pack_codes(
            np.zeros(0, np.uint32), np.zeros(0, np.int64)
        )
        assert nbits == 0 and packed.size == 0

    @given(st.integers(0, 2**32 - 1), st.integers(1, 1000))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_random(self, seed, n):
        rng = np.random.default_rng(seed)
        lens = rng.integers(1, 17, n).astype(np.int64)
        codes = (
            rng.integers(0, 2**16, n).astype(np.uint64)
            & ((1 << lens.astype(np.uint64)) - 1)
        )
        ref, nref = pack_bits(codes, lens)
        fast, nfast = pack_codes(codes.astype(np.uint32), lens)
        assert nref == nfast and np.array_equal(ref, fast)


class TestWindows:
    def test_window_extraction(self):
        # bits: 1010 1100 1111 0000 ... (2 bytes + padding)
        packed = np.array([0b10101100, 0b11110000, 0, 0, 0], dtype=np.uint8)
        w = windows_at(packed, np.array([0]))
        assert w[0] == 0b1010110011110000
        w = windows_at(packed, np.array([4]))
        assert w[0] == 0b1100111100000000
        w = windows_at(packed, np.array([7]))
        assert w[0] == 0b0111100000000000

    def test_width_reduction(self):
        packed = np.array([0b10101100, 0, 0, 0], dtype=np.uint8)
        w = windows_at(packed, np.array([0]), width=4)
        assert w[0] == 0b1010

    def test_rejects_wide_windows(self):
        with pytest.raises(ValueError):
            windows_at(np.zeros(4, np.uint8), np.array([0]), width=17)
