"""Unit + property tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.huffman import (
    MAX_CODE_LEN,
    HuffmanCodec,
    _canonical_codes,
    _code_lengths,
    _limit_lengths,
    huffman_decode,
    huffman_encode,
)


class TestCodeLengths:
    def test_empty(self):
        assert _code_lengths(np.zeros(4, np.int64)).sum() == 0

    def test_single_symbol_gets_one_bit(self):
        lens = _code_lengths(np.array([0, 7, 0]))
        assert lens[1] == 1 and lens[0] == 0 and lens[2] == 0

    def test_two_equal_symbols(self):
        lens = _code_lengths(np.array([5, 5]))
        assert list(lens) == [1, 1]

    def test_skewed_distribution_depth(self):
        # Fibonacci-like frequencies force a deep tree
        freqs = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55], np.int64)
        lens = _code_lengths(freqs)
        assert lens[0] == lens[1] == lens.max()
        assert lens[-1] == lens.min()

    def test_kraft_equality_for_optimal_code(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(1, 1000, 50)
        lens = _code_lengths(freqs)
        kraft = np.sum(2.0 ** (-lens[lens > 0].astype(float)))
        assert kraft == pytest.approx(1.0)

    def test_optimality_against_entropy(self):
        rng = np.random.default_rng(1)
        freqs = rng.integers(1, 10000, 64).astype(np.int64)
        lens = _code_lengths(freqs)
        p = freqs / freqs.sum()
        entropy = -np.sum(p * np.log2(p))
        avg_len = np.sum(p * lens)
        assert entropy <= avg_len <= entropy + 1.0  # Huffman bound


class TestLimitLengths:
    def test_noop_when_within_limit(self):
        freqs = np.array([10, 20, 30, 40], np.int64)
        lens = _code_lengths(freqs)
        assert np.array_equal(_limit_lengths(lens, freqs), lens)

    def test_clamps_and_preserves_kraft(self):
        # frequencies engineered to exceed 16-bit depths
        freqs = np.array([int(1.6**i) + 1 for i in range(40)], np.int64)
        lens = _code_lengths(freqs)
        assert lens.max() > MAX_CODE_LEN
        lim = _limit_lengths(lens, freqs)
        assert lim.max() <= MAX_CODE_LEN
        kraft = np.sum(2.0 ** (-lim[lim > 0].astype(float)))
        assert kraft <= 1.0 + 1e-12

    def test_too_many_symbols_rejected(self):
        n = (1 << MAX_CODE_LEN) + 1
        freqs = np.ones(n, np.int64)
        lens = np.full(n, 17, np.uint8)
        with pytest.raises(ValueError):
            _limit_lengths(lens, freqs)


class TestCanonicalCodes:
    def test_prefix_free_and_tiling(self):
        rng = np.random.default_rng(2)
        freqs = rng.integers(1, 500, 30).astype(np.int64)
        lens = _limit_lengths(_code_lengths(freqs), freqs)
        codes = _canonical_codes(lens)
        present = np.flatnonzero(lens)
        order = np.lexsort((present, lens[present]))
        o_sym = present[order]
        o_len = lens[present][order].astype(int)
        starts = codes[o_sym].astype(np.int64) << (
            MAX_CODE_LEN - np.array(o_len)
        )
        widths = 1 << (MAX_CODE_LEN - np.array(o_len))
        # canonical codes tile the window space contiguously from 0
        assert starts[0] == 0
        assert np.all(starts[1:] == starts[:-1] + widths[:-1])


class TestRoundtrip:
    @pytest.mark.parametrize(
        "arr",
        [
            np.zeros(0, np.uint32),
            np.zeros(1, np.uint32),
            np.array([42], np.uint32),
            np.full(5000, 9, np.uint32),  # constant stream
            np.arange(1000, dtype=np.uint32),  # uniform
            np.array([0, 1] * 500, np.uint32),  # two symbols
        ],
        ids=["empty", "zero", "single", "constant", "uniform", "binary"],
    )
    def test_edge_streams(self, arr):
        assert np.array_equal(huffman_decode(huffman_encode(arr)), arr)

    def test_gaussian_codes(self, rng):
        syms = (100 + np.rint(rng.normal(0, 5, 200_000))).astype(np.uint32)
        blob = huffman_encode(syms)
        assert np.array_equal(huffman_decode(blob), syms)
        # entropy coding must beat raw storage comfortably here
        assert len(blob) < syms.nbytes / 4

    def test_large_alphabet(self, rng):
        syms = rng.integers(0, 60000, 50_000).astype(np.uint32)
        assert np.array_equal(huffman_decode(huffman_encode(syms)), syms)

    def test_skewed_long_codes(self, rng):
        # heavy skew activates the length-limiting path
        syms = rng.zipf(1.3, 100_000).astype(np.uint32)
        syms = np.minimum(syms, 30000)
        assert np.array_equal(huffman_decode(huffman_encode(syms)), syms)

    def test_explicit_chunk_sizes(self, rng):
        syms = rng.integers(0, 50, 10_000).astype(np.uint32)
        for chunk in (1, 7, 64, 4096, 100_000):
            blob = huffman_encode(syms, chunk=chunk)
            assert np.array_equal(huffman_decode(blob), syms), chunk

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            huffman_encode(np.zeros(4, np.float32))

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            huffman_decode(b"\x00" * 64)

    @given(
        st.lists(st.integers(0, 300), min_size=0, max_size=2000),
        st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values, _salt):
        arr = np.asarray(values, dtype=np.uint32)
        assert np.array_equal(huffman_decode(huffman_encode(arr)), arr)


class TestCodecObject:
    def test_expected_bits_matches_actual_payload_scale(self, rng):
        syms = rng.integers(0, 30, 20_000).astype(np.uint32)
        freqs = np.bincount(syms)
        codec = HuffmanCodec(freqs)
        expected = codec.expected_bits(freqs)
        blob = codec.encode(syms)
        # container adds tables/sync; payload must be within 20% + slack
        assert expected / 8 <= len(blob) <= expected / 8 * 1.2 + 512
