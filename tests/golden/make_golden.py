"""Regenerate the golden container fixtures (run from the repo root).

    PYTHONPATH=src python tests/golden/make_golden.py

The committed fixtures lock the container formats: inputs are stored as
``.npy`` (so no synthetic-generator drift can sneak in), and for each
input both the archive the writer produced *and* the reconstruction the
reader produced are committed.  ``tests/test_golden.py`` then asserts
that today's encoder still reproduces the archives byte-for-byte and
today's reader still decodes them bit-exactly.  Only regenerate after
an *intentional*, flag-gated format change — and when you do, keep the
old fixtures decoding (that is the backward-compat contract the flag
mechanism exists for).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.api import (
    compress,
    compress_chunked,
    compress_stream,
    decompress,
)
from repro.core.config import STZConfig
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.streaming import StreamingDecompressor
from repro.datasets.synthetic import smooth_field
from repro.util.io import atomic_write, atomic_write_bytes

HERE = Path(__file__).parent


def save_npy(path: Path, arr: np.ndarray) -> None:
    """Atomic np.save — an interrupted regeneration never leaves a
    torn fixture that the golden tests would then pin by accident."""
    with atomic_write(path) as fh:
        np.save(fh, arr)


#: (name, shape, dtype, abs_eb, config kwargs) for single-frame fixtures
SINGLE = [
    ("single_f32", (12, 10, 8), np.float32, 4e-3, {}),
    (
        "single_f64",
        (9, 7),
        np.float64,
        1e-5,
        {"levels": 2, "interp": "linear", "f32_quant": False},
    ),
]

#: (name, abs_eb) for codec-selected ('STZC') envelope fixtures; the
#: inputs come from auto_input() so the winning codec is deterministic
AUTO_SINGLE = [
    ("auto_const", 1e-3),  # constant field: the szx short-circuit
    ("auto_smooth", 4e-3),  # smooth field: probe-scored winner
]

AUTO_STREAM_EB = 1e-3
AUTO_STREAM_KEYFRAME = 2

#: integrity (checksum/recoverable) fixtures — flag-gated extensions of
#: each container version, pinned the same way the base formats are
INTEGRITY_EB = 2e-3
INTEGRITY_KEYFRAME = 2
INTEGRITY_CHUNKS = (7, 6)

#: sharded (container v3) fixtures: name -> (abs_eb, codec, chunks)
CHUNKED = {
    "chunked_single": (4e-3, "stz", (10, 9, 14)),  # 2x2x1 ragged grid
    "chunked_auto": (4e-3, "auto", (24, 20, 16)),
}


def chunked_input(name: str) -> np.ndarray:
    """Deterministic inputs for the sharded fixtures."""
    if name == "chunked_single":
        return smooth_field((20, 18, 14), seed=23).astype(np.float32)
    if name == "chunked_auto":
        # one constant, one smooth, one rough chunk: the fixture pins
        # *several* per-chunk codec ids, exercising the mixed table
        rng = np.random.default_rng(11)
        data = np.empty((72, 20, 16), dtype=np.float32)
        data[:24] = 2.5
        data[24:48] = smooth_field((24, 20, 16), seed=24).astype(np.float32)
        data[48:] = rng.normal(size=(24, 20, 16)).astype(np.float32)
        return data
    raise KeyError(name)


def auto_input(name: str) -> np.ndarray:
    """Deterministic inputs for the auto-mode fixtures."""
    if name == "auto_const":
        return np.full((11, 9, 7), 2.5, dtype=np.float32)
    if name == "auto_smooth":
        # large enough that a general-purpose backend (not the
        # low-overhead szx tier) wins the probe — the fixture pins a
        # non-trivial codec id in the envelope
        return smooth_field((24, 20, 16), seed=24).astype(np.float32)
    raise KeyError(name)


def integrity_single_input() -> np.ndarray:
    return smooth_field((10, 12), seed=31).astype(np.float32)


def integrity_sharded_input() -> np.ndarray:
    return smooth_field((14, 12), seed=32).astype(np.float32)


def integrity_stream_steps() -> list[np.ndarray]:
    base = smooth_field((8, 10), seed=33).astype(np.float32)
    return [base + np.float32(0.02) * t for t in range(3)]


def auto_stream_steps() -> list[np.ndarray]:
    """Mixed-statistics steps so the golden archive pins *several*
    per-frame codec choices, not just one."""
    shape = (20, 16, 12)
    return [
        np.full(shape, 1.5, dtype=np.float32),
        smooth_field(shape, seed=25).astype(np.float32),
        np.random.default_rng(26).normal(size=shape).astype(np.float32),
        smooth_field(shape, seed=27).astype(np.float32),
    ]


def main() -> None:
    for name, shape, dtype, eb, cfg_kw in SINGLE:
        data = smooth_field(shape, seed=21).astype(dtype)
        blob = stz_compress(data, eb, "abs", STZConfig(**cfg_kw))
        save_npy(HERE / f"{name}_input.npy", data)
        atomic_write_bytes(HERE / f"{name}.stz", blob)
        save_npy(HERE / f"{name}_recon.npy", stz_decompress(blob))
        print(f"{name}: {data.nbytes} B -> {len(blob)} B")

    base = smooth_field((8, 6, 4), seed=22).astype(np.float32)
    steps = np.stack(
        [
            base
            + np.float32(0.05)
            * smooth_field((8, 6, 4), seed=50 + t).astype(np.float32)
            for t in range(3)
        ]
    )
    blob = compress_stream(list(steps), 4e-3, keyframe_interval=2)
    save_npy(HERE / "multi_input.npy", steps)
    atomic_write_bytes(HERE / "multi.stz", blob)
    save_npy(
        HERE / "multi_recon.npy",
        np.stack(list(StreamingDecompressor(blob))),
    )
    print(f"multi: {steps.nbytes} B -> {len(blob)} B")

    # codec-selected envelopes (auto mode, select_seed=0)
    for name, eb in AUTO_SINGLE:
        data = auto_input(name)
        blob = compress(data, eb, "abs", codec="auto")
        save_npy(HERE / f"{name}_input.npy", data)
        atomic_write_bytes(HERE / f"{name}.stz", blob)
        save_npy(HERE / f"{name}_recon.npy", decompress(blob))
        print(f"{name}: {data.nbytes} B -> {len(blob)} B")

    # codec-selected multi-frame archive (per-frame codec-id bytes)
    asteps = np.stack(auto_stream_steps())
    blob = compress_stream(
        list(asteps),
        AUTO_STREAM_EB,
        keyframe_interval=AUTO_STREAM_KEYFRAME,
        codec="auto",
    )
    save_npy(HERE / "auto_multi_input.npy", asteps)
    atomic_write_bytes(HERE / "auto_multi.stz", blob)
    save_npy(
        HERE / "auto_multi_recon.npy",
        np.stack(list(StreamingDecompressor(blob))),
    )
    print(f"auto_multi: {asteps.nbytes} B -> {len(blob)} B")

    # sharded (container v3) archives — chunk plan + per-chunk codecs
    for name, (eb, codec, chunks) in CHUNKED.items():
        data = chunked_input(name)
        blob = compress_chunked(data, eb, "abs", codec=codec, chunks=chunks)
        save_npy(HERE / f"{name}_input.npy", data)
        atomic_write_bytes(HERE / f"{name}.stz", blob)
        save_npy(HERE / f"{name}_recon.npy", decompress(blob))
        print(f"{name}: {data.nbytes} B -> {len(blob)} B")

    # integrity fixtures: the checksum/recoverable flag-gated layers of
    # each container version (DESIGN.md §9).  These EXTEND the fixture
    # set — the unchecked archives above stay committed untouched, which
    # is exactly the backward-compat contract under test.
    data = integrity_single_input()
    blob = compress(data, INTEGRITY_EB, "abs", checksum=True)
    save_npy(HERE / "checksummed_single_input.npy", data)
    atomic_write_bytes(HERE / "checksummed_single.stz", blob)
    save_npy(HERE / "checksummed_single_recon.npy", decompress(blob))
    print(f"checksummed_single: {data.nbytes} B -> {len(blob)} B")

    data = integrity_sharded_input()
    blob = compress_chunked(
        data, INTEGRITY_EB, "abs", chunks=INTEGRITY_CHUNKS,
        checksum=True, recoverable=True,
    )
    save_npy(HERE / "recoverable_sharded_input.npy", data)
    atomic_write_bytes(HERE / "recoverable_sharded.stz", blob)
    save_npy(HERE / "recoverable_sharded_recon.npy", decompress(blob))
    print(f"recoverable_sharded: {data.nbytes} B -> {len(blob)} B")

    isteps = np.stack(integrity_stream_steps())
    blob = compress_stream(
        list(isteps), INTEGRITY_EB, keyframe_interval=INTEGRITY_KEYFRAME,
        checksum=True, recoverable=True,
    )
    save_npy(HERE / "recoverable_multi_input.npy", isteps)
    atomic_write_bytes(HERE / "recoverable_multi.stz", blob)
    save_npy(
        HERE / "recoverable_multi_recon.npy",
        np.stack(list(StreamingDecompressor(blob))),
    )
    print(f"recoverable_multi: {isteps.nbytes} B -> {len(blob)} B")


if __name__ == "__main__":
    main()
