"""Serve-layer test suite: concurrency, fault injection, isolation.

Runs a real :class:`~repro.serve.server.CompressionServer` in-process
(:class:`~repro.testing.ServerHarness`) and drives it over real TCP
with blocking per-tenant clients on threads — the same substrate as
``benchmarks/bench_serve.py``.  The core contracts under test:

* every served byte is **bounded**: a 200 body decodes within the
  requested error bound, and detected corruption is a structured 422,
  never silently wrong data — under concurrency and injected faults;
* sessions are the isolation boundary: 50 concurrent tenants, zero
  cross-tenant bleed (a foreign digest is 404 no matter who holds it);
* the decoded-chunk cache accounts deterministically and a
  :class:`ChunkCorruptionError` path can never populate it;
* admission control (429 + Retry-After), quotas (413), request
  timeouts (503, pool left clean), mid-request disconnects (absorbed),
  and a SIGKILLed pool worker (healed by the executor retry) all
  degrade exactly as specified.
"""

import asyncio
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from conftest import smooth_field
from repro.core.chunked import compress_chunked, decompress_chunked_roi
from repro.core.parallel import fork_available
from repro.core.pipeline import stz_compress, stz_decompress
from repro.serve import AdmissionGate, ServerBusy
from repro.testing import ServerHarness, WorkerKiller, corrupt_chunk_payload
from repro.util.cache import BoundedLRU

EB = 1e-3


def field(shape=(16, 16, 16), seed=5) -> np.ndarray:
    return smooth_field(shape, seed=seed).astype(np.float32)


@pytest.fixture(scope="module")
def harness():
    """One warm server shared by the plain-path tests (fault tests
    build their own, with injection hooks)."""
    with ServerHarness(workers=2, cache_bytes=1 << 22) as h:
        yield h


class TestEndpoints:
    def test_compress_decompress_roundtrip_holds_bound(self, harness):
        data = field(seed=10)
        client = harness.client("rt")
        r = client.compress(data, EB, chunks=8)
        assert r.status == 200
        digest = r.headers["x-archive-digest"]
        out = client.decompress(digest)
        assert out.status == 200
        rec = out.array()
        assert rec.shape == data.shape and rec.dtype == data.dtype
        assert np.max(np.abs(rec.astype(np.float64) - data)) <= EB

    def test_roi_matches_offline_engine(self, harness):
        data = field(seed=11)
        client = harness.client("roi")
        r = client.compress(data, EB, chunks=8)
        digest = r.headers["x-archive-digest"]
        served = client.roi(digest, "3:13,0:8,6:16").array()
        offline = decompress_chunked_roi(
            r.body, (slice(3, 13), slice(0, 8), slice(6, 16))
        )
        assert np.array_equal(served, offline)

    def test_upload_then_serve(self, harness):
        data = field(seed=12)
        blob = compress_chunked(data, EB, chunks=8, checksum=True)
        client = harness.client("up")
        r = client.upload(blob)
        assert r.status == 201
        meta = r.json()
        assert meta["shape"] == [16, 16, 16]
        rec = client.decompress(meta["digest"]).array()
        assert np.max(np.abs(rec.astype(np.float64) - data)) <= EB

    def test_stream_endpoints_roundtrip(self, harness):
        from repro.core.streaming import StreamingDecompressor

        client = harness.client("stream")
        steps = [field((8, 8), seed=20 + t) for t in range(4)]
        assert client.stream_open(EB, (8, 8), "float32").status == 201
        for t, step in enumerate(steps):
            r = client.stream_append(step)
            assert r.status == 200
            assert r.json()["frame"] == t
        r = client.stream_close()
        assert r.status == 200
        assert r.headers["x-frames"] == "4"
        sd = StreamingDecompressor(r.body)
        for t, step in enumerate(steps):
            err = np.max(np.abs(sd.read_frame(t).astype(np.float64) - step))
            assert err <= EB

    def test_error_statuses(self, harness):
        client = harness.client("err")
        assert client.request("GET", "/v1/nope").status == 404
        assert client.request("GET", "/v1/compress").status == 405
        assert client.decompress("deadbeef" * 4).status == 404
        # body/shape mismatch
        r = client.request(
            "POST", "/v1/compress", b"\x00" * 7,
            {"X-Shape": "4,4", "X-Dtype": "float32", "X-EB": "1e-3"},
        )
        assert r.status == 400
        # garbage archive upload
        assert client.upload(b"not an archive").status == 400
        r = client.compress(field(), EB, chunks=8, codec="nope")
        assert r.status == 400
        # ROI on a held archive with a malformed box
        digest = client.compress(field(seed=13), EB, chunks=8).headers[
            "x-archive-digest"
        ]
        assert client.roi(digest, "0:4").status == 400
        assert client.request("GET", "/v1/health").json()["status"] == "ok"


class TestDecodedChunkCacheServing:
    def test_repeated_roi_hits_cache_with_exact_accounting(self):
        data = field((16, 16, 16), seed=30)
        with ServerHarness(workers=2, cache_bytes=1 << 22) as h:
            client = h.client("hot")
            digest = client.compress(data, EB, chunks=8).headers[
                "x-archive-digest"
            ]
            first = client.roi(digest, "0:8,0:8,0:8").array()
            stats0 = h.engine.cache.stats()
            assert stats0["misses"] == 1 and stats0["hits"] == 0
            assert stats0["entries"] == 1
            # one decoded 8^3 float32 chunk, counted in bytes
            assert stats0["bytes"] == 8 * 8 * 8 * 4
            for _ in range(5):
                again = client.roi(digest, "0:8,0:8,0:8").array()
                assert np.array_equal(again, first)
            stats1 = h.engine.cache.stats()
            assert stats1["hits"] == 5 and stats1["misses"] == 1
            assert stats1["evictions"] == 0
            h.engine.cache.check()

    def test_sub_chunk_rois_share_one_decoded_chunk(self):
        data = field((16, 16, 16), seed=31)
        with ServerHarness(workers=2, cache_bytes=1 << 22) as h:
            client = h.client("sub")
            digest = client.compress(data, EB, chunks=16).headers[
                "x-archive-digest"
            ]
            # distinct boxes inside the single chunk: 1 miss, then hits
            boxes = ["0:4,0:4,0:4", "2:9,1:5,0:16", "10:16,10:16,10:16"]
            for box in boxes:
                assert client.roi(digest, box).status == 200
            stats = h.engine.cache.stats()
            assert stats["misses"] == 1
            assert stats["hits"] == len(boxes) - 1

    def test_cache_disabled_still_serves(self):
        data = field(seed=32)
        with ServerHarness(workers=2, cache_bytes=0) as h:
            client = h.client("cold")
            digest = client.compress(data, EB, chunks=8).headers[
                "x-archive-digest"
            ]
            a = client.roi(digest, "0:8,0:8,0:8").array()
            b = client.roi(digest, "0:8,0:8,0:8").array()
            assert np.array_equal(a, b)
            stats = h.engine.cache.stats()
            assert stats["hits"] == 0 and stats["entries"] == 0


class TestCorruption:
    def _corrupt_setup(self, h):
        data = field((16, 16, 16), seed=40)
        blob = compress_chunked(data, EB, chunks=8, checksum=True)
        bad = corrupt_chunk_payload(blob, index=7, byte=3)
        client = h.client("corrupt")
        r = client.upload(bad)
        assert r.status == 201  # the table parses; damage is payload-level
        return client, r.json()["digest"]

    def test_corrupt_chunk_is_422_and_never_cached(self):
        with ServerHarness(workers=2, cache_bytes=1 << 22) as h:
            client, digest = self._corrupt_setup(h)
            r = client.decompress(digest)
            assert r.status == 422
            assert "checksum" in r.json()["error"]
            # the failed map populated nothing — not even clean chunks
            # decoded alongside the corrupt one
            raw = bytes.fromhex(digest)
            assert all(key[0] != raw for key in h.engine.cache.keys())
            # ROI limited to the corrupt chunk: structured 422 again
            assert client.roi(digest, "8:16,8:16,8:16").status == 422
            assert all(key[0] != raw for key in h.engine.cache.keys())

    def test_clean_chunks_of_damaged_archive_still_serve(self):
        with ServerHarness(workers=2, cache_bytes=1 << 22) as h:
            client, digest = self._corrupt_setup(h)
            r = client.roi(digest, "0:8,0:8,0:8")  # chunk 0 only
            assert r.status == 200
            raw = bytes.fromhex(digest)
            cached = [k for k in h.engine.cache.keys() if k[0] == raw]
            assert cached == [(raw, 0)]  # the verified chunk, nothing else


class TestQuota:
    def test_upload_quota_413_and_accounting_is_atomic(self):
        blob = compress_chunked(
            field(seed=50), EB, chunks=8, checksum=True
        )
        quota = len(blob) + len(blob) // 2  # fits once, not twice
        with ServerHarness(workers=2, quota_bytes=quota) as h:
            client = h.client("q")
            assert client.upload(blob).status == 201
            # same bytes again: content-addressed, idempotent, no charge
            assert client.upload(blob).status == 201
            other = compress_chunked(
                field(seed=51), EB, chunks=8, checksum=True
            )
            r = client.upload(other)
            assert r.status == 413
            # the refused charge mutated nothing: the stored archive
            # still serves and the quota math is unchanged
            session = h.server.sessions["q"]
            assert session.used_bytes == len(blob)
            digest = client.upload(blob).json()["digest"]
            assert client.decompress(digest).status == 200
            # a different tenant has its own quota
            assert h.client("q2").upload(other).status == 201

    def test_stream_append_charges_quota(self):
        step = field((8, 8), seed=52)
        with ServerHarness(workers=2, quota_bytes=step.nbytes * 2) as h:
            client = h.client("qs")
            assert client.stream_open(EB, (8, 8), "float32").status == 201
            assert client.stream_append(step).status == 200
            assert client.stream_append(step).status == 200
            assert client.stream_append(step).status == 413
            # the stream survives the refusal and still closes cleanly
            r = client.stream_close()
            assert r.status == 200 and r.headers["x-frames"] == "2"


class TestAdmission:
    def test_gate_unit_semantics(self):
        async def run():
            gate = AdmissionGate(1, 1, retry_after=2.5)
            outcomes = []

            async def hold(evt):
                async with gate.admit():
                    outcomes.append("in")
                    await evt.wait()

            evt = asyncio.Event()
            first = asyncio.create_task(hold(evt))
            await asyncio.sleep(0.01)
            second = asyncio.create_task(hold(evt))  # queues (slot 1/1)
            await asyncio.sleep(0.01)
            with pytest.raises(ServerBusy) as exc:  # queue full: reject
                async with gate.admit():
                    pass
            assert exc.value.retry_after == 2.5
            evt.set()
            await asyncio.gather(first, second)
            assert gate.stats()["admitted"] == 2
            assert gate.stats()["rejected"] == 1

        asyncio.run(run())

    def test_overload_rejects_429_with_retry_after(self):
        data = field((16, 16, 16), seed=60)
        with ServerHarness(
            workers=2,
            cache_bytes=0,  # every request does real gated work
            max_inflight=1,
            max_queue=0,
            request_timeout=None,
            fault_prologue=lambda index: time.sleep(0.25),
        ) as h:
            setup = h.client("load-setup")
            digest = setup.compress(data, EB, chunks=8).headers[
                "x-archive-digest"
            ]
            # prologue only slows *decode* tasks, so the compress above
            # was quick but every ROI below holds the gate a while.
            # All clients act for the same tenant: the gate is global,
            # and one session holding the archive keeps the test about
            # admission, not addressing.
            statuses: list[tuple[int, dict]] = []

            def one_roi(i):
                c = h.client("load-setup")
                r = c.roi(digest, "0:8,0:8,0:8")
                statuses.append((r.status, r.headers))

            threads = [
                threading.Thread(target=one_roi, args=(i,))
                for i in range(4)
            ]
            threads[0].start()
            time.sleep(0.1)  # let the first request claim the gate
            for t in threads[1:]:
                t.start()
            for t in threads:
                t.join(timeout=30)
            codes = sorted(s for s, _ in statuses)
            assert 200 in codes, codes
            assert 429 in codes, codes
            for status, headers in statuses:
                if status == 429:
                    assert float(headers["retry-after"]) > 0
            # rejected load did not poison anything: server still serves
            ok = h.client("load-setup")
            assert ok.roi(digest, "0:8,0:8,0:8").status == 200


class TestTimeout:
    def test_deadline_503_then_pool_serves_again(self):
        data = field((16, 16, 16), seed=70)
        slow = {"seconds": 0.0}
        with ServerHarness(
            workers=2,
            cache_bytes=1 << 22,
            request_timeout=0.5,
            fault_prologue=lambda index: time.sleep(slow["seconds"]),
        ) as h:
            client = h.client("t")
            digest = client.compress(data, EB, chunks=8).headers[
                "x-archive-digest"
            ]
            slow["seconds"] = 0.4  # 8 chunks / 2 workers => ~1.6 s > 0.5
            r = client.decompress(digest)
            assert r.status == 503
            # nothing was cached from the abandoned map
            assert len(h.engine.cache) == 0
            slow["seconds"] = 0.0
            time.sleep(1.8)  # let abandoned thread items drain
            out = client.decompress(digest)
            assert out.status == 200
            rec = out.array()
            assert np.max(np.abs(rec.astype(np.float64) - data)) <= EB


class TestDisconnect:
    def test_mid_request_disconnect_absorbed(self, harness):
        client = harness.client("gone")
        before = harness.server.stats()
        client.abort_mid_request()
        client.abort_mid_request(claimed_body=128)
        deadline = time.time() + 10
        while (
            harness.server.disconnects < before["disconnects"] + 2
            and time.time() < deadline
        ):
            time.sleep(0.02)
        stats = harness.server.stats()
        assert stats["disconnects"] >= before["disconnects"] + 2
        # no 5xx was minted for the vanished peer
        assert stats["responses"].get("500", 0) == before["responses"].get(
            "500", 0
        )
        # and the listener still serves
        assert client.request("GET", "/v1/health").status == 200


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestWorkerDeath:
    def test_sigkilled_pool_worker_heals_via_retry(self, tmp_path):
        data = field((16, 16, 16), seed=80)
        killer = WorkerKiller(tmp_path)
        with ServerHarness(
            executor="process",
            workers=2,
            cache_bytes=1 << 22,
            request_timeout=None,
            fault_prologue=lambda index: killer.maybe_die(),
        ) as h:
            client = h.client("k")
            digest = client.compress(data, EB, chunks=8).headers[
                "x-archive-digest"
            ]
            assert killer.armed()
            r = client.decompress(digest)  # first fork worker dies
            assert r.status == 200
            assert not killer.armed()
            rec = r.array()
            assert np.max(np.abs(rec.astype(np.float64) - data)) <= EB
            # the healed results were verified before caching
            h.engine.cache.check()
            # and the discarded pool was rebuilt transparently
            assert client.roi(digest, "0:8,0:8,0:8").status == 200


class TestMultiTenant:
    NTENANTS = 50

    def test_50_concurrent_tenants_no_bleed_no_unbounded_bytes(self):
        with ServerHarness(
            workers=2,
            cache_bytes=1 << 22,
            max_inflight=8,
            max_queue=256,  # closed-loop clients: admit everyone
            request_timeout=60.0,
        ) as h:
            digests: dict[int, str] = {}
            failures: list[str] = []
            lock = threading.Lock()

            def tenant_workflow(i: int) -> None:
                try:
                    data = smooth_field((12, 12, 12), seed=100 + i).astype(
                        np.float32
                    )
                    client = h.client(f"tenant-{i}")
                    r = client.compress(data, EB, chunks=6)
                    assert r.status == 200, f"compress {r.status}"
                    with lock:
                        digests[i] = r.headers["x-archive-digest"]
                    rec = client.decompress(digests[i]).array()
                    err = np.max(np.abs(rec.astype(np.float64) - data))
                    assert err <= EB, f"bound violated: {err}"
                    roi = client.roi(digests[i], "2:10,0:6,4:12").array()
                    assert np.array_equal(roi, rec[2:10, 0:6, 4:12])
                except Exception as exc:  # noqa: BLE001 — collected
                    with lock:
                        failures.append(f"tenant {i}: {exc}")

            with ThreadPoolExecutor(max_workers=10) as tpe:
                list(tpe.map(tenant_workflow, range(self.NTENANTS)))
            assert not failures, failures

            # every tenant produced a distinct archive (seeded data),
            # and no tenant can address a neighbour's digest
            assert len(set(digests.values())) == self.NTENANTS
            probe = h.client("tenant-0")
            assert probe.decompress(digests[1]).status == 404
            stats = h.server.stats()
            assert "500" not in stats["responses"], stats["responses"]
            assert stats["responses"].get("404", 0) == 1
            h.engine.cache.check()  # accounting survived the stampede


class TestSharedProcessCaches:
    """Satellite 1: the process-wide pure-function LRUs under
    concurrent serve-style load — the documented benign get→build→put
    race must never surface a wrong value or break the size bound."""

    def test_bounded_lru_benign_race_under_churn(self):
        cache: BoundedLRU[bytes] = BoundedLRU(8)

        def build(key: bytes) -> bytes:
            return key * 3  # a pure function of the key

        wrong: list[tuple[bytes, bytes]] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(3000):
                key = bytes([rng.randrange(24)])  # 24 keys > 8 slots
                value = cache.get(key)
                if value is None:
                    value = build(key)
                    cache.put(key, value)
                if value != build(key):
                    wrong.append((key, value))

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not wrong
        assert len(cache) <= 8

    def test_huffman_table_cache_concurrent_decode(self):
        from repro.encoding import huffman

        blobs = [
            stz_compress(field((12, 12, 12), seed=90 + i), EB)
            for i in range(4)
        ]
        expected = [stz_decompress(b) for b in blobs]
        huffman._TABLE_CACHE.clear()
        wrong: list[int] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(20):
                i = rng.randrange(len(blobs))
                if not np.array_equal(
                    stz_decompress(blobs[i]), expected[i]
                ):
                    wrong.append(i)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not wrong

    def test_probe_cache_concurrent_auto_selection(self):
        from repro.core.config import STZConfig
        from repro.core.select import _PROBE_CACHE, select_and_compress

        data = field((16, 16, 16), seed=95)
        config = STZConfig(codec="auto")
        _PROBE_CACHE.clear()
        results: list[tuple[str, bytes]] = []
        lock = threading.Lock()

        def worker() -> None:
            name, blob, _ = select_and_compress(data, EB, config)
            with lock:
                results.append((name, blob))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # pure function of (data, eb, config): every concurrent caller
        # must see the same selection and bytes, cached probe or not
        assert len({name for name, _ in results}) == 1
        assert len({blob for _, blob in results}) == 1
