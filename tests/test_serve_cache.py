"""Property-based tests for the decoded-chunk LRU cache.

The cache's contract is small but load-bearing (DESIGN.md §11): a
**byte**-capacity LRU whose accounting is exactly the sum of stored
arrays' nbytes at all times, whose eviction order is recency, and
whose keys — ``(archive digest, chunk index)`` — isolate archives from
one another.  Hypothesis drives arbitrary put/get interleavings
against a transparent reference model; the seeded-random sweep below
runs the same properties without the dependency (harness policy shared
with ``test_property_encoding.py``).
"""

import random
from collections import OrderedDict

import numpy as np
import pytest

from repro.serve.cache import DecodedChunkCache, archive_digest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False

DIGESTS = [bytes([d]) * 16 for d in range(4)]


def _chunk(digest: bytes, index: int, nbytes: int) -> np.ndarray:
    """A chunk whose *content* encodes its key, so any cross-key mixup
    (the isolation property) is detectable from the value alone."""
    seed = (digest[0] << 16) | (index << 8) | nbytes
    return np.full(nbytes, seed % 251, dtype=np.uint8)


class ModelLRU:
    """Transparent reference: same semantics, zero cleverness."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: "OrderedDict[tuple[bytes, int], np.ndarray]" = (
            OrderedDict()
        )

    def get(self, key):
        if key in self.entries:
            self.entries.move_to_end(key)
            return self.entries[key]
        return None

    def put(self, key, chunk):
        if chunk.nbytes > self.capacity:
            return False
        self.entries.pop(key, None)
        self.entries[key] = chunk
        while sum(a.nbytes for a in self.entries.values()) > self.capacity:
            self.entries.popitem(last=False)
        return True

    @property
    def bytes(self):
        return sum(a.nbytes for a in self.entries.values())


def run_ops(capacity: int, ops: list[tuple[int, int, int, int]]) -> None:
    """Apply an op sequence to cache and model, asserting equivalence
    after every step.  Each op is ``(kind, digest_i, index, nbytes)``
    with kind 0 = get, else put."""
    cache = DecodedChunkCache(capacity)
    model = ModelLRU(capacity)
    hits = misses = 0
    for kind, digest_i, index, nbytes in ops:
        digest = DIGESTS[digest_i]
        key = (digest, index)
        if kind == 0:
            got = cache.get(digest, index)
            want = model.get(key)
            if want is None:
                assert got is None
                misses += 1
            else:
                assert got is not None
                assert np.array_equal(got, want)
                hits += 1
        else:
            chunk = _chunk(digest, index, nbytes)
            kept = cache.put(digest, index, chunk)
            assert kept == model.put(key, chunk)
        # step invariants: identical key set *and* recency order,
        # byte accounting exact, capacity bound never exceeded
        assert cache.keys() == list(model.entries)
        stats = cache.stats()
        assert stats["bytes"] == model.bytes
        assert stats["bytes"] <= capacity
        assert stats["hits"] == hits and stats["misses"] == misses
        cache.check()


def random_ops(rng: random.Random, n: int) -> list[tuple[int, int, int, int]]:
    return [
        (
            rng.randrange(3),  # get twice as rarely as put
            rng.randrange(len(DIGESTS)),
            rng.randrange(5),
            rng.randrange(1, 65),
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("capacity", [64, 130, 1024])
def test_lru_matches_model_seeded(seed, capacity):
    run_ops(capacity, random_ops(random.Random(seed), 120))


def test_eviction_is_lru_order_and_get_refreshes():
    cache = DecodedChunkCache(3 * 32)
    d = DIGESTS[0]
    for i in range(3):
        cache.put(d, i, _chunk(d, i, 32))
    assert cache.keys() == [(d, 0), (d, 1), (d, 2)]
    cache.get(d, 0)  # refresh the oldest
    cache.put(d, 3, _chunk(d, 3, 32))  # must evict 1, not 0
    assert cache.keys() == [(d, 2), (d, 0), (d, 3)]
    assert cache.stats()["evictions"] == 1


def test_oversized_put_rejected_without_eviction():
    cache = DecodedChunkCache(64)
    d = DIGESTS[0]
    assert cache.put(d, 0, _chunk(d, 0, 40))
    assert not cache.put(d, 1, _chunk(d, 1, 65))
    assert cache.keys() == [(d, 0)]  # nothing was displaced for it
    assert cache.stats()["rejected"] == 1
    cache.check()


def test_digest_keyed_isolation():
    """Entries under one digest are untouchable through another: equal
    chunk indices under different digests coexist, and churning digest
    B never corrupts what digest A returns."""
    cache = DecodedChunkCache(1 << 16)
    a, b = DIGESTS[0], DIGESTS[1]
    chunk_a = _chunk(a, 0, 64)
    cache.put(a, 0, chunk_a)
    for i in range(16):
        cache.put(b, i % 4, _chunk(b, i % 4, 48))
        got = cache.get(a, 0)
        assert got is not None and np.array_equal(got, chunk_a)
    assert cache.get(b, 0) is not None
    cache.check()


def test_reput_replaces_without_double_count():
    cache = DecodedChunkCache(256)
    d = DIGESTS[0]
    cache.put(d, 0, _chunk(d, 0, 64))
    cache.put(d, 0, _chunk(d, 0, 32))  # racing tenants re-decode
    stats = cache.stats()
    assert stats["entries"] == 1 and stats["bytes"] == 32
    cache.check()


def test_zero_capacity_disables():
    cache = DecodedChunkCache(0)
    d = DIGESTS[0]
    assert not cache.enabled
    assert not cache.put(d, 0, _chunk(d, 0, 1))
    assert cache.get(d, 0) is None
    assert len(cache) == 0


def test_entries_are_read_only():
    cache = DecodedChunkCache(256)
    d = DIGESTS[0]
    chunk = _chunk(d, 0, 16)
    cache.put(d, 0, chunk)
    got = cache.get(d, 0)
    with pytest.raises(ValueError):
        got[0] = 99  # immutability contract: archives are content-addressed


def test_archive_digest_is_content_address():
    assert archive_digest(b"abc") == archive_digest(b"abc")
    assert archive_digest(b"abc") != archive_digest(b"abd")
    assert len(archive_digest(b"")) == 16


if HAVE_HYPOTHESIS:

    op_strategy = st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=len(DIGESTS) - 1),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=64),
    )

    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=256),
        ops=st.lists(op_strategy, max_size=60),
    )
    def test_lru_matches_model_hypothesis(capacity, ops):
        run_ops(capacity, ops)
