"""Streaming subsystem: multi-frame container, stateful compressor /
decompressor, temporal prediction, bounded memory."""

import io
import tracemalloc

import numpy as np
import pytest

from conftest import smooth_field
from helpers import assert_error_bounded
from repro.testing import evolving_field
from repro.core.api import compress_stream, decompress_frame, iter_decompress
from repro.core.config import STZConfig
from repro.core.stream import (
    FRAME_DELTA,
    MultiFrameReader,
    MultiFrameWriter,
    StreamReader,
    is_multiframe,
)
from repro.core.streaming import StreamingCompressor, StreamingDecompressor


def evolving_steps(nsteps, shape=(16, 16, 16), dtype=np.float32, scale=0.05):
    """The shared evolving sequence, materialized (the memory test below
    streams the generator form directly)."""
    return list(evolving_field(nsteps, shape, dtype, scale))


class TestMultiFrameContainer:
    def test_writer_reader_roundtrip(self):
        w = MultiFrameWriter()
        w.add_frame(b"frame-zero")
        w.add_frame(b"frame-one!", FRAME_DELTA)
        blob = w.getvalue()
        assert blob[:4] == b"STZM"
        r = MultiFrameReader(blob)
        assert r.nframes == 2
        assert bytes(r.read_frame(0)) == b"frame-zero"
        assert bytes(r.read_frame(1)) == b"frame-one!"
        assert not r.frame(0).is_delta
        assert r.frame(1).is_delta

    def test_file_sink_and_source(self, tmp_path):
        path = tmp_path / "frames.stz"
        with open(path, "wb") as fh:
            w = MultiFrameWriter(fh)
            w.add_frame(b"abc")
            w.add_frame(b"defgh", FRAME_DELTA)
            w.finalize()
            with pytest.raises(ValueError):
                w.getvalue()  # external sink: bytes live in the file
        with open(path, "rb") as fh:
            r = MultiFrameReader(fh)
            assert [f.length for f in r.frames] == [3, 5]
            assert r.read_frame(1) == b"defgh"
            assert r.bytes_read == 5  # random access read only frame 1

    def test_unknown_frame_flags_rejected_by_writer(self):
        w = MultiFrameWriter()
        with pytest.raises(ValueError, match="unknown frame flags"):
            w.add_frame(b"x", 0x80)

    def test_unknown_container_flags_rejected(self):
        blob = bytearray(MultiFrameWriter().getvalue())
        blob[5] |= 0x40  # container-level flags byte
        with pytest.raises(ValueError, match="unknown feature flags"):
            MultiFrameReader(bytes(blob))

    def test_unknown_frame_flags_rejected_by_reader(self):
        w = MultiFrameWriter()
        w.add_frame(b"payload")
        blob = bytearray(w.getvalue())
        # frame table sits right before the 16-byte trailer; the flags
        # byte is at offset 16 of the 24-byte entry
        table_off = len(blob) - 16 - 24
        blob[table_off + 16] |= 0x80
        with pytest.raises(ValueError, match="unknown frame flags"):
            MultiFrameReader(bytes(blob))

    def test_delta_frame_zero_rejected(self):
        w = MultiFrameWriter()
        w.add_frame(b"x", FRAME_DELTA)
        with pytest.raises(ValueError, match="frame 0"):
            MultiFrameReader(w.getvalue())

    def test_truncation_rejected(self):
        w = MultiFrameWriter()
        w.add_frame(b"some payload bytes here")
        blob = w.getvalue()
        for cut in (len(blob) - 1, len(blob) // 2, 10):
            with pytest.raises(ValueError):
                MultiFrameReader(blob[:cut])

    def test_cross_magic_errors_are_helpful(self):
        data = smooth_field((8, 8), seed=1).astype(np.float32)
        single = compress_stream([data], 1e-2)
        from repro.core.pipeline import stz_compress

        with pytest.raises(ValueError, match="MultiFrameReader"):
            StreamReader(single)
        with pytest.raises(ValueError, match="StreamReader"):
            MultiFrameReader(stz_compress(data, 1e-2))

    def test_is_multiframe_sniff_restores_position(self, tmp_path):
        blob = MultiFrameWriter().getvalue()
        assert is_multiframe(blob)
        assert not is_multiframe(b"STZ1" + bytes(32))
        path = tmp_path / "a.stz"
        path.write_bytes(blob)
        with open(path, "rb") as fh:
            assert is_multiframe(fh)
            assert fh.tell() == 0

    def test_empty_archive(self):
        w = MultiFrameWriter()
        r = MultiFrameReader(w.getvalue())
        assert r.nframes == 0
        assert list(StreamingDecompressor(w.getvalue())) == []


class TestStreamingRoundtrip:
    def test_eight_steps_64cubed_hard_bound_and_random_access(self):
        """The acceptance-criteria scenario: >= 8 steps of 64^3 float32,
        per-step hard bound, per-frame random access."""
        steps = evolving_steps(8, (64, 64, 64))
        eb = 1e-3 * float(steps[0].max() - steps[0].min())
        blob = compress_stream(steps, eb, keyframe_interval=4)
        # sequential: every step within the bound
        count = 0
        for t, rec in enumerate(iter_decompress(blob)):
            assert rec.shape == (64, 64, 64) and rec.dtype == np.float32
            assert_error_bounded(steps[t], rec, eb, context=f"step {t}")
            count += 1
        assert count == 8
        # random access out of order, fresh decompressor each time
        for t in (6, 1, 3, 7, 0):
            rec = decompress_frame(blob, t)
            assert_error_bounded(steps[t], rec, eb, context=f"frame {t}")

    def test_temporal_delta_beats_independent_frames(self):
        steps = evolving_steps(6, (32, 32, 32), scale=0.02)
        eb = 1e-3 * float(steps[0].max() - steps[0].min())
        stream = compress_stream(steps, eb, keyframe_interval=8)
        indep = compress_stream(steps, eb, keyframe_interval=1)
        assert len(stream) < 0.6 * len(indep)

    def test_keyframe_cadence_and_stats(self):
        steps = evolving_steps(7, (12, 12, 12))
        eb = 1e-2 * float(steps[0].max() - steps[0].min())
        sc = StreamingCompressor(eb, keyframe_interval=3)
        stats = sc.extend(steps)
        blob = sc.close()
        assert [s.is_delta for s in stats] == [
            False, True, True, False, True, True, False,
        ]
        assert [s.index for s in stats] == list(range(7))
        assert all(not s.fallback for s in stats)
        r = MultiFrameReader(blob)
        assert [f.is_delta for f in r.frames] == [s.is_delta for s in stats]
        assert sum(f.length for f in r.frames) == sum(s.nbytes for s in stats)

    def test_rel_mode_resolves_against_first_step(self):
        steps = evolving_steps(4, (12, 12, 12))
        sc = StreamingCompressor(1e-3, "rel")
        sc.extend(steps)
        blob = sc.close()
        abs_eb = 1e-3 * float(steps[0].max() - steps[0].min())
        assert sc.abs_eb == pytest.approx(abs_eb)
        for t, rec in enumerate(iter_decompress(blob)):
            assert_error_bounded(steps[t], rec, abs_eb, context=f"step {t}")

    def test_float64_stream(self):
        steps = evolving_steps(4, (10, 14, 6), dtype=np.float64)
        blob = compress_stream(steps, 1e-6, "abs", keyframe_interval=2)
        for t, rec in enumerate(iter_decompress(blob)):
            assert rec.dtype == np.float64
            assert_error_bounded(steps[t], rec, 1e-6, context=f"step {t}")

    def test_nondefault_config(self):
        steps = evolving_steps(3, (9, 11, 5))
        eb = 1e-2 * float(steps[0].max() - steps[0].min())
        cfg = STZConfig(levels=2, interp="linear", f32_quant=False)
        blob = compress_stream(steps, eb, config=cfg)
        for t, rec in enumerate(iter_decompress(blob)):
            assert_error_bounded(steps[t], rec, eb, context=f"step {t}")

    def test_tiny_bound_falls_back_to_intra(self):
        """When eb is below the dtype's resolution at the data scale,
        delta frames cannot guarantee the bound and every frame encodes
        intra — the guarantee stays hard."""
        steps = [
            (1e6 * smooth_field((6, 6, 6), seed=t)).astype(np.float32)
            for t in range(3)
        ]
        eb = 1e-4  # far below 1e6 * 2**-23
        sc = StreamingCompressor(eb, keyframe_interval=8)
        stats = sc.extend(steps)
        blob = sc.close()
        assert all(not s.is_delta for s in stats)
        for t, rec in enumerate(iter_decompress(blob)):
            assert_error_bounded(steps[t], rec, eb, context=f"step {t}")


class TestStreamingState:
    def test_shape_and_dtype_locked(self):
        sc = StreamingCompressor(1e-2)
        sc.append(smooth_field((8, 8), seed=1).astype(np.float32))
        with pytest.raises(ValueError, match="stream is"):
            sc.append(smooth_field((8, 9), seed=1).astype(np.float32))
        with pytest.raises(ValueError, match="stream is"):
            sc.append(smooth_field((8, 8), seed=1))  # float64

    def test_append_after_close_rejected(self):
        sc = StreamingCompressor(1e-2)
        sc.append(smooth_field((8, 8), seed=1).astype(np.float32))
        sc.close()
        with pytest.raises(ValueError, match="closed"):
            sc.append(smooth_field((8, 8), seed=1).astype(np.float32))

    def test_close_idempotent_and_context_manager(self):
        with StreamingCompressor(1e-2) as sc:
            sc.append(smooth_field((8, 8), seed=1).astype(np.float32))
            blob = sc.close()
        assert sc.close() == blob

    def test_bad_keyframe_interval(self):
        with pytest.raises(ValueError):
            StreamingCompressor(1e-2, keyframe_interval=0)

    def test_file_sink_roundtrip(self, tmp_path):
        steps = evolving_steps(5, (12, 10, 8))
        eb = 1e-2 * float(steps[0].max() - steps[0].min())
        path = tmp_path / "steps.stz"
        with open(path, "wb") as fh:
            with StreamingCompressor(eb, sink=fh) as sc:
                assert sc.extend(steps)[-1].index == 4
                assert sc.close() is None
        with open(path, "rb") as fh:
            sd = StreamingDecompressor(fh)
            assert sd.nframes == 5
            rec = sd.read_frame(3)
        assert_error_bounded(steps[3], rec, eb)

    def test_mutating_returned_frame_is_safe(self):
        steps = evolving_steps(4, (10, 10, 10))
        eb = 1e-2 * float(steps[0].max() - steps[0].min())
        sd = StreamingDecompressor(compress_stream(steps, eb))
        first = sd.read_frame(2)
        first[:] = np.nan  # user scribbles on the returned array
        again = sd.read_frame(2)  # served from cache
        assert_error_bounded(steps[2], again, eb)
        assert_error_bounded(steps[3], sd.read_frame(3), eb)

    def test_random_access_backwards_and_cache_resume(self):
        steps = evolving_steps(9, (10, 10, 10))
        eb = 1e-2 * float(steps[0].max() - steps[0].min())
        sd = StreamingDecompressor(compress_stream(steps, eb, keyframe_interval=4))
        sequential = list(iter_decompress(compress_stream(steps, eb, keyframe_interval=4)))
        # forward jump (cache resume), backward jump (keyframe restart),
        # repeat (cache hit) — all must equal the sequential decode
        for t in (5, 2, 2, 8, 7, 0, 6):
            assert np.array_equal(sd.read_frame(t), sequential[t])

    def test_compressor_memory_is_o1_in_steps(self):
        """Peak memory must not grow with the number of steps (no
        concatenation or retention of the input sequence)."""
        shape = (32, 32, 32)
        frame_bytes = int(np.prod(shape)) * 4

        def run(nsteps):
            tracemalloc.start()
            with StreamingCompressor(1e-2, "rel", sink=io.BytesIO()) as sc:
                sc.extend(evolving_field(nsteps, shape))
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        run(2)  # warm caches (imports, interned tables)
        assert run(12) < run(3) + 3 * frame_bytes
