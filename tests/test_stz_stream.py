"""Container format and file-based streaming access."""

import io

import numpy as np
import pytest

from conftest import max_err, smooth_field
from repro.core.api import STZFile
from repro.core.config import STZConfig
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.stream import (
    KIND_L1_SZ3,
    KIND_RESIDUAL_Q,
    StreamReader,
    StreamWriter,
    eps_to_mask,
    mask_to_eps,
)


class TestEpsMask:
    @pytest.mark.parametrize(
        "eps", [(0, 0, 1), (1, 0, 0), (1, 1, 1), (0, 1), (1,)]
    )
    def test_roundtrip(self, eps):
        assert mask_to_eps(eps_to_mask(eps), len(eps)) == eps


class TestWriterReader:
    def test_roundtrip_metadata(self):
        cfg = STZConfig(levels=2, interp="linear", adaptive_eb=False)
        w = StreamWriter((10, 20), np.dtype(np.float64), cfg, 0.5)
        w.add_segment(1, (0, 0), KIND_L1_SZ3, b"rootpayload")
        w.add_segment(2, (0, 1), KIND_RESIDUAL_Q, b"detail")
        blob = w.tobytes()
        r = StreamReader(blob)
        h = r.header
        assert h.shape == (10, 20)
        assert h.dtype == np.float64
        assert h.abs_eb == 0.5
        assert h.config.levels == 2
        assert h.config.interp == "linear"
        assert not h.config.adaptive_eb
        assert len(h.segments) == 2
        assert r.read_segment(h.segments[0]) == b"rootpayload"
        assert r.read_segment(h.segments[1]) == b"detail"

    def test_segments_at_level(self):
        cfg = STZConfig()
        w = StreamWriter((8, 8), np.dtype(np.float32), cfg, 0.1)
        w.add_segment(1, (0, 0), KIND_L1_SZ3, b"a")
        w.add_segment(2, (0, 1), KIND_RESIDUAL_Q, b"b")
        w.add_segment(2, (1, 0), KIND_RESIDUAL_Q, b"c")
        r = StreamReader(w.tobytes())
        assert len(r.header.segments_at(2)) == 2

    def test_bad_kind_rejected(self):
        w = StreamWriter((4,), np.dtype(np.float32), STZConfig(), 0.1)
        with pytest.raises(ValueError):
            w.add_segment(1, (0,), 99, b"")

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            StreamReader(b"NOPE" + bytes(100))

    def test_truncated(self):
        blob = stz_compress(
            smooth_field((16, 16), seed=1).astype(np.float32), 1e-2
        )
        r = StreamReader(blob[: len(blob) // 2])
        with pytest.raises(ValueError):
            stz_decompress(r)

    def test_file_object_source(self):
        data = smooth_field((24, 24), seed=2).astype(np.float32)
        blob = stz_compress(data, 1e-3)
        r = StreamReader(io.BytesIO(blob))
        assert max_err(stz_decompress(r), data) <= 1e-3

    def test_bytes_read_accounting(self):
        data = smooth_field((32, 32, 32), seed=3).astype(np.float32)
        blob = stz_compress(data, 1e-3)
        r = StreamReader(blob)
        stz_decompress(r, level=1)
        l1_bytes = r.bytes_read
        total = sum(s.length for s in r.header.segments)
        assert 0 < l1_bytes < total / 4  # coarse preview reads a sliver


class TestSTZFile:
    def test_write_read(self, tmp_path):
        data = smooth_field((32, 32), seed=4).astype(np.float32)
        path = tmp_path / "field.stz"
        with STZFile.write(path, data, 1e-3) as f:
            assert f.shape == data.shape
            assert f.dtype == np.float32
            assert f.levels == 3
            full = f.decompress()
            assert max_err(full, data) <= 1e-3

    def test_partial_io_for_coarse(self, tmp_path):
        data = smooth_field((48, 48), seed=5).astype(np.float32)
        path = tmp_path / "field.stz"
        with STZFile.write(path, data, 1e-3) as f:
            f.decompress(level=1)
            coarse_bytes = f.bytes_read
            f.decompress()
            assert f.bytes_read > coarse_bytes

    def test_roi_from_file(self, tmp_path):
        data = smooth_field((40, 40), seed=6).astype(np.float32)
        path = tmp_path / "f.stz"
        blob = stz_compress(data, 1e-3)
        path.write_bytes(blob)
        full = stz_decompress(blob)
        with STZFile(path) as f:
            res = f.decompress_roi((slice(5, 20), slice(8, 9)))
            assert np.array_equal(res.data, full[5:20, 8:9])

    def test_ladder(self, tmp_path):
        data = smooth_field((32, 32), seed=7).astype(np.float32)
        with STZFile.write(tmp_path / "l.stz", data, 1e-2) as f:
            steps = f.ladder()
            assert [s.level for s in steps] == [1, 2, 3]
            assert steps[-1].shape == data.shape
