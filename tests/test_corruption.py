"""Corruption conformance suite (DESIGN.md §9).

The integrity contract under test, for every container version and
every injected fault: **no silent wrong data**.  A damaged archive must
either

1. raise a clean error at open/decode ("clean rejection"),
2. still decode to exactly the reference bytes (the damage hit
   redundant bytes — a checksum field, a record prefix, padding), or
3. be flagged corrupt by :func:`verify_archive` (damage the decoder
   cannot see, e.g. a flipped table flag that changes semantics, is
   caught by the whole-archive digest).

The exhaustive sweep drives every byte of small checksummed archives
through that three-way contract; the structural matrix extends the
golden-fixture tamper tests on *unchecked* archives, where only
structural fields carry a rejection guarantee.  The ``on_error``
classes pin the documented degraded-decode behavior, ``repair`` pins
byte-exact crash salvage, and the executor classes pin worker-crash
containment.  All fault injection goes through the deterministic
harness in :mod:`repro.testing`.
"""

import struct

import numpy as np
import pytest

from conftest import smooth_field
from repro.core import api
from repro.core.integrity import (
    ChunkCorruptionError,
    DecodeReport,
    FrameCorruptionError,
    repair_archive,
    verify_archive,
)
from repro.core.parallel import execute_map, fork_available
from repro.core.stream import (
    MultiFrameReader,
    ShardedReader,
    StreamReader,
    add_archive_checksum,
)
from repro.core.streaming import StreamingDecompressor
from repro.testing import (
    WorkerKiller,
    corrupt_chunk_payload,
    corrupt_frame_payload,
    flip_bit,
    flip_byte,
    truncate_at,
)

EB = 1e-3

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module")
def field():
    return smooth_field((12, 14), seed=50).astype(np.float32)


@pytest.fixture(scope="module")
def steps(field):
    return [field + np.float32(0.01) * t for t in range(3)]


@pytest.fixture(scope="module")
def v1(field):
    blob = api.compress(field, EB, checksum=True)
    return blob, api.decompress(blob)


@pytest.fixture(scope="module")
def v3(field):
    blob = api.compress_chunked(
        field, EB, chunks=(6, 7), checksum=True, recoverable=True
    )
    return blob, api.decompress(blob)


@pytest.fixture(scope="module")
def v2(steps):
    blob = api.compress_stream(
        steps, EB, keyframe_interval=2, checksum=True, recoverable=True
    )
    return blob, np.stack(list(api.iter_decompress(blob)))


def _no_silent_wrong_data(damaged, decode, reference):
    """Assert the three-way contract for one damaged archive."""
    try:
        out = decode(damaged)
    except Exception:
        return  # (1) clean rejection
    if out.shape == reference.shape and np.array_equal(out, reference):
        return  # (2) damage hit redundant bytes
    # (3) a silent difference must be detectable by the scrub
    try:
        report = verify_archive(damaged)
    except ValueError:
        return
    assert report.corrupt, (
        "decode silently returned wrong data and verify did not flag it"
    )


class TestExhaustiveByteSweep:
    """Flip every byte of a checksummed archive; the contract must hold
    at every offset — header, tables, payloads, records, digest,
    trailer alike."""

    def test_single_frame_every_byte(self, v1):
        blob, ref = v1
        for off in range(len(blob)):
            _no_silent_wrong_data(
                flip_byte(blob, off), api.decompress, ref
            )

    def test_sharded_every_byte(self, v3):
        blob, ref = v3
        for off in range(len(blob)):
            _no_silent_wrong_data(
                flip_byte(blob, off), api.decompress, ref
            )

    def test_multiframe_every_byte(self, v2):
        blob, ref = v2
        decode = lambda b: np.stack(list(api.iter_decompress(b)))  # noqa: E731
        for off in range(len(blob)):
            _no_silent_wrong_data(flip_byte(blob, off), decode, ref)

    def test_single_bit_flips_detected(self, v1):
        """Single-bit rot (the realistic fault) across a sample of
        offsets and all eight bit positions."""
        blob, ref = v1
        for off in range(0, len(blob), 7):
            for bit in range(8):
                _no_silent_wrong_data(
                    flip_bit(blob, off, bit), api.decompress, ref
                )


class TestTruncation:
    """Truncation at every section boundary (and just inside each) is
    rejected cleanly — never parsed as a shorter valid archive."""

    def _section_offsets(self, blob, fmt):
        if fmt == "v3":
            reader = ShardedReader(blob)
            offs = [e.offset + e.length for e in reader.chunks]
        else:
            reader = MultiFrameReader(blob)
            offs = [f.offset + f.length for f in reader.frames]
        table_off = struct.unpack("<QI4s", blob[-16:])[0]
        return sorted(
            {0, 4, 8, *offs, table_off, reader.digest_offset, len(blob) - 16,
             len(blob) - 1}
        )

    @pytest.mark.parametrize("fmt", ["v2", "v3"])
    def test_boundary_truncations_rejected(self, fmt, v2, v3):
        blob, _ = v2 if fmt == "v2" else v3
        decode = (
            (lambda b: np.stack(list(api.iter_decompress(b))))
            if fmt == "v2"
            else api.decompress
        )
        for off in self._section_offsets(blob, fmt):
            if off == len(blob):
                continue
            with pytest.raises(Exception):
                decode(truncate_at(blob, off))

    def test_single_frame_truncations_rejected(self, v1):
        blob, _ = v1
        for off in (0, 4, 11, len(blob) // 2, len(blob) - 5, len(blob) - 1):
            with pytest.raises(ValueError):
                api.decompress(truncate_at(blob, off))


class TestUncheckedStructuralMatrix:
    """Archives written before the checksum flag existed carry no
    payload guarantee, but every *structural* field still rejects
    cleanly when tampered — the golden tamper tests, systematized."""

    @pytest.fixture(scope="class")
    def plain_v1(self, field):
        return api.compress(field, EB)

    @pytest.fixture(scope="class")
    def plain_v3(self, field):
        return api.compress_chunked(field, EB, chunks=(6, 7))

    @pytest.fixture(scope="class")
    def plain_v2(self, steps):
        return api.compress_stream(steps, EB, keyframe_interval=2)

    def test_v1_magic_version_flags(self, plain_v1):
        for off in (0, 1, 2, 3, 4):  # magic + version
            with pytest.raises(ValueError):
                StreamReader(flip_byte(plain_v1, off))
        with pytest.raises(ValueError, match="unknown feature flags"):
            StreamReader(flip_byte(plain_v1, 11, 0x80))

    @pytest.mark.parametrize("fmt", ["v2", "v3"])
    def test_container_head_and_trailer(self, fmt, plain_v2, plain_v3):
        blob = plain_v2 if fmt == "v2" else plain_v3
        opener = MultiFrameReader if fmt == "v2" else ShardedReader
        for off in (0, 1, 2, 3, 4):  # magic + version
            with pytest.raises(ValueError):
                opener(flip_byte(blob, off))
        with pytest.raises(ValueError, match="unknown feature flags"):
            opener(flip_byte(blob, 5, 0x80))
        # trailer: table offset, count, end magic — each field, each byte
        for off in range(len(blob) - 16, len(blob)):
            with pytest.raises(ValueError):
                opener(flip_byte(blob, off))

    def test_checksum_flag_without_checksum_rejected(
        self, plain_v1, plain_v2, plain_v3
    ):
        """Setting an integrity flag on an archive that carries no
        integrity data must fail at open (mismatched geometry or CRC),
        never decode as if verified."""
        from repro.core.stream import (
            _FLAG_CHECKSUM,
            MULTI_CHECKSUM,
            SHARD_CHECKSUM,
        )

        with pytest.raises(ValueError):
            StreamReader(flip_byte(plain_v1, 11, _FLAG_CHECKSUM))
        with pytest.raises(ValueError):
            MultiFrameReader(flip_byte(plain_v2, 5, MULTI_CHECKSUM))
        with pytest.raises(ValueError):
            ShardedReader(flip_byte(plain_v3, 5, SHARD_CHECKSUM))

    def test_unchecked_archives_verify_as_unchecked(
        self, plain_v1, plain_v2, plain_v3
    ):
        for blob in (plain_v1, plain_v2, plain_v3):
            report = verify_archive(blob)
            assert not report.corrupt
            assert report.unchecked  # reported, not silently "ok"


class TestOnErrorChunked:
    @pytest.fixture()
    def damaged(self, v3):
        blob, ref = v3
        return corrupt_chunk_payload(blob, 2, byte=5), ref

    def test_raise_is_structured(self, damaged):
        blob, _ = damaged
        with pytest.raises(ChunkCorruptionError) as ei:
            api.decompress(blob)
        assert ei.value.chunk_index == 2
        assert ei.value.codec == "stz"
        assert "checksum mismatch" in str(ei.value)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_fill_nans_only_the_damaged_chunk(self, damaged, executor):
        blob, ref = damaged
        report = DecodeReport()
        out = api.decompress(
            blob, executor=executor, workers=2, on_error="fill",
            report=report,
        )
        entry_slice = ShardedReader(blob).plan.chunk(2).slices
        assert np.all(np.isnan(out[entry_slice]))
        mask = np.ones(ref.shape, dtype=bool)
        mask[entry_slice] = False
        assert np.array_equal(out[mask], ref[mask])
        assert report.nfailed == 1
        assert isinstance(report.failures[0], ChunkCorruptionError)

    def test_skip_preserves_caller_buffer(self, damaged):
        blob, ref = damaged
        out = np.full(ref.shape, 7.5, dtype=ref.dtype)
        api.decompress(blob, out=out, on_error="skip")
        entry_slice = ShardedReader(blob).plan.chunk(2).slices
        assert np.all(out[entry_slice] == 7.5)  # skipped, not clobbered
        mask = np.ones(ref.shape, dtype=bool)
        mask[entry_slice] = False
        assert np.array_equal(out[mask], ref[mask])

    def test_roi_fill(self, damaged):
        blob, ref = damaged
        report = DecodeReport()
        roi = (slice(None), slice(None))
        out = api.decompress_roi(blob, roi, on_error="fill", report=report)
        assert report.nfailed == 1
        assert np.any(np.isnan(out))
        finite = ~np.isnan(out)
        assert np.array_equal(out[finite], ref[finite])

    def test_invalid_policy_rejected(self, v3):
        blob, _ = v3
        with pytest.raises(ValueError, match="on_error"):
            api.decompress(blob, on_error="ignore")

    @needs_fork
    def test_process_executor_raises_structured(self, damaged):
        """The corruption error crosses the fork boundary with its
        fields intact (pickling via __reduce__)."""
        blob, _ = damaged
        with pytest.raises(ChunkCorruptionError) as ei:
            api.decompress(blob, executor="process", workers=2)
        assert ei.value.chunk_index == 2


class TestOnErrorStream:
    @pytest.fixture()
    def damaged(self, v2):
        blob, ref = v2
        # frame 1 is the delta frame between the two intra frames
        return corrupt_frame_payload(blob, 1, byte=3), ref

    def test_raise_is_structured(self, damaged):
        blob, _ = damaged
        sd = StreamingDecompressor(blob)
        with pytest.raises(FrameCorruptionError) as ei:
            sd.read_frame(1)
        assert ei.value.frame_index == 1
        assert "checksum mismatch" in str(ei.value)

    def test_fill_poisons_until_next_keyframe(self, damaged):
        blob, ref = damaged
        report = DecodeReport()
        frames = list(
            api.iter_decompress(blob, on_error="fill", report=report)
        )
        assert np.array_equal(frames[0], ref[0])  # before the damage
        assert np.all(np.isnan(frames[1]))  # the corrupt frame
        assert np.array_equal(frames[2], ref[2])  # intra frame resets
        assert report.nfailed == 1

    def test_first_frame_corruption_raises_even_with_fill(self, v2):
        blob, _ = v2
        damaged = corrupt_frame_payload(blob, 0, byte=3)
        with pytest.raises(FrameCorruptionError):
            list(api.iter_decompress(damaged, on_error="fill"))


class TestVerify:
    def test_clean_archives_verify_ok(self, v1, v2, v3):
        for blob, _ in (v1, v2, v3):
            report = verify_archive(blob)
            assert report.ok
            assert not report.unchecked  # fully covered by checksums

    def test_payload_corruption_flagged(self, v3):
        blob, _ = v3
        report = verify_archive(corrupt_chunk_payload(blob, 1, byte=2))
        assert not report.ok
        kinds = {(u.kind, u.index) for u in report.corrupt}
        assert ("chunk", 1) in kinds
        assert ("digest", None) in kinds

    def test_table_tamper_caught_by_digest(self, v2):
        """Decode cannot see a flipped delta flag (the payload CRC
        still matches) — the digest is the layer that catches it."""
        blob, _ = v2
        table_off = struct.unpack("<QI4s", blob[-16:])[0]
        damaged = flip_byte(blob, table_off + 24 + 16, 0x01)  # frame 1 flags
        report = verify_archive(damaged)
        assert any(u.kind == "digest" for u in report.corrupt)

    def test_verify_reads_sharded_frames_recursively(self, field):
        steps = [field, field + np.float32(0.01)]
        blob = api.compress_stream(
            steps, EB, keyframe_interval=2, chunks=(6, 7), checksum=True
        )
        report = verify_archive(blob)
        assert report.ok
        assert any(u.kind == "chunk" for u in report.units)


class TestRepair:
    def test_multiframe_prefix_is_byte_exact(self, steps):
        """The acceptance bar: a truncated recoverable stream repairs
        to the byte-exact archive of the surviving step prefix."""
        blob = api.compress_stream(
            steps, EB, keyframe_interval=2, checksum=True, recoverable=True
        )
        reference2 = api.compress_stream(
            steps[:2], EB, keyframe_interval=2, checksum=True,
            recoverable=True,
        )
        frame2 = MultiFrameReader(blob).frame(2)
        # cut mid-frame-2: frames 0 and 1 survive
        rebuilt, report = repair_archive(
            truncate_at(blob, frame2.offset + 3)
        )
        assert report.nrecovered == 2
        assert not report.intact
        assert rebuilt == reference2
        assert verify_archive(rebuilt).ok

    def test_lost_trailer_recovers_everything(self, steps):
        blob = api.compress_stream(
            steps, EB, checksum=True, recoverable=True
        )
        table_off = struct.unpack("<QI4s", blob[-16:])[0]
        rebuilt, report = repair_archive(truncate_at(blob, table_off))
        assert report.nrecovered == len(steps)
        assert rebuilt == blob

    def test_intact_archive_reports_intact(self, v2):
        blob, _ = v2
        rebuilt, report = repair_archive(blob)
        assert report.intact
        assert rebuilt == blob

    def test_sharded_lost_trailer_recovers(self, v3):
        blob, ref = v3
        table_off = struct.unpack("<QI4s", blob[-16:])[0]
        rebuilt, report = repair_archive(truncate_at(blob, table_off))
        assert rebuilt == blob
        assert np.array_equal(api.decompress(rebuilt), ref)

    def test_non_recoverable_archive_refused(self, steps):
        blob = api.compress_stream(steps, EB, checksum=True)
        with pytest.raises(ValueError, match="recover"):
            repair_archive(truncate_at(blob, len(blob) - 4))

    def test_unrecoverable_prefix_refused(self, v2):
        blob, _ = v2
        frame0 = MultiFrameReader(blob).frame(0)
        with pytest.raises(ValueError):
            repair_archive(truncate_at(blob, frame0.offset + 1))


class TestExecutorFaults:
    @needs_fork
    def test_killed_worker_heals_with_retry(self, tmp_path):
        killer = WorkerKiller(tmp_path)

        def fn(state, item):
            killer.maybe_die()
            return item * 10

        out = execute_map(
            fn, [1, 2, 3, 4], None, executor="process", workers=2, retry=1
        )
        assert out == [10, 20, 30, 40]
        assert not killer.armed()  # the kill actually happened

    @needs_fork
    def test_killed_worker_without_retry_raises(self, tmp_path):
        killer = WorkerKiller(tmp_path)

        def fn(state, item):
            killer.maybe_die()
            return item

        with pytest.raises(Exception):
            execute_map(
                fn, [1, 2, 3, 4], None, executor="process", workers=2
            )

    def test_deterministic_failure_survives_retry(self):
        def fn(state, item):
            if item == 2:
                raise ValueError("item 2 is cursed")
            return item

        with pytest.raises(ValueError, match="cursed"):
            execute_map(
                fn, [1, 2, 3], None, executor="thread", workers=2, retry=2
            )
        # healthy items still map under retry when nothing fails
        assert execute_map(
            fn, [1, 3], None, executor="thread", workers=2, retry=1
        ) == [1, 3]

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_decode_exception_carries_chunk_context(self, field, executor):
        """Satellite (a): a chunk whose *contents* fail to parse (no
        checksum to catch it first) surfaces as a structured error
        naming the chunk index and codec, not a bare codec exception."""
        blob = api.compress_chunked(field, EB, chunks=(6, 7))  # unchecked
        entry = ShardedReader(blob).chunk(1)
        damaged = flip_byte(blob, entry.offset)  # break the inner magic
        with pytest.raises(ChunkCorruptionError) as ei:
            api.decompress(damaged, executor=executor, workers=2)
        assert ei.value.chunk_index == 1
        assert ei.value.codec == entry.codec
        assert ei.value.__cause__ is not None  # original error chained


class TestCLI:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_verify_ok_and_corrupt(self, v3, tmp_path, capsys):
        blob, _ = v3
        good = tmp_path / "good.stz"
        good.write_bytes(blob)
        assert self._run("verify", str(good)) == 0
        bad = tmp_path / "bad.stz"
        bad.write_bytes(corrupt_chunk_payload(blob, 0, byte=1))
        assert self._run("verify", str(bad)) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out

    def test_verify_strict_flags_unchecked(self, field, tmp_path):
        plain = tmp_path / "plain.stz"
        plain.write_bytes(api.compress(field, EB))
        assert self._run("verify", str(plain)) == 0
        assert self._run("verify", str(plain), "--strict") == 1

    def test_repair_roundtrip(self, steps, tmp_path):
        blob = api.compress_stream(
            steps, EB, keyframe_interval=2, checksum=True, recoverable=True
        )
        frame2 = MultiFrameReader(blob).frame(2)
        damaged = tmp_path / "damaged.stz"
        damaged.write_bytes(truncate_at(blob, frame2.offset + 3))
        fixed = tmp_path / "fixed.stz"
        assert self._run("repair", str(damaged), str(fixed)) == 0
        assert verify_archive(fixed.read_bytes()).ok
        assert self._run("verify", str(fixed)) == 0

    def test_decompress_on_error_fill(self, v3, tmp_path, capsys):
        blob, ref = v3
        bad = tmp_path / "bad.stz"
        bad.write_bytes(corrupt_chunk_payload(blob, 2, byte=5))
        out = tmp_path / "out.npy"
        assert self._run(
            "decompress", str(bad), str(out), "--on-error", "fill"
        ) == 0
        assert "warning" in capsys.readouterr().err
        arr = np.load(out)
        assert np.any(np.isnan(arr))
        finite = ~np.isnan(arr)
        assert np.array_equal(arr[finite], ref[finite])

    def test_decompress_default_raises_on_corruption(self, v3, tmp_path):
        blob, _ = v3
        bad = tmp_path / "bad.stz"
        bad.write_bytes(corrupt_chunk_payload(blob, 2, byte=5))
        with pytest.raises(ChunkCorruptionError):
            self._run("decompress", str(bad), str(tmp_path / "x.npy"))
        assert not (tmp_path / "x.npy").exists()  # atomic: no torn output

    def test_stream_empty_input_leaves_no_file(self, tmp_path):
        src = tmp_path / "empty.npy"
        np.save(src, np.zeros((0, 4, 4), np.float32))
        out = tmp_path / "out.stz"
        with pytest.raises(SystemExit):
            self._run(
                "stream", str(out), str(src), "--eb", "1e-3",
                "--time-axis", "0",
            )
        assert not out.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_compress_checksum_flag(self, field, tmp_path):
        src = tmp_path / "f.npy"
        np.save(src, field)
        out = tmp_path / "f.stz"
        assert self._run(
            "compress", str(src), str(out), "--eb", "1e-3", "--checksum"
        ) == 0
        report = verify_archive(out.read_bytes())
        assert report.ok and not report.unchecked


class TestGoldenArchivesStayUnchecked:
    """Every committed golden archive predates the checksum flag: it
    must verify with zero corruption, report its units as unchecked,
    and keep decoding byte-exactly (covered by test_golden)."""

    def test_all_golden_fixtures(self):
        from pathlib import Path

        golden = Path(__file__).parent / "golden"
        names = sorted(p.name for p in golden.glob("*.stz"))
        assert names, "golden fixtures missing"
        for p in sorted(golden.glob("*.stz")):
            report = verify_archive(p.read_bytes())
            assert not report.corrupt, f"{p.name}: {report.summary()}"
            if p.stem.startswith(("checksummed", "recoverable")):
                assert not report.unchecked, p.name
            else:
                assert report.unchecked, p.name


def test_archive_checksum_is_idempotent(field):
    blob = api.compress(field, EB)
    once = add_archive_checksum(blob)
    assert add_archive_checksum(once) == once
    assert verify_archive(once).ok
