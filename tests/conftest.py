"""Shared fixtures: small deterministic fields for fast tests.

The fixture bodies live in :mod:`repro.testing` — one definition shared
with ``benchmarks/conftest.py``, so the two trees cannot drift apart.
"""

from __future__ import annotations

from repro.testing import (  # noqa: F401
    FIELD_VARIANTS,
    conformance_field,
    max_err,
    registry_field,
    rng,
    smooth2d_f32,
    smooth3d_f32,
    smooth3d_f64,
    smooth_field,
)
