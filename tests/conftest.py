"""Shared fixtures: small deterministic fields for fast tests."""

from __future__ import annotations

import numpy as np
import pytest


# one definition shared with benchmarks/conftest.py — kept in the
# package so the two trees cannot drift apart
from repro.datasets.synthetic import smooth_field  # noqa: E402,F401
from repro.metrics.error import max_abs_error as max_err  # noqa: E402,F401


@pytest.fixture
def smooth3d_f32() -> np.ndarray:
    return smooth_field((32, 32, 32), seed=1).astype(np.float32)


@pytest.fixture
def smooth3d_f64() -> np.ndarray:
    return smooth_field((24, 20, 28), seed=2)


@pytest.fixture
def smooth2d_f32() -> np.ndarray:
    return smooth_field((48, 40), seed=3).astype(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
