"""Shared fixtures: small deterministic fields for fast tests.

The fixture bodies live in :mod:`repro.testing` — one definition shared
with ``benchmarks/conftest.py``, so the two trees cannot drift apart.
"""

from __future__ import annotations

import os

# the chunked engine's capacity gate degrades parallel requests to the
# serial walk on 1-core hosts (repro.core.parallel.engine_executor);
# the suite must exercise real pool mechanics regardless of the
# runner's core count, so the gate is forced open here.  Tests of the
# gate itself monkeypatch the variable away.
os.environ.setdefault("STZ_FORCE_POOLS", "1")

from repro.testing import (  # noqa: F401
    FIELD_VARIANTS,
    conformance_field,
    max_err,
    registry_field,
    rng,
    smooth2d_f32,
    smooth3d_f32,
    smooth3d_f64,
    smooth_field,
)
