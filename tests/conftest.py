"""Shared fixtures: small deterministic fields for fast tests."""

from __future__ import annotations

import numpy as np
import pytest


def smooth_field(
    shape: tuple[int, ...], seed: int = 0, noise: float = 0.02
) -> np.ndarray:
    """Band-limited smooth field + mild noise (float64)."""
    rng = np.random.default_rng(seed)
    coords = np.meshgrid(
        *[np.linspace(0, 3, n) for n in shape], indexing="ij"
    )
    field = np.ones(shape)
    for i, c in enumerate(coords):
        field = field * np.sin((i + 2) * c / 2.0 + 0.3 * i)
    return field + noise * rng.standard_normal(shape)


@pytest.fixture
def smooth3d_f32() -> np.ndarray:
    return smooth_field((32, 32, 32), seed=1).astype(np.float32)


@pytest.fixture
def smooth3d_f64() -> np.ndarray:
    return smooth_field((24, 20, 28), seed=2)


@pytest.fixture
def smooth2d_f32() -> np.ndarray:
    return smooth_field((48, 40), seed=3).astype(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def max_err(a: np.ndarray, b: np.ndarray) -> float:
    return float(
        np.max(np.abs(a.astype(np.float64) - b.astype(np.float64)))
    )
