"""Golden container fixtures: the format lock.

``tests/golden/`` holds archives produced by the writer at the time the
format was frozen (see ``make_golden.py`` there), together with the
exact inputs and the exact reconstructions.  These tests pin three
things independently:

1. **Reader stability** — today's reader decodes yesterday's archives
   bit-exactly.  This is the contract that let the multi-frame (v2)
   extension ship without touching single-frame STZ1 archives.
2. **Writer stability** — today's encoder reproduces the committed
   archives byte-for-byte from the committed inputs.  Any intentional
   format change must be flag-gated (new flag bit or version), at
   which point the fixtures are *extended*, not regenerated.
3. **Unknown-flag rejection** — a tampered flag bit must hard-fail,
   never decode to plausible garbage; that rejection is what makes the
   flag mechanism a safe evolution path.
"""

import struct
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.api import (
    compress,
    compress_chunked,
    compress_stream,
    decompress,
    decompress_frame,
)
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.stream import (
    CODEC_NAMES,
    MultiFrameReader,
    ShardedReader,
    StreamReader,
    unwrap_selected,
)
from repro.core.streaming import StreamingDecompressor

GOLDEN = Path(__file__).parent / "golden"

#: STZ1 fixed header: flags is byte 11 (after magic4 + 7 u8 fields)
_STZ1_FLAGS_OFFSET = 11
#: v2 head: flags is byte 5 (after magic4 + version)
_MULTI_FLAGS_OFFSET = 5
#: 'STZC' envelope: codec id is byte 5, flags byte 6
_SELECT_CODEC_OFFSET = 5
_SELECT_FLAGS_OFFSET = 6
#: v2 frame-table row <QQBB6x>: codec id is byte 17 of the row
_FRAME_ROW_SIZE = 24
_FRAME_CODEC_OFFSET = 17

SINGLE_CONFIGS = [
    ("single_f32", {}),
    ("single_f64", {"levels": 2, "interp": "linear", "f32_quant": False}),
]

#: the archives embed DEFLATE streams, so *writer* byte-stability is
#: only meaningful against the zlib that produced the fixtures; on a
#: host with a different deflate (e.g. zlib-ng) the writer tests skip
#: while the reader bit-exactness tests — the actual compat contract —
#: still run.  Canaries cover both levels the encoders use (payloads
#: at zlib_level=1, Huffman side tables at 6).
_REFERENCE_ZLIB = all(
    zlib.compress(b"stz golden canary" * 8, lvl).hex() == hexdigest
    for lvl, hexdigest in [
        (1, "78012b2ea95248cfcf4949cd53484ecc4b2caa2c1e1801001c7a34c1"),
        (6, "789c2b2ea95248cfcf4949cd53484ecc4b2caa2c1e1801001c7a34c1"),
    ]
)
needs_reference_zlib = pytest.mark.skipif(
    not _REFERENCE_ZLIB, reason="non-reference zlib deflate output"
)


@pytest.mark.parametrize("name", [n for n, _ in SINGLE_CONFIGS])
class TestSingleFrameGolden:
    def test_reader_decodes_bit_exactly(self, name):
        blob = (GOLDEN / f"{name}.stz").read_bytes()
        expected = np.load(GOLDEN / f"{name}_recon.npy")
        recon = stz_decompress(blob)
        assert recon.dtype == expected.dtype
        assert np.array_equal(recon, expected)

    @needs_reference_zlib
    def test_writer_reproduces_archive_bytes(self, name):
        from repro.core.config import STZConfig

        cfg_kw = dict(SINGLE_CONFIGS)[name]
        data = np.load(GOLDEN / f"{name}_input.npy")
        eb = StreamReader((GOLDEN / f"{name}.stz").read_bytes()).header.abs_eb
        blob = stz_compress(data, eb, "abs", STZConfig(**cfg_kw))
        assert blob == (GOLDEN / f"{name}.stz").read_bytes()

    def test_unknown_flag_rejected(self, name):
        blob = bytearray((GOLDEN / f"{name}.stz").read_bytes())
        blob[_STZ1_FLAGS_OFFSET] |= 0x80
        with pytest.raises(ValueError, match="unknown feature flags"):
            StreamReader(bytes(blob))


class TestMultiFrameGolden:
    def test_reader_decodes_bit_exactly(self):
        blob = (GOLDEN / "multi.stz").read_bytes()
        expected = np.load(GOLDEN / "multi_recon.npy")
        frames = list(StreamingDecompressor(blob))
        assert len(frames) == expected.shape[0]
        for t, rec in enumerate(frames):
            assert np.array_equal(rec, expected[t]), f"frame {t}"
        # random access must agree with the sequential decode
        assert np.array_equal(decompress_frame(blob, 1), expected[1])

    @needs_reference_zlib
    def test_writer_reproduces_archive_bytes(self):
        steps = np.load(GOLDEN / "multi_input.npy")
        blob = compress_stream(list(steps), 4e-3, keyframe_interval=2)
        assert blob == (GOLDEN / "multi.stz").read_bytes()

    def test_unknown_container_flag_rejected(self):
        blob = bytearray((GOLDEN / "multi.stz").read_bytes())
        blob[_MULTI_FLAGS_OFFSET] |= 0x20
        with pytest.raises(ValueError, match="unknown feature flags"):
            MultiFrameReader(bytes(blob))

    def test_unknown_flag_in_embedded_frame_rejected(self):
        """A frame payload is a full STZ1 container, so the STZ1 flag
        policy keeps protecting it inside the v2 wrapper."""
        blob = bytearray((GOLDEN / "multi.stz").read_bytes())
        frame0 = MultiFrameReader(bytes(blob)).frame(0)
        blob[frame0.offset + _STZ1_FLAGS_OFFSET] |= 0x80
        sd = StreamingDecompressor(bytes(blob))
        with pytest.raises(ValueError, match="unknown feature flags"):
            sd.read_frame(0)

    def test_pre_codec_id_archive_reads_as_all_stz(self):
        """The codec-id byte took over a zero pad byte: archives written
        before it existed must parse as codec 0 (STZ) on every frame,
        with the MULTI_CODEC gate bit unset."""
        reader = MultiFrameReader((GOLDEN / "multi.stz").read_bytes())
        assert reader.flags == 0
        assert all(f.codec == "stz" for f in reader.frames)


#: golden codec-selected fixtures: name -> (abs_eb, expected codec).
#: The expected codec pins the *selection* itself: a probe-scoring
#: change that silently flips a historical choice should be a
#: conscious fixture regeneration, not an accident.
AUTO_SINGLE_GOLDEN = {
    "auto_const": (1e-3, "szx"),
    "auto_smooth": (4e-3, "sz3"),
}


@pytest.mark.parametrize("name", sorted(AUTO_SINGLE_GOLDEN))
class TestAutoEnvelopeGolden:
    def test_reader_decodes_bit_exactly(self, name):
        blob = (GOLDEN / f"{name}.stz").read_bytes()
        expected = np.load(GOLDEN / f"{name}_recon.npy")
        eb, codec = AUTO_SINGLE_GOLDEN[name]
        assert CODEC_NAMES[unwrap_selected(blob)[0]] == codec
        recon = decompress(blob)
        assert recon.dtype == expected.dtype
        assert np.array_equal(recon, expected)
        data = np.load(GOLDEN / f"{name}_input.npy")
        err = np.abs(
            recon.astype(np.float64) - data.astype(np.float64)
        ).max()
        assert err <= eb

    @needs_reference_zlib
    def test_writer_reproduces_archive_bytes(self, name):
        data = np.load(GOLDEN / f"{name}_input.npy")
        eb, _ = AUTO_SINGLE_GOLDEN[name]
        blob = compress(data, eb, "abs", codec="auto")
        assert blob == (GOLDEN / f"{name}.stz").read_bytes()

    def test_unknown_codec_id_rejected(self, name):
        blob = bytearray((GOLDEN / f"{name}.stz").read_bytes())
        blob[_SELECT_CODEC_OFFSET] = 0x7F
        with pytest.raises(ValueError, match="unknown codec id"):
            decompress(bytes(blob))

    def test_unknown_envelope_flag_rejected(self, name):
        blob = bytearray((GOLDEN / f"{name}.stz").read_bytes())
        blob[_SELECT_FLAGS_OFFSET] |= 0x40
        with pytest.raises(ValueError, match="unknown feature flags"):
            decompress(bytes(blob))


class TestAutoMultiGolden:
    EB = 1e-3
    KEYFRAME = 2
    #: per-frame (codec, is_delta) pinned at fixture time — the v2
    #: codec-id byte layer plus the per-step selection choices
    EXPECTED_FRAMES = [
        ("szx", False), ("sz3", True), ("szx", False), ("szx", True),
    ]

    def test_reader_decodes_bit_exactly(self):
        blob = (GOLDEN / "auto_multi.stz").read_bytes()
        expected = np.load(GOLDEN / "auto_multi_recon.npy")
        reader = MultiFrameReader(blob)
        assert [
            (f.codec, f.is_delta) for f in reader.frames
        ] == self.EXPECTED_FRAMES
        frames = list(StreamingDecompressor(blob))
        assert len(frames) == expected.shape[0]
        for t, rec in enumerate(frames):
            assert np.array_equal(rec, expected[t]), f"frame {t}"
        assert np.array_equal(decompress_frame(blob, 3), expected[3])
        inputs = np.load(GOLDEN / "auto_multi_input.npy")
        for t in range(expected.shape[0]):
            err = np.abs(
                expected[t].astype(np.float64)
                - inputs[t].astype(np.float64)
            ).max()
            assert err <= self.EB, f"frame {t}"

    @needs_reference_zlib
    def test_writer_reproduces_archive_bytes(self):
        steps = np.load(GOLDEN / "auto_multi_input.npy")
        blob = compress_stream(
            list(steps), self.EB,
            keyframe_interval=self.KEYFRAME, codec="auto",
        )
        assert blob == (GOLDEN / "auto_multi.stz").read_bytes()

    def test_unknown_frame_codec_id_rejected(self):
        blob = bytearray((GOLDEN / "auto_multi.stz").read_bytes())
        table_off, _nframes, _magic = struct.unpack(
            "<QI4s", bytes(blob[-16:])
        )
        blob[table_off + _FRAME_ROW_SIZE + _FRAME_CODEC_OFFSET] = 0x7F
        with pytest.raises(ValueError, match="unknown codec id"):
            MultiFrameReader(bytes(blob))

    def test_multi_codec_gate_bit_is_set(self):
        reader = MultiFrameReader((GOLDEN / "auto_multi.stz").read_bytes())
        from repro.core.stream import MULTI_CODEC

        assert reader.flags & MULTI_CODEC


#: sharded (container v3) fixtures: name -> (abs_eb, codec, chunks,
#: expected per-chunk codec ids).  The codec list pins the chunk-level
#: *selection* the same way AUTO_SINGLE_GOLDEN pins envelope choices.
CHUNKED_GOLDEN = {
    "chunked_single": (
        4e-3, "stz", (10, 9, 14), ["stz", "stz", "stz", "stz"],
    ),
    "chunked_auto": (
        4e-3, "auto", (24, 20, 16), ["szx", "sz3", "szx"],
    ),
}

#: v3 fixed head: flags is byte 5 (after magic4 + version)
_SHARD_FLAGS_OFFSET = 5
#: v3 chunk-table row <QQBB6x>: flags byte 16, codec id byte 17
_CHUNK_FLAGS_OFFSET = 16
_CHUNK_CODEC_OFFSET = 17


@pytest.mark.parametrize("name", sorted(CHUNKED_GOLDEN))
class TestChunkedGolden:
    def test_reader_decodes_bit_exactly(self, name):
        blob = (GOLDEN / f"{name}.stz").read_bytes()
        expected = np.load(GOLDEN / f"{name}_recon.npy")
        eb, _codec, chunks, codec_ids = CHUNKED_GOLDEN[name]
        reader = ShardedReader(blob)
        assert reader.plan.chunk_shape == chunks
        assert [c.codec for c in reader.chunks] == codec_ids
        recon = decompress(blob)
        assert recon.dtype == expected.dtype
        assert np.array_equal(recon, expected)
        data = np.load(GOLDEN / f"{name}_input.npy")
        err = np.abs(
            recon.astype(np.float64) - data.astype(np.float64)
        ).max()
        assert err <= eb

    @needs_reference_zlib
    def test_writer_reproduces_archive_bytes(self, name):
        data = np.load(GOLDEN / f"{name}_input.npy")
        eb, codec, chunks, _ = CHUNKED_GOLDEN[name]
        blob = compress_chunked(data, eb, "abs", codec=codec, chunks=chunks)
        assert blob == (GOLDEN / f"{name}.stz").read_bytes()

    def test_unknown_container_flag_rejected(self, name):
        blob = bytearray((GOLDEN / f"{name}.stz").read_bytes())
        blob[_SHARD_FLAGS_OFFSET] |= 0x40
        with pytest.raises(ValueError, match="unknown feature flags"):
            ShardedReader(bytes(blob))

    def _table_offset(self, blob: bytes) -> int:
        table_off, _nchunks, _magic = struct.unpack("<QI4s", blob[-16:])
        return table_off

    def test_unknown_chunk_flag_rejected(self, name):
        blob = bytearray((GOLDEN / f"{name}.stz").read_bytes())
        blob[self._table_offset(bytes(blob)) + _CHUNK_FLAGS_OFFSET] |= 0x04
        with pytest.raises(ValueError, match="unknown chunk flags"):
            ShardedReader(bytes(blob))

    def test_unknown_chunk_codec_id_rejected(self, name):
        blob = bytearray((GOLDEN / f"{name}.stz").read_bytes())
        blob[self._table_offset(bytes(blob)) + _CHUNK_CODEC_OFFSET] = 0x7F
        with pytest.raises(ValueError, match="unknown codec id"):
            ShardedReader(bytes(blob))

    def test_pre_v3_readers_reject_cleanly(self, name):
        """The backward-compat rule: v1/v2 readers fail by magic with a
        pointer at the right opener, never a misparse."""
        blob = (GOLDEN / f"{name}.stz").read_bytes()
        with pytest.raises(ValueError, match="sharded"):
            StreamReader(blob)
        with pytest.raises(ValueError, match="sharded"):
            MultiFrameReader(blob)


#: integrity fixtures: flag-gated checksum/recoverable layers of each
#: container version (constants mirror make_golden.py INTEGRITY_*)
INTEGRITY_GOLDEN = ("checksummed_single", "recoverable_sharded",
                    "recoverable_multi")
_INTEGRITY_EB = 2e-3
_INTEGRITY_KEYFRAME = 2
_INTEGRITY_CHUNKS = (7, 6)


@pytest.mark.parametrize("name", INTEGRITY_GOLDEN)
class TestIntegrityGolden:
    """The checksum/recoverable flag-gated layer, pinned like the base
    formats: reader bit-exactness, writer byte-stability, full
    verification coverage, and pre-integrity reader rejection."""

    def _decode(self, name, blob):
        if name == "recoverable_multi":
            return np.stack(list(StreamingDecompressor(blob)))
        return decompress(blob)

    def test_reader_decodes_bit_exactly(self, name):
        blob = (GOLDEN / f"{name}.stz").read_bytes()
        expected = np.load(GOLDEN / f"{name}_recon.npy")
        assert np.array_equal(self._decode(name, blob), expected)

    @needs_reference_zlib
    def test_writer_reproduces_archive_bytes(self, name):
        data = np.load(GOLDEN / f"{name}_input.npy")
        if name == "checksummed_single":
            blob = compress(data, _INTEGRITY_EB, "abs", checksum=True)
        elif name == "recoverable_sharded":
            blob = compress_chunked(
                data, _INTEGRITY_EB, "abs", chunks=_INTEGRITY_CHUNKS,
                checksum=True, recoverable=True,
            )
        else:
            blob = compress_stream(
                list(data), _INTEGRITY_EB,
                keyframe_interval=_INTEGRITY_KEYFRAME,
                checksum=True, recoverable=True,
            )
        assert blob == (GOLDEN / f"{name}.stz").read_bytes()

    def test_verifies_fully_checked(self, name):
        from repro.core.integrity import verify_archive

        report = verify_archive((GOLDEN / f"{name}.stz").read_bytes())
        assert report.ok
        assert not report.unchecked

    def test_integrity_flags_are_set(self, name):
        from repro.core.stream import (
            _FLAG_CHECKSUM,
            MULTI_CHECKSUM,
            MULTI_RECOVER,
            SHARD_CHECKSUM,
            SHARD_RECOVER,
        )

        blob = (GOLDEN / f"{name}.stz").read_bytes()
        if name == "checksummed_single":
            assert blob[_STZ1_FLAGS_OFFSET] & _FLAG_CHECKSUM
        elif name == "recoverable_sharded":
            flags = blob[_SHARD_FLAGS_OFFSET]
            assert flags & SHARD_CHECKSUM and flags & SHARD_RECOVER
        else:
            flags = blob[_MULTI_FLAGS_OFFSET]
            assert flags & MULTI_CHECKSUM and flags & MULTI_RECOVER


@pytest.mark.parametrize("name", ["single_f32", "multi", "chunked_single"])
def test_pre_integrity_fixtures_verify_unchecked(name):
    """The other direction of the compat contract: adding the integrity
    fixtures changed nothing for pre-integrity archives (their bytes are
    pinned by the classes above; here we pin that the *new* verifier
    reports them unchecked, not corrupt)."""
    from repro.core.integrity import verify_archive

    report = verify_archive((GOLDEN / f"{name}.stz").read_bytes())
    assert not report.corrupt
    assert report.unchecked
