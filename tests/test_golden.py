"""Golden container fixtures: the format lock.

``tests/golden/`` holds archives produced by the writer at the time the
format was frozen (see ``make_golden.py`` there), together with the
exact inputs and the exact reconstructions.  These tests pin three
things independently:

1. **Reader stability** — today's reader decodes yesterday's archives
   bit-exactly.  This is the contract that let the multi-frame (v2)
   extension ship without touching single-frame STZ1 archives.
2. **Writer stability** — today's encoder reproduces the committed
   archives byte-for-byte from the committed inputs.  Any intentional
   format change must be flag-gated (new flag bit or version), at
   which point the fixtures are *extended*, not regenerated.
3. **Unknown-flag rejection** — a tampered flag bit must hard-fail,
   never decode to plausible garbage; that rejection is what makes the
   flag mechanism a safe evolution path.
"""

import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.api import compress_stream, decompress_frame
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.stream import MultiFrameReader, StreamReader
from repro.core.streaming import StreamingDecompressor

GOLDEN = Path(__file__).parent / "golden"

#: STZ1 fixed header: flags is byte 11 (after magic4 + 7 u8 fields)
_STZ1_FLAGS_OFFSET = 11
#: v2 head: flags is byte 5 (after magic4 + version)
_MULTI_FLAGS_OFFSET = 5

SINGLE_CONFIGS = [
    ("single_f32", {}),
    ("single_f64", {"levels": 2, "interp": "linear", "f32_quant": False}),
]

#: the archives embed DEFLATE streams, so *writer* byte-stability is
#: only meaningful against the zlib that produced the fixtures; on a
#: host with a different deflate (e.g. zlib-ng) the writer tests skip
#: while the reader bit-exactness tests — the actual compat contract —
#: still run.  Canaries cover both levels the encoders use (payloads
#: at zlib_level=1, Huffman side tables at 6).
_REFERENCE_ZLIB = all(
    zlib.compress(b"stz golden canary" * 8, lvl).hex() == hexdigest
    for lvl, hexdigest in [
        (1, "78012b2ea95248cfcf4949cd53484ecc4b2caa2c1e1801001c7a34c1"),
        (6, "789c2b2ea95248cfcf4949cd53484ecc4b2caa2c1e1801001c7a34c1"),
    ]
)
needs_reference_zlib = pytest.mark.skipif(
    not _REFERENCE_ZLIB, reason="non-reference zlib deflate output"
)


@pytest.mark.parametrize("name", [n for n, _ in SINGLE_CONFIGS])
class TestSingleFrameGolden:
    def test_reader_decodes_bit_exactly(self, name):
        blob = (GOLDEN / f"{name}.stz").read_bytes()
        expected = np.load(GOLDEN / f"{name}_recon.npy")
        recon = stz_decompress(blob)
        assert recon.dtype == expected.dtype
        assert np.array_equal(recon, expected)

    @needs_reference_zlib
    def test_writer_reproduces_archive_bytes(self, name):
        from repro.core.config import STZConfig

        cfg_kw = dict(SINGLE_CONFIGS)[name]
        data = np.load(GOLDEN / f"{name}_input.npy")
        eb = StreamReader((GOLDEN / f"{name}.stz").read_bytes()).header.abs_eb
        blob = stz_compress(data, eb, "abs", STZConfig(**cfg_kw))
        assert blob == (GOLDEN / f"{name}.stz").read_bytes()

    def test_unknown_flag_rejected(self, name):
        blob = bytearray((GOLDEN / f"{name}.stz").read_bytes())
        blob[_STZ1_FLAGS_OFFSET] |= 0x80
        with pytest.raises(ValueError, match="unknown feature flags"):
            StreamReader(bytes(blob))


class TestMultiFrameGolden:
    def test_reader_decodes_bit_exactly(self):
        blob = (GOLDEN / "multi.stz").read_bytes()
        expected = np.load(GOLDEN / "multi_recon.npy")
        frames = list(StreamingDecompressor(blob))
        assert len(frames) == expected.shape[0]
        for t, rec in enumerate(frames):
            assert np.array_equal(rec, expected[t]), f"frame {t}"
        # random access must agree with the sequential decode
        assert np.array_equal(decompress_frame(blob, 1), expected[1])

    @needs_reference_zlib
    def test_writer_reproduces_archive_bytes(self):
        steps = np.load(GOLDEN / "multi_input.npy")
        blob = compress_stream(list(steps), 4e-3, keyframe_interval=2)
        assert blob == (GOLDEN / "multi.stz").read_bytes()

    def test_unknown_container_flag_rejected(self):
        blob = bytearray((GOLDEN / "multi.stz").read_bytes())
        blob[_MULTI_FLAGS_OFFSET] |= 0x20
        with pytest.raises(ValueError, match="unknown feature flags"):
            MultiFrameReader(bytes(blob))

    def test_unknown_flag_in_embedded_frame_rejected(self):
        """A frame payload is a full STZ1 container, so the STZ1 flag
        policy keeps protecting it inside the v2 wrapper."""
        blob = bytearray((GOLDEN / "multi.stz").read_bytes())
        frame0 = MultiFrameReader(bytes(blob)).frame(0)
        blob[frame0.offset + _STZ1_FLAGS_OFFSET] |= 0x80
        sd = StreamingDecompressor(bytes(blob))
        with pytest.raises(ValueError, match="unknown feature flags"):
            sd.read_frame(0)
