"""Random-access decompression: the core invariant is bit-identity with
cropped full decompression, plus the decode-savings accounting of §4.5."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import smooth_field
from repro.core.config import ABLATION_CONFIGS, STZConfig
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.random_access import (
    _coarsen_box,
    normalize_roi,
    stz_decompress_roi,
)


@pytest.fixture(scope="module")
def packed3d():
    data = smooth_field((48, 40, 44), seed=20).astype(np.float32)
    blob = stz_compress(data, 1e-3)
    return data, blob, stz_decompress(blob)


class TestNormalize:
    def test_slices_and_ints(self):
        box = normalize_roi((10, 10), (slice(2, 5), 7))
        assert box == ((2, 5), (7, 8))

    def test_full_slice(self):
        assert normalize_roi((10,), (slice(None),)) == ((0, 10),)

    def test_negative_indices(self):
        assert normalize_roi((10,), (slice(-3, None),)) == ((7, 10),)

    def test_rejects_step(self):
        with pytest.raises(ValueError):
            normalize_roi((10,), (slice(0, 10, 2),))

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            normalize_roi((10, 10), (slice(None),))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_roi((10,), (slice(5, 5),))


class TestCoarsen:
    def test_dilation_covers_stencil(self):
        box = _coarsen_box(((8, 12),), (64,))
        lo, hi = box[0]
        assert lo <= 8 // 2 - 2
        assert hi >= (12 - 1) // 2 + 3

    def test_clipping_at_edges(self):
        box = _coarsen_box(((0, 4),), (3,))
        assert box[0] == (0, 3)


class TestBitIdentity:
    @pytest.mark.parametrize(
        "roi",
        [
            (slice(10, 25), slice(3, 38), slice(0, 44)),
            (slice(17, 18), slice(None), slice(None)),
            (slice(16, 17), slice(None), slice(None)),
            (slice(None), slice(21, 22), slice(None)),
            (slice(0, 5), slice(35, 40), slice(20, 21)),
            (slice(None), slice(None), slice(None)),
            (7, 9, 11),
            (slice(45, 48), slice(37, 40), slice(41, 44)),
        ],
        ids=[
            "box",
            "z-slice-odd",
            "z-slice-even",
            "y-slice",
            "sliver",
            "all",
            "point",
            "corner",
        ],
    )
    def test_roi_equals_cropped_full(self, packed3d, roi):
        data, blob, full = packed3d
        res = stz_decompress_roi(blob, roi)
        sel = tuple(slice(lo, hi) for lo, hi in res.box)
        assert np.array_equal(res.data, full[sel])

    def test_2d_container(self):
        data = smooth_field((51, 37), seed=21)
        blob = stz_compress(data, 1e-3)
        full = stz_decompress(blob)
        res = stz_decompress_roi(blob, (slice(10, 30), slice(5, 6)))
        assert np.array_equal(res.data, full[10:30, 5:6])

    def test_two_level_container(self):
        data = smooth_field((40, 40), seed=22).astype(np.float32)
        blob = stz_compress(data, 1e-3, config=STZConfig(levels=2))
        full = stz_decompress(blob)
        res = stz_decompress_roi(blob, (slice(3, 17), slice(22, 31)))
        assert np.array_equal(res.data, full[3:17, 22:31])

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_boxes_property(self, packed3d, data):
        _, blob, full = packed3d
        roi = []
        for n in full.shape:
            lo = data.draw(st.integers(0, n - 1))
            hi = data.draw(st.integers(lo + 1, n))
            roi.append(slice(lo, hi))
        res = stz_decompress_roi(blob, tuple(roi))
        sel = tuple(slice(lo, hi) for lo, hi in res.box)
        assert np.array_equal(res.data, full[sel])


class TestDecodeSavings:
    def test_slice_skips_subblocks(self, packed3d):
        # §4.5: a 2D slice needs only 3 (even) or 4 (odd) of the 7
        # finest-level sub-blocks
        _, blob, full = packed3d
        even = stz_decompress_roi(blob, (slice(16, 17), slice(None), slice(None)))
        odd = stz_decompress_roi(blob, (slice(17, 18), slice(None), slice(None)))
        assert even.segments_skipped == 4
        assert odd.segments_skipped == 3

    def test_box_decodes_everything(self, packed3d):
        _, blob, _ = packed3d
        res = stz_decompress_roi(
            blob, (slice(10, 30), slice(10, 30), slice(10, 30))
        )
        assert res.segments_skipped == 0

    def test_bytes_read_less_for_slice(self, packed3d):
        _, blob, _ = packed3d
        full = stz_decompress_roi(blob, (slice(None), slice(None), slice(None)))
        sl = stz_decompress_roi(blob, (slice(16, 17), slice(None), slice(None)))
        assert sl.bytes_read < full.bytes_read

    def test_timer_stages_present(self, packed3d):
        _, blob, _ = packed3d
        res = stz_decompress_roi(blob, (slice(0, 8), slice(0, 8), slice(0, 8)))
        assert "l1_sz3" in res.timer.stages
        assert "l3_predict" in res.timer.stages
        assert res.total_time > 0


class TestUnsupportedVariants:
    def test_partition_only_rejected(self, smooth3d_f32):
        blob = stz_compress(
            smooth3d_f32, 1e-3, config=ABLATION_CONFIGS["partition"]
        )
        with pytest.raises(NotImplementedError):
            stz_decompress_roi(blob, (slice(0, 4), slice(0, 4), slice(0, 4)))

    def test_sz3_residual_rejected(self, smooth3d_f32):
        blob = stz_compress(
            smooth3d_f32, 1e-3, config=ABLATION_CONFIGS["direct_pred"]
        )
        with pytest.raises(NotImplementedError):
            stz_decompress_roi(blob, (slice(0, 4), slice(0, 4), slice(0, 4)))

    def test_tensor_mode_rejected(self, smooth3d_f32):
        blob = stz_compress(
            smooth3d_f32, 1e-3, config=STZConfig(cubic_mode="tensor")
        )
        with pytest.raises(NotImplementedError):
            stz_decompress_roi(blob, (slice(0, 4), slice(0, 4), slice(0, 4)))
