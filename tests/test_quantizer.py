"""Unit + property tests for the error-bounded quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.quantizer import (
    DEFAULT_RADIUS,
    dequantize,
    quantize,
)


class TestQuantize:
    def test_zero_residual_gives_radius_code(self):
        v = np.array([1.0, 2.0], np.float64)
        qb = quantize(v, v, 0.1)
        assert np.all(qb.codes == DEFAULT_RADIUS)
        assert qb.outlier_pos.size == 0
        assert np.array_equal(qb.recon, v)

    def test_error_bound_holds(self, rng):
        v = rng.normal(0, 10, 5000)
        pred = v + rng.normal(0, 0.5, 5000)
        for eb in (1e-3, 0.1, 2.0):
            qb = quantize(v, pred, eb)
            rec = dequantize(
                qb.codes, pred, eb, qb.outlier_pos, qb.outlier_val
            )
            assert np.max(np.abs(rec - v)) <= eb

    @pytest.mark.parametrize("f32", [False, True])
    def test_recon_matches_dequantize_exactly(self, rng, f32):
        v = rng.normal(0, 1, 1000).astype(np.float32)
        pred = (v + rng.normal(0, 0.01, 1000)).astype(np.float32)
        qb = quantize(v, pred, 0.004, f32=f32)
        rec = dequantize(
            qb.codes, pred, 0.004, qb.outlier_pos, qb.outlier_val, f32=f32
        )
        assert np.array_equal(rec, qb.recon)

    def test_f32_flag_selects_encoder_formula(self, rng):
        """The container-recorded flag is load-bearing: the two
        arithmetic modes produce different reconstructions on some
        inputs, and decoding with the encoder's flag is bit-exact for
        both — which is exactly why pre-flag (float64) archives must
        not be decoded with the float32 formula."""
        v = (rng.normal(0, 1, 50000) * 3000).astype(np.float32)
        pred = np.zeros_like(v)
        eb = 0.1  # 2*eb inexact in binary: the formulas can disagree
        qb64 = quantize(v, pred, eb, f32=False)
        qb32 = quantize(v, pred, eb, f32=True)
        assert not np.array_equal(qb64.recon, qb32.recon)
        rec64 = dequantize(
            qb64.codes, pred, eb, qb64.outlier_pos, qb64.outlier_val,
            f32=False,
        )
        rec32 = dequantize(
            qb32.codes, pred, eb, qb32.outlier_pos, qb32.outlier_val,
            f32=True,
        )
        assert np.array_equal(rec64, qb64.recon)
        assert np.array_equal(rec32, qb32.recon)
        for rec in (rec64, rec32):
            assert np.max(
                np.abs(rec.astype(np.float64) - v.astype(np.float64))
            ) <= eb

    def test_large_residuals_become_outliers(self):
        v = np.array([0.0, 1e9, 0.0])
        pred = np.zeros(3)
        qb = quantize(v, pred, 1e-6, radius=128)
        assert 1 in qb.outlier_pos
        assert qb.codes[1] == 0
        rec = dequantize(
            qb.codes, pred, 1e-6, qb.outlier_pos, qb.outlier_val, radius=128
        )
        assert rec[1] == 1e9  # stored exactly

    def test_nan_inf_stored_exactly(self):
        v = np.array([np.nan, np.inf, -np.inf, 1.0])
        pred = np.zeros(4)
        qb = quantize(v, pred, 0.5)
        rec = dequantize(qb.codes, pred, 0.5, qb.outlier_pos, qb.outlier_val)
        assert np.isnan(rec[0]) and np.isposinf(rec[1]) and np.isneginf(rec[2])

    @pytest.mark.parametrize("f32", [False, True])
    def test_float32_edge_precision(self, f32):
        # values where float32 rounding could break the bound
        v = np.array([1e8, 1e8 + 1], np.float32)
        pred = np.zeros(2, np.float32)
        eb = 1e-4
        qb = quantize(v, pred, eb, f32=f32)
        rec = dequantize(
            qb.codes, pred, eb, qb.outlier_pos, qb.outlier_val, f32=f32
        )
        assert np.all(
            np.abs(rec.astype(np.float64) - v.astype(np.float64)) <= eb
        )

    def test_rejects_nonpositive_eb(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), np.zeros(3), 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), np.zeros(4), 0.1)

    def test_nd_input_flattened(self, rng):
        v = rng.normal(size=(7, 9)).astype(np.float32)
        pred = np.zeros_like(v)
        qb = quantize(v, pred, 0.1)
        assert qb.codes.shape == (63,)
        rec = dequantize(qb.codes, pred, 0.1, qb.outlier_pos, qb.outlier_val)
        assert np.max(np.abs(rec.reshape(v.shape) - v)) <= 0.1

    @given(
        st.integers(0, 2**32 - 1),
        st.floats(1e-8, 1e3),
        st.sampled_from([np.float32, np.float64]),
        st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_property(self, seed, eb, dtype, f32):
        rng = np.random.default_rng(seed)
        v = (rng.normal(0, 100, 200) * rng.choice([1e-6, 1, 1e6], 200)).astype(
            dtype
        )
        pred = (v + rng.normal(0, 10 * eb, 200)).astype(dtype)
        qb = quantize(v, pred, eb, f32=f32)
        rec = dequantize(
            qb.codes, pred, eb, qb.outlier_pos, qb.outlier_val, f32=f32
        )
        err = np.abs(rec.astype(np.float64) - v.astype(np.float64))
        assert np.all(err <= eb)
