"""Unit + property tests for the error-bounded quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.quantizer import (
    DEFAULT_RADIUS,
    dequantize,
    quantize,
)


class TestQuantize:
    def test_zero_residual_gives_radius_code(self):
        v = np.array([1.0, 2.0], np.float64)
        qb = quantize(v, v, 0.1)
        assert np.all(qb.codes == DEFAULT_RADIUS)
        assert qb.outlier_pos.size == 0
        assert np.array_equal(qb.recon, v)

    def test_error_bound_holds(self, rng):
        v = rng.normal(0, 10, 5000)
        pred = v + rng.normal(0, 0.5, 5000)
        for eb in (1e-3, 0.1, 2.0):
            qb = quantize(v, pred, eb)
            rec = dequantize(
                qb.codes, pred, eb, qb.outlier_pos, qb.outlier_val
            )
            assert np.max(np.abs(rec - v)) <= eb

    def test_recon_matches_dequantize_exactly(self, rng):
        v = rng.normal(0, 1, 1000).astype(np.float32)
        pred = (v + rng.normal(0, 0.01, 1000)).astype(np.float32)
        qb = quantize(v, pred, 0.004)
        rec = dequantize(qb.codes, pred, 0.004, qb.outlier_pos, qb.outlier_val)
        assert np.array_equal(rec, qb.recon)

    def test_large_residuals_become_outliers(self):
        v = np.array([0.0, 1e9, 0.0])
        pred = np.zeros(3)
        qb = quantize(v, pred, 1e-6, radius=128)
        assert 1 in qb.outlier_pos
        assert qb.codes[1] == 0
        rec = dequantize(
            qb.codes, pred, 1e-6, qb.outlier_pos, qb.outlier_val, radius=128
        )
        assert rec[1] == 1e9  # stored exactly

    def test_nan_inf_stored_exactly(self):
        v = np.array([np.nan, np.inf, -np.inf, 1.0])
        pred = np.zeros(4)
        qb = quantize(v, pred, 0.5)
        rec = dequantize(qb.codes, pred, 0.5, qb.outlier_pos, qb.outlier_val)
        assert np.isnan(rec[0]) and np.isposinf(rec[1]) and np.isneginf(rec[2])

    def test_float32_edge_precision(self):
        # values where float32 rounding could break the bound
        v = np.array([1e8, 1e8 + 1], np.float32)
        pred = np.zeros(2, np.float32)
        eb = 1e-4
        qb = quantize(v, pred, eb)
        rec = dequantize(qb.codes, pred, eb, qb.outlier_pos, qb.outlier_val)
        assert np.all(
            np.abs(rec.astype(np.float64) - v.astype(np.float64)) <= eb
        )

    def test_rejects_nonpositive_eb(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), np.zeros(3), 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), np.zeros(4), 0.1)

    def test_nd_input_flattened(self, rng):
        v = rng.normal(size=(7, 9)).astype(np.float32)
        pred = np.zeros_like(v)
        qb = quantize(v, pred, 0.1)
        assert qb.codes.shape == (63,)
        rec = dequantize(qb.codes, pred, 0.1, qb.outlier_pos, qb.outlier_val)
        assert np.max(np.abs(rec.reshape(v.shape) - v)) <= 0.1

    @given(
        st.integers(0, 2**32 - 1),
        st.floats(1e-8, 1e3),
        st.sampled_from([np.float32, np.float64]),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_property(self, seed, eb, dtype):
        rng = np.random.default_rng(seed)
        v = (rng.normal(0, 100, 200) * rng.choice([1e-6, 1, 1e6], 200)).astype(
            dtype
        )
        pred = (v + rng.normal(0, 10 * eb, 200)).astype(dtype)
        qb = quantize(v, pred, eb)
        rec = dequantize(qb.codes, pred, eb, qb.outlier_pos, qb.outlier_val)
        err = np.abs(rec.astype(np.float64) - v.astype(np.float64))
        assert np.all(err <= eb)
