"""End-to-end integration: public API, cross-codec comparisons on the
synthetic datasets, and the paper's structural claims in miniature."""

import numpy as np
import pytest

import repro.core as core
from conftest import max_err
from repro.core.ablation import VARIANT_LABELS, get_config, variant_names
from repro.core.api import STZCompressor
from repro.core.progressive import progressive_ladder, upsample_nearest
from repro.datasets import load
from repro.metrics import psnr, ssim
from repro.mgard import MGARDCompressor
from repro.sperr import SPERRCompressor
from repro.sz3 import SZ3Compressor
from repro.zfp import ZFPCompressor

ALL_COMPRESSORS = [
    STZCompressor,
    SZ3Compressor,
    SPERRCompressor,
    ZFPCompressor,
    MGARDCompressor,
]


class TestPublicAPI:
    def test_functional_roundtrip(self, smooth3d_f32):
        blob = core.compress(smooth3d_f32, 1e-3)
        assert max_err(core.decompress(blob), smooth3d_f32) <= 1e-3

    def test_progressive_and_roi(self, smooth3d_f32):
        blob = core.compress(smooth3d_f32, 1e-3)
        coarse = core.decompress_progressive(blob, 1)
        assert coarse.shape == (8, 8, 8)
        roi = core.decompress_roi(blob, (slice(4, 12), 5, slice(None)))
        assert roi.shape == (8, 1, 32)

    def test_detailed_roi(self, smooth3d_f32):
        blob = core.compress(smooth3d_f32, 1e-3)
        res = core.api.decompress_roi_detailed(
            blob, (slice(0, 1), slice(None), slice(None))
        )
        assert res.segments_decoded + res.segments_skipped == 14

    def test_ladder_and_upsample(self, smooth3d_f32):
        blob = core.compress(smooth3d_f32, 1e-2)
        steps = progressive_ladder(blob)
        assert [s.shape[0] for s in steps] == [8, 16, 32]
        up = upsample_nearest(steps[0].data, smooth3d_f32.shape)
        assert up.shape == smooth3d_f32.shape
        # a coarse preview still strongly resembles the field
        assert ssim(smooth3d_f32.astype(np.float64), up) > 0.3


class TestTable1Capabilities:
    """The paper's Table 1 feature matrix, asserted on our classes."""

    def test_stz_is_the_only_dual_capability_codec(self):
        flags = {
            c.name: (c.supports_progressive, c.supports_random_access)
            for c in ALL_COMPRESSORS
        }
        assert flags["STZ"] == (True, True)
        assert flags["SZ3"] == (False, False)
        assert flags["SPERR"] == (True, False)
        assert flags["MGARD-X"] == (True, False)
        assert flags["ZFP"] == (False, True)
        dual = [n for n, f in flags.items() if all(f)]
        assert dual == ["STZ"]


class TestCrossCodec:
    @pytest.fixture(scope="class")
    def nyx(self):
        # 64^3: small grids over-weight per-segment container overhead
        # and misrepresent the rate-distortion comparison
        return load("nyx", shape=(64, 64, 64))

    @pytest.mark.parametrize("cls", ALL_COMPRESSORS, ids=lambda c: c.name)
    def test_all_codecs_roundtrip_all_datasets(self, cls):
        for name in ("nyx", "warpx", "magrec", "miranda"):
            data = load(name, shape=(16, 16, 32))
            codec = cls(1e-3, eb_mode="rel")
            rec = codec.decompress(codec.compress(data))
            assert rec.shape == data.shape
            assert rec.dtype == data.dtype
            vr = float(data.max() - data.min())
            bound = 1e-3 * vr
            factor = 6.0 if cls is ZFPCompressor else 1 + 1e-6
            assert max_err(rec, data) <= bound * factor, (cls.name, name)

    def test_stz_matches_sz3_quality(self, nyx):
        """§4.2: STZ rate-distortion is comparable to SZ3 (within a few
        dB at matched CR)."""
        from repro.metrics.rate import interpolate_psnr_at_cr, rd_curve
        from repro.core.pipeline import stz_compress, stz_decompress
        from repro.sz3 import sz3_compress, sz3_decompress

        ebs = [1e-2, 3e-3, 1e-3, 3e-4]
        stz = rd_curve(
            lambda d, e: stz_compress(d, e, "rel"), stz_decompress, nyx, ebs
        )
        sz3 = rd_curve(
            lambda d, e: sz3_compress(d, e, "rel"), sz3_decompress, nyx, ebs
        )
        cr = sorted(p.cr for p in stz)[1]
        diff = interpolate_psnr_at_cr(stz, cr) - interpolate_psnr_at_cr(
            sz3, cr
        )
        assert abs(diff) < 6.0  # comparable, not degraded by partitioning

    def test_stz_beats_partition_baseline(self, nyx):
        """Figure 5's headline: hierarchical prediction recovers the
        quality the naive partition loses."""
        from repro.core.pipeline import stz_compress, stz_decompress
        from repro.metrics.rate import interpolate_psnr_at_cr, rd_curve

        ebs = [1e-2, 3e-3, 1e-3]
        full = rd_curve(
            lambda d, e: stz_compress(d, e, "rel"), stz_decompress, nyx, ebs
        )
        part = rd_curve(
            lambda d, e: stz_compress(
                d, e, "rel", config=get_config("partition")
            ),
            stz_decompress,
            nyx,
            ebs,
        )
        cr = sorted(p.cr for p in full)[1]
        assert interpolate_psnr_at_cr(full, cr) > interpolate_psnr_at_cr(
            part, cr
        )


class TestAblationRegistry:
    def test_labels_cover_figure5(self):
        assert variant_names()[0] == "partition"
        assert VARIANT_LABELS["three_level_all"] == "3-level + All"
        assert len(variant_names()) == 7

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            get_config("quantum")

    def test_ladder_is_ordered_by_design(self):
        # each config differs from the previous by exactly the paper's
        # described change
        cfgs = [get_config(n) for n in variant_names()]
        assert cfgs[0].partition_only
        assert cfgs[1].interp == "direct"
        assert cfgs[2].interp == "linear"
        assert cfgs[2].residual_codec == "sz3"
        assert cfgs[3].residual_codec == "quantize"
        assert cfgs[4].interp == "cubic"
        assert not cfgs[4].adaptive_eb
        assert cfgs[5].adaptive_eb
        assert cfgs[6].levels == 3
