"""Shared test helpers: the hard error-bound assertion and the codec
registry the conformance suite sweeps.

``assert_error_bounded`` is the single definition of what "error
bounded" means in this repo: point-wise, in exact float64, with
non-finite points required to be stored exactly.  Every codec claims
this guarantee; every test that checks it should go through here so a
weakening of the check cannot slip in per test file.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import compress as api_compress
from repro.core.api import decompress as api_decompress
from repro.core.pipeline import stz_compress, stz_decompress
from repro.mgard.codec import mgard_compress, mgard_decompress
from repro.sperr.codec import sperr_compress, sperr_decompress
from repro.sz3.compressor import sz3_compress, sz3_decompress
from repro.szx.codec import szx_compress, szx_decompress
from repro.zfp.codec import zfp_compress, zfp_decompress


def assert_error_bounded(
    orig: np.ndarray, recon: np.ndarray, eb: float, context: str = ""
) -> None:
    """Assert ``max|orig - recon| <= eb`` point-wise in float64.

    Shapes must match; non-finite originals (NaN/inf) must be
    reproduced bit-exactly, since no finite bound covers them.  The
    failure message reports the worst offender's flat index and values.
    """
    prefix = f"{context}: " if context else ""
    assert recon.shape == orig.shape, (
        f"{prefix}shape {recon.shape} != original {orig.shape}"
    )
    o = np.asarray(orig, dtype=np.float64).reshape(-1)
    r = np.asarray(recon, dtype=np.float64).reshape(-1)
    finite = np.isfinite(o)
    if not finite.all():
        # NaN != NaN, so "stored exactly" means identical bit patterns
        exact = (
            np.asarray(orig).reshape(-1)[~finite].tobytes()
            == np.asarray(recon).reshape(-1)[~finite].tobytes()
        )
        assert exact, (
            f"{prefix}{int((~finite).sum())} non-finite point(s) "
            "not stored exactly"
        )
    err = np.abs(o[finite] - r[finite])
    if err.size == 0:
        return
    worst = int(np.argmax(err))
    assert err[worst] <= eb, (
        f"{prefix}error bound violated: |{o[finite][worst]!r} - "
        f"{r[finite][worst]!r}| = {err[worst]:.6g} > eb = {eb:.6g} "
        f"(flat index {np.flatnonzero(finite)[worst]})"
    )


#: name -> (compress(data, abs_eb) -> bytes, decompress(blob) -> array);
#: every codec claiming the hard L-infinity guarantee, swept by
#: tests/test_conformance.py.  "zfp" joined when its v2 exact-outlier
#: pass upgraded the advisory tolerance to a certified bound; "auto" is
#: the selection engine, which must hold the bound no matter which
#: backend it routes to.
BOUNDED_CODECS = {
    "stz": (lambda d, e: stz_compress(d, e, "abs"), stz_decompress),
    "sz3": (lambda d, e: sz3_compress(d, e, "abs"), sz3_decompress),
    "sperr": (lambda d, e: sperr_compress(d, e, "abs"), sperr_decompress),
    "mgard": (lambda d, e: mgard_compress(d, e, "abs"), mgard_decompress),
    "zfp": (lambda d, e: zfp_compress(d, e, "abs"), zfp_decompress),
    "szx": (lambda d, e: szx_compress(d, e, "abs"), szx_decompress),
    "auto": (
        lambda d, e: api_compress(d, e, "abs", codec="auto"),
        api_decompress,
    ),
}
