"""SPERR-like codec tests (CDF 9/7 + outlier correction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import max_err, smooth_field
from repro.sperr import (
    SPERRCompressor,
    cdf97_forward,
    cdf97_inverse,
    sperr_compress,
    sperr_decompress,
)
from repro.sperr.wavelet import (
    DC_GAIN,
    corner_shapes,
    level_band_regions,
    max_levels,
)


class TestWavelet:
    @pytest.mark.parametrize(
        "shape", [(64,), (33,), (16, 24), (33, 47), (16, 24, 20), (9, 17, 31)]
    )
    @pytest.mark.parametrize("levels", [1, 2])
    def test_perfect_reconstruction(self, shape, levels, rng):
        data = rng.normal(size=shape)
        rec = cdf97_inverse(cdf97_forward(data, levels), levels)
        assert np.abs(rec - data).max() < 1e-10

    def test_energy_compaction_on_smooth_data(self):
        data = smooth_field((64, 64), seed=60, noise=0.0)
        w = cdf97_forward(data, 2)
        corner = corner_shapes(data.shape, 2)[2]
        ll = np.abs(w[: corner[0], : corner[1]]).sum()
        total = np.abs(w).sum()
        assert ll / total > 0.5  # most energy in 1/16 of the coefficients

    def test_dc_gain_exact_on_constant(self):
        c = np.full((32, 32), 2.0)
        w = cdf97_forward(c, 1)
        corner = corner_shapes(c.shape, 1)[1]
        ll = w[: corner[0], : corner[1]]
        assert np.allclose(ll, 2.0 * DC_GAIN**2)
        # detail bands vanish for constants
        assert np.abs(w).sum() == pytest.approx(np.abs(ll).sum())

    def test_band_regions_partition_pyramid(self):
        shape = (20, 14)
        levels = 2
        seen = np.zeros(shape, dtype=int)
        for rects in level_band_regions(shape, levels):
            for r in rects:
                seen[r] += 1
        assert np.all(seen == 1)

    def test_max_levels(self):
        assert max_levels((64, 64, 64)) >= 3
        assert max_levels((8, 8)) == 1
        assert max_levels((4, 4)) == 1


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3])
    def test_hard_bound(self, smooth3d_f32, eb):
        blob = sperr_compress(smooth3d_f32, eb)
        rec = sperr_decompress(blob)
        assert rec.shape == smooth3d_f32.shape
        assert rec.dtype == smooth3d_f32.dtype
        assert max_err(rec, smooth3d_f32) <= eb * (1 + 1e-6)

    @pytest.mark.parametrize("shape", [(128,), (33, 47), (17, 18, 15)])
    def test_odd_shapes(self, shape):
        data = smooth_field(shape, seed=61)
        rec = sperr_decompress(sperr_compress(data, 1e-3))
        assert max_err(rec, data) <= 1e-3 * (1 + 1e-6)

    def test_relative_bound(self, smooth2d_f32):
        blob = sperr_compress(smooth2d_f32, 1e-3, eb_mode="rel")
        rng_v = float(smooth2d_f32.max() - smooth2d_f32.min())
        assert max_err(sperr_decompress(blob), smooth2d_f32) <= (
            1e-3 * rng_v * (1 + 1e-6)
        )

    def test_quality_knob_tradeoff(self, smooth3d_f32):
        # higher quality factor -> tighter wavelet steps -> fewer
        # outliers but bigger streams
        lo = sperr_compress(smooth3d_f32, 1e-3, quality=2.0)
        hi = sperr_compress(smooth3d_f32, 1e-3, quality=8.0)
        assert len(hi) > len(lo) * 0.8  # monotone-ish, generous slack
        for blob in (lo, hi):
            assert max_err(sperr_decompress(blob), smooth3d_f32) <= 1e-3

    def test_wavelet_wins_on_high_frequency_data(self):
        # the paper's §4.2 observation, reproduced structurally
        from repro.sz3 import sz3_compress

        n = 48
        y = np.linspace(-1, 1, n)[None, :, None]
        x = np.linspace(0, 1, n)[:, None, None]
        z = np.linspace(0, 1, n)[None, None, :]
        hf = (
            np.tanh((y + 0.3 * np.sin(6.28 * x)) * 8) + 0.1 * np.sin(40 * z)
        ).astype(np.float32)
        cr_sperr = hf.nbytes / len(sperr_compress(hf, 1e-2))
        cr_sz3 = hf.nbytes / len(sz3_compress(hf, 1e-2))
        assert cr_sperr > cr_sz3

    def test_progressive_shapes_and_scaling(self, smooth3d_f32):
        blob = sperr_compress(smooth3d_f32, 1e-3, levels=2)
        p1 = sperr_decompress(blob, level=1)
        assert p1.shape == (8, 8, 8)
        p2 = sperr_decompress(blob, level=2)
        assert p2.shape == (16, 16, 16)
        full = sperr_decompress(blob, level=3)
        assert full.shape == smooth3d_f32.shape
        # preview values must be in the data's value range (DC
        # normalization), not wavelet-scaled
        assert p1.max() < float(smooth3d_f32.max()) * 1.5 + 1.0

    def test_progressive_validation(self, smooth3d_f32):
        blob = sperr_compress(smooth3d_f32, 1e-3, levels=2)
        with pytest.raises(ValueError):
            sperr_decompress(blob, level=0)
        with pytest.raises(ValueError):
            sperr_decompress(blob, level=4)

    def test_bad_container(self):
        with pytest.raises(ValueError):
            sperr_decompress(b"junk" + bytes(64))

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_bound_property(self, seed):
        data = (
            np.random.default_rng(seed)
            .normal(size=(12, 14, 10))
            .astype(np.float32)
        )
        blob = sperr_compress(data, 5e-2)
        assert max_err(sperr_decompress(blob), data) <= 5e-2 * (1 + 1e-6)


class TestObjectAPI:
    def test_capabilities(self):
        c = SPERRCompressor(1e-3)
        assert c.supports_progressive
        assert not c.supports_random_access
