"""Thread-parallel ("OMP") mode: results must be bit-identical to
serial, and the machinery must degrade gracefully."""

import numpy as np
import pytest

from conftest import smooth_field
from repro.core.parallel import effective_threads, pmap, pstarmap
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.random_access import stz_decompress_roi


class TestPmap:
    def test_serial_fallbacks(self):
        assert effective_threads(None) == 1
        assert effective_threads(0) == 1
        assert effective_threads(1) == 1
        assert effective_threads(4) == 4

    def test_order_preserved(self):
        out = pmap(lambda x: x * x, list(range(50)), threads=4)
        assert out == [x * x for x in range(50)]

    def test_starmap(self):
        out = pstarmap(lambda a, b: a + b, [(1, 2), (3, 4)], threads=2)
        assert out == [3, 7]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            pmap(boom, [1, 2], threads=2)


class TestParallelSTZ:
    @pytest.fixture(scope="class")
    def data(self):
        return smooth_field((40, 36, 32), seed=30).astype(np.float32)

    def test_compress_bit_identical(self, data):
        assert stz_compress(data, 1e-3) == stz_compress(
            data, 1e-3, threads=4
        )

    def test_decompress_bit_identical(self, data):
        blob = stz_compress(data, 1e-3)
        assert np.array_equal(
            stz_decompress(blob), stz_decompress(blob, threads=4)
        )

    def test_progressive_parallel(self, data):
        blob = stz_compress(data, 1e-3)
        assert np.array_equal(
            stz_decompress(blob, level=2),
            stz_decompress(blob, level=2, threads=4),
        )

    def test_roi_parallel_identical(self, data):
        blob = stz_compress(data, 1e-3)
        roi = (slice(5, 25), slice(None), slice(10, 11))
        a = stz_decompress_roi(blob, roi)
        b = stz_decompress_roi(blob, roi, threads=4)
        assert np.array_equal(a.data, b.data)
