"""Random-access Huffman decoding — the paper's §5 future-work item,
implemented on top of the chunk sync index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.huffman import (
    huffman_decode,
    huffman_decode_range,
    huffman_encode,
)


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(99)
    syms = (50 + np.rint(rng.normal(0, 8, 100_000))).astype(np.uint32)
    return syms, huffman_encode(syms)


class TestDecodeRange:
    @pytest.mark.parametrize(
        "start,count",
        [
            (0, 10),
            (0, 100_000),
            (99_990, 10),
            (12_345, 6_789),
            (5, 0),
            (4096, 4096),  # chunk-aligned
            (4095, 2),  # straddles a chunk boundary
        ],
    )
    def test_matches_full_decode(self, stream, start, count):
        syms, blob = stream
        got = huffman_decode_range(blob, start, count)
        assert np.array_equal(got, syms[start : start + count])

    def test_out_of_range(self, stream):
        _, blob = stream
        with pytest.raises(IndexError):
            huffman_decode_range(blob, 99_999, 2)
        with pytest.raises(ValueError):
            huffman_decode_range(blob, -1, 2)

    def test_constant_stream(self):
        syms = np.full(5000, 3, np.uint32)
        blob = huffman_encode(syms)
        assert np.array_equal(
            huffman_decode_range(blob, 100, 50), syms[100:150]
        )

    def test_empty_stream(self):
        blob = huffman_encode(np.zeros(0, np.uint32))
        assert huffman_decode_range(blob, 0, 0).size == 0
        with pytest.raises(IndexError):
            huffman_decode_range(blob, 0, 1)

    def test_small_stream_single_chunk(self):
        syms = np.arange(100, dtype=np.uint32) % 7
        blob = huffman_encode(syms)
        assert np.array_equal(huffman_decode_range(blob, 30, 40), syms[30:70])

    def test_partial_is_cheaper_than_full(self, stream):
        """The point of the feature: decoding a sliver must touch far
        fewer symbols than a full decode."""
        import time

        syms, blob = stream
        huffman_decode(blob)  # warm
        t0 = time.perf_counter()
        for _ in range(20):
            huffman_decode(blob)
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(20):
            huffman_decode_range(blob, 50_000, 256)
        t_part = time.perf_counter() - t0
        assert t_part < t_full

    @given(st.integers(0, 2**31), st.integers(0, 9999), st.integers(0, 3000))
    @settings(max_examples=30, deadline=None)
    def test_range_property(self, seed, start, count):
        rng = np.random.default_rng(seed)
        syms = rng.integers(0, 40, 10_000).astype(np.uint32)
        blob = huffman_encode(syms)
        count = min(count, syms.size - start)
        got = huffman_decode_range(blob, start, count)
        assert np.array_equal(got, syms[start : start + count])
