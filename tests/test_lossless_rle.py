"""Tests for the lossless byte backend, RLE, and section framing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.encoding.rle import rle_decode, rle_encode
from repro.util.sections import pack_sections, unpack_sections


class TestLossless:
    @pytest.mark.parametrize("level", [0, 1, 6, 9])
    def test_roundtrip(self, level):
        data = b"abc" * 1000 + bytes(range(256))
        assert decompress_bytes(compress_bytes(data, level)) == data

    def test_empty(self):
        assert decompress_bytes(compress_bytes(b"")) == b""

    def test_incompressible_stays_raw(self, rng):
        data = rng.bytes(4096)
        out = compress_bytes(data, 9)
        assert len(out) <= len(data) + 1
        assert decompress_bytes(out) == data

    def test_compressible_shrinks(self):
        data = b"\x00" * 100_000
        assert len(compress_bytes(data, 1)) < 1000

    def test_bad_tag(self):
        with pytest.raises(ValueError):
            decompress_bytes(b"\xff123")

    def test_bad_level(self):
        with pytest.raises(ValueError):
            compress_bytes(b"x", 10)


class TestRLE:
    def test_empty(self):
        v, r = rle_encode(np.zeros(0, np.int32))
        assert v.size == 0 and r.size == 0
        assert rle_decode(v, r).size == 0

    def test_runs(self):
        arr = np.array([5, 5, 5, 2, 2, 7])
        v, r = rle_encode(arr)
        assert list(v) == [5, 2, 7]
        assert list(r) == [3, 2, 1]
        assert np.array_equal(rle_decode(v, r), arr)

    def test_no_runs(self):
        arr = np.arange(100)
        v, r = rle_encode(arr)
        assert v.size == 100 and np.all(r == 1)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            rle_decode(np.ones(2), np.ones(3, np.int64))

    @given(st.lists(st.integers(-5, 5), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        v, r = rle_encode(arr)
        assert np.array_equal(rle_decode(v, r), arr)
        # maximal runs: adjacent values differ
        if v.size > 1:
            assert np.all(v[1:] != v[:-1])


class TestSections:
    def test_roundtrip(self):
        secs = [b"", b"abc", b"\x00" * 100]
        out = unpack_sections(pack_sections(secs))
        assert [bytes(s) for s in out] == secs

    def test_empty_list(self):
        assert unpack_sections(pack_sections([])) == []

    def test_trailing_garbage_rejected(self):
        blob = pack_sections([b"hi"]) + b"junk"
        with pytest.raises(ValueError):
            unpack_sections(blob)
