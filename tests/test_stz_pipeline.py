"""Tests for the STZ compression pipeline (compress / decompress /
progressive levels / configs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import max_err, smooth_field
from repro.core.config import ABLATION_CONFIGS, STZConfig
from repro.core.pipeline import (
    level_output_shape,
    stz_compress,
    stz_decompress,
)
from repro.core.partition import lattice_shape
from repro.util.timer import StageTimer


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = STZConfig()
        assert cfg.levels == 3
        assert cfg.interp == "cubic"
        assert cfg.cubic_mode == "diagonal"
        assert cfg.residual_codec == "quantize"
        assert cfg.adaptive_eb and cfg.eb_ratio == 2.5

    def test_level_eb_schedule(self):
        cfg = STZConfig(levels=3, eb_ratio=2.5)
        assert cfg.level_eb(1.0, 3) == 1.0
        assert cfg.level_eb(1.0, 2) == pytest.approx(0.4)
        assert cfg.level_eb(1.0, 1) == pytest.approx(0.16)

    def test_non_adaptive_uniform(self):
        cfg = STZConfig(adaptive_eb=False)
        assert cfg.level_eb(1.0, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            STZConfig(levels=1)
        with pytest.raises(ValueError):
            STZConfig(interp="spline")
        with pytest.raises(ValueError):
            STZConfig(residual_codec="lz4")
        with pytest.raises(ValueError):
            STZConfig(eb_ratio=0.5)
        with pytest.raises(ValueError):
            STZConfig(zlib_level=11)

    def test_with_override(self):
        cfg = STZConfig().with_(levels=2)
        assert cfg.levels == 2 and cfg.interp == "cubic"


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3])
    def test_error_bound_3d(self, smooth3d_f32, eb):
        blob = stz_compress(smooth3d_f32, eb)
        rec = stz_decompress(blob)
        assert rec.shape == smooth3d_f32.shape
        assert rec.dtype == smooth3d_f32.dtype
        assert max_err(rec, smooth3d_f32) <= eb

    def test_error_bound_f64(self, smooth3d_f64):
        blob = stz_compress(smooth3d_f64, 1e-7)
        assert max_err(stz_decompress(blob), smooth3d_f64) <= 1e-7

    @pytest.mark.parametrize(
        "shape",
        [(64,), (37, 53), (21, 34, 17), (9, 9, 9), (8, 8), (65, 65, 65)],
    )
    def test_odd_shapes(self, shape):
        data = smooth_field(shape, seed=11).astype(np.float32)
        rec = stz_decompress(stz_compress(data, 1e-2))
        assert max_err(rec, data) <= 1e-2

    def test_relative_bound(self, smooth3d_f32):
        blob = stz_compress(smooth3d_f32, 1e-3, eb_mode="rel")
        rng_v = float(smooth3d_f32.max() - smooth3d_f32.min())
        assert max_err(stz_decompress(blob), smooth3d_f32) <= 1e-3 * rng_v

    @pytest.mark.parametrize("levels", [2, 3, 4])
    def test_level_counts(self, levels, smooth3d_f32):
        cfg = STZConfig(levels=levels)
        blob = stz_compress(smooth3d_f32, 1e-3, config=cfg)
        assert max_err(stz_decompress(blob), smooth3d_f32) <= 1e-3

    @pytest.mark.parametrize("interp", ["direct", "linear", "cubic"])
    def test_interp_kinds(self, interp, smooth3d_f32):
        cfg = STZConfig(interp=interp)
        blob = stz_compress(smooth3d_f32, 1e-3, config=cfg)
        assert max_err(stz_decompress(blob), smooth3d_f32) <= 1e-3

    def test_tensor_mode(self, smooth3d_f32):
        cfg = STZConfig(cubic_mode="tensor")
        blob = stz_compress(smooth3d_f32, 1e-3, config=cfg)
        assert max_err(stz_decompress(blob), smooth3d_f32) <= 1e-3

    def test_constant_field_tiny_output(self):
        data = np.full((32, 32, 32), 2.5, np.float32)
        blob = stz_compress(data, 1e-4)
        assert np.array_equal(stz_decompress(blob), data)
        assert len(blob) < data.nbytes / 50

    def test_rejects_bad_inputs(self, smooth2d_f32):
        with pytest.raises(ValueError):
            stz_compress(smooth2d_f32, 0.0)
        with pytest.raises(TypeError):
            stz_compress(smooth2d_f32.astype(np.int64), 1e-3)
        with pytest.raises(ValueError):
            stz_decompress(b"XXXX" + bytes(100))

    @given(
        st.integers(0, 2**31),
        st.sampled_from([1e-2, 1e-3]),
        st.lists(st.integers(4, 14), min_size=2, max_size=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_bound_property(self, seed, eb, dims):
        data = (
            np.random.default_rng(seed)
            .normal(size=tuple(dims))
            .astype(np.float32)
        )
        rec = stz_decompress(stz_compress(data, eb))
        assert max_err(rec, data) <= eb


class TestProgressiveLevels:
    def test_shapes_per_level(self, smooth3d_f32):
        blob = stz_compress(smooth3d_f32, 1e-3)
        for lvl, stride in ((1, 4), (2, 2), (3, 1)):
            out = stz_decompress(blob, level=lvl)
            assert out.shape == lattice_shape(smooth3d_f32.shape, stride)
            assert out.shape == level_output_shape(
                smooth3d_f32.shape, 3, lvl
            )

    def test_coarse_levels_approximate_decimation(self, smooth3d_f32):
        blob = stz_compress(smooth3d_f32, 1e-3)
        cfg = STZConfig()
        for lvl, stride in ((1, 4), (2, 2)):
            out = stz_decompress(blob, level=lvl)
            dec = smooth3d_f32[::stride, ::stride, ::stride]
            assert max_err(out, dec) <= cfg.level_eb(1e-3, lvl)

    def test_full_equals_max_level(self, smooth3d_f32):
        blob = stz_compress(smooth3d_f32, 1e-3)
        assert np.array_equal(
            stz_decompress(blob), stz_decompress(blob, level=3)
        )

    def test_level_validation(self, smooth3d_f32):
        blob = stz_compress(smooth3d_f32, 1e-3)
        with pytest.raises(ValueError):
            stz_decompress(blob, level=0)
        with pytest.raises(ValueError):
            stz_decompress(blob, level=4)

    def test_adaptive_makes_coarse_levels_cleaner(self, smooth3d_f32):
        eb = 1e-2
        blob = stz_compress(smooth3d_f32, eb)
        coarse = stz_decompress(blob, level=1)
        dec = smooth3d_f32[::4, ::4, ::4]
        # coarsest level carries eb/6.25, so it must be much cleaner
        assert max_err(coarse, dec) <= eb / 2.5**2


class TestStageTimer:
    def test_stages_recorded(self, smooth3d_f32):
        blob = stz_compress(smooth3d_f32, 1e-3)
        t = StageTimer()
        stz_decompress(blob, timer=t)
        for name in (
            "l1_sz3",
            "l2_decode",
            "l2_predict",
            "l2_reassemble",
            "l3_decode",
            "l3_predict",
            "l3_reassemble",
        ):
            assert name in t.stages and t.stages[name] >= 0
        assert t.total > 0


class TestAblationVariants:
    @pytest.mark.parametrize("name", sorted(ABLATION_CONFIGS))
    def test_bound_holds_for_every_variant(self, name, smooth3d_f32):
        cfg = ABLATION_CONFIGS[name]
        blob = stz_compress(smooth3d_f32, 1e-3, config=cfg)
        rec = stz_decompress(blob)
        assert max_err(rec, smooth3d_f32) <= 1e-3 + 1e-12, name

    def test_partition_only_roundtrip_progressive(self, smooth3d_f32):
        cfg = ABLATION_CONFIGS["partition"]
        blob = stz_compress(smooth3d_f32, 1e-3, config=cfg)
        coarse = stz_decompress(blob, level=1)
        assert coarse.shape == lattice_shape(smooth3d_f32.shape, 2)
