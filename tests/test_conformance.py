"""Cross-codec error-bound conformance suite (``pytest -m conformance``).

Every codec in :data:`helpers.BOUNDED_CODECS` claims the same contract:
for any supported input and any positive absolute bound, every
reconstructed point is within the bound.  This suite sweeps
dtype x eb x shape — cubes, strongly non-cubic boxes, size-1 dims,
1D/2D/4D, plus value-scale edges (huge, tiny, offset, constant) — and
asserts the contract point-wise through the one shared
``assert_error_bounded`` definition.  The streaming subsystem rides the
same sweep via ``compress_stream`` so temporal-delta frames obey the
identical contract.
"""

import numpy as np
import pytest

from conftest import conformance_field, smooth_field
from helpers import BOUNDED_CODECS, assert_error_bounded
from repro.core.api import compress_stream, iter_decompress

pytestmark = pytest.mark.conformance

CODEC_IDS = sorted(BOUNDED_CODECS)

#: shape sweep: cube, ragged primes, size-1 leading/trailing dims,
#: 1D, 2D, tiny, 4D (STZ-only sweep covers it separately below)
SHAPES = [
    (16, 16, 16),
    (5, 7, 11),
    (1, 16, 16),
    (16, 1, 1),
    (33,),
    (9, 31),
    (2, 2, 2),
]

DTYPES = [np.float32, np.float64]
EBS = [1e-2, 1e-4]


def field_for(shape, dtype, variant="unit"):
    # one cached, read-only array per (shape, dtype, variant) — shared
    # with the selector tests instead of regenerated per sweep row
    return conformance_field(shape, np.dtype(dtype).name, variant)


@pytest.mark.parametrize("codec", CODEC_IDS)
@pytest.mark.parametrize("shape", SHAPES, ids=[str(s) for s in SHAPES])
@pytest.mark.parametrize("dtype", DTYPES, ids=["f32", "f64"])
@pytest.mark.parametrize("eb", EBS)
def test_hard_bound_shape_sweep(codec, shape, dtype, eb):
    compress, decompress = BOUNDED_CODECS[codec]
    data = field_for(shape, dtype)
    # scale the absolute bound to the field's range so both eb values
    # exercise real quantization (not a degenerate everything-outlier
    # or everything-zero regime)
    abs_eb = eb * float(data.max() - data.min())
    recon = decompress(compress(data, abs_eb))
    assert recon.dtype == data.dtype
    assert_error_bounded(data, recon, abs_eb, context=f"{codec} {shape}")


@pytest.mark.parametrize("codec", CODEC_IDS)
@pytest.mark.parametrize(
    "variant", ["large", "tiny", "shifted", "constant"]
)
@pytest.mark.parametrize("dtype", DTYPES, ids=["f32", "f64"])
def test_hard_bound_value_edges(codec, variant, dtype):
    """NaN-free edge values: magnitudes far from O(1), constant data."""
    compress, decompress = BOUNDED_CODECS[codec]
    data = field_for((16, 16, 16), dtype, variant)
    vrange = float(data.max() - data.min())
    abs_eb = 1e-3 * vrange if vrange else 1e-3
    recon = decompress(compress(data, abs_eb))
    assert_error_bounded(
        data, recon, abs_eb, context=f"{codec} {variant}"
    )


@pytest.mark.parametrize("shape", [(4, 4, 4, 4), (3, 8, 2, 5)])
def test_stz_four_dimensional(shape):
    compress, decompress = BOUNDED_CODECS["stz"]
    data = field_for(shape, np.float32)
    abs_eb = 1e-3 * float(data.max() - data.min())
    recon = decompress(compress(data, abs_eb))
    assert_error_bounded(data, recon, abs_eb, context=f"stz {shape}")


@pytest.mark.parametrize("shape", [(12, 10, 8), (1, 9, 9), (17,)])
@pytest.mark.parametrize("dtype", DTYPES, ids=["f32", "f64"])
def test_streaming_rides_the_same_contract(shape, dtype):
    base = field_for(shape, dtype)
    steps = [
        base + dtype(0.05) * smooth_field(shape, seed=40 + t).astype(dtype)
        for t in range(4)
    ]
    abs_eb = 1e-3 * float(steps[0].max() - steps[0].min())
    blob = compress_stream(steps, abs_eb, keyframe_interval=2)
    for t, rec in enumerate(iter_decompress(blob)):
        assert_error_bounded(
            steps[t], rec, abs_eb, context=f"stream {shape} step {t}"
        )
