"""ZFP-like codec tests (block transform, negabinary, accuracy mode)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import max_err, smooth_field
from repro.zfp import ZFPCompressor, zfp_compress, zfp_decompress
from repro.zfp.transform import (
    fwd_lift,
    from_negabinary,
    inv_lift,
    sequency_order,
    to_negabinary,
)

#: empirical safety factor of the accuracy mode (tolerance is advisory,
#: as in real zfp; DESIGN.md documents the deviation)
TOL_FACTOR = 6.0


class TestTransform:
    def test_lift_roundtrip_low_bit_loss_only(self, rng):
        v = rng.integers(-(2**40), 2**40, (200, 4)).astype(np.int64)
        w = v.copy()
        fwd_lift(w, 1)
        inv_lift(w, 1)
        assert np.abs(w - v).max() <= 4  # lifting rounds low bits only

    def test_constant_block_decorrelates_to_dc(self):
        w = np.full((1, 4), 1024, dtype=np.int64)
        fwd_lift(w, 1)
        assert w[0, 0] == 1024  # DC passes through
        assert np.all(w[0, 1:] == 0)  # no AC energy

    def test_negabinary_roundtrip(self, rng):
        v = rng.integers(-(2**50), 2**50, 1000).astype(np.int64)
        assert np.array_equal(from_negabinary(to_negabinary(v)), v)

    def test_negabinary_small_magnitudes_small_codes(self):
        u = to_negabinary(np.array([0, 1, -1, 2, -2], dtype=np.int64))
        assert u[0] == 0
        assert np.all(u < 8)

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_sequency_order_is_permutation(self, ndim):
        p = sequency_order(ndim)
        assert sorted(p) == list(range(4**ndim))
        assert p[0] == 0  # DC first


class TestRoundtrip:
    @pytest.mark.parametrize("tol", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_accuracy_mode_3d(self, smooth3d_f32, tol):
        blob = zfp_compress(smooth3d_f32, tol)
        rec = zfp_decompress(blob)
        assert rec.shape == smooth3d_f32.shape
        assert rec.dtype == smooth3d_f32.dtype
        assert max_err(rec, smooth3d_f32) <= TOL_FACTOR * tol

    @pytest.mark.parametrize(
        "shape", [(100,), (37, 53), (21, 34, 17), (4, 4, 4), (3, 3)]
    )
    def test_odd_shapes(self, shape):
        data = smooth_field(shape, seed=40).astype(np.float64)
        rec = zfp_decompress(zfp_compress(data, 1e-3))
        assert rec.shape == data.shape
        assert max_err(rec, data) <= TOL_FACTOR * 1e-3

    def test_relative_tolerance(self, smooth3d_f32):
        blob = zfp_compress(smooth3d_f32, 1e-3, eb_mode="rel")
        rng_v = float(smooth3d_f32.max() - smooth3d_f32.min())
        assert max_err(zfp_decompress(blob), smooth3d_f32) <= (
            TOL_FACTOR * 1e-3 * rng_v
        )

    def test_zero_field(self):
        data = np.zeros((16, 16), np.float32)
        blob = zfp_compress(data, 1e-3)
        assert np.array_equal(zfp_decompress(blob), data)
        assert len(blob) < 600

    def test_f64_tight_tolerance(self, smooth3d_f64):
        blob = zfp_compress(smooth3d_f64, 1e-9)
        assert max_err(zfp_decompress(blob), smooth3d_f64) <= 6e-9

    def test_certified_bound_is_hard(self, smooth3d_f32):
        blob = zfp_compress(smooth3d_f32, 1e-3)
        assert max_err(zfp_decompress(blob), smooth3d_f32) <= 1e-3

    def test_advisory_mode_writes_v1_and_roundtrips(self, smooth3d_f32):
        # certify=False reproduces the pre-correction container: version
        # 1, no outlier section, tolerance advisory within TOL_FACTOR
        blob = zfp_compress(smooth3d_f32, 1e-3, certify=False)
        assert blob[blob.index(b"ZFPr") + 4] == 1  # version byte
        rec = zfp_decompress(blob)
        assert max_err(rec, smooth3d_f32) <= TOL_FACTOR * 1e-3
        assert len(blob) < len(zfp_compress(smooth3d_f32, 1e-3))

    def test_cr_grows_with_tolerance(self, smooth3d_f32):
        sizes = [
            len(zfp_compress(smooth3d_f32, t)) for t in (1e-4, 1e-3, 1e-2)
        ]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_fastest_codec_shape(self, smooth3d_f32):
        # structural claim from Table 3: ZFP-like must not be slower
        # than SPERR-like (the slowest); generous margin, no flakiness
        import time

        from repro.sperr import sperr_compress

        t0 = time.perf_counter()
        zfp_compress(smooth3d_f32, 1e-3)
        t_zfp = time.perf_counter() - t0
        t0 = time.perf_counter()
        sperr_compress(smooth3d_f32, 1e-3)
        t_sperr = time.perf_counter() - t0
        assert t_zfp < t_sperr * 1.5

    def test_rejects_bad_input(self, smooth2d_f32):
        with pytest.raises(ValueError):
            zfp_compress(np.zeros((2, 2, 2, 2, 2), np.float32), 1e-3)
        with pytest.raises(ValueError):
            zfp_decompress(b"nope" + bytes(64))

    @given(
        st.integers(0, 2**31),
        st.lists(st.integers(2, 12), min_size=1, max_size=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_tolerance_property(self, seed, dims):
        data = (
            np.random.default_rng(seed)
            .normal(size=tuple(dims))
            .astype(np.float32)
        )
        rec = zfp_decompress(zfp_compress(data, 1e-2))
        assert max_err(rec, data) <= TOL_FACTOR * 1e-2


class TestObjectAPI:
    def test_capabilities(self):
        c = ZFPCompressor(1e-3)
        assert c.supports_random_access
        assert not c.supports_progressive
