"""Synthetic dataset generators: determinism, morphology, registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    dataset_names,
    gaussian_random_field,
    load,
    magnetic_reconnection,
    miranda_density,
    nyx_baryon_density,
    table2_rows,
    warpx_field,
)
from repro.datasets.nyx import HALO_THRESHOLD
from repro.datasets.synthetic import smooth_noise


class TestGRF:
    def test_determinism(self):
        a = gaussian_random_field((32, 32), seed=5)
        b = gaussian_random_field((32, 32), seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_field(self):
        a = gaussian_random_field((32, 32), seed=5)
        b = gaussian_random_field((32, 32), seed=6)
        assert not np.array_equal(a, b)

    def test_normalization(self):
        f = gaussian_random_field((64, 64), gamma=3.0, seed=1)
        assert f.std() == pytest.approx(1.0, rel=1e-6)

    def test_gamma_controls_smoothness(self):
        # smoother fields have smaller lag-1 differences
        rough = gaussian_random_field((128,), gamma=0.5, seed=2)
        smooth = gaussian_random_field((128,), gamma=4.0, seed=2)
        assert np.abs(np.diff(smooth)).mean() < np.abs(np.diff(rough)).mean()

    def test_rejects_tiny_axes(self):
        with pytest.raises(ValueError):
            gaussian_random_field((1, 8))

    def test_smooth_noise_band_limit(self):
        f = smooth_noise((256,), cutoff=0.05, seed=3)
        spec = np.abs(np.fft.rfft(f))
        hi = spec[int(0.3 * spec.size) :].sum()
        assert hi < 0.05 * spec.sum()


class TestGenerators:
    def test_nyx_morphology(self):
        d = nyx_baryon_density((48, 48, 48), seed=0)
        assert d.dtype == np.float32
        assert d.min() > 0  # density is positive
        assert d.mean() == pytest.approx(1.0, rel=0.05)
        halo_frac = float((d > HALO_THRESHOLD).mean())
        assert 0 < halo_frac < 0.01  # rare halos, like Figure 10

    def test_warpx_morphology(self):
        d = warpx_field((16, 16, 128), seed=0)
        assert d.dtype == np.float64
        # packet is localized: energy concentrated around 40% of z
        prof = (d**2).sum(axis=(0, 1))
        assert prof[40:64].sum() > 0.5 * prof.sum()

    def test_warpx_requires_3d(self):
        with pytest.raises(ValueError):
            warpx_field((16, 16))

    def test_miranda_morphology(self):
        d = miranda_density((32, 32, 32), seed=0)
        assert d.dtype == np.float32
        # two phases around 1 and 3
        assert abs(float(d[..., 0].mean()) - 1.0) < 0.3
        assert abs(float(d[..., -1].mean()) - 3.0) < 0.3

    def test_miranda_is_highly_compressible(self):
        from repro.sz3 import sz3_compress

        d = miranda_density((48, 48, 48), seed=0)
        cr = d.nbytes / len(sz3_compress(d, 1e-2, "rel"))
        assert cr > 20  # the smooth two-phase field compresses hard

    def test_magrec_morphology(self):
        d = magnetic_reconnection((32, 32, 32), seed=0)
        assert d.dtype == np.float32
        # two sheets of opposite sign
        quarter = d[:, 8, :].mean()
        three_q = d[:, 24, :].mean()
        assert quarter > 0 > three_q

    def test_magrec_has_high_frequency_content(self):
        d = magnetic_reconnection((64, 64, 64), seed=0).astype(np.float64)
        spec = np.abs(np.fft.rfft(d[:, 32, 32]))
        assert spec[8:].sum() > 0.05 * spec.sum()


class TestRegistry:
    def test_names(self):
        assert set(dataset_names()) == {"nyx", "warpx", "magrec", "miranda"}

    def test_load_defaults(self):
        for name in dataset_names():
            d = load(name)
            assert d.dtype == np.dtype(DATASETS[name].dtype)
            assert d.shape == DATASETS[name].bench_dims

    def test_load_custom_shape(self):
        d = load("nyx", shape=(16, 16, 16))
        assert d.shape == (16, 16, 16)

    def test_load_scale(self):
        d = load("nyx", scale=1)
        assert d.shape == (64, 64, 64)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("enzo")

    def test_table2_rows_complete(self):
        rows = table2_rows()
        assert len(rows) == 4
        for row in rows:
            assert set(row) == {
                "dataset",
                "type",
                "paper_dims",
                "paper_size",
                "our_dims",
                "our_size_mb",
                "domain",
            }
        # the paper's dims are preserved verbatim
        dims = {r["dataset"]: r["paper_dims"] for r in rows}
        assert dims["Nyx"] == "512x512x512"
        assert dims["WarpX"] == "256x256x2048"
        assert dims["Miranda"] == "1024x1024x1024"
