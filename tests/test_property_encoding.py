"""Property-based tests for the encoding substrates.

Two layers, per the harness policy: seeded-random parametrized sweeps
always run (no extra dependency), and hypothesis drives the same
properties through adversarial search when it is installed.

Properties:

* ``quantize``/``dequantize`` round-trip: the decoder reproduces the
  encoder's tracked reconstruction bit-for-bit, the hard bound holds on
  finite points, non-finite points are stored exactly, and codes stay
  inside the alphabet.
* ``quantize_many`` segment identity: fusing blocks is an execution
  strategy, never a result change.
* ``huffman_encode_many`` segment identity vs per-block
  ``huffman_encode``, and decode round-trips.
"""

import numpy as np
import pytest

from helpers import assert_error_bounded
from repro.encoding.huffman import (
    huffman_decode,
    huffman_encode,
    huffman_encode_many,
)
from repro.encoding.quantizer import (
    DEFAULT_RADIUS,
    dequantize,
    quantize,
    quantize_many,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    from hypothesis.extra import numpy as hnp

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the image bakes hypothesis in
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


# ---------------------------------------------------------------------------
# shared property checks
# ---------------------------------------------------------------------------

def check_quantizer_roundtrip(values, pred, eb, radius, f32):
    qb = quantize(values, pred, eb, radius, f32)
    # codes stay inside the alphabet (0 = outlier marker)
    if qb.codes.size:
        assert int(qb.codes.max()) < 2 * radius
    # the decoder's output is the encoder's tracked recon, bit for bit
    recon = dequantize(
        qb.codes, pred, eb, qb.outlier_pos, qb.outlier_val, radius, f32
    )
    assert recon.tobytes() == qb.recon.reshape(-1).tobytes()
    # hard bound on finite points, exact storage of non-finite ones
    assert_error_bounded(values, recon.reshape(values.shape), eb)


def check_quantize_many_identity(blocks, preds, eb, radius, f32):
    fused = quantize_many(blocks, preds, eb, radius, f32)
    for qb, block, pred in zip(fused, blocks, preds):
        solo = quantize(block, pred, eb, radius, f32)
        assert np.array_equal(qb.codes, solo.codes)
        assert np.array_equal(qb.outlier_pos, solo.outlier_pos)
        assert qb.outlier_val.tobytes() == solo.outlier_val.tobytes()
        assert qb.recon.tobytes() == solo.recon.reshape(-1).tobytes()


def check_huffman_many_identity(streams):
    fused = huffman_encode_many(streams)
    assert len(fused) == len(streams)
    for blob, stream in zip(fused, streams):
        assert bytes(blob) == huffman_encode(stream)
        assert np.array_equal(huffman_decode(blob), stream)


# ---------------------------------------------------------------------------
# seeded-random sweeps (always run)
# ---------------------------------------------------------------------------

def _random_pair(rng, dtype, n, scale):
    values = (scale * rng.standard_normal(n)).astype(dtype)
    pred = values + (0.1 * scale * rng.standard_normal(n)).astype(dtype)
    return values, pred.astype(dtype)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["f32", "f64"])
@pytest.mark.parametrize("f32", [False, True], ids=["f64path", "f32path"])
def test_quantizer_roundtrip_seeded(seed, dtype, f32):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 400))
    scale = float(10.0 ** rng.integers(-4, 5))
    values, pred = _random_pair(rng, dtype, n, scale)
    if n >= 4:  # sprinkle non-finite and far-outlier points
        values[rng.integers(0, n)] = np.nan
        values[rng.integers(0, n)] = np.inf
        values[rng.integers(0, n)] = dtype(50 * scale)
    eb = float(scale * 10.0 ** rng.integers(-5, 0))
    radius = int(rng.choice([4, 128, DEFAULT_RADIUS]))
    check_quantizer_roundtrip(
        values.reshape(values.shape), pred, eb, radius, f32
    )


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("f32", [False, True], ids=["f64path", "f32path"])
def test_quantize_many_identity_seeded(seed, f32):
    rng = np.random.default_rng(100 + seed)
    dtype = np.float32 if seed % 2 else np.float64
    nblocks = int(rng.integers(1, 6))
    blocks, preds = [], []
    for _ in range(nblocks):
        v, p = _random_pair(rng, dtype, int(rng.integers(0, 200)), 1.0)
        blocks.append(v)
        preds.append(p)
    check_quantize_many_identity(blocks, preds, 1e-3, DEFAULT_RADIUS, f32)


@pytest.mark.parametrize("seed", range(6))
def test_huffman_many_identity_seeded(seed):
    rng = np.random.default_rng(200 + seed)
    streams = []
    for _ in range(int(rng.integers(1, 6))):
        n = int(rng.integers(0, 3000))
        alphabet = int(rng.choice([1, 2, 40, 5000, 40000]))
        streams.append(
            rng.integers(0, alphabet, size=n).astype(np.uint32)
        )
    check_huffman_many_identity(streams)


def test_quantizer_rejects_nonpositive_eb():
    v = np.zeros(4, dtype=np.float32)
    with pytest.raises(ValueError):
        quantize(v, v, 0.0)
    with pytest.raises(ValueError):
        quantize_many([v], [v], -1.0)


# ---------------------------------------------------------------------------
# hypothesis-driven search (when installed)
# ---------------------------------------------------------------------------

if HAVE_HYPOTHESIS:
    # bounded magnitudes plus explicit specials (this hypothesis
    # version disallows allow_nan together with min/max bounds)
    _floats32 = st.one_of(
        st.floats(min_value=-1e6, max_value=1e6, width=32),
        st.sampled_from([float("nan"), float("inf"), float("-inf")]),
    )
    _floats64 = st.one_of(
        st.floats(min_value=-1e12, max_value=1e12),
        st.sampled_from([float("nan"), float("inf"), float("-inf")]),
    )

    def _pair(draw, dtype, max_n=120):
        n = draw(st.integers(0, max_n))
        elems = _floats32 if dtype == np.float32 else _floats64
        values = draw(hnp.arrays(dtype, n, elements=elems))
        pred = draw(
            hnp.arrays(
                dtype,
                n,
                elements=st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    width=32 if dtype == np.float32 else 64,
                ),
            )
        )
        return values, pred

    @needs_hypothesis
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_quantizer_roundtrip_hypothesis(data):
        dtype = data.draw(st.sampled_from([np.float32, np.float64]))
        values, pred = _pair(data.draw, dtype)
        eb = data.draw(
            st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)
        )
        radius = data.draw(st.sampled_from([4, 128, DEFAULT_RADIUS]))
        f32 = data.draw(st.booleans())
        check_quantizer_roundtrip(values, pred, eb, radius, f32)

    @needs_hypothesis
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_quantize_many_identity_hypothesis(data):
        dtype = data.draw(st.sampled_from([np.float32, np.float64]))
        nblocks = data.draw(st.integers(1, 5))
        blocks, preds = [], []
        for _ in range(nblocks):
            v, p = _pair(data.draw, dtype, max_n=80)
            blocks.append(v)
            preds.append(p)
        eb = data.draw(
            st.floats(min_value=1e-6, max_value=1e2, allow_nan=False)
        )
        f32 = data.draw(st.booleans())
        check_quantize_many_identity(blocks, preds, eb, DEFAULT_RADIUS, f32)

    @needs_hypothesis
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 1500), st.integers(1, 40000)),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 2**32 - 1),
    )
    def test_huffman_many_identity_hypothesis(sizes, seed):
        rng = np.random.default_rng(seed)
        streams = [
            rng.integers(0, alphabet, size=n).astype(np.uint32)
            for n, alphabet in sizes
        ]
        check_huffman_many_identity(streams)
