"""CLI end-to-end tests."""

import numpy as np
import pytest

from conftest import max_err, smooth_field
from repro.cli import main


@pytest.fixture
def field(tmp_path):
    data = smooth_field((24, 24, 24), seed=77).astype(np.float32)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return data, path


class TestCLI:
    def test_compress_decompress(self, field, tmp_path, capsys):
        data, npy = field
        stz = tmp_path / "f.stz"
        out = tmp_path / "out.npy"
        assert main(["compress", str(npy), str(stz), "--eb", "1e-3"]) == 0
        assert "CR" in capsys.readouterr().out
        assert main(["decompress", str(stz), str(out)]) == 0
        rec = np.load(out)
        vr = float(data.max() - data.min())
        assert max_err(rec, data) <= 1e-3 * vr

    def test_progressive_level(self, field, tmp_path):
        data, npy = field
        stz = tmp_path / "f.stz"
        out = tmp_path / "coarse.npy"
        main(["compress", str(npy), str(stz), "--eb", "1e-2"])
        main(["decompress", str(stz), str(out), "--level", "1"])
        assert np.load(out).shape == (6, 6, 6)

    def test_roi_box(self, field, tmp_path):
        data, npy = field
        stz = tmp_path / "f.stz"
        out = tmp_path / "roi.npy"
        main(["compress", str(npy), str(stz), "--eb", "1e-3"])
        main(["roi", str(stz), str(out), "--box", "5:15,:,12"])
        assert np.load(out).shape == (10, 24, 1)

    def test_info(self, field, tmp_path, capsys):
        data, npy = field
        stz = tmp_path / "f.stz"
        main(["compress", str(npy), str(stz), "--eb", "1e-3"])
        assert main(["info", str(stz)]) == 0
        out = capsys.readouterr().out
        assert "24x24x24" in out
        assert "l1-sz3" in out
        assert "residual-quant" in out

    def test_raw_binary_io(self, tmp_path):
        data = smooth_field((16, 16), seed=78).astype(np.float64)
        raw = tmp_path / "field.bin"
        data.tofile(raw)
        stz = tmp_path / "f.stz"
        out = tmp_path / "out.bin"
        main([
            "compress", str(raw), str(stz), "--eb", "1e-4", "--mode", "abs",
            "--shape", "16,16", "--dtype", "float64",
        ])
        main(["decompress", str(stz), str(out)])
        rec = np.fromfile(out, dtype=np.float64).reshape(16, 16)
        assert max_err(rec, data) <= 1e-4

    def test_raw_needs_shape(self, tmp_path):
        raw = tmp_path / "x.bin"
        raw.write_bytes(bytes(64))
        with pytest.raises(SystemExit):
            main(["compress", str(raw), str(tmp_path / "o"), "--eb", "1"])

    def test_bad_box_rank(self, field, tmp_path):
        _, npy = field
        stz = tmp_path / "f.stz"
        main(["compress", str(npy), str(stz), "--eb", "1e-3"])
        with pytest.raises(SystemExit):
            main(["roi", str(stz), str(tmp_path / "o.npy"), "--box", "1:2"])

    def test_compress_options(self, field, tmp_path):
        _, npy = field
        for extra in (["--levels", "2"], ["--interp", "linear"],
                      ["--threads", "2"]):
            stz = tmp_path / "f.stz"
            assert main(
                ["compress", str(npy), str(stz), "--eb", "1e-3", *extra]
            ) == 0


class TestCLIStream:
    @pytest.fixture
    def sequence(self, tmp_path):
        steps = smooth_field((5, 16, 16, 16), seed=91).astype(np.float32)
        path = tmp_path / "run.npy"
        np.save(path, steps)
        return steps, path

    def test_stream_one_file_per_step(self, sequence, tmp_path, capsys):
        steps, _ = sequence
        paths = []
        for t, step in enumerate(steps):
            p = tmp_path / f"t{t}.npy"
            np.save(p, step)
            paths.append(str(p))
        out = tmp_path / "steps.stz"
        assert main(["stream", str(out), *paths, "--eb", "1e-3"]) == 0
        assert "5 steps" in capsys.readouterr().out

    def test_stream_time_axis_roundtrip(self, sequence, tmp_path, capsys):
        steps, npy = sequence
        arch = tmp_path / "steps.stz"
        assert main([
            "stream", str(arch), str(npy), "--eb", "1e-3",
            "--time-axis", "0", "--keyframe-interval", "2",
        ]) == 0
        assert main(["info", str(arch)]) == 0
        assert "multi-frame" in capsys.readouterr().out
        # all steps, stacked
        allout = tmp_path / "all.npy"
        assert main(["decompress", str(arch), str(allout)]) == 0
        rec = np.load(allout)
        assert rec.shape == steps.shape
        vr = float(steps[0].max() - steps[0].min())
        assert max_err(rec, steps) <= 1e-3 * vr
        # one frame by random access
        one = tmp_path / "one.npy"
        assert main(["decompress", str(arch), str(one), "--frame", "3"]) == 0
        assert np.array_equal(np.load(one), rec[3])

    def test_frame_flag_rejected_for_single_archives(self, field, tmp_path):
        _, npy = field
        stz = tmp_path / "f.stz"
        main(["compress", str(npy), str(stz), "--eb", "1e-3"])
        with pytest.raises(SystemExit):
            main(["decompress", str(stz), str(tmp_path / "o.npy"),
                  "--frame", "0"])

    def test_stream_bad_time_axis(self, sequence, tmp_path):
        _, npy = sequence
        with pytest.raises(SystemExit):
            main(["stream", str(tmp_path / "s.stz"), str(npy),
                  "--eb", "1e-3", "--time-axis", "7"])

    def test_level_flag_rejected_for_multiframe(self, sequence, tmp_path):
        _, npy = sequence
        arch = tmp_path / "s.stz"
        main(["stream", str(arch), str(npy), "--eb", "1e-3",
              "--time-axis", "0"])
        with pytest.raises(SystemExit, match="single-frame"):
            main(["decompress", str(arch), str(tmp_path / "o.npy"),
                  "--level", "1"])

    def test_stream_empty_input_cleans_up(self, tmp_path):
        np.save(tmp_path / "empty.npy", np.zeros((0, 8, 8), np.float32))
        out = tmp_path / "s.stz"
        with pytest.raises(SystemExit, match="no time steps"):
            main(["stream", str(out), str(tmp_path / "empty.npy"),
                  "--eb", "1e-3", "--time-axis", "0"])
        assert not out.exists()
