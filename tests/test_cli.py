"""CLI end-to-end tests."""

import numpy as np
import pytest

from conftest import max_err, smooth_field
from repro.cli import main


@pytest.fixture
def field(tmp_path):
    data = smooth_field((24, 24, 24), seed=77).astype(np.float32)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return data, path


class TestCLI:
    def test_compress_decompress(self, field, tmp_path, capsys):
        data, npy = field
        stz = tmp_path / "f.stz"
        out = tmp_path / "out.npy"
        assert main(["compress", str(npy), str(stz), "--eb", "1e-3"]) == 0
        assert "CR" in capsys.readouterr().out
        assert main(["decompress", str(stz), str(out)]) == 0
        rec = np.load(out)
        vr = float(data.max() - data.min())
        assert max_err(rec, data) <= 1e-3 * vr

    def test_progressive_level(self, field, tmp_path):
        data, npy = field
        stz = tmp_path / "f.stz"
        out = tmp_path / "coarse.npy"
        main(["compress", str(npy), str(stz), "--eb", "1e-2"])
        main(["decompress", str(stz), str(out), "--level", "1"])
        assert np.load(out).shape == (6, 6, 6)

    def test_roi_box(self, field, tmp_path):
        data, npy = field
        stz = tmp_path / "f.stz"
        out = tmp_path / "roi.npy"
        main(["compress", str(npy), str(stz), "--eb", "1e-3"])
        main(["roi", str(stz), str(out), "--box", "5:15,:,12"])
        assert np.load(out).shape == (10, 24, 1)

    def test_info(self, field, tmp_path, capsys):
        data, npy = field
        stz = tmp_path / "f.stz"
        main(["compress", str(npy), str(stz), "--eb", "1e-3"])
        assert main(["info", str(stz)]) == 0
        out = capsys.readouterr().out
        assert "24x24x24" in out
        assert "l1-sz3" in out
        assert "residual-quant" in out

    def test_raw_binary_io(self, tmp_path):
        data = smooth_field((16, 16), seed=78).astype(np.float64)
        raw = tmp_path / "field.bin"
        data.tofile(raw)
        stz = tmp_path / "f.stz"
        out = tmp_path / "out.bin"
        main([
            "compress", str(raw), str(stz), "--eb", "1e-4", "--mode", "abs",
            "--shape", "16,16", "--dtype", "float64",
        ])
        main(["decompress", str(stz), str(out)])
        rec = np.fromfile(out, dtype=np.float64).reshape(16, 16)
        assert max_err(rec, data) <= 1e-4

    def test_raw_needs_shape(self, tmp_path):
        raw = tmp_path / "x.bin"
        raw.write_bytes(bytes(64))
        with pytest.raises(SystemExit):
            main(["compress", str(raw), str(tmp_path / "o"), "--eb", "1"])

    def test_bad_box_rank(self, field, tmp_path):
        _, npy = field
        stz = tmp_path / "f.stz"
        main(["compress", str(npy), str(stz), "--eb", "1e-3"])
        with pytest.raises(SystemExit):
            main(["roi", str(stz), str(tmp_path / "o.npy"), "--box", "1:2"])

    def test_compress_options(self, field, tmp_path):
        _, npy = field
        for extra in (["--levels", "2"], ["--interp", "linear"],
                      ["--threads", "2"]):
            stz = tmp_path / "f.stz"
            assert main(
                ["compress", str(npy), str(stz), "--eb", "1e-3", *extra]
            ) == 0
