"""Chunked execution engine: plan, executors, v3 container, engine.

Four contracts pinned here (DESIGN.md §8):

* **hard bound across chunk seams** — the absolute bound is resolved
  once and enforced independently inside every chunk, so no seam can
  exceed it; the conformance class sweeps every bounded codec (and
  ``auto``) through the chunked path, including chunks that are pure
  NaN/inf edges.
* **byte determinism** — a v3 archive's bytes depend only on (input,
  config), never on the executor: serial, thread and process pools
  produce identical archives (chunk blobs are content-deterministic
  and assembly is plan-ordered).
* **out-of-core O(chunk) memory** — compressing from and decompressing
  into memory-mapped arrays allocates working memory proportional to a
  chunk, not the array (tracemalloc, which sees numpy buffers but not
  mmap pages — exactly the engine's own allocations).
* **format safety** — v1/v2 readers reject v3 archives cleanly, v3
  rejects unknown container/chunk flags and codec ids, and the chunk
  table geometry is validated.
"""

from __future__ import annotations

import io
import tracemalloc

import numpy as np
import pytest

from conftest import smooth_field
from helpers import BOUNDED_CODECS, assert_error_bounded
from repro.core.api import (
    compress_chunked,
    compress_stream,
    decompress,
    decompress_frame,
    decompress_progressive,
    decompress_roi,
    iter_decompress,
)
from repro.core.chunked import (
    compress_chunked_with_recon,
    decompress_chunked,
    decompress_chunked_roi,
)
from repro.core.config import STZConfig
from repro.core.parallel import (
    EXECUTORS,
    WorkerPool,
    _slice_spans,
    effective_threads,
    effective_workers,
    engine_executor,
    execute_map,
    fork_available,
    fork_map,
    parallel_capacity,
    pstarmap,
    resolve_executor,
)
from repro.core.partition import ChunkPlan, normalize_chunk_shape
from repro.core.stream import (
    CODEC_STZ,
    FRAME_SHARDED,
    MultiFrameReader,
    ShardedReader,
    ShardedWriter,
    StreamReader,
    is_sharded,
)
from repro.core.streaming import StreamingDecompressor

#: codecs whose contract includes bit-exact non-finite storage (sperr
#: and mgard predate that support; their chunked rows stay NaN-free)
NONFINITE_CODECS = ("stz", "sz3", "zfp", "szx", "auto")


def field(shape=(40, 36, 28), seed=3, dtype=np.float32):
    return smooth_field(shape, seed=seed).astype(dtype)


# ---------------------------------------------------------------------------
# chunk plan
# ---------------------------------------------------------------------------

class TestChunkPlan:
    def test_grid_and_ragged_edges(self):
        plan = ChunkPlan.regular((40, 36, 28), 16)
        assert plan.chunk_shape == (16, 16, 16)
        assert plan.grid == (3, 3, 2)
        assert plan.nchunks == 18
        # every cell covered exactly once
        hits = np.zeros((40, 36, 28), dtype=np.int32)
        for info in plan:
            assert info.shape == tuple(
                sl.stop - sl.start for sl in info.slices
            )
            hits[info.slices] += 1
        assert (hits == 1).all()

    def test_c_order_and_coords_roundtrip(self):
        plan = ChunkPlan.regular((10, 10), (4, 4))
        origins = [info.origin for info in plan]
        assert origins == [
            (0, 0), (0, 4), (0, 8), (4, 0), (4, 4), (4, 8),
            (8, 0), (8, 4), (8, 8),
        ]
        for i in range(plan.nchunks):
            cc = plan.coords(i)
            flat = 0
            for k, g in zip(cc, plan.grid):
                flat = flat * g + k
            assert flat == i

    def test_single_chunk_plan(self):
        plan = ChunkPlan.regular((7, 5), 64)  # clamped to the array
        assert plan.chunk_shape == (7, 5)
        assert plan.nchunks == 1
        assert plan.chunk(0).slices == (slice(0, 7), slice(0, 5))

    def test_normalize_chunk_shape(self):
        assert normalize_chunk_shape((40, 30), 16) == (16, 16)
        assert normalize_chunk_shape((40, 30), (64, 8)) == (40, 8)
        with pytest.raises(ValueError, match="rank"):
            normalize_chunk_shape((40, 30), (16, 16, 16))
        with pytest.raises(ValueError, match=">= 1"):
            normalize_chunk_shape((40, 30), 0)
        with pytest.raises(ValueError, match="zero-size"):
            normalize_chunk_shape((40, 0), 16)

    def test_intersecting_matches_brute_force(self):
        plan = ChunkPlan.regular((19, 23, 11), (8, 7, 4))
        box = ((3, 17), (6, 21), (0, 5))
        expected = [
            info.index
            for info in plan
            if all(
                lo < o + n and o < hi
                for (lo, hi), o, n in zip(box, info.origin, info.shape)
            )
        ]
        assert plan.intersecting(box) == expected
        with pytest.raises(ValueError, match="out of bounds"):
            plan.intersecting(((0, 25), (0, 1), (0, 1)))

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            ChunkPlan((8, 8), (9, 4))
        with pytest.raises(ValueError, match="rank"):
            ChunkPlan((8, 8), (4,))
        with pytest.raises(IndexError):
            ChunkPlan.regular((8, 8), 4).chunk(4)


# ---------------------------------------------------------------------------
# executor layer
# ---------------------------------------------------------------------------

class TestExecutorLayer:
    def test_resolve_executor_normalization(self):
        assert resolve_executor("serial", 8) == ("serial", 1)
        assert resolve_executor("thread", None) == ("serial", 1)
        assert resolve_executor("thread", 1) == ("serial", 1)
        assert resolve_executor("thread", 3) == ("thread", 3)
        kind, n = resolve_executor("process", 3)
        assert n == 3
        assert kind == ("process" if fork_available() else "thread")
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("mpi", 4)

    def test_worker_resolution_shared_between_facades(self):
        for req in (None, 0, 1, 2, 8, 10_000):
            assert effective_threads(req) == effective_workers(req)
        assert effective_workers(None) == 1
        assert effective_workers(2) == 2

    def test_execute_map_order_preserved_every_executor(self):
        items = list(range(23))

        def fn(state, x):
            return state + x * x

        for kind in EXECUTORS:
            out = execute_map(fn, items, 7, kind, 4)
            assert out == [7 + x * x for x in items], kind

    @pytest.mark.skipif(not fork_available(), reason="no fork")
    def test_fork_map_inherits_state_without_pickling(self):
        # the state is intentionally unpicklable: fork inheritance is
        # the only way it can reach the workers
        state = (lambda x: x * 3, np.arange(10))

        def fn(st, i):
            f, arr = st
            return int(f(arr[i]))

        assert fork_map(fn, list(range(10)), state, 2) == [
            3 * i for i in range(10)
        ]

    def test_pstarmap_accepts_iterables_and_sequences(self):
        def add(a, b):
            return a + b

        assert pstarmap(add, [(1, 2), (3, 4)]) == [3, 7]
        assert pstarmap(add, ((i, i) for i in range(4))) == [0, 2, 4, 6]

    @pytest.mark.skipif(not fork_available(), reason="no fork")
    def test_fork_map_concurrent_callers_do_not_cross_contaminate(self):
        # two threads starting fork pools at once must each run their
        # own (fn, state): the published _FORK_STATE is lock-guarded,
        # and the loser of the race degrades to the inline serial loop
        from concurrent.futures import ThreadPoolExecutor

        def run(tag):
            def fn(state, i):
                return (state, i)

            return fork_map(fn, list(range(8)), tag, 2)

        for _ in range(5):
            with ThreadPoolExecutor(max_workers=2) as pool:
                a, b = pool.map(run, ["A", "B"])
            assert a == [("A", i) for i in range(8)]
            assert b == [("B", i) for i in range(8)]

    def test_parallel_capacity_is_affinity_aware(self, monkeypatch):
        import repro.core.parallel as par

        # a container quota masks the process to 3 of many CPUs: the
        # affinity mask, not the machine count, is the capacity
        monkeypatch.delattr(par.os, "process_cpu_count", raising=False)
        monkeypatch.setattr(
            par.os, "sched_getaffinity", lambda pid: {0, 2, 5},
            raising=False,
        )
        monkeypatch.setattr(par.os, "cpu_count", lambda: 48)
        assert parallel_capacity() == 3
        assert effective_workers(100) == 12  # 4x usable, not 4x machine
        # 3.13+: os.process_cpu_count wins when present
        monkeypatch.setattr(
            par.os, "process_cpu_count", lambda: 2, raising=False
        )
        assert parallel_capacity() == 2

    def test_engine_executor_gates_single_core(self, monkeypatch):
        import repro.core.parallel as par

        monkeypatch.delenv("STZ_FORCE_POOLS", raising=False)
        monkeypatch.setattr(par, "_usable_cpus", lambda: 1)
        # parallel requests degrade to the serial walk on 1 core...
        assert engine_executor("process", 4) == ("serial", 1)
        assert engine_executor("thread", 4) == ("serial", 1)
        assert engine_executor("serial", None) == ("serial", 1)
        # ...but resolve_executor (direct execute_map/fork_map callers)
        # still honors the explicit request
        assert resolve_executor("thread", 3) == ("thread", 3)
        # the override keeps pool mechanics testable anywhere
        monkeypatch.setenv("STZ_FORCE_POOLS", "1")
        assert engine_executor("thread", 4) == ("thread", 4)
        # with real capacity the gate never triggers
        monkeypatch.delenv("STZ_FORCE_POOLS")
        monkeypatch.setattr(par, "_usable_cpus", lambda: 8)
        assert engine_executor("thread", 4) == ("thread", 4)

    def test_slice_spans_cover_and_balance(self):
        for nitems in (1, 2, 3, 7, 8, 23, 100):
            for nslices in (1, 2, 4, 7, 200):
                spans = _slice_spans(nitems, nslices)
                # contiguous, complete, in order
                assert spans[0][0] == 0 and spans[-1][1] == nitems
                assert all(
                    a2 == b1 for (_, b1), (a2, _) in zip(spans, spans[1:])
                )
                # never more slices than items; sizes within 1 of even
                assert len(spans) == min(nslices, nitems)
                sizes = [b - a for a, b in spans]
                assert max(sizes) - min(sizes) <= 1

    def test_worker_pool_thread_reuse_and_outcomes(self):
        def fn(state, x):
            if x == 5:
                raise ValueError("five")
            return state * x

        with WorkerPool("thread", 3) as pool:
            first = execute_map(
                fn, [0, 1, 2, 3], 2, "thread", 3, pool=pool
            )
            assert first == [0, 2, 4, 6]
            tpe = pool.thread_pool()
            assert execute_map(
                fn, [4, 6], 2, "thread", 3, pool=pool
            ) == [8, 12]
            assert pool.thread_pool() is tpe  # warm across maps
            # deterministic failures still surface with their own error
            with pytest.raises(ValueError, match="five"):
                execute_map(fn, [4, 5], 2, "thread", 3, retry=1, pool=pool)

    @pytest.mark.skipif(not fork_available(), reason="no fork")
    def test_worker_pool_fork_warm_reuse_and_repool(self):
        import repro.core.parallel as par

        state_a = (np.arange(6), 1.5)
        state_b = (np.arange(6), 2.5)

        def fn(st, i):
            arr, scale = st
            return float(arr[i]) * scale

        with WorkerPool("process", 2) as pool:
            out = execute_map(fn, [0, 1, 2], state_a, "process", 2, pool=pool)
            assert out == [0.0, 1.5, 3.0]
            proc = pool._proc
            assert proc is not None
            # same payload (same array object, equal scalars): warm
            out = execute_map(fn, [3, 4], state_a, "process", 2, pool=pool)
            assert out == [4.5, 6.0]
            assert pool._proc is proc
            # the pool holds the fork lock while warm
            assert not par._FORK_LOCK.acquire(blocking=False)
            # different payload: children hold a stale snapshot — repool
            out = execute_map(fn, [0, 1], state_b, "process", 2, pool=pool)
            assert out == [0.0, 2.5]
            assert pool._proc is not proc
        # close() released the lock and the workers
        assert par._FORK_LOCK.acquire(blocking=False)
        par._FORK_LOCK.release()
        assert par._FORK_STATE is None

    def test_execute_map_ignores_mismatched_pool(self):
        with WorkerPool("thread", 2) as pool:
            # a thread handle passed to a process map is ignored, not
            # misused (and vice versa a serial map needs no pool)
            out = execute_map(
                lambda s, x: x + 1, [1, 2, 3], None, "process", 2,
                pool=pool,
            )
            assert out == [2, 3, 4]
            assert pool._proc is None

    def test_execute_map_timeout_serial(self):
        import time as _time

        def slow(state, x):
            _time.sleep(0.05)
            return x

        with pytest.raises(TimeoutError, match="deadline expired"):
            execute_map(slow, list(range(50)), None, "serial", 1,
                        timeout=0.12)

    def test_execute_map_timeout_thread_pool_not_poisoned(self):
        # a timed-out map raises TimeoutError — never per-item failure
        # markers, even with retry budget (a retry pass re-running the
        # abandoned items serially would defeat the timeout) — and the
        # warm pool keeps working for the next caller
        import time as _time

        def slow(state, x):
            _time.sleep(0.3)
            return x * 2

        with WorkerPool("thread", 2) as pool:
            t0 = _time.monotonic()
            with pytest.raises(TimeoutError, match="still"):
                execute_map(slow, list(range(8)), None, "thread", 2,
                            retry=1, pool=pool, timeout=0.2)
            # the waiter came back at the deadline, not after the queue
            assert _time.monotonic() - t0 < 1.0
            out = execute_map(
                lambda s, x: x + 1, list(range(6)), None, "thread", 2,
                pool=pool,
            )
            assert out == [1, 2, 3, 4, 5, 6]

    def test_execute_map_timeout_one_shot_thread_returns_promptly(self):
        import time as _time

        def slow(state, x):
            _time.sleep(0.5)
            return x

        t0 = _time.monotonic()
        with pytest.raises(TimeoutError):
            execute_map(slow, list(range(8)), None, "thread", 2,
                        timeout=0.15)
        # teardown must not block behind abandoned in-flight items
        assert _time.monotonic() - t0 < 0.45

    @pytest.mark.skipif(not fork_available(), reason="no fork")
    def test_execute_map_timeout_discards_warm_fork_pool(self):
        # drain-or-discard: a torn-away waiter must leave the warm
        # handle without live orphaned slices — the pool is discarded
        # (without waiting) and the fork lock freed, so the next map on
        # the same handle forks fresh instead of interleaving with work
        # the previous caller abandoned
        import time as _time

        import repro.core.parallel as par

        state = (np.arange(8), 2.0)

        def fn(st, i):
            arr, scale = st
            if scale > 2.0:  # only the slow_state maps stall
                _time.sleep(0.8)
            return float(arr[int(i)]) * scale

        slow_state = (np.arange(8), 3.0)
        with WorkerPool("process", 2) as pool:
            out = execute_map(fn, [0, 1, 2], state, "process", 2, pool=pool)
            assert out == [0.0, 2.0, 4.0]
            assert pool._proc is not None
            t0 = _time.monotonic()
            with pytest.raises(TimeoutError):
                execute_map(fn, list(range(8)), slow_state, "process", 2,
                            retry=1, pool=pool, timeout=0.25)
            assert _time.monotonic() - t0 < 0.7  # no drain of orphans
            # the abandoned pool is gone and the fork lock is free for
            # whoever maps next (one-shot or warm alike)
            assert pool._proc is None
            assert par._FORK_LOCK.acquire(blocking=False)
            par._FORK_LOCK.release()
            # the handle itself is immediately reusable: a fresh fork
            # pool, fresh snapshot, correct results
            out = execute_map(fn, [3, 4], state, "process", 2, pool=pool)
            assert out == [6.0, 8.0]

    @pytest.mark.skipif(not fork_available(), reason="no fork")
    def test_execute_map_timeout_one_shot_fork_releases_lock(self):
        import time as _time

        import repro.core.parallel as par

        def slow(st, i):
            _time.sleep(0.8)
            return i

        with pytest.raises(TimeoutError):
            execute_map(slow, list(range(8)), None, "process", 2,
                        timeout=0.25)
        # the module lock and published state were restored on the way
        # out; a follow-up map can fork immediately
        assert par._FORK_STATE is None
        assert par._FORK_LOCK.acquire(blocking=False)
        par._FORK_LOCK.release()
        assert execute_map(
            lambda s, x: x * x, list(range(5)), None, "process", 2
        ) == [0, 1, 4, 9, 16]


# ---------------------------------------------------------------------------
# round trips and seam conformance
# ---------------------------------------------------------------------------

class TestChunkedRoundTrip:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_round_trip_holds_bound(self, executor):
        data = field()
        eb = 1e-3
        blob = compress_chunked(
            data, eb, "abs", chunks=16, executor=executor, workers=4
        )
        assert is_sharded(blob)
        recon = decompress_chunked(blob, executor=executor, workers=4)
        assert recon.dtype == data.dtype
        assert_error_bounded(data, recon, eb, context=executor)

    @pytest.mark.parametrize(
        "chunks", [7, (17, 13, 9), (40, 36, 28), (40, 1, 28)]
    )
    def test_ragged_and_degenerate_chunk_shapes(self, chunks):
        data = field()
        eb = 5e-4
        blob = compress_chunked(data, eb, "abs", chunks=chunks)
        assert_error_bounded(
            data, decompress_chunked(blob), eb, context=str(chunks)
        )

    def test_rel_mode_matches_monolithic_resolution(self):
        data = field()
        blob = compress_chunked(data, 1e-3, "rel", chunks=16)
        reader = ShardedReader(blob)
        # every chunk stores the one globally resolved absolute bound
        abs_ebs = {
            StreamReader(reader.read_chunk(i)).header.abs_eb
            for i in range(reader.nchunks)
        }
        expected = 1e-3 * float(data.max() - data.min())
        assert abs_ebs == {expected}
        assert_error_bounded(data, decompress_chunked(blob), expected)

    def test_rel_mode_nan_matches_monolithic_resolution(self):
        """A NaN anywhere must poison the chunk-wise range reduction
        exactly like the monolithic one (rng = NaN -> eb * 1.0), not
        get dropped chunk by chunk into a geometry-dependent bound."""
        from repro.util.validation import resolve_eb

        data = field().copy()
        data[2, 3, 4] = np.nan  # a single chunk carries the NaN
        blob = compress_chunked(data, 1e-3, "rel", chunks=16)
        reader = ShardedReader(blob)
        stored = StreamReader(reader.read_chunk(0)).header.abs_eb
        assert stored == resolve_eb(data, 1e-3, "rel") == 1e-3

    def test_2d_and_1d(self):
        for shape, chunks in [((50, 31), (16, 8)), ((257,), 64)]:
            data = smooth_field(shape, seed=5).astype(np.float32)
            blob = compress_chunked(data, 1e-3, "abs", chunks=chunks)
            assert_error_bounded(data, decompress_chunked(blob), 1e-3)

    def test_decompress_into_out_array(self):
        data = field()
        blob = compress_chunked(data, 1e-3, "abs", chunks=16)
        out = np.empty(data.shape, dtype=data.dtype)
        result = decompress_chunked(blob, out=out)
        assert result is out
        assert_error_bounded(data, out, 1e-3)
        bad = np.empty((2, 2), dtype=data.dtype)
        with pytest.raises(ValueError, match="archive is"):
            decompress_chunked(blob, out=bad)

    def test_with_recon_is_decoder_exact(self):
        data = field()
        blob, recon = compress_chunked_with_recon(
            data, 1e-3, "abs", chunks=16
        )
        assert np.array_equal(recon, decompress_chunked(blob))

    def test_chunk_iterator_input_matches_array_input(self):
        data = field()
        plan = ChunkPlan.regular(data.shape, 16)
        it = (np.ascontiguousarray(data[c.slices]) for c in plan)
        via_iter = compress_chunked(
            it, 1e-3, "abs", chunks=16, shape=data.shape,
            executor="thread", workers=3,
        )
        assert via_iter == compress_chunked(data, 1e-3, "abs", chunks=16)

    def test_chunk_iterator_input_errors(self):
        data = field()
        plan = ChunkPlan.regular(data.shape, 16)
        chunks = [np.ascontiguousarray(data[c.slices]) for c in plan]
        with pytest.raises(ValueError, match="requires shape"):
            compress_chunked(iter(chunks), 1e-3, "abs", chunks=16)
        with pytest.raises(ValueError, match="abs"):
            compress_chunked(
                iter(chunks), 1e-3, "rel", chunks=16, shape=data.shape
            )
        with pytest.raises(ValueError, match="exhausted"):
            compress_chunked(
                iter(chunks[:-1]), 1e-3, "abs", chunks=16, shape=data.shape
            )
        with pytest.raises(ValueError, match="more than the plan"):
            compress_chunked(
                iter(chunks + chunks[:1]), 1e-3, "abs", chunks=16,
                shape=data.shape,
            )
        with pytest.raises(ValueError, match="the plan expects"):
            compress_chunked(
                iter([chunks[1]] + chunks[1:]), 1e-3, "abs", chunks=16,
                shape=data.shape,
            )

    def test_progressive_cleanly_rejected(self):
        blob = compress_chunked(field(), 1e-3, "abs", chunks=16)
        with pytest.raises(ValueError, match="progressive"):
            decompress_progressive(blob, 1)


@pytest.mark.conformance
class TestChunkedConformance:
    """The chunked path rides the cross-codec hard-bound contract:
    every bounded codec, compressed chunk by chunk, must hold the
    bound at every point — chunk seams included."""

    #: chunk shape chosen so (20, 17, 13) yields 8 chunks with ragged
    #: edges on every axis — seams everywhere
    SHAPE = (20, 17, 13)
    CHUNKS = (11, 9, 7)

    @pytest.mark.parametrize("codec", sorted(BOUNDED_CODECS))
    @pytest.mark.parametrize("eb", [1e-2, 1e-4])
    def test_hard_bound_across_seams(self, codec, eb):
        data = smooth_field(self.SHAPE, seed=9).astype(np.float32)
        abs_eb = eb * float(data.max() - data.min())
        blob = compress_chunked(
            data, abs_eb, "abs", codec=codec, chunks=self.CHUNKS
        )
        recon = decompress(blob)
        assert recon.dtype == data.dtype
        assert_error_bounded(data, recon, abs_eb, context=f"chunked {codec}")
        # seam faces explicitly: both sides of every chunk boundary
        for axis, cut in ((0, 11), (1, 9), (2, 7)):
            sel = [slice(None)] * 3
            sel[axis] = slice(cut - 1, cut + 1)
            assert_error_bounded(
                data[tuple(sel)], recon[tuple(sel)], abs_eb,
                context=f"chunked {codec} seam axis{axis}",
            )

    @pytest.mark.parametrize("codec", NONFINITE_CODECS)
    def test_nonfinite_value_edge_chunks(self, codec):
        """Chunks that are pure NaN/inf edges: one chunk all-NaN, one
        mixed, the rest finite — non-finite points must come back
        bit-exact, finite points within the bound."""
        data = smooth_field(self.SHAPE, seed=10).astype(np.float32)
        data = data.copy()
        # chunk (0,0,0) fully NaN; chunk (1,1,1) gets inf spikes
        data[:11, :9, :7] = np.nan
        data[11, 9, 7] = np.inf
        data[-1, -1, -1] = -np.inf
        eb = 1e-3
        blob = compress_chunked(
            data, eb, "abs", codec=codec, chunks=self.CHUNKS
        )
        recon = decompress(blob)
        assert_error_bounded(
            data, recon, eb, context=f"chunked nonfinite {codec}"
        )

    def test_auto_selects_per_chunk(self):
        """A mixed-statistics array routes different chunks to
        different codecs — the quality dividend of chunk-level
        selection."""
        shape = (72, 20, 16)
        rng = np.random.default_rng(11)
        data = np.empty(shape, dtype=np.float32)
        data[:24] = 2.5  # constant: the szx short-circuit
        data[24:48] = smooth_field((24, 20, 16), seed=24).astype(np.float32)
        data[48:] = rng.normal(size=(24, 20, 16)).astype(np.float32)
        blob = compress_chunked(
            data, 4e-3, "abs", codec="auto", chunks=(24, 20, 16)
        )
        reader = ShardedReader(blob)
        codecs = [c.codec for c in reader.chunks]
        assert len(set(codecs)) > 1, codecs
        assert codecs[0] == "szx"  # constant chunk
        assert_error_bounded(data, decompress(blob), 4e-3)


# ---------------------------------------------------------------------------
# byte determinism across executors
# ---------------------------------------------------------------------------

class TestByteDeterminism:
    @pytest.mark.parametrize("codec", ["stz", "auto"])
    def test_archive_bytes_identical_across_executors(self, codec):
        data = field()
        blobs = {
            executor: compress_chunked(
                data, 1e-3, "abs", codec=codec, chunks=16,
                executor=executor, workers=4,
            )
            for executor in EXECUTORS
        }
        assert blobs["serial"] == blobs["thread"] == blobs["process"]

    def test_repeated_runs_identical(self):
        data = field(seed=8)
        a = compress_chunked(data, 1e-3, "abs", codec="auto", chunks=16)
        b = compress_chunked(data, 1e-3, "abs", codec="auto", chunks=16)
        assert a == b


# ---------------------------------------------------------------------------
# out-of-core: O(chunk) working memory both directions
# ---------------------------------------------------------------------------

class TestOutOfCore:
    SHAPE = (64, 64, 64)
    #: 4x the cells of SHAPE — the growth assertion's second point
    BIG_SHAPE = (128, 128, 64)
    CHUNK = 16

    def _memmap(self, tmp_path, name, shape, data=None):
        mm = np.memmap(
            tmp_path / name, dtype=np.float32, mode="w+", shape=shape
        )
        if data is not None:
            mm[...] = data
            mm.flush()
        return mm

    def _roundtrip_peaks(self, tmp_path, shape, tag):
        """(compress peak, decompress peak) for one memmap round trip,
        measured with tracemalloc (numpy buffers are traced; mmap pages
        are not — exactly the engine's own allocations)."""
        data = field(shape, seed=13)
        src = self._memmap(tmp_path, f"src{tag}.raw", shape, data)
        tracemalloc.start()
        with open(tmp_path / f"a{tag}.stz", "wb") as sink:
            compress_chunked(
                src, 1e-3, "abs", chunks=self.CHUNK, executor="serial",
                sink=sink,
            )
        _, comp_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        out = self._memmap(tmp_path, f"dst{tag}.raw", shape)
        with open(tmp_path / f"a{tag}.stz", "rb") as fh:
            tracemalloc.start()
            decompress_chunked(fh, out=out, executor="serial")
            _, dec_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert_error_bounded(data, np.asarray(out), 1e-3)
        return comp_peak, dec_peak

    def test_memmap_roundtrip_memory_is_o_chunk_not_o_array(self, tmp_path):
        """The pipeline has a fixed per-call working set (~2 MiB of
        transient tables/buffers), so the out-of-core claim is about
        *growth*: quadrupling the array must not move the peak by more
        than a few chunks — the engine never holds O(array) memory."""
        chunk_bytes = self.CHUNK**3 * 4
        small = self._roundtrip_peaks(tmp_path, self.SHAPE, "s")
        big = self._roundtrip_peaks(tmp_path, self.BIG_SHAPE, "b")
        grew = int(np.prod(self.BIG_SHAPE) - np.prod(self.SHAPE)) * 4
        for which, s, b in [
            ("compress", small[0], big[0]),
            ("decompress", small[1], big[1]),
        ]:
            assert b - s < 24 * chunk_bytes < grew // 4, (
                f"{which}: peak grew {b - s} B for {grew} B more data"
            )

    def test_memmap_process_executor_round_trip(self, tmp_path):
        """Fork workers slice the memmap themselves (no array pickling)
        and write decoded chunks into the shared output mapping."""
        data = field(self.SHAPE, seed=14)
        src = self._memmap(tmp_path, "psrc.raw", self.SHAPE, data)
        blob = compress_chunked(
            src, 1e-3, "abs", chunks=self.CHUNK,
            executor="process", workers=2,
        )
        out = self._memmap(tmp_path, "pdst.raw", self.SHAPE)
        decompress_chunked(blob, out=out, executor="process", workers=2)
        assert_error_bounded(data, np.asarray(out), 1e-3)

    def test_sink_streams_chunks_as_produced(self, tmp_path):
        """The writer never seeks: chunk blobs land in the sink in plan
        order with only table rows retained."""
        data = field(self.SHAPE, seed=15)

        class AppendOnly(io.RawIOBase):
            def __init__(self):
                self.chunks = []

            def write(self, b):
                self.chunks.append(bytes(b))
                return len(b)

            def seek(self, *a, **k):  # pragma: no cover
                raise AssertionError("sink must never be seeked")

        sink = AppendOnly()
        compress_chunked(
            data, 1e-3, "abs", chunks=self.CHUNK, executor="serial",
            sink=sink,
        )
        blob = b"".join(sink.chunks)
        assert ShardedReader(blob).nchunks == 64
        assert_error_bounded(data, decompress_chunked(blob), 1e-3)


# ---------------------------------------------------------------------------
# chunk-granular random access
# ---------------------------------------------------------------------------

class TestChunkedROI:
    def test_roi_bit_identical_to_cropped_full_decode(self):
        data = field()
        blob = compress_chunked(data, 1e-3, "abs", chunks=16)
        full = decompress_chunked(blob)
        for roi in [
            (slice(5, 20), slice(3, 30), 7),
            (slice(None), slice(17, 18), slice(None)),
            (0, 0, 0),
            (slice(16, 32), slice(16, 32), slice(16, 28)),
        ]:
            expected = full[
                tuple(
                    slice(r, r + 1) if isinstance(r, int) else r
                    for r in roi
                )
            ]
            assert np.array_equal(decompress_roi(blob, roi), expected), roi

    def test_roi_touches_only_intersecting_chunks(self):
        data = field()
        blob = compress_chunked(data, 1e-3, "abs", chunks=16)
        reader = ShardedReader(blob)
        decompress_chunked_roi(reader, (slice(0, 8), slice(0, 8), slice(0, 8)))
        one_chunk = reader.chunk(0).length
        assert reader.bytes_read == one_chunk  # 1 of 18 chunks read

    def test_roi_parallel_workers_read_fd_serially(self, tmp_path):
        # a file-backed ShardedReader has ONE fd whose seek()+read()
        # pairs must never interleave across threads; the multi-worker
        # ROI path therefore prefetches payloads on the calling thread
        # and fans out only the decode
        import threading

        data = field()
        path = tmp_path / "a.stz"
        path.write_bytes(compress_chunked(data, 1e-3, "abs", chunks=8))
        full = decompress_chunked(path.read_bytes())

        read_threads: set[int] = set()

        class RecordingFile(io.FileIO):
            def read(self, *args):
                read_threads.add(threading.get_ident())
                return super().read(*args)

        roi = (slice(2, 30), slice(5, 33), slice(1, 27))
        with RecordingFile(path, "rb") as fh:
            got = decompress_chunked_roi(ShardedReader(fh), roi, workers=4)
        assert np.array_equal(got, full[roi])
        assert read_threads == {threading.get_ident()}

    def test_roi_on_auto_chunks(self):
        data = field(seed=21)
        blob = compress_chunked(data, 1e-3, "abs", codec="auto", chunks=16)
        full = decompress(blob)
        roi = (slice(10, 30), slice(0, 36), slice(20, 28))
        assert np.array_equal(decompress_roi(blob, roi), full[roi])

    def test_roi_auto_envelopes_use_subchunk_fast_path(self, monkeypatch):
        # auto-selected stz chunks are 'STZC'-enveloped; the ROI path
        # must unwrap them and still run the sub-chunk random-access
        # decode instead of silently decoding the whole chunk
        import repro.core.chunked as chunked_mod
        from repro.core.stream import wrap_selected

        data = field(seed=21)
        plain = compress_chunked(data, 1e-3, "abs", chunks=16)
        reader = ShardedReader(plain)
        # the exact bytes _encode_chunk emits when auto picks stz for
        # every chunk: each STZ1 blob wrapped in an 'STZC' envelope
        writer = ShardedWriter(
            reader.shape, reader.dtype, reader.plan.chunk_shape, None
        )
        for entry in reader.chunks:
            writer.add_chunk(
                wrap_selected(
                    CODEC_STZ, bytes(reader.read_chunk(entry.index))
                ),
                CODEC_STZ,
            )
        writer.finalize()
        blob = writer.getvalue()
        calls = []
        real = chunked_mod.stz_decompress_roi

        def recording(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(chunked_mod, "stz_decompress_roi", recording)
        full = decompress_chunked(blob)
        roi = (slice(3, 20), slice(20, 30), slice(5, 9))  # crosses a seam
        got = decompress_chunked_roi(ShardedReader(blob), roi)
        assert np.array_equal(got, full[roi])
        assert len(calls) == len(reader.plan.intersecting(
            tuple((s.start, s.stop) for s in roi)
        ))

    def test_selection_workflow_over_sharded_archive(self):
        """The Figure 10 workflow on a v3 archive: detect boxes on the
        data, size the chunk fetch set, extract each box through the
        chunk index — bit-identical to cropping, minimal chunks read."""
        from repro.core.roi import (
            extract_selection,
            select_blocks,
            selection_chunk_indices,
        )

        data = field(seed=22)
        blob = compress_chunked(data, 1e-3, "abs", chunks=16)
        reader = ShardedReader(blob)
        selection = select_blocks(data, block=8, top_fraction=0.02)
        indices = selection_chunk_indices(selection, reader.plan)
        assert 0 < len(indices) < reader.nchunks
        full = decompress_chunked(blob)
        boxes = extract_selection(reader, selection)
        for box, got in zip(selection.boxes, boxes):
            assert np.array_equal(got, full[box])
        # only the fetch set's chunks were read (each at most once per
        # box it serves)
        lengths = {i: reader.chunk(i).length for i in indices}
        assert reader.bytes_read <= sum(
            lengths.values()
        ) * len(selection.boxes)


# ---------------------------------------------------------------------------
# v3 container format safety
# ---------------------------------------------------------------------------

class TestShardedContainer:
    def blob(self):
        return compress_chunked(field(), 1e-3, "abs", chunks=16)

    def test_v1_v2_readers_reject_v3_cleanly(self):
        blob = self.blob()
        with pytest.raises(ValueError, match="sharded"):
            StreamReader(blob)
        with pytest.raises(ValueError, match="sharded"):
            MultiFrameReader(blob)

    def test_v3_reader_rejects_v1_v2(self):
        from repro.core.pipeline import stz_compress

        single = stz_compress(field((8, 8, 8)), 1e-3, "abs")
        with pytest.raises(ValueError, match="single-frame"):
            ShardedReader(single)
        multi = compress_stream([field((8, 8, 8))], 1e-3)
        with pytest.raises(ValueError, match="multi-frame"):
            ShardedReader(multi)
        with pytest.raises(ValueError, match="not a sharded"):
            ShardedReader(b"JUNK" + bytes(40))

    def test_unknown_container_flag_rejected(self):
        blob = bytearray(self.blob())
        blob[5] |= 0x40  # v3 head: magic4 | version | flags
        with pytest.raises(ValueError, match="unknown feature flags"):
            ShardedReader(bytes(blob))

    def _table_offset(self, blob):
        import struct

        table_off, nchunks, _ = struct.unpack("<QI4s", blob[-16:])
        return table_off, nchunks

    def test_unknown_chunk_flag_rejected(self):
        blob = bytearray(self.blob())
        table_off, _ = self._table_offset(bytes(blob))
        blob[table_off + 16] |= 0x08  # row <QQBB6x>: flags at byte 16
        with pytest.raises(ValueError, match="unknown chunk flags"):
            ShardedReader(bytes(blob))

    def test_unknown_chunk_codec_id_rejected(self):
        blob = bytearray(self.blob())
        table_off, _ = self._table_offset(bytes(blob))
        blob[table_off + 17] = 0x7F  # row <QQBB6x>: codec at byte 17
        with pytest.raises(ValueError, match="unknown codec id"):
            ShardedReader(bytes(blob))

    def test_truncation_rejected(self):
        blob = self.blob()
        with pytest.raises(ValueError, match="truncated|corrupt"):
            ShardedReader(blob[: len(blob) - 3])
        with pytest.raises(ValueError, match="truncated"):
            ShardedReader(blob[:10])

    def test_tampered_embedded_chunk_flag_rejected(self):
        """Chunk payloads are full STZ1 containers: the STZ1 flag
        policy keeps protecting them inside the v3 wrapper."""
        blob = bytearray(self.blob())
        reader = ShardedReader(bytes(blob))
        blob[reader.chunk(0).offset + 11] |= 0x80  # STZ1 flags byte
        with pytest.raises(ValueError, match="unknown feature flags"):
            decompress_chunked(bytes(blob))

    def test_writer_validates_plan_coverage(self):
        w = ShardedWriter((8, 8), np.dtype(np.float32), (4, 8))
        w.add_chunk(b"x")
        with pytest.raises(ValueError, match="needs 2 chunks"):
            w.finalize()
        w.add_chunk(b"y")
        with pytest.raises(ValueError, match="does not exist"):
            w.add_chunk(b"z")
        w.finalize()
        w.finalize()  # idempotent
        with pytest.raises(ValueError, match="already finalized"):
            w.add_chunk(b"late")
        with pytest.raises(ValueError, match="unknown codec id"):
            ShardedWriter((8, 8), np.dtype(np.float32), (8, 8)).add_chunk(
                b"x", codec_id=99
            )
        with pytest.raises(ValueError, match="unknown container flags"):
            ShardedWriter((8, 8), np.dtype(np.float32), (8, 8), flags=0x10)

    def test_file_source_reads_only_what_it_needs(self, tmp_path):
        blob = self.blob()
        path = tmp_path / "a.stz"
        path.write_bytes(blob)
        with open(path, "rb") as fh:
            reader = ShardedReader(fh)
            reader.read_chunk(3)
            assert reader.bytes_read == reader.chunk(3).length


# ---------------------------------------------------------------------------
# sharded streaming frames
# ---------------------------------------------------------------------------

class TestShardedStreaming:
    SHAPE = (24, 20, 16)
    EB = 1e-3

    def steps(self, n=5):
        base = smooth_field(self.SHAPE, seed=30).astype(np.float32)
        out = [base]
        for t in range(1, n):
            out.append(
                out[-1]
                + np.float32(0.05)
                * smooth_field(self.SHAPE, seed=60 + t).astype(np.float32)
            )
        return out

    def test_sharded_stream_round_trip_holds_bound(self):
        steps = self.steps()
        blob = compress_stream(
            steps, self.EB, keyframe_interval=3, chunks=12,
            chunk_workers=2,
        )
        reader = MultiFrameReader(blob)
        assert all(f.is_sharded for f in reader.frames)
        assert [f.is_delta for f in reader.frames] == [
            False, True, True, False, True,
        ]
        assert all(f.codec == "sharded" for f in reader.frames)
        for t, rec in enumerate(iter_decompress(blob)):
            assert_error_bounded(
                steps[t], rec, self.EB, context=f"sharded step {t}"
            )

    def test_random_access_matches_sequential(self):
        steps = self.steps()
        blob = compress_stream(
            steps, self.EB, keyframe_interval=3, chunks=12
        )
        seq = list(iter_decompress(blob))
        for t in (4, 0, 2):
            assert np.array_equal(decompress_frame(blob, t), seq[t])

    def test_sharded_frame_flag_gates_old_readers(self):
        """Clearing our knowledge of the bit simulates a pre-sharding
        reader: unknown frame flags are rejected at open."""
        blob = compress_stream(self.steps(2), self.EB, chunks=12)
        reader = MultiFrameReader(blob)
        assert reader.frames[0].flags & FRAME_SHARDED
        # an actually-unknown bit in the same field still hard-fails
        import struct

        raw = bytearray(blob)
        table_off, _, _ = struct.unpack("<QI4s", raw[-16:])
        raw[table_off + 16] |= 0x80
        with pytest.raises(ValueError, match="unknown frame flags"):
            MultiFrameReader(bytes(raw))

    def test_stream_bytes_deterministic_across_chunk_executors(self):
        steps = self.steps(3)
        blobs = [
            compress_stream(
                steps, self.EB, keyframe_interval=2, chunks=12,
                chunk_executor=ex, chunk_workers=3,
            )
            for ex in ("serial", "thread")
        ]
        assert blobs[0] == blobs[1]

    def test_auto_codec_sharded_frames(self):
        steps = self.steps(3)
        blob = compress_stream(
            steps, self.EB, keyframe_interval=2, codec="auto", chunks=12
        )
        reader = MultiFrameReader(blob)
        assert all(f.is_sharded for f in reader.frames)
        for t, rec in enumerate(iter_decompress(blob)):
            assert_error_bounded(steps[t], rec, self.EB)

    def test_overlap_matches_serial_engine(self):
        steps = self.steps(4)
        a = compress_stream(
            steps, self.EB, keyframe_interval=2, chunks=12
        )
        b = compress_stream(
            steps, self.EB, keyframe_interval=2, chunks=12, overlap=True
        )
        assert a == b


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestChunkedCLI:
    def test_compress_info_decompress_roi(self, tmp_path, capsys):
        from repro.cli import main

        data = field()
        np.save(tmp_path / "in.npy", data)
        archive = tmp_path / "in.stz"
        assert main(
            [
                "compress", str(tmp_path / "in.npy"), str(archive),
                "--eb", "1e-3", "--mode", "abs", "--chunks", "16",
                "--workers", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "[sharded, 18 chunks]" in out

        assert main(["info", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "grid 3x3x2" in out
        assert out.count("stz") >= 18  # per-chunk codec ids listed

        assert main(
            [
                "decompress", str(archive), str(tmp_path / "out.npy"),
                "--workers", "2",
            ]
        ) == 0
        capsys.readouterr()
        assert_error_bounded(data, np.load(tmp_path / "out.npy"), 1e-3)

        assert main(
            [
                "decompress", str(archive), str(tmp_path / "roi.npy"),
                "--roi", "5:20,3:30,7",
            ]
        ) == 0
        capsys.readouterr()
        full = np.load(tmp_path / "out.npy")
        assert np.array_equal(
            np.load(tmp_path / "roi.npy"), full[5:20, 3:30, 7:8]
        )

    def test_stream_chunks_flag(self, tmp_path, capsys):
        from repro.cli import main

        steps = [
            smooth_field((16, 12, 10), seed=70 + t).astype(np.float32)
            for t in range(3)
        ]
        for t, s in enumerate(steps):
            np.save(tmp_path / f"t{t}.npy", s)
        archive = tmp_path / "steps.stz"
        assert main(
            [
                "stream", str(archive),
                *(str(tmp_path / f"t{t}.npy") for t in range(3)),
                "--eb", "1e-3", "--mode", "abs", "--chunks", "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sharded" in out
        for t, rec in enumerate(
            iter_decompress(archive.read_bytes())
        ):
            assert_error_bounded(steps[t], rec, 1e-3)
