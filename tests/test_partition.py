"""Tests for the hierarchical stride partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    deinterleave,
    interleave,
    lattice_shape,
    level_fraction,
    level_strides,
    nonzero_offsets,
    subblock_shape,
    subblock_view_in,
    take_subblock,
)


class TestOffsets:
    @pytest.mark.parametrize("ndim,count", [(1, 1), (2, 3), (3, 7), (4, 15)])
    def test_count(self, ndim, count):
        offs = nonzero_offsets(ndim)
        assert len(offs) == count
        assert all(any(o) for o in offs)
        assert len(set(offs)) == count

    def test_rejects_zero_ndim(self):
        with pytest.raises(ValueError):
            nonzero_offsets(0)


class TestShapes:
    def test_lattice_shape(self):
        assert lattice_shape((9, 8, 7), 2) == (5, 4, 4)
        assert lattice_shape((9, 8, 7), 4) == (3, 2, 2)

    def test_subblock_shapes_tile_exactly(self):
        for shape in [(7, 9), (8, 8), (5, 6, 7), (1, 3)]:
            total = int(np.prod(lattice_shape(shape, 1)))
            zero = (0,) * len(shape)
            sizes = [int(np.prod(subblock_shape(shape, zero) or (0,)))]
            # zero offset uses stride-2 coarse lattice
            sizes = [int(np.prod(lattice_shape(shape, 2)))]
            for eps in nonzero_offsets(len(shape)):
                sizes.append(int(np.prod(subblock_shape(shape, eps))))
            assert sum(sizes) == total, shape

    def test_level_strides(self):
        assert level_strides(3) == [4, 2, 1]
        assert level_strides(2) == [2, 1]
        with pytest.raises(ValueError):
            level_strides(0)

    def test_level_fraction_paper_values(self):
        # paper: 2-level 3D coarsest = 12.5%, 3-level = 1.6%
        assert level_fraction(3, 2) == pytest.approx(0.125)
        assert level_fraction(3, 3) == pytest.approx(1 / 64)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "shape",
        [(6,), (7,), (8, 9), (9, 8), (5, 6, 7), (16, 16, 16), (1, 9), (2, 1, 5)],
    )
    def test_deinterleave_interleave(self, shape, rng):
        fine = rng.normal(size=shape).astype(np.float32)
        coarse, blocks = deinterleave(fine)
        assert coarse.shape == lattice_shape(shape, 2)
        back = interleave(coarse, blocks, shape)
        assert np.array_equal(back, fine)

    def test_subblock_view_matches_lattice_take(self, rng):
        data = rng.normal(size=(17, 14, 11))
        for stride in (1, 2, 4):
            lat = data[::stride, ::stride, ::stride]
            for eps in nonzero_offsets(3):
                view = subblock_view_in(data, eps, stride)
                ref = take_subblock(np.ascontiguousarray(lat), eps)
                assert np.array_equal(np.ascontiguousarray(view), ref)

    @given(
        st.lists(st.integers(1, 12), min_size=1, max_size=3),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, dims, seed):
        shape = tuple(dims)
        fine = np.random.default_rng(seed).normal(size=shape)
        coarse, blocks = deinterleave(fine)
        assert np.array_equal(interleave(coarse, blocks, shape), fine)

    def test_every_point_assigned_once(self):
        # marker test: fill by parity class, verify complete coverage
        shape = (9, 7, 5)
        out = np.full(shape, -1.0)
        zero_marked = np.zeros(lattice_shape(shape, 2))
        from repro.core.partition import place_subblock

        place_subblock(out, (0, 0, 0), zero_marked)
        for i, eps in enumerate(nonzero_offsets(3)):
            place_subblock(
                out, eps, np.full(subblock_shape(shape, eps), i + 1.0)
            )
        assert not np.any(out == -1.0)
