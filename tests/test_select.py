"""Codec-selection engine tests (probe, selector, auto mode, containers).

Three layers of guarantees, mirroring the engine's design
(:mod:`repro.core.select`):

* **hard bound** — ``auto`` never violates the L-infinity bound, on
  adversarial inputs (constant, value-scale edges, mixed-smoothness
  tiles) and under hypothesis-driven random search (with a seeded
  parametrized fallback so the properties always run);
* **determinism** — same input + same ``select_seed`` produces a
  byte-identical container, single-array and streaming alike;
* **containers** — the codec-id byte round-trips, unknown ids are
  rejected (envelope and v2 frame table), and the MULTI_CODEC version
  gate is enforced on the writer.

The size regression (``auto`` never worse than the *worst* fixed
codec) runs on the cached registry datasets shared with the
conformance sweep; the stronger ≥0.9x-of-best criterion lives in
``benchmarks/bench_select_auto.py`` where the grids are bench-scale.
"""

import numpy as np
import pytest

from conftest import conformance_field, registry_field, smooth_field
from helpers import assert_error_bounded
from repro.core.api import (
    compress,
    compress_stream,
    decompress,
    decompress_progressive,
    iter_decompress,
)
from repro.core.config import STZConfig
from repro.core.pipeline import stz_compress
from repro.core.select import (
    CANDIDATES,
    SHORTLISTS,
    CodecSelector,
    bound_holds,
    compress_selected,
    decompress_selected,
    probe_features,
    sample_tile,
)
from repro.core.stream import (
    CODEC_IDS,
    CODEC_NAMES,
    CODEC_STZ,
    MULTI_CODEC,
    MultiFrameReader,
    MultiFrameWriter,
    is_selected,
    unwrap_selected,
    wrap_selected,
)
from repro.core.streaming import StreamingDecompressor

pytestmark = pytest.mark.select

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the image bakes hypothesis in
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

REGISTRY = ("nyx", "warpx", "magrec", "miranda")


def mixed_smoothness_tile(shape=(16, 16, 16), dtype=np.float32, seed=9):
    """Half smooth field, half white noise — the adversarial case for a
    sampled probe (whichever half it samples, the other half differs)."""
    data = smooth_field(shape, seed=seed).astype(dtype)
    noisy = data.copy()
    half = shape[0] // 2
    noise = np.random.default_rng(seed).normal(size=noisy[half:].shape)
    noisy[half:] += noise.astype(dtype)
    return noisy


# ---------------------------------------------------------------------------
# probe features
# ---------------------------------------------------------------------------

class TestProbe:
    def test_constant_label(self):
        data = conformance_field((16, 16, 16), "float32", "constant")
        assert probe_features(data, 1e-3).label == "constant"

    def test_smooth_label(self):
        data = conformance_field((16, 16, 16), "float32")
        p = probe_features(data, 1e-4 * float(data.max() - data.min()))
        assert p.label == "smooth"
        assert p.smoothness < 0.05
        assert p.vrange > 0

    def test_rough_label(self):
        data = (
            np.random.default_rng(3).normal(size=(16, 16, 16))
            .astype(np.float32)
        )
        assert probe_features(data, 1e-4).label == "rough"

    def test_nonfinite_counts_as_rough(self):
        data = smooth_field((16, 16, 16), seed=4).astype(np.float32)
        data[0, 0, :] = np.nan
        p = probe_features(data, 1e-3)
        assert p.nonfinite_frac > 0
        assert p.label == "rough"

    def test_probe_is_sampled_not_full(self):
        # identical head/middle/tail => identical features, however much
        # unsampled data changes in between
        a = smooth_field((200_000,), seed=5)
        b = a.copy()
        b[50_000:60_000] += 17.0  # outside all three sampled chunks
        assert probe_features(a, 1e-3) == probe_features(b, 1e-3)

    def test_sample_tile_is_centered_crop(self):
        data = np.arange(64 * 64, dtype=np.float32).reshape(64, 64)
        tile = sample_tile(data, edge=32)
        assert tile.shape == (32, 32)
        assert np.array_equal(tile, data[16:48, 16:48])
        small = np.ones((3, 5), np.float32)
        assert sample_tile(small).shape == (3, 5)


# ---------------------------------------------------------------------------
# the selector
# ---------------------------------------------------------------------------

class TestSelector:
    def test_probe_updates_ema(self):
        data = conformance_field((16, 16, 16), "float32")
        sel = CodecSelector(seed=0, decay=0.5)
        first = sel.probe(data, 1e-3, STZConfig(), ("stz", "sz3"))
        assert set(first) == {"stz", "sz3"}
        assert sel.scores == first  # first observation seeds the EMA
        second = sel.probe(data, 1e-3, STZConfig(), ("stz", "sz3"))
        for name in ("stz", "sz3"):
            assert sel.scores[name] == pytest.approx(
                0.5 * first[name] + 0.5 * second[name]
            )

    def test_rank_orders_by_score_and_keeps_stz_fallback(self):
        sel = CodecSelector(seed=0)
        sel.scores = {"zfp": 3.0, "szx": 1.0}
        assert sel.rank(("zfp", "szx")) == ["szx", "zfp", "stz"]
        # unscored candidates keep shortlist order after scored ones
        assert sel.rank(("sperr", "szx", "zfp")) == [
            "szx", "zfp", "sperr", "stz",
        ]

    def test_explore_draws_are_seed_deterministic(self):
        a = CodecSelector(seed=42)
        b = CodecSelector(seed=42)
        assert [a.explore_draw() for _ in range(64)] == [
            b.explore_draw() for _ in range(64)
        ]

    def test_candidate_registry_matches_container_ids(self):
        assert set(CANDIDATES) == set(CODEC_NAMES.values())
        for name, cand in CANDIDATES.items():
            assert cand.codec_id == CODEC_IDS[name]
        for shortlist in SHORTLISTS.values():
            assert set(shortlist) <= set(CANDIDATES)


# ---------------------------------------------------------------------------
# auto mode: hard bound on adversarial inputs
# ---------------------------------------------------------------------------

class TestAutoBound:
    @pytest.mark.parametrize(
        "variant", ["unit", "large", "tiny", "shifted", "constant"]
    )
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_value_edges(self, variant, dtype):
        data = conformance_field((16, 16, 16), dtype, variant)
        vrange = float(data.max() - data.min())
        abs_eb = 1e-3 * vrange if vrange else 1e-3
        blob = compress(data, abs_eb, "abs", codec="auto")
        recon = decompress(blob)
        assert recon.dtype == data.dtype
        assert_error_bounded(data, recon, abs_eb, context=f"auto {variant}")

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_mixed_smoothness_tile(self, dtype):
        data = mixed_smoothness_tile(dtype=np.dtype(dtype))
        abs_eb = 1e-3 * float(data.max() - data.min())
        recon = decompress(compress(data, abs_eb, "abs", codec="auto"))
        assert_error_bounded(data, recon, abs_eb, context="auto mixed")

    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_random_fields(self, seed):
        # the always-on twin of the hypothesis property below
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 4))
        shape = tuple(int(rng.integers(2, 14)) for _ in range(ndim))
        data = rng.normal(size=shape).astype(
            np.float32 if seed % 2 else np.float64
        )
        abs_eb = float(10.0 ** rng.uniform(-5, -1))
        recon = decompress(compress(data, abs_eb, "abs", codec="auto"))
        assert_error_bounded(data, recon, abs_eb, context=f"auto seed{seed}")

    @needs_hypothesis
    @given(
        st.integers(0, 2**31),
        st.lists(st.integers(2, 12), min_size=1, max_size=3),
        st.floats(1e-6, 1e-1),
    )
    @settings(max_examples=15, deadline=None)
    def test_bound_property(self, seed, dims, eb):
        data = (
            np.random.default_rng(seed)
            .normal(size=tuple(dims))
            .astype(np.float32)
        )
        recon = decompress(compress(data, eb, "abs", codec="auto"))
        assert_error_bounded(data, recon, eb, context="auto hypothesis")

    def test_streaming_bound_on_mixed_steps(self):
        # constant, smooth, and rough steps in one stream: per-step
        # re-selection must hold the bound through every transition
        shape = (12, 10, 8)
        steps = [
            np.full(shape, 2.5, np.float32),
            smooth_field(shape, seed=31).astype(np.float32),
            np.random.default_rng(7).normal(size=shape).astype(np.float32),
            smooth_field(shape, seed=32).astype(np.float32),
        ]
        abs_eb = 1e-3
        blob = compress_stream(
            steps, abs_eb, keyframe_interval=2, codec="auto"
        )
        for t, rec in enumerate(iter_decompress(blob)):
            assert_error_bounded(
                steps[t], rec, abs_eb, context=f"auto stream step {t}"
            )


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_single_array_byte_identical(self):
        data = conformance_field((16, 16, 16), "float32")
        cfg = STZConfig(codec="auto", select_seed=7)
        assert compress(data, 1e-3, "abs", cfg) == compress(
            data, 1e-3, "abs", cfg
        )

    def test_stream_byte_identical(self):
        steps = [
            smooth_field((10, 9, 8), seed=60 + t).astype(np.float32)
            for t in range(5)
        ]
        cfg = STZConfig(codec="auto", select_seed=3)
        a = compress_stream(steps, 1e-3, config=cfg, keyframe_interval=2)
        b = compress_stream(steps, 1e-3, config=cfg, keyframe_interval=2)
        assert a == b

    def test_seed_lives_in_config(self):
        data = mixed_smoothness_tile()
        blobs = {
            seed: compress(
                data, 1e-3, "abs", STZConfig(codec="auto", select_seed=seed)
            )
            for seed in (0, 1)
        }
        # both decode within the bound regardless of the seed's choices
        for blob in blobs.values():
            assert_error_bounded(data, decompress(blob), 1e-3)


# ---------------------------------------------------------------------------
# containers: envelope and frame-table codec ids
# ---------------------------------------------------------------------------

class TestSelectedEnvelope:
    def test_fixed_codec_roundtrip_and_id(self):
        data = conformance_field((16, 16, 16), "float32")
        for name in ("sz3", "zfp", "sperr", "szx", "mgard"):
            blob = compress(data, 1e-3, "abs", codec=name)
            assert is_selected(blob)
            codec_id, payload = unwrap_selected(blob)
            assert CODEC_NAMES[codec_id] == name
            recon = CANDIDATES[name].decompress(bytes(payload))
            assert np.array_equal(recon, decompress(blob))

    def test_auto_records_winner(self):
        data = conformance_field((16, 16, 16), "float32", "constant")
        blob = compress(data, 1e-3, "abs", codec="auto")
        codec_id, _ = unwrap_selected(blob)
        assert CODEC_NAMES[codec_id] == "szx"  # constant short-circuit

    def test_unknown_codec_id_rejected(self):
        blob = bytearray(
            compress(
                conformance_field((8, 8), "float32"), 1e-3, "abs",
                codec="szx",
            )
        )
        blob[5] = 0x7F  # codec-id byte of the 'STZC' envelope
        with pytest.raises(ValueError, match="unknown codec id"):
            decompress(bytes(blob))

    def test_unknown_envelope_flag_rejected(self):
        blob = bytearray(wrap_selected(CODEC_STZ, b"payload"))
        blob[6] |= 0x10  # flags byte
        with pytest.raises(ValueError, match="unknown feature flags"):
            unwrap_selected(bytes(blob))

    def test_truncated_envelope_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            unwrap_selected(b"STZC")

    def test_stream_reader_redirects_envelopes(self):
        from repro.core.stream import StreamReader

        blob = compress(
            conformance_field((8, 8), "float32"), 1e-3, "abs", codec="szx"
        )
        with pytest.raises(ValueError, match="codec-selected container"):
            StreamReader(blob)

    def test_progressive_through_envelope(self):
        data = conformance_field((16, 16, 16), "float32")
        blob = compress(data, 1e-2, "abs", codec="sperr")
        coarse = decompress_progressive(blob, level=1)
        assert coarse.ndim == 3 and coarse.size < data.size
        with pytest.raises(ValueError, match="progressive"):
            decompress_progressive(
                compress(data, 1e-2, "abs", codec="szx"), level=1
            )

    def test_pipeline_rejects_foreign_codec_config(self):
        data = conformance_field((8, 8), "float32")
        with pytest.raises(ValueError, match="codec dispatch"):
            stz_compress(data, 1e-3, "abs", STZConfig(codec="auto"))


class TestFrameCodecIds:
    def test_auto_stream_records_per_frame_codecs(self):
        shape = (12, 10, 8)
        steps = [
            np.full(shape, 1.0, np.float32),
            np.random.default_rng(1).normal(size=shape).astype(np.float32),
        ]
        blob = compress_stream(steps, 1e-3, keyframe_interval=1, codec="auto")
        reader = MultiFrameReader(blob)
        assert reader.flags & MULTI_CODEC
        assert reader.frames[0].codec == "szx"  # constant step
        assert all(f.codec in CANDIDATES for f in reader.frames)

    def test_writer_gates_foreign_codecs_behind_flag(self):
        w = MultiFrameWriter()
        with pytest.raises(ValueError, match="MULTI_CODEC"):
            w.add_frame(b"x", codec_id=CODEC_IDS["zfp"])
        w2 = MultiFrameWriter(flags=MULTI_CODEC)
        w2.add_frame(b"x", codec_id=CODEC_IDS["zfp"])
        assert w2.nframes == 1

    def test_writer_rejects_unknown_codec_id(self):
        w = MultiFrameWriter(flags=MULTI_CODEC)
        with pytest.raises(ValueError, match="unknown codec id"):
            w.add_frame(b"x", codec_id=99)

    def test_unknown_frame_codec_id_rejected_at_open(self):
        steps = [
            smooth_field((8, 6, 4), seed=70 + t).astype(np.float32)
            for t in range(2)
        ]
        blob = bytearray(
            compress_stream(steps, 1e-3, keyframe_interval=1, codec="auto")
        )
        import struct

        table_off, nframes, _ = struct.unpack(
            "<QI4s", bytes(blob[-16:])
        )
        # codec byte of frame 0: row layout <QQBB6x> => offset 17
        blob[table_off + 17] = 0x7F
        with pytest.raises(ValueError, match="unknown codec id"):
            MultiFrameReader(bytes(blob))

    def test_codec_selected_stream_random_access(self):
        shape = (10, 8, 6)
        steps = [
            smooth_field(shape, seed=80 + t).astype(np.float32)
            for t in range(6)
        ]
        blob = compress_stream(steps, 1e-3, keyframe_interval=3, codec="auto")
        sd = StreamingDecompressor(blob)
        seq = list(iter_decompress(blob))
        for k in (5, 0, 3):
            assert np.array_equal(sd.read_frame(k), seq[k])


# ---------------------------------------------------------------------------
# size regression vs fixed codecs
# ---------------------------------------------------------------------------

class TestSizeRegression:
    @pytest.mark.parametrize("name", REGISTRY)
    def test_auto_never_worse_than_worst_fixed(self, name):
        data = registry_field(name)
        abs_eb = 1e-3 * float(data.max() - data.min())
        cfg = STZConfig()
        fixed_sizes = {}
        for cname, cand in CANDIDATES.items():
            fixed_sizes[cname] = len(
                cand.compress(np.asarray(data), abs_eb, cfg, None)
            )
        auto_blob = compress(data, abs_eb, "abs", codec="auto")
        recon = decompress(auto_blob)
        assert_error_bounded(data, recon, abs_eb, context=f"auto {name}")
        assert len(auto_blob) <= max(fixed_sizes.values()), fixed_sizes
