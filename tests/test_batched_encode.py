"""Batched encode path: equivalence with the per-segment primitives.

The level-batched entry points must be drop-in equivalent to their
per-segment counterparts: ``huffman_encode_many`` byte-identical to
``huffman_encode``, ``quantize_many`` bit-identical to ``quantize``,
and containers written through the batched pipeline decodable by the
unchanged reader path.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import max_err, smooth_field
from repro.core.config import STZConfig
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.stream import StreamReader
from repro.encoding.bitstream import pack_bits, pack_codes, pack_codes_at
from repro.encoding.huffman import (
    huffman_decode,
    huffman_encode,
    huffman_encode_many,
)
from repro.encoding.quantizer import dequantize, quantize, quantize_many


def _stream_cases(rng):
    """Mixed symbol streams: empty, constant, tiny/wide alphabets."""
    cases = [
        np.zeros(0, np.uint32),  # empty
        np.array([5], np.uint32),  # single symbol
        np.full(4096, 7, np.uint32),  # constant
        np.array([0, 1], np.uint32),  # minimal two-symbol
    ]
    for _ in range(20):
        m = int(rng.integers(1, 20000))
        kind = int(rng.integers(0, 4))
        if kind == 0:
            s = np.zeros(m, np.uint32)
        elif kind == 1:
            s = rng.integers(0, 3, m).astype(np.uint32)
        elif kind == 2:
            s = (16384 + np.rint(rng.normal(0, 40, m))).astype(np.uint32)
        else:
            s = rng.integers(0, 60000, m).astype(np.uint32)
        cases.append(s)
    return cases


class TestHuffmanEncodeMany:
    def test_byte_identical_to_single(self, rng):
        cases = _stream_cases(rng)
        fused = huffman_encode_many(cases)
        for i, (syms, blob) in enumerate(zip(cases, fused)):
            assert blob == huffman_encode(syms), f"stream {i}"

    def test_roundtrip(self, rng):
        cases = _stream_cases(rng)
        for syms, blob in zip(cases, huffman_encode_many(cases)):
            assert np.array_equal(huffman_decode(blob), syms)

    def test_empty_list(self):
        assert huffman_encode_many([]) == []

    def test_explicit_chunk(self, rng):
        syms = rng.integers(0, 9, 5000).astype(np.uint32)
        a = huffman_encode(syms, chunk=128)
        (b,) = huffman_encode_many([syms], chunk=128)
        assert a == b

    @given(st.integers(0, 2**31), st.integers(1, 9))
    @settings(max_examples=25, deadline=None)
    def test_many_streams_property(self, seed, n):
        rng = np.random.default_rng(seed)
        cases = [
            rng.integers(0, int(rng.integers(1, 300)), int(rng.integers(0, 3000)))
            .astype(np.uint32)
            for _ in range(n)
        ]
        fused = huffman_encode_many(cases)
        assert [huffman_encode(s) for s in cases] == fused


class TestPackCodesAt:
    def test_matches_pack_bits(self, rng):
        for _ in range(50):
            n = int(rng.integers(0, 1500))
            lens = rng.integers(1, 17, n)
            codes = (
                rng.integers(0, 1 << 16, n).astype(np.uint64)
                & ((np.uint64(1) << lens.astype(np.uint64)) - np.uint64(1))
            )
            a, na = pack_bits(codes, lens)
            b, nb = pack_codes(codes, lens)
            assert na == nb
            assert np.array_equal(a, b)

    def test_multi_stream_scatter(self, rng):
        """Byte-aligned streams packed in one scatter match per-stream."""
        streams = [
            (
                rng.integers(1, 17, int(rng.integers(1, 500))),
                rng,
            )
            for _ in range(5)
        ]
        codes_l, lens_l, starts_l, packed_ref = [], [], [], []
        bit_base = 0
        boundaries = []
        total = 0
        for lens, _ in streams:
            codes = (
                rng.integers(0, 1 << 16, lens.size).astype(np.uint64)
                & ((np.uint64(1) << lens.astype(np.uint64)) - np.uint64(1))
            )
            ref, nbits = pack_codes(codes, lens)
            packed_ref.append(ref)
            ends = np.cumsum(lens)
            boundaries.append(total)
            codes_l.append(codes.astype(np.uint32))
            lens_l.append(lens.astype(np.int64))
            starts_l.append(ends - lens + bit_base)
            bit_base += 8 * ((nbits + 7) >> 3)
            total += lens.size
        nbytes = bit_base >> 3
        big = pack_codes_at(
            np.concatenate(codes_l),
            np.concatenate(lens_l),
            np.concatenate(starts_l),
            nbytes,
            boundaries=np.array(boundaries[1:], dtype=np.int64),
        )
        off = 0
        for ref in packed_ref:
            assert np.array_equal(big[off : off + ref.size], ref)
            off += ((ref.size + 0) if ref.size else 0)


class TestQuantizeMany:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("eb", [1e-6, 0.004, 2.0])
    @pytest.mark.parametrize("f32", [False, True])
    def test_bit_identical_to_per_block(self, rng, dtype, eb, f32):
        blocks, preds = [], []
        for _ in range(9):
            n = int(rng.integers(0, 30000))
            v = (rng.normal(0, 10, n) * rng.choice([1e-6, 1, 1e6], n)).astype(
                dtype
            )
            if n > 4:
                v[:4] = [np.nan, np.inf, -np.inf, 0.0]
            blocks.append(v)
            preds.append((v + rng.normal(0, 0.01, n)).astype(dtype))
        blocks.append(np.zeros(0, dtype))
        preds.append(np.zeros(0, dtype))
        fused = quantize_many(blocks, preds, eb, f32=f32)
        for i, (v, p, qb) in enumerate(zip(blocks, preds, fused)):
            single = quantize(v, p, eb, f32=f32)
            assert np.array_equal(single.codes, qb.codes), i
            assert np.array_equal(single.outlier_pos, qb.outlier_pos), i
            assert np.array_equal(
                single.outlier_val, qb.outlier_val, equal_nan=True
            ), i
            assert np.array_equal(single.recon, qb.recon, equal_nan=True), i

    @pytest.mark.parametrize("f32", [False, True])
    def test_recon_matches_dequantize(self, rng, f32):
        """Encoder recon == decoder recon (same flag), so the bound is
        hard."""
        for dtype in (np.float32, np.float64):
            v = (rng.normal(0, 5, 20000)).astype(dtype)
            p = (v + rng.normal(0, 0.01, v.size)).astype(dtype)
            for eb in (1e-5, 0.004):
                (qb,) = quantize_many([v], [p], eb, f32=f32)
                rec = dequantize(
                    qb.codes, p, eb, qb.outlier_pos, qb.outlier_val, f32=f32
                )
                assert np.array_equal(rec, qb.recon)
                assert (
                    np.max(
                        np.abs(
                            rec.astype(np.float64) - v.astype(np.float64)
                        )
                    )
                    <= eb
                )

    def test_empty_list(self):
        assert quantize_many([], [], 0.1) == []

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quantize_many([np.ones(3)], [np.zeros(4)], 0.1)

    def test_mixed_dtype_rejected(self):
        with pytest.raises(ValueError):
            quantize_many(
                [np.ones(3, np.float32), np.ones(3, np.float64)],
                [np.zeros(3, np.float32), np.zeros(3, np.float64)],
                0.1,
            )


class TestEndToEnd:
    """Containers from the batched writer decode via the reader path."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_batched_container_roundtrip(self, dtype):
        data = smooth_field((33, 31, 29), seed=9).astype(dtype)
        eb = 1e-3
        blob = stz_compress(data, eb)
        assert max_err(stz_decompress(blob), data) <= eb
        # memoryview source (zero-copy reader) and file source agree
        from_mem = stz_decompress(memoryview(blob))
        from_file = stz_decompress(StreamReader(io.BytesIO(blob)))
        assert np.array_equal(from_mem, from_file)

    def test_serial_and_threaded_containers_identical(self):
        data = smooth_field((32, 32, 32), seed=10).astype(np.float32)
        assert stz_compress(data, 1e-3) == stz_compress(
            data, 1e-3, threads=4
        )

    def test_read_segment_is_zero_copy_view(self):
        data = smooth_field((24, 24), seed=12).astype(np.float32)
        blob = stz_compress(data, 1e-3)
        reader = StreamReader(blob)
        seg = reader.header.segments[0]
        payload = reader.read_segment(seg)
        assert isinstance(payload, memoryview)
        assert len(payload) == seg.length

    def test_unknown_flag_bits_rejected(self):
        """Flag bits can change decode semantics (the f32-quant bit
        does), so a reader must refuse bits it does not understand
        rather than silently decode with the wrong arithmetic."""
        data = smooth_field((24, 24), seed=16).astype(np.float32)
        blob = bytearray(stz_compress(data, 1e-3))
        flags_off = 11  # magic(4) version dtype ndim levels interp mode resid
        blob[flags_off] |= 0x80
        with pytest.raises(ValueError, match="unknown feature flags"):
            StreamReader(bytes(blob))

    def test_f32_flag_roundtrips_in_container(self):
        data = smooth_field((24, 24), seed=14).astype(np.float32)
        blob = stz_compress(data, 1e-3)
        assert StreamReader(blob).header.config.f32_quant is True
        legacy = stz_compress(data, 1e-3, config=STZConfig(f32_quant=False))
        assert StreamReader(legacy).header.config.f32_quant is False

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_pre_flag_container_decodes_within_bound(self, dtype):
        """Containers without the f32-quant bit (everything written by
        pre-flag encoders, modeled by ``f32_quant=False``) reconstruct
        with the float64 formula they were encoded with; flagged
        containers reconstruct with the float32 formula.  Either way
        the one reader path honors the hard bound, because the flag
        travels with the container instead of being guessed from the
        payload dtype."""
        data = smooth_field((33, 31, 29), seed=15).astype(dtype)
        eb = 1e-3
        for cfg in (STZConfig(f32_quant=False), STZConfig()):
            blob = stz_compress(data, eb, config=cfg)
            assert max_err(stz_decompress(blob), data) <= eb

    def test_per_block_fallback_identical(self, monkeypatch):
        """The per-block chain (huge levels / threaded mode) must emit
        the same container as the level-fused path."""
        import repro.core.pipeline as pipeline

        data = smooth_field((28, 26, 30), seed=13).astype(np.float32)
        fused = stz_compress(data, 1e-3)
        monkeypatch.setattr(pipeline, "_LEVEL_FUSE_LIMIT", 0)
        per_block = stz_compress(data, 1e-3)
        assert fused == per_block
