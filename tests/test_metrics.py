"""Metric correctness tests (PSNR, SSIM, rates)."""

import numpy as np
import pytest

from repro.metrics import (
    bitrate,
    compression_ratio,
    max_abs_error,
    mse,
    nrmse,
    psnr,
    rd_curve,
    ssim,
)
from repro.metrics.rate import RDPoint, interpolate_psnr_at_cr


class TestErrorMetrics:
    def test_mse_known_value(self):
        a = np.array([0.0, 0.0])
        b = np.array([3.0, 4.0])
        assert mse(a, b) == pytest.approx(12.5)

    def test_psnr_known_value(self):
        # range 1, uniform error 0.1 -> PSNR = -20*log10(0.1) = 20 dB
        a = np.linspace(0, 1, 1000)
        b = a + 0.1
        assert psnr(a, b) == pytest.approx(20.0, abs=1e-6)

    def test_psnr_perfect_is_inf(self):
        a = np.arange(10.0)
        assert psnr(a, a) == float("inf")

    def test_psnr_explicit_range(self):
        a = np.zeros(100)
        b = a + 0.5
        assert psnr(a, b, data_range=1.0) == pytest.approx(
            -20 * np.log10(0.5)
        )

    def test_psnr_rejects_zero_range(self):
        with pytest.raises(ValueError):
            psnr(np.zeros(5), np.ones(5))

    def test_max_abs_error(self):
        assert max_abs_error(np.zeros(3), np.array([0.1, -0.5, 0.2])) == 0.5

    def test_nrmse(self):
        a = np.array([0.0, 2.0])
        b = np.array([0.0, 2.2])
        # mse = 0.04/2 = 0.02; rmse = sqrt(0.02); range = 2
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.02) / 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))


class TestSSIM:
    def test_identity(self, rng):
        a = rng.normal(size=(32, 32))
        assert ssim(a, a) == pytest.approx(1.0)

    def test_noise_degrades(self, rng):
        a = rng.normal(size=(48, 48)).cumsum(axis=0)
        s1 = ssim(a, a + 0.01 * rng.normal(size=a.shape))
        s2 = ssim(a, a + 1.0 * rng.normal(size=a.shape))
        assert s2 < s1 <= 1.0

    def test_3d_volumes(self, rng):
        a = rng.normal(size=(16, 16, 16)).cumsum(axis=2)
        assert 0.9 < ssim(a, a + 1e-6) <= 1.0

    def test_constant_fields(self):
        a = np.full((16, 16), 2.0)
        assert ssim(a, a.copy()) == 1.0
        assert ssim(a, a + 1.0) < 1.0 or True  # range-0 path returns 0/1
        assert ssim(a, a + 1.0) == 0.0

    def test_small_array_window_shrink(self, rng):
        a = rng.normal(size=(5, 5))
        assert ssim(a, a) == pytest.approx(1.0)

    def test_structural_vs_pointwise(self, rng):
        # a constant offset hurts SSIM far less than shuffling, even
        # though the shuffle preserves every value exactly
        a = np.cumsum(rng.normal(size=(64, 64)), axis=0)
        shifted = a + 0.05 * (a.max() - a.min())
        shuffled = rng.permutation(a.reshape(-1)).reshape(a.shape)
        assert ssim(a, shifted) > 3 * ssim(a, shuffled)
        assert ssim(a, shuffled) < 0.3


class TestRates:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0
        with pytest.raises(ValueError):
            compression_ratio(10, 0)

    def test_bitrate(self):
        data = np.zeros(1000, np.float32)
        assert bitrate(data, bytes(500)) == pytest.approx(4.0)

    def test_rd_curve_monotone_rate(self, rng):
        from repro.sz3 import sz3_compress, sz3_decompress

        data = np.cumsum(rng.normal(size=(24, 24, 24)), axis=0).astype(
            np.float32
        )
        pts = rd_curve(
            lambda d, eb: sz3_compress(d, eb, "rel"),
            sz3_decompress,
            data,
            [1e-4, 1e-3, 1e-2],
        )
        crs = [p.cr for p in pts]
        psnrs = [p.psnr for p in pts]
        assert crs == sorted(crs)  # looser bound -> better ratio
        assert psnrs == sorted(psnrs, reverse=True)  # and worse quality
        for p in pts:
            assert p.max_err <= p.eb * (data.max() - data.min()) * (1 + 1e-9)

    def test_interpolate_psnr(self):
        pts = [
            RDPoint(0, 10, 3.2, 100.0, 0),
            RDPoint(0, 100, 0.32, 60.0, 0),
        ]
        assert interpolate_psnr_at_cr(pts, 10) == 100.0
        assert interpolate_psnr_at_cr(pts, 100) == 60.0
        mid = interpolate_psnr_at_cr(pts, 31.6)
        assert 60 < mid < 100
