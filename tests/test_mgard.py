"""MGARD-like codec tests (multigrid surplus + correction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import max_err, smooth_field
from repro.mgard import MGARDCompressor, mgard_compress, mgard_decompress
from repro.mgard.codec import _mass_solve, default_levels


class TestHelpers:
    def test_default_levels(self):
        assert default_levels((64, 64, 64)) >= 4
        assert default_levels((4, 4)) == 1
        assert default_levels((3, 3)) == 1

    def test_mass_solve_identity_on_constants(self):
        # M has unit row sums (lumped boundary), so constants are fixed
        c = np.full((12, 10), 3.5)
        out = _mass_solve(c)
        assert np.allclose(out, 3.5)

    def test_mass_solve_is_smoothing_inverse(self, rng):
        # applying M then solving must return the original
        x = rng.normal(size=16)
        ab_mul = np.convolve(x, [1 / 6, 2 / 3, 1 / 6], mode="same")
        ab_mul[0] = x[0] * 5 / 6 + x[1] / 6
        ab_mul[-1] = x[-1] * 5 / 6 + x[-2] / 6
        back = _mass_solve(ab_mul)
        assert np.allclose(back, x, atol=1e-10)


class TestRoundtrip:
    @pytest.mark.parametrize("correction", [True, False])
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3])
    def test_strict_bound(self, smooth3d_f32, eb, correction):
        blob = mgard_compress(smooth3d_f32, eb, correction=correction)
        rec = mgard_decompress(blob)
        assert rec.shape == smooth3d_f32.shape
        assert rec.dtype == smooth3d_f32.dtype
        # float32 output cast adds at most half an ulp
        assert max_err(rec, smooth3d_f32) <= eb * (1 + 1e-6)

    @pytest.mark.parametrize("shape", [(65,), (33, 47), (21, 18, 15)])
    def test_odd_shapes(self, shape):
        data = smooth_field(shape, seed=50)
        rec = mgard_decompress(mgard_compress(data, 1e-3))
        assert max_err(rec, data) <= 1e-3

    def test_relative_bound(self, smooth2d_f32):
        blob = mgard_compress(smooth2d_f32, 1e-3, eb_mode="rel")
        rng_v = float(smooth2d_f32.max() - smooth2d_f32.min())
        assert max_err(mgard_decompress(blob), smooth2d_f32) <= (
            1e-3 * rng_v * (1 + 1e-6)
        )

    def test_explicit_levels(self, smooth3d_f32):
        for L in (1, 2, 3):
            blob = mgard_compress(smooth3d_f32, 1e-2, levels=L)
            assert max_err(mgard_decompress(blob), smooth3d_f32) <= 1e-2

    def test_progressive_shapes(self, smooth3d_f32):
        blob = mgard_compress(smooth3d_f32, 1e-3, levels=3)
        root = mgard_decompress(blob, level=1)
        assert root.shape == (4, 4, 4)
        mid = mgard_decompress(blob, level=2)
        assert mid.shape == (8, 8, 8)
        full = mgard_decompress(blob, level=4)
        assert full.shape == smooth3d_f32.shape

    def test_progressive_validation(self, smooth3d_f32):
        blob = mgard_compress(smooth3d_f32, 1e-3, levels=2)
        with pytest.raises(ValueError):
            mgard_decompress(blob, level=0)
        with pytest.raises(ValueError):
            mgard_decompress(blob, level=5)

    def test_bad_container(self):
        with pytest.raises(ValueError):
            mgard_decompress(b"junk" + bytes(64))

    def test_correction_changes_stream(self, smooth3d_f32):
        a = mgard_compress(smooth3d_f32, 1e-3, correction=True)
        b = mgard_compress(smooth3d_f32, 1e-3, correction=False)
        assert a != b

    @given(st.integers(0, 2**31), st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_bound_property(self, seed, correction):
        data = (
            np.random.default_rng(seed)
            .normal(size=(10, 12, 9))
            .astype(np.float32)
        )
        blob = mgard_compress(data, 5e-2, correction=correction)
        assert max_err(mgard_decompress(blob), data) <= 5e-2 * (1 + 1e-6)


class TestObjectAPI:
    def test_capabilities(self):
        c = MGARDCompressor(1e-3)
        assert c.supports_progressive
        assert not c.supports_random_access
        assert c.name == "MGARD-X"
