"""Tests for the SZ3-style baseline compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import max_err, smooth_field
from repro.sz3 import (
    SZ3Compressor,
    sz3_compress,
    sz3_compress_omp,
    sz3_decompress,
    sz3_decompress_omp,
)
from repro.sz3.interpolation import anchor_stride, schedule


class TestSchedule:
    def test_covers_every_point_once(self):
        for shape in [(16,), (9, 7), (8, 9, 10)]:
            astride = anchor_stride(shape)
            seen = np.zeros(shape, dtype=int)
            sel = tuple(slice(0, None, astride) for _ in shape)
            seen[sel] += 1  # anchors
            for b in schedule(shape, astride):
                seen[b.target_sel] += 1
            assert np.all(seen == 1), shape

    def test_batch_sizes_match_views(self):
        shape = (17, 13)
        astride = anchor_stride(shape)
        probe = np.zeros(shape)
        for b in schedule(shape, astride):
            assert probe[b.target_sel].size == b.size

    def test_anchor_stride_small_grid(self):
        assert anchor_stride((4, 4)) == 2
        assert anchor_stride((64, 64, 64)) >= 8


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_error_bound_3d(self, smooth3d_f32, eb):
        blob = sz3_compress(smooth3d_f32, eb)
        rec = sz3_decompress(blob)
        assert rec.shape == smooth3d_f32.shape
        assert rec.dtype == smooth3d_f32.dtype
        assert max_err(rec, smooth3d_f32) <= eb

    def test_error_bound_f64(self, smooth3d_f64):
        blob = sz3_compress(smooth3d_f64, 1e-6)
        rec = sz3_decompress(blob)
        assert rec.dtype == np.float64
        assert max_err(rec, smooth3d_f64) <= 1e-6

    @pytest.mark.parametrize(
        "shape", [(100,), (37, 53), (21, 34, 17), (8, 8, 8), (5, 4)]
    )
    def test_odd_shapes(self, shape, rng):
        data = smooth_field(shape, seed=7).astype(np.float32)
        rec = sz3_decompress(sz3_compress(data, 1e-3))
        assert max_err(rec, data) <= 1e-3

    def test_relative_bound(self, smooth2d_f32):
        blob = sz3_compress(smooth2d_f32, 1e-3, eb_mode="rel")
        rec = sz3_decompress(blob)
        rng_v = float(smooth2d_f32.max() - smooth2d_f32.min())
        assert max_err(rec, smooth2d_f32) <= 1e-3 * rng_v

    def test_linear_interp_mode(self, smooth3d_f32):
        blob = sz3_compress(smooth3d_f32, 1e-3, interp="linear")
        assert max_err(sz3_decompress(blob), smooth3d_f32) <= 1e-3

    def test_cubic_beats_linear_on_smooth_data(self):
        data = smooth_field((48, 48), seed=8, noise=0.0).astype(np.float32)
        c = len(sz3_compress(data, 1e-4, interp="cubic"))
        l = len(sz3_compress(data, 1e-4, interp="linear"))
        assert c < l

    def test_compresses_smooth_data_well(self):
        data = smooth_field((64, 64), seed=9, noise=0.0).astype(np.float32)
        blob = sz3_compress(data, 1e-3, eb_mode="rel")
        assert data.nbytes / len(blob) > 10

    def test_random_noise_still_bounded(self, rng):
        data = rng.normal(size=(20, 20, 20)).astype(np.float32)
        rec = sz3_decompress(sz3_compress(data, 0.05))
        assert max_err(rec, data) <= 0.05

    def test_constant_field(self):
        data = np.full((64, 64), 3.14, np.float32)
        blob = sz3_compress(data, 1e-5)
        assert np.array_equal(sz3_decompress(blob), data)
        assert len(blob) < data.nbytes / 10  # container floor ~150 B

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            sz3_compress(np.zeros((4, 4), np.float32), -1.0)
        with pytest.raises(TypeError):
            sz3_compress(np.zeros((4, 4), np.int32), 1e-3)
        with pytest.raises(ValueError):
            sz3_compress(np.zeros((4, 4), np.float32), 1e-3, eb_mode="pct")
        with pytest.raises(ValueError):
            sz3_decompress(b"notasz3container" * 4)

    @given(
        st.integers(0, 2**31),
        st.sampled_from([1e-2, 1e-3]),
        st.lists(st.integers(2, 14), min_size=1, max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_bound_property(self, seed, eb, dims):
        data = (
            np.random.default_rng(seed)
            .normal(size=tuple(dims))
            .astype(np.float32)
        )
        rec = sz3_decompress(sz3_compress(data, eb))
        assert max_err(rec, data) <= eb


class TestOMP:
    def test_bound_holds(self, smooth3d_f32):
        blob = sz3_compress_omp(smooth3d_f32, 1e-3, threads=4)
        rec = sz3_decompress_omp(blob)
        assert max_err(rec, smooth3d_f32) <= 1e-3

    def test_cr_drop_vs_serial(self):
        # the paper's Table 3 asterisk: chunked OMP compression reduces CR
        data = smooth_field((64, 48, 48), seed=10, noise=0.0).astype(
            np.float32
        )
        serial = len(sz3_compress(data, 1e-4))
        omp = len(sz3_compress_omp(data, 1e-4, threads=8))
        assert omp >= serial  # never better, typically a few % worse

    def test_single_thread_chunking(self, smooth2d_f32):
        blob = sz3_compress_omp(smooth2d_f32, 1e-3, threads=1)
        assert max_err(sz3_decompress_omp(blob), smooth2d_f32) <= 1e-3

    def test_wrong_container_rejected(self, smooth2d_f32):
        blob = sz3_compress(smooth2d_f32, 1e-3)
        with pytest.raises(ValueError):
            sz3_decompress_omp(blob)


class TestObjectAPI:
    def test_capabilities(self):
        c = SZ3Compressor(1e-3)
        assert not c.supports_progressive
        assert not c.supports_random_access
        assert c.name == "SZ3"

    def test_roundtrip(self, smooth2d_f32):
        c = SZ3Compressor(1e-3, eb_mode="rel")
        rec = c.decompress(c.compress(smooth2d_f32))
        rng_v = float(smooth2d_f32.max() - smooth2d_f32.min())
        assert max_err(rec, smooth2d_f32) <= 1e-3 * rng_v


class TestF32QuantFlag:
    """Container v2: flag-gated float32 quantizer arithmetic.

    The same contract as the STZ header's f32-quant bit: the encoder
    records the arithmetic mode, the decoder provably mirrors it, and
    containers written without the flag keep decoding with the float64
    formula they were encoded with.
    """

    def test_default_container_bytes_unchanged(self, smooth2d_f32):
        # f32=False (the default) must still emit the v1 container —
        # byte-compatible with every pre-flag reader
        blob = sz3_compress(smooth2d_f32, 1e-3)
        assert blob == sz3_compress(smooth2d_f32, 1e-3, f32=False)
        # sections: u64 count + u64 length, then the header section
        assert blob[16:20] == b"SZ3r" and blob[20] == 1  # version

    def test_f32_roundtrip_and_version(self, smooth2d_f32):
        vr = float(smooth2d_f32.max() - smooth2d_f32.min())
        blob = sz3_compress(smooth2d_f32, 1e-3, "rel", f32=True)
        assert blob[16:20] == b"SZ3r" and blob[20] == 2  # v2
        rec = sz3_decompress(blob)
        assert max_err(rec, smooth2d_f32) <= 1e-3 * vr

    def test_f32_recon_matches_decoder(self, smooth3d_f32):
        from repro.sz3.compressor import sz3_compress_with_recon

        blob, recon = sz3_compress_with_recon(
            smooth3d_f32, 1e-3, "rel", f32=True
        )
        assert recon.tobytes() == sz3_decompress(blob).tobytes()

    def test_f64_payload_with_flag_still_bounded(self, smooth3d_f64):
        # f32 opt-in on a float64 payload: the bound analysis keeps the
        # arithmetic in float64 on both sides (recorded flag and all)
        vr = float(smooth3d_f64.max() - smooth3d_f64.min())
        blob = sz3_compress(smooth3d_f64, 1e-4, "rel", f32=True)
        assert max_err(sz3_decompress(blob), smooth3d_f64) <= 1e-4 * vr
