"""Amortized selection + single-pass verified commit (DESIGN.md §7).

Four contracts pinned here:

* **Recon equivalence** — every candidate's ``compress_with_recon``
  returns exactly what decompressing its blob returns, bit for bit;
  the commit-time bound verification is therefore equivalent to the
  old decompress-and-check, and the reconstruction itself satisfies
  the hard bound (the conformance sweep for the fast-verify path).
* **Fast-verify byte identity** — routing every backend through the
  decompression fallback instead of its encoder-tracked recon changes
  nothing about the bytes ``auto`` emits (golden-input envelopes).
* **Amortized probing** — the content-digest probe cache returns
  exactly what recomputation would (and skips the tile compressions);
  the feature-drift gate keeps stable streams at one full probe per
  selector while catching regime changes; scores transfer between
  selectors through the label cache.
* **Overlap determinism** — the double-buffered engine emits archives
  byte-identical to the serial engine, for plain STZ and ``auto``
  streams, in memory and through a file sink, and propagates worker
  errors.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.api import compress, compress_stream, decompress
from repro.core.config import STZConfig
from repro.core.select import (
    CANDIDATES,
    BlockProbe,
    CodecSelector,
    clear_probe_cache,
    features_drifted,
    probe_features,
)
from repro.core.streaming import StreamingCompressor
from repro.datasets.synthetic import smooth_field
from repro.testing import conformance_field, evolving_field

from helpers import assert_error_bounded


@pytest.fixture(autouse=True)
def _fresh_probe_cache():
    clear_probe_cache()
    yield
    clear_probe_cache()


# ---------------------------------------------------------------------------
# single-pass verified commit
# ---------------------------------------------------------------------------

def _field_for(name: str, variant: str) -> tuple[np.ndarray, float]:
    data = conformance_field((16, 14, 12), "float32", variant)
    vrange = float(data.max() - data.min())
    return data, (1e-3 * vrange if vrange else 1e-3)


class TestReconCommit:
    @pytest.mark.parametrize("name", sorted(CANDIDATES))
    @pytest.mark.parametrize("variant", ["unit", "large", "shifted"])
    def test_with_recon_matches_decompress(self, name, variant):
        data, abs_eb = _field_for(name, variant)
        cand = CANDIDATES[name]
        blob, recon = cand.compress_with_recon(data, abs_eb, STZConfig(), None)
        dec = cand.decompress(blob)
        assert recon.dtype == dec.dtype and recon.shape == dec.shape
        assert recon.tobytes() == dec.tobytes()

    @pytest.mark.parametrize("name", sorted(CANDIDATES))
    def test_with_recon_matches_decompress_f64(self, name):
        data = smooth_field((11, 9, 7), seed=8)
        abs_eb = 1e-4 * float(data.max() - data.min())
        cand = CANDIDATES[name]
        blob, recon = cand.compress_with_recon(data, abs_eb, STZConfig(), None)
        assert recon.tobytes() == cand.decompress(blob).tobytes()

    @pytest.mark.parametrize(
        "name", [n for n in sorted(CANDIDATES) if n not in ("sperr", "mgard")]
    )
    def test_with_recon_nonfinite_bitexact(self, name):
        # NaN/inf must survive the encoder-tracked reconstruction the
        # same way they survive a decode (sperr/mgard reject non-finite
        # input outright, which the engine handles by fallback)
        data = smooth_field((12, 10, 8), seed=9).astype(np.float32)
        data[3, 4, 5] = np.nan
        data[0, 0, 0] = np.inf
        cand = CANDIDATES[name]
        blob, recon = cand.compress_with_recon(data, 1e-3, STZConfig(), None)
        assert recon.tobytes() == cand.decompress(blob).tobytes()

    @pytest.mark.parametrize("name", sorted(CANDIDATES))
    @pytest.mark.parametrize(
        "variant", ["unit", "large", "tiny", "shifted", "constant"]
    )
    def test_recon_holds_bound(self, name, variant):
        # the conformance angle of the recon-verified commit: what the
        # engine verifies against IS a bounded reconstruction
        data, abs_eb = _field_for(name, variant)
        blob, recon = CANDIDATES[name].compress_with_recon(
            data, abs_eb, STZConfig(), None
        )
        assert_error_bounded(
            data, recon, abs_eb, context=f"{name} recon {variant}"
        )


class TestFastVerifyByteIdentity:
    def _auto_bytes(self, data, abs_eb, seed=0):
        clear_probe_cache()
        return compress(
            data, abs_eb, "abs", STZConfig(codec="auto", select_seed=seed)
        )

    @pytest.mark.parametrize(
        "shape,seed,eb",
        [((24, 20, 16), 24, 4e-3), ((16, 16, 16), 11, 1e-3)],
    )
    def test_envelope_bytes_unchanged_by_recon_path(
        self, shape, seed, eb, monkeypatch
    ):
        data = smooth_field(shape, seed=seed).astype(np.float32)
        fast = self._auto_bytes(data, eb)
        # force every candidate through the decompression fallback
        for name, cand in list(CANDIDATES.items()):
            monkeypatch.setitem(
                CANDIDATES, name, dataclasses.replace(cand, with_recon=None)
            )
        slow = self._auto_bytes(data, eb)
        assert fast == slow
        assert_error_bounded(data, decompress(fast), eb)


# ---------------------------------------------------------------------------
# amortized probing
# ---------------------------------------------------------------------------

def _counting_registry(monkeypatch):
    """Swap every candidate's compress for a counting wrapper."""
    counts: dict[str, int] = {}

    def wrap(name, fn):
        def counted(*a, **kw):
            counts[name] = counts.get(name, 0) + 1
            return fn(*a, **kw)

        return counted

    for name, cand in list(CANDIDATES.items()):
        monkeypatch.setitem(
            CANDIDATES,
            name,
            dataclasses.replace(cand, compress=wrap(name, cand.compress)),
        )
    return counts


class TestProbeCache:
    def test_identical_probe_hits_cache(self, monkeypatch):
        counts = _counting_registry(monkeypatch)
        data = smooth_field((48, 40, 32), seed=5).astype(np.float32)
        sel = CodecSelector(seed=0)
        first = sel.probe(data, 1e-3, STZConfig(), ("sz3", "szx"))
        n_after_first = dict(counts)
        second = sel.probe(data, 1e-3, STZConfig(), ("sz3", "szx"))
        assert second == first  # cached raw == recomputed raw
        assert counts == n_after_first  # no tile was recompressed
        assert sel.nprobes == 2  # both count as probes for the EMA

    def test_different_data_misses_cache(self, monkeypatch):
        counts = _counting_registry(monkeypatch)
        sel = CodecSelector(seed=0)
        a = smooth_field((48, 40, 32), seed=5).astype(np.float32)
        b = smooth_field((48, 40, 32), seed=6).astype(np.float32)
        sel.probe(a, 1e-3, STZConfig(), ("szx",))
        n = counts.get("szx", 0)
        sel.probe(b, 1e-3, STZConfig(), ("szx",))
        assert counts["szx"] == 2 * n  # recompressed for the new data

    def test_cache_is_deterministic_across_selectors(self):
        data = smooth_field((48, 40, 32), seed=7).astype(np.float32)
        raw_cold = CodecSelector(seed=3).probe(
            data, 1e-3, STZConfig(), ("sz3", "szx", "zfp")
        )
        raw_warm = CodecSelector(seed=9).probe(
            data, 1e-3, STZConfig(), ("sz3", "szx", "zfp")
        )
        assert raw_cold == raw_warm


class TestDriftDetector:
    def _probe(self, **kw) -> BlockProbe:
        base = dict(
            vrange=1.0, smoothness=0.02, const_frac=0.0,
            nonfinite_frac=0.0, label="smooth",
        )
        base.update(kw)
        return BlockProbe(**base)

    def test_stable_features_do_not_drift(self):
        a = self._probe()
        b = self._probe(vrange=1.1, smoothness=0.024)
        assert not features_drifted(a, b)

    def test_label_flip_drifts(self):
        assert features_drifted(
            self._probe(), self._probe(label="rough", smoothness=0.3)
        )

    def test_scale_shift_drifts(self):
        assert features_drifted(self._probe(), self._probe(vrange=5.0))
        assert features_drifted(self._probe(), self._probe(smoothness=0.045))

    def test_nonfinite_appearance_drifts(self):
        assert features_drifted(
            self._probe(), self._probe(nonfinite_frac=0.01)
        )

    def test_probe_features_stable_on_evolving_field(self):
        steps = list(evolving_field(4, (16, 16, 16), scale=0.02))
        probes = [probe_features(s, 1e-3) for s in steps]
        for prev, cur in zip(probes, probes[1:]):
            assert not features_drifted(prev, cur)


class TestStreamingProbeAmortization:
    def test_stable_stream_probes_once_per_regime(self):
        steps = list(evolving_field(10, (12, 12, 12), scale=0.02))
        sc = StreamingCompressor(
            1e-3, "rel",
            STZConfig(codec="auto", select_explore=0.0),
            keyframe_interval=4,
        )
        sc.extend(steps)
        # one full probe per data regime: the smooth fields at the
        # intra keyframes, the (noisier) closed-loop residuals on the
        # delta path — and no re-probes at later keyframes/steps, the
        # drift gate holds both rankings (explore off)
        assert sc._sel_intra.nprobes == 1
        assert sc._sel_delta.nprobes <= 1
        assert "smooth" in sc._label_scores
        sc.close()

    def test_label_cache_transfers_scores_across_selectors(self):
        # a cold selector whose payload's label was already fully
        # probed by the *other* selector inherits those scores through
        # the stream-scoped label cache instead of compressing tiles
        sc = StreamingCompressor(
            1e-3, "abs", STZConfig(codec="auto", select_explore=0.0)
        )
        sc.abs_eb = 1e-3
        field = smooth_field((24, 20, 16), seed=12).astype(np.float32)
        resid = 0.05 * smooth_field((24, 20, 16), seed=13).astype(np.float32)
        assert probe_features(field, 1e-3).label == "smooth"
        assert probe_features(resid, 1e-3).label == "smooth"
        sc._maybe_probe("intra", field, 1e-3)
        assert sc._sel_intra.nprobes == 1
        sc._maybe_probe("delta", resid, 1e-3)
        assert sc._sel_delta.nprobes == 0  # inherited, not probed
        assert sc._sel_delta.scores == sc._sel_intra.scores

    def test_regime_change_reprobes(self):
        shape = (12, 12, 12)
        rng = np.random.default_rng(3)
        steps = [
            smooth_field(shape, seed=40 + t).astype(np.float32)
            for t in range(3)
        ] + [rng.normal(size=shape).astype(np.float32) for _ in range(3)]
        sc = StreamingCompressor(
            1e-2, "abs",
            STZConfig(codec="auto", select_explore=0.0),
            keyframe_interval=100,  # keep everything on the delta path
        )
        sc.extend(steps)
        # the smooth->noise transition flips the residual label, which
        # the drift gate must catch with a fresh full probe
        assert sc._sel_delta.nprobes >= 1
        assert "rough" in sc._label_scores
        sc.close()

    def test_cumulative_drift_reprobes(self):
        # per-step feature drift stays under the tolerance, but the
        # drift gate anchors at the last scoring event, so cumulative
        # drift (here the value range ramping 1.3x per step, ~145x
        # over the stream) must eventually trigger a full re-probe
        base = smooth_field((12, 12, 12), seed=20).astype(np.float32)
        steps = [base * np.float32(1.3**t) for t in range(20)]
        sc = StreamingCompressor(
            1e-3, "abs",
            STZConfig(codec="auto", select_explore=0.0),
            keyframe_interval=1,  # intra-only: one selector to reason about
        )
        sc.extend(steps)
        assert sc._sel_intra.nprobes >= 2
        sc.close()

    def test_epsilon_refresh_is_seeded(self):
        steps = list(evolving_field(8, (12, 12, 12), scale=0.02))
        cfg = STZConfig(codec="auto", select_seed=5, select_explore=0.5)
        a = compress_stream(steps, 1e-3, config=cfg)
        b = compress_stream(steps, 1e-3, config=cfg)
        assert a == b


# ---------------------------------------------------------------------------
# overlap engine
# ---------------------------------------------------------------------------

class TestOverlap:
    @pytest.mark.parametrize("codec", ["stz", "auto"])
    def test_overlap_matches_serial_bytes(self, codec):
        steps = list(evolving_field(6, (10, 9, 8), scale=0.03))
        cfg = STZConfig(codec=codec)
        serial = compress_stream(steps, 1e-3, config=cfg, keyframe_interval=3)
        clear_probe_cache()
        overlapped = compress_stream(
            steps, 1e-3, config=cfg, keyframe_interval=3, overlap=True
        )
        assert serial == overlapped

    def test_overlap_matches_serial_through_sink(self, tmp_path):
        steps = list(evolving_field(5, (10, 9, 8), scale=0.03))
        paths = []
        for overlap in (False, True):
            path = tmp_path / f"s{int(overlap)}.stz"
            with open(path, "wb") as sink:
                with StreamingCompressor(
                    1e-3, "rel", sink=sink, overlap=overlap
                ) as sc:
                    sc.extend(steps)
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]

    def test_overlap_returns_futures_in_order(self):
        steps = list(evolving_field(4, (8, 8, 8), scale=0.03))
        with StreamingCompressor(1e-3, "rel", overlap=True) as sc:
            futs = [sc.append(s) for s in steps]
            stats = [f.result() for f in futs]
        assert [s.index for s in stats] == [0, 1, 2, 3]
        assert stats[0].is_delta is False

    def test_overlap_validation_errors_raise_on_caller(self):
        with StreamingCompressor(1e-3, "abs", overlap=True) as sc:
            sc.append(np.zeros((4, 4), np.float32))
            with pytest.raises(ValueError, match="stream is"):
                sc.append(np.zeros((5, 4), np.float32))

    def test_overlap_close_is_idempotent(self):
        sc = StreamingCompressor(1e-3, "abs", overlap=True)
        sc.append(np.zeros((4, 4), np.float32))
        blob = sc.close()
        assert blob is not None and sc.close() == blob
