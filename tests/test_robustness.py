"""Robustness and cross-feature equivalence tests: malformed-input
fuzzing on the container formats, utility coverage, and invariants that
tie independent features together."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import max_err, smooth_field
from repro.core.config import STZConfig
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.progressive import upsample_nearest
from repro.core.random_access import stz_decompress_roi
from repro.sperr import sperr_compress, sperr_decompress
from repro.sz3 import sz3_compress, sz3_decompress
from repro.util.timer import StageTimer, Timer
from repro.util.validation import (
    as_float_array,
    check_ndim,
    check_positive,
    dtype_code,
    dtype_from_code,
    resolve_eb,
)


class TestFormatFuzzing:
    """Truncated/corrupted containers must raise ValueError, never
    crash with internal errors or return garbage silently."""

    @pytest.fixture(scope="class")
    def blobs(self):
        data = smooth_field((20, 20), seed=90).astype(np.float32)
        return {
            "stz": stz_compress(data, 1e-3),
            "sz3": sz3_compress(data, 1e-3),
            "sperr": sperr_compress(data, 1e-3),
        }

    @pytest.mark.parametrize("name", ["stz", "sz3", "sperr"])
    @pytest.mark.parametrize("cut", [0.1, 0.5, 0.9])
    def test_truncation_raises_cleanly(self, blobs, name, cut):
        blob = blobs[name]
        truncated = blob[: int(len(blob) * cut)]
        decoder = {
            "stz": stz_decompress,
            "sz3": sz3_decompress,
            "sperr": sperr_decompress,
        }[name]
        with pytest.raises((ValueError, Exception)):
            decoder(truncated)

    @given(st.integers(0, 2**31), st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_random_bytes_rejected(self, seed, n):
        junk = np.random.default_rng(seed).bytes(n * 16)
        with pytest.raises(Exception):
            stz_decompress(junk)

    def test_single_flipped_header_byte(self, blobs):
        blob = bytearray(blobs["stz"])
        blob[0] ^= 0xFF  # magic
        with pytest.raises(ValueError):
            stz_decompress(bytes(blob))


class TestUtilities:
    def test_timer_context(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed > 0

    def test_stage_timer_accumulates(self):
        st_ = StageTimer()
        with st_.time("a"):
            pass
        with st_.time("a"):
            pass
        with st_.time("b"):
            pass
        assert set(st_.stages) == {"a", "b"}
        assert st_.total == pytest.approx(
            st_.stages["a"] + st_.stages["b"]
        )
        assert st_.row(["a", "missing", "b"])[1] == 0.0

    def test_dtype_codes_roundtrip(self):
        for dt in (np.float32, np.float64):
            assert dtype_from_code(dtype_code(np.dtype(dt))) == dt
        with pytest.raises(TypeError):
            dtype_code(np.dtype(np.int32))
        with pytest.raises(ValueError):
            dtype_from_code(99)

    def test_as_float_array(self):
        with pytest.raises(ValueError):
            as_float_array(np.zeros((0, 3), np.float32))
        with pytest.raises(TypeError):
            as_float_array(np.zeros(3, np.int8))
        out = as_float_array(np.asfortranarray(np.ones((3, 4), np.float32)))
        assert out.flags.c_contiguous

    def test_check_helpers(self):
        with pytest.raises(ValueError):
            check_ndim(np.zeros((2, 2)), (3,))
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_resolve_eb_zero_range(self):
        # constant field: relative bound falls back to the raw value
        const = np.full(10, 5.0)
        assert resolve_eb(const, 1e-3, "rel") == 1e-3


class TestCrossFeatureInvariants:
    @pytest.fixture(scope="class")
    def packed(self):
        data = smooth_field((36, 36, 36), seed=91).astype(np.float32)
        blob = stz_compress(data, 1e-3)
        return data, blob

    def test_progressive_prefix_consistency(self, packed):
        """Level-k output must equal the even-decimation of level-k+1:
        refining never rewrites already-delivered coarse values."""
        _, blob = packed
        l1 = stz_decompress(blob, level=1)
        l2 = stz_decompress(blob, level=2)
        l3 = stz_decompress(blob, level=3)
        assert np.array_equal(l2[::2, ::2, ::2], l1)
        assert np.array_equal(l3[::2, ::2, ::2], l2)

    def test_roi_tiling_reassembles_full(self, packed):
        """Tiling the domain with ROI requests reproduces the full
        reconstruction exactly (no seams between independent requests)."""
        data, blob = packed
        full = stz_decompress(blob)
        out = np.zeros_like(full)
        step = 13  # deliberately unaligned with the hierarchy
        for z0 in range(0, 36, step):
            for y0 in range(0, 36, step):
                roi = (
                    slice(z0, min(z0 + step, 36)),
                    slice(y0, min(y0 + step, 36)),
                    slice(None),
                )
                res = stz_decompress_roi(blob, roi)
                out[roi] = res.data
        assert np.array_equal(out, full)

    def test_upsample_inverts_decimation_shapewise(self, packed):
        data, blob = packed
        l1 = stz_decompress(blob, level=1)
        up = upsample_nearest(l1, data.shape)
        assert up.shape == data.shape
        # nearest upsample places each coarse value at its origin cell
        assert np.array_equal(up[::4, ::4, ::4], l1)

    def test_recompression_is_stable(self, packed):
        """Compressing a reconstruction at the same bound must not
        degrade it further by more than another bound (idempotence up
        to quantization)."""
        data, blob = packed
        rec1 = stz_decompress(blob)
        rec2 = stz_decompress(stz_compress(rec1, 1e-3))
        assert max_err(rec2, data) <= 2e-3

    def test_container_roundtrip_through_file(self, packed, tmp_path):
        data, blob = packed
        p = tmp_path / "x.stz"
        p.write_bytes(blob)
        assert np.array_equal(
            stz_decompress(p.read_bytes()), stz_decompress(blob)
        )

    @pytest.mark.parametrize("levels", [2, 3, 4])
    def test_levels_all_support_roi(self, levels):
        data = smooth_field((33, 31), seed=92).astype(np.float32)
        blob = stz_compress(data, 1e-2, config=STZConfig(levels=levels))
        full = stz_decompress(blob)
        res = stz_decompress_roi(blob, (slice(7, 20), slice(11, 12)))
        assert np.array_equal(res.data, full[7:20, 11:12])
