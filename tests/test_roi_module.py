"""ROI selection module (Fig. 10 machinery)."""

import numpy as np
import pytest

from repro.core.roi import (
    ROISelection,
    block_stats,
    capture_recall,
    select_blocks,
    select_slices,
    slice_stats,
)


@pytest.fixture
def field_with_halos(rng):
    data = rng.normal(0, 0.1, (32, 32, 32)).astype(np.float32)
    data[4:8, 10:14, 20:24] += 10.0
    data[25:28, 2:5, 6:9] += 8.0
    return data


class TestStats:
    def test_slice_stats_max(self, field_with_halos):
        s = slice_stats(field_with_halos, 0, "max")
        assert s.shape == (32,)
        assert s[4:8].min() > 5

    def test_slice_stats_range(self, rng):
        d = rng.normal(size=(10, 20))
        s = slice_stats(d, 1, "range")
        assert s.shape == (20,)
        assert np.allclose(s, d.max(axis=0) - d.min(axis=0))

    def test_block_stats_shape(self, field_with_halos):
        b = block_stats(field_with_halos, 8, "max")
        assert b.shape == (4, 4, 4)

    def test_block_stats_ragged(self, rng):
        d = rng.normal(size=(10, 13))
        b = block_stats(d, (4, 5), "min")
        assert b.shape == (3, 3)
        assert b[2, 2] == d[8:10, 10:13].min()

    def test_block_stats_exact_values(self):
        d = np.arange(16.0).reshape(4, 4)
        b = block_stats(d, 2, "max")
        assert b[0, 0] == 5.0 and b[1, 1] == 15.0

    def test_invalid_stat(self, rng):
        with pytest.raises(ValueError):
            slice_stats(rng.normal(size=(4, 4)), 0, "median")
        with pytest.raises(ValueError):
            block_stats(rng.normal(size=(4, 4)), 2, "median")

    def test_invalid_axis_and_block(self, rng):
        with pytest.raises(ValueError):
            slice_stats(rng.normal(size=(4, 4)), 5)
        with pytest.raises(ValueError):
            block_stats(rng.normal(size=(4, 4)), (2,))


class TestSelection:
    def test_threshold_captures_halos(self, field_with_halos):
        sel = select_blocks(field_with_halos, 4, "max", threshold=5.0)
        assert len(sel) >= 2
        assert capture_recall(field_with_halos, sel, 5.0) == 1.0
        assert sel.fraction < 0.2

    def test_small_fraction_like_paper(self, field_with_halos):
        # the Fig. 10 story: a tiny fraction of the volume captures all
        # super-threshold cells
        sel = select_blocks(field_with_halos, 4, "max", threshold=5.0)
        assert sel.fraction < 0.05

    def test_top_fraction(self, field_with_halos):
        sel = select_blocks(field_with_halos, 8, "max", top_fraction=0.1)
        assert 0 < len(sel) <= int(0.1 * 64) + 1

    def test_exactly_one_criterion(self, field_with_halos):
        with pytest.raises(ValueError):
            select_blocks(field_with_halos, 4, "max")
        with pytest.raises(ValueError):
            select_blocks(
                field_with_halos, 4, "max", threshold=1.0, top_fraction=0.1
            )
        with pytest.raises(ValueError):
            select_blocks(field_with_halos, 4, "max", top_fraction=1.5)

    def test_boxes_within_bounds(self, field_with_halos):
        sel = select_blocks(field_with_halos, 5, "max", threshold=5.0)
        for box in sel.boxes:
            for sl, n in zip(box, field_with_halos.shape):
                assert 0 <= sl.start < sl.stop <= n

    def test_select_slices(self, field_with_halos):
        sel = select_slices(field_with_halos, 0, "max", threshold=5.0)
        picked = {b[0].start for b in sel.boxes}
        assert picked == set(range(4, 8)) | set(range(25, 28))

    def test_select_slices_top_fraction(self, field_with_halos):
        sel = select_slices(field_with_halos, 2, "max", top_fraction=0.25)
        assert len(sel) == 8

    def test_recall_without_targets(self, rng):
        d = rng.normal(size=(8, 8)).astype(np.float32)
        sel = ROISelection(boxes=(), mask=np.zeros(1, bool), fraction=0.0)
        assert capture_recall(d, sel, 1e9) == 1.0

    def test_range_stat_finds_interface(self):
        # range thresholding suits interfaces (fluid-dynamics use case):
        # slices cutting a wavy interface mix both phases -> large range
        z = np.linspace(-1, 1, 32)[None, None, :]
        x = np.linspace(0, 2 * np.pi, 16)[:, None, None]
        data = np.tanh((z - 0.2 * np.sin(x)) / 0.05).astype(np.float32)
        data = data * np.ones((1, 16, 1), np.float32)
        sel = select_slices(data, 2, "range", top_fraction=0.2)
        centers = [b[2].start for b in sel.boxes]
        assert all(8 <= c < 24 for c in centers)  # near the interface
