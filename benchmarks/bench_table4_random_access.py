"""Table 4 — random-access decompression time breakdown on the
Miranda-like dataset: full decompression vs one 3D ROI box vs one 2D
slice, broken into L1-SZ3 / L2-decode / L2-predict / L2-reassemble /
L3-decode / L3-predict / L3-reassemble stages.

Paper shape: prediction and reassembly stages save ~100% for both box
and slice access; decode time is saved only for the slice (sub-block
skipping); overall savings up to 67.5% (box) / 82.5% (slice).
"""

from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.random_access import stz_decompress_roi
from repro.datasets import load
from repro.util.timer import StageTimer

from conftest import fmt_table

STAGES = [
    "l1_sz3",
    "l2_decode",
    "l2_predict",
    "l2_reassemble",
    "l3_decode",
    "l3_predict",
    "l3_reassemble",
]
HEAD = ["case", "L1 SZ3", "L2 dec", "L2 pre", "L2 rec", "L3 dec", "L3 pre", "L3 rec", "sum"]


def test_table4_random_access_breakdown(benchmark, artifact):
    # paper uses the 1024^3 Miranda; we use 128^3 so the stage savings
    # sit well above the fixed numpy dispatch overhead of tiny ROIs
    data = load("miranda", shape=(128, 128, 128))
    blob = stz_compress(data, 1e-3, "rel")
    n = data.shape[0]

    # full decompression with stage timing
    t_all = StageTimer()
    stz_decompress(blob, timer=t_all)

    # 3D ROI box (paper: 100^3 of 1024^3 -> scale to ~1/10 per axis)
    b = max(4, n // 10)
    box = tuple(slice(n // 2, n // 2 + b) for _ in range(3))
    res_box = benchmark(stz_decompress_roi, blob, box)

    # 2D slice
    res_slice = stz_decompress_roi(
        blob, (slice(n // 2, n // 2 + 1), slice(None), slice(None))
    )

    rows = []
    for case, timer in (
        ("All", t_all),
        ("Box", res_box.timer),
        ("Slice", res_slice.timer),
    ):
        vals = timer.row(STAGES)
        rows.append([case, *vals, sum(vals)])
    artifact(
        "table4_random_access",
        fmt_table(HEAD, rows)
        + f"\nbox decoded/skipped segments: {res_box.segments_decoded}/"
        f"{res_box.segments_skipped}; slice: {res_slice.segments_decoded}/"
        f"{res_slice.segments_skipped}\n"
        "paper shape: pre/rec stages ~free for ROI; decode saved only "
        "for slices; totals save 67.5% (box) / 82.5% (slice)\n",
    )

    t_full = t_all.total
    # prediction + reassembly savings are near-total for the small box
    box_pre = res_box.timer.stages.get("l3_predict", 0.0)
    assert box_pre < 0.25 * t_all.stages["l3_predict"]
    # the slice skips finest sub-blocks, the box does not
    assert res_slice.segments_skipped >= 3
    assert res_box.segments_skipped == 0
    # overall time savings for both access patterns
    assert res_box.timer.total < 0.8 * t_full
    assert res_slice.timer.total < 0.8 * t_full
