"""Figure 12 — visual quality (SSIM/PSNR) at matched CR on the WarpX
and Magnetic-Reconnection datasets.

Paper numbers at CR ~295 (WarpX) / ~215 (MagRec): ZFP is far worst
(block artifacts), MGARD mid, SZ3/SPERR/STZ at the top.  We match CRs
with bisection and reproduce the ordering.
"""

import numpy as np

from repro.core.pipeline import stz_compress, stz_decompress
from repro.datasets import load
from repro.metrics import psnr, ssim
from repro.mgard import mgard_compress, mgard_decompress
from repro.sperr import sperr_compress, sperr_decompress
from repro.sz3 import sz3_compress, sz3_decompress
from repro.zfp import zfp_compress, zfp_decompress

from conftest import eb_for_target_cr, fmt_table

CODECS = {
    # certify=False: real zfp's advisory-tolerance behavior (see the
    # same note in bench_fig11_rate_distortion.py)
    "ZFP": (lambda d, e: zfp_compress(d, e, certify=False), zfp_decompress),
    "MGARD-X": (lambda d, e: mgard_compress(d, e), mgard_decompress),
    "SZ3": (lambda d, e: sz3_compress(d, e), sz3_decompress),
    "SPERR": (lambda d, e: sperr_compress(d, e), sperr_decompress),
    "STZ": (lambda d, e: stz_compress(d, e), stz_decompress),
}
TARGET_CR = {"warpx": 40.0, "magrec": 10.0}


def test_fig12_visual_quality(benchmark, artifact):
    rows = []
    scores: dict[tuple[str, str], tuple[float, float]] = {}
    for ds, target in TARGET_CR.items():
        data = load(ds)
        mid = data.shape[0] // 2
        for codec, (comp, dec) in CODECS.items():
            eb = eb_for_target_cr(comp, data, target)
            blob = comp(data, eb)
            rec = dec(blob)
            s = ssim(
                data[mid].astype(np.float64), rec[mid].astype(np.float64)
            )
            p = psnr(data, rec)
            cr = data.nbytes / len(blob)
            scores[(ds, codec)] = (p, s)
            rows.append([ds, codec, cr, p, s])

    data = load("warpx")
    benchmark(stz_compress, data, 1e-3, "rel")

    artifact(
        "fig12_visual_quality",
        fmt_table(
            ["dataset", "codec", "CR", "PSNR (dB)", "slice SSIM"], rows
        )
        + "\npaper (matched CR): ZFP far worst; MGARD mid; "
        "SZ3/SPERR/STZ top cluster\n",
    )

    for ds in TARGET_CR:
        # ZFP clearly worst of the five (blocky)
        others = [
            scores[(ds, c)][0] for c in CODECS if c != "ZFP"
        ]
        assert scores[(ds, "ZFP")][0] < min(others) + 1.0, ds
        # STZ within the top cluster (close to SZ3; the paper reads
        # "similar visual quality" off the renderings)
        assert (
            abs(scores[(ds, "STZ")][0] - scores[(ds, "SZ3")][0]) < 10.0
        ), ds
        # ... and top-cluster SSIM stays high while ZFP's collapses
        assert scores[(ds, "STZ")][1] > scores[(ds, "ZFP")][1]
