"""Table 2 — dataset inventory (paper dims preserved, our synthesis
dims recorded alongside)."""

from repro.datasets import table2_rows

from conftest import fmt_table


def test_table2_dataset_registry(benchmark, artifact):
    rows = benchmark(table2_rows)
    artifact(
        "table2_datasets",
        fmt_table(
            [
                "dataset",
                "type",
                "paper dims",
                "paper size",
                "our dims",
                "our size",
                "domain",
            ],
            [
                [
                    r["dataset"],
                    r["type"],
                    r["paper_dims"],
                    r["paper_size"],
                    r["our_dims"],
                    r["our_size_mb"],
                    r["domain"],
                ]
                for r in rows
            ],
        ),
    )
    assert len(rows) == 4
    types = {r["dataset"]: r["type"] for r in rows}
    assert types["WarpX"] == "float64"  # the one FP64 dataset, as Table 2
