"""Chunked execution engine benchmark: the honest chunking ledger.

Domain splitting is the standard route to scalable throughput, and it
has a *known cost*: per-chunk container overhead plus lost cross-chunk
prediction context shrink the compression ratio (the SZ3 paper reports
the same effect for its OMP mode).  This benchmark reports both sides
of that trade on the registry datasets:

* ``speedup`` — chunked 4-worker compress (the fork-based process
  executor, which parallelizes the whole per-chunk chain) vs the
  serial chunked walk, interleaved runs, best-of-repeats.  The
  parallel trials run against a *warmed* ``WorkerPool`` (forked once
  before timing, reused across reps) so the number is the
  steady-state executor speedup, not pool startup amortized over one
  map.  Asserted >= ``MIN_SPEEDUP`` only on hosts with >= 4 usable
  cores — affinity-aware via ``parallel_capacity()``, so a 1-CPU
  container quota on a many-core machine does not arm a gate it
  cannot pass (it records the honest ~1.0x instead: the engine's
  capacity gate degrades parallel requests to the serial walk there).
* ``cr_ratio`` — chunked CR / full-array CR at the same bound.  This
  is the chunking *penalty* stated plainly (values < 1 mean chunking
  costs ratio); asserted above a floor so a regression that silently
  cratered per-chunk efficiency fails.
* **out-of-core peak RSS** — a memory-mapped round trip at two array
  sizes (4x apart) under the background RSS sampler; the peak must not
  grow with the array (the O(chunk)-growth assertion, the CI's "peak
  RSS scales with array size" failure mode).

Results land in ``BENCH_speed.json`` under ``chunked``.
``STZ_BENCH_DATASETS`` (comma-separated names) restricts the sweep —
the CI smoke step runs ``nyx`` only.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.api import compress, compress_chunked
from repro.core.chunked import decompress_chunked
from repro.core.parallel import WorkerPool, parallel_capacity
from repro.datasets import dataset_names, load

from conftest import RSSSampler, fmt_table, record_bench, vm_rss_kb

GRID = (128, 128, 128)
CHUNKS = 64
#: a second, smaller chunk edge whose (worse) penalty is recorded too —
#: the cost curve, not just the default's point
SMALL_CHUNKS = 32
WORKERS = 4
REL_EB = 1e-3
REPS = 3
#: CI gate (>= 4 usable cores): 4 chunk workers must beat the serial
#: walk by at least this much on the smoke dataset
MIN_SPEEDUP = 1.5
#: regression floor for the chunking CR penalty at the default 64^3
#: chunks (measured 0.71-0.97 across the registry; 32^3 drops to
#: 0.40-0.86 and is recorded, not asserted)
MIN_CR_RATIO = 0.6


def _bench_datasets() -> list[str]:
    names = list(dataset_names())
    sel = os.environ.get("STZ_BENCH_DATASETS")
    if not sel:
        return names
    picked = [n.strip() for n in sel.split(",") if n.strip()]
    unknown = [n for n in picked if n not in names]
    if unknown:
        raise ValueError(f"unknown STZ_BENCH_DATASETS entries: {unknown}")
    return picked


def _best(fn, reps=REPS) -> float:
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_chunked_parallel(artifact):
    """Per-dataset: 4-worker speedup over the serial chunked walk, and
    the chunked-vs-full-array CR ratio at the same absolute bound."""
    rows = []
    payload: dict = {}
    many_cores = parallel_capacity() >= WORKERS
    for ds in _bench_datasets():
        data = load(ds, shape=GRID)
        abs_eb = REL_EB * float(data.max() - data.min())

        full_blob = compress(data, abs_eb, "abs")
        chunked_blob = compress_chunked(
            data, abs_eb, "abs", chunks=CHUNKS, executor="serial"
        )
        small_blob = compress_chunked(
            data, abs_eb, "abs", chunks=SMALL_CHUNKS, executor="serial"
        )
        # interleaved timing: serial and parallel alternate so machine
        # noise decorrelates (bench_encode_batched protocol).  The
        # parallel trials share one warm WorkerPool: the un-timed
        # warm-up rep forks it, the timed reps reuse it, so the
        # recorded speedup is the steady-state executor, not fork
        # startup amortized over a single map.
        t_serial, t_par = np.inf, np.inf
        with WorkerPool("process", WORKERS) as pool:
            compress_chunked(
                data, abs_eb, "abs", chunks=CHUNKS,
                executor="process", workers=WORKERS, pool=pool,
            )
            for _ in range(REPS):
                t0 = time.perf_counter()
                compress_chunked(
                    data, abs_eb, "abs", chunks=CHUNKS, executor="serial"
                )
                t_serial = min(t_serial, time.perf_counter() - t0)
                t0 = time.perf_counter()
                compress_chunked(
                    data, abs_eb, "abs", chunks=CHUNKS,
                    executor="process", workers=WORKERS, pool=pool,
                )
                t_par = min(t_par, time.perf_counter() - t0)
        t_dec = _best(lambda: decompress_chunked(chunked_blob))

        speedup = t_serial / t_par
        cr_full = data.nbytes / len(full_blob)
        cr_chunked = data.nbytes / len(chunked_blob)
        cr_ratio = cr_chunked / cr_full
        mbs = data.nbytes / 1e6
        payload[ds] = {
            "serial_s": round(t_serial, 3),
            "parallel_s": round(t_par, 3),
            "speedup": round(speedup, 3),
            "decompress_s": round(t_dec, 3),
            "compress_mb_s": round(mbs / t_par, 2),
            "cr_full": round(cr_full, 3),
            "cr_chunked": round(cr_chunked, 3),
            "cr_ratio": round(cr_ratio, 4),
            f"cr_ratio_{SMALL_CHUNKS}": round(
                data.nbytes / len(small_blob) / cr_full, 4
            ),
        }
        rows.append(
            [ds, round(t_serial, 2), round(t_par, 2), round(speedup, 2),
             round(cr_full, 2), round(cr_chunked, 2), round(cr_ratio, 3)]
        )

    artifact(
        "chunked_parallel",
        fmt_table(
            ["dataset", "serial (s)", f"{WORKERS}-worker (s)", "speedup",
             "CR full", "CR chunked", "cr_ratio"],
            rows,
        )
        + f"(grid {'x'.join(map(str, GRID))}, chunks {CHUNKS}^3; "
        f"cr_ratio_{SMALL_CHUNKS} in JSON records the "
        f"{SMALL_CHUNKS}^3-chunk penalty; {parallel_capacity()} usable "
        f"cores, speedup asserted only with >= {WORKERS})\n",
    )
    record_bench(
        "chunked",
        {
            "grid": list(GRID),
            "chunks": CHUNKS,
            "workers": WORKERS,
            "executor": "process",
            "pool": "warm",
            "rel_eb": REL_EB,
            "cores": parallel_capacity(),
            "speedup_asserted": many_cores,
            "datasets": payload,
        },
    )
    for ds in payload:
        assert payload[ds]["cr_ratio"] >= MIN_CR_RATIO, (ds, payload[ds])
        if many_cores:
            assert payload[ds]["speedup"] >= MIN_SPEEDUP, (ds, payload[ds])


OOC_CHUNK = 32
OOC_SMALL = (96, 96, 96)
OOC_BIG = (192, 96, 96)  # 2x the cells: any O(array) term doubles


def _ooc_roundtrip(tmp_path, shape, tag):
    """Memory-mapped compress + decompress; returns sampled peak RSS."""
    from repro.datasets.synthetic import smooth_field

    src = np.memmap(
        tmp_path / f"src{tag}.raw", dtype=np.float32, mode="w+",
        shape=shape,
    )
    n = shape[0]
    for i in range(0, n, OOC_CHUNK):  # fill without holding the array
        block_shape = (min(OOC_CHUNK, n - i),) + shape[1:]
        src[i : i + OOC_CHUNK] = smooth_field(
            block_shape, seed=17 + i
        ).astype(np.float32)
    src.flush()
    # drop the writer mapping: measured RSS must start from a cold map,
    # not from the fill loop's resident dirty pages
    del src
    src = np.memmap(
        tmp_path / f"src{tag}.raw", dtype=np.float32, mode="r", shape=shape
    )

    with RSSSampler() as sampler:
        with open(tmp_path / f"a{tag}.stz", "wb") as sink:
            compress_chunked(
                src, 1e-3, "abs", chunks=OOC_CHUNK, executor="serial",
                sink=sink,
            )
        out = np.memmap(
            tmp_path / f"dst{tag}.raw", dtype=np.float32, mode="w+",
            shape=shape,
        )
        with open(tmp_path / f"a{tag}.stz", "rb") as fh:
            decompress_chunked(fh, out=out, executor="serial")
    return sampler.peak


def test_chunked_out_of_core_rss(artifact, tmp_path):
    """The out-of-core proof: peak RSS of a memmap round trip must not
    scale with the array — doubling the cells may add at most a few
    chunks of working set."""
    baseline_kb = vm_rss_kb()
    for sub in ("w", "s", "b"):
        (tmp_path / sub).mkdir()
    # warm-up run first: faults in the constant pipeline working set
    # (allocator arenas, code, caches), so the small-vs-big delta below
    # isolates per-size growth — the only term that may not exist
    _ooc_roundtrip(tmp_path / "w", OOC_SMALL, "w")
    small_peak = _ooc_roundtrip(tmp_path / "s", OOC_SMALL, "s")
    big_peak = _ooc_roundtrip(tmp_path / "b", OOC_BIG, "b")
    chunk_kb = OOC_CHUNK**3 * 4 // 1024
    grew_kb = big_peak - small_peak
    added_kb = (
        int(np.prod(OOC_BIG) - np.prod(OOC_SMALL)) * 4 // 1024
    )
    artifact(
        "chunked_out_of_core",
        f"peak RSS small {small_peak / 1024:.0f} MiB, "
        f"big {big_peak / 1024:.0f} MiB "
        f"(baseline {baseline_kb / 1024:.0f} MiB; arrays "
        f"{int(np.prod(OOC_SMALL)) * 4 / 1e6:.0f} -> "
        f"{int(np.prod(OOC_BIG)) * 4 / 1e6:.0f} MB, chunk "
        f"{chunk_kb} KiB)\n",
    )
    record_bench(
        "chunked_out_of_core",
        {
            "small_grid": list(OOC_SMALL),
            "big_grid": list(OOC_BIG),
            "chunk": OOC_CHUNK,
            "peak_rss_small_mb": round(small_peak / 1024, 1),
            "peak_rss_big_mb": round(big_peak / 1024, 1),
            "rss_growth_mb": round(grew_kb / 1024, 1),
        },
    )
    # O(chunk) growth: well under the added data (O(array) would track
    # it), with a generous multi-chunk + allocator-slack allowance
    assert grew_kb < max(16 * chunk_kb, added_kb // 4), (
        f"peak RSS grew {grew_kb} KiB for {added_kb} KiB more data"
    )
