"""Figure 11 — rate-distortion of STZ vs SZ3 / SPERR / MGARD-X / ZFP on
all four datasets.

Shape claims reproduced (paper §4.2):
* STZ beats MGARD-X everywhere,
* STZ beats ZFP clearly (block artifacts),
* STZ is comparable to SZ3 (within a few dB at matched CR),
* SPERR wins on the Magnetic-Reconnection-like data (global wavelets
  capture widespread high-frequency structure).
"""

import numpy as np
import pytest

from repro.core.pipeline import stz_compress, stz_decompress
from repro.datasets import dataset_names, load
from repro.metrics.rate import interpolate_psnr_at_cr, rd_curve
from repro.mgard import mgard_compress, mgard_decompress
from repro.sperr import sperr_compress, sperr_decompress
from repro.sz3 import sz3_compress, sz3_decompress
from repro.zfp import zfp_compress, zfp_decompress

from conftest import REL_EBS, fmt_table

CODECS = {
    "STZ": (lambda d, e: stz_compress(d, e, "rel"), stz_decompress),
    "SZ3": (lambda d, e: sz3_compress(d, e, "rel"), sz3_decompress),
    "SPERR": (lambda d, e: sperr_compress(d, e, "rel"), sperr_decompress),
    "MGARD-X": (lambda d, e: mgard_compress(d, e, "rel"), mgard_decompress),
    # certify=False: the paper compares against real zfp, whose
    # tolerance is advisory — the certified exact-outlier mode would
    # flatter ZFP's rate-distortion beyond what Figure 11 shows
    "ZFP": (
        lambda d, e: zfp_compress(d, e, "rel", certify=False),
        zfp_decompress,
    ),
}


@pytest.fixture(scope="module")
def curves():
    out = {}
    for ds in dataset_names():
        data = load(ds)
        for codec, (comp, dec) in CODECS.items():
            out[(ds, codec)] = rd_curve(comp, dec, data, REL_EBS)
    return out


def test_fig11_rate_distortion(benchmark, curves, artifact):
    data = load("nyx")
    benchmark(stz_compress, data, 1e-3, "rel")

    rows = []
    for (ds, codec), pts in curves.items():
        for p in pts:
            rows.append([ds, codec, p.eb, p.cr, p.psnr])
    artifact(
        "fig11_rate_distortion",
        fmt_table(["dataset", "codec", "rel eb", "CR", "PSNR (dB)"], rows),
    )

    summary_rows = []
    at: dict[tuple[str, str], float] = {}
    for ds in dataset_names():
        ref_cr = float(np.median([p.cr for p in curves[(ds, "SZ3")]]))
        for codec in CODECS:
            at[(ds, codec)] = interpolate_psnr_at_cr(
                curves[(ds, codec)], ref_cr
            )
            summary_rows.append([ds, codec, ref_cr, at[(ds, codec)]])
    artifact(
        "fig11_psnr_at_common_cr",
        fmt_table(["dataset", "codec", "CR", "PSNR (dB)"], summary_rows),
    )

    for ds in dataset_names():
        # STZ > ZFP significantly (block-wise quality loss)
        assert at[(ds, "STZ")] > at[(ds, "ZFP")] + 2.0, ds
        # STZ never meaningfully below MGARD-X ...
        assert at[(ds, "STZ")] > at[(ds, "MGARD-X")] - 0.5, ds
    # ... and clearly above it on most datasets (paper: all datasets;
    # our MGARD-like shares STZ's hierarchy machinery, so the gap
    # narrows to a tie on the two easiest fields)
    wins = sum(
        at[(ds, "STZ")] > at[(ds, "MGARD-X")] for ds in dataset_names()
    )
    assert wins >= 2
    # STZ ~ SZ3 where the paper reports parity (Nyx, MagRec) ...
    for ds in ("nyx", "magrec"):
        assert abs(at[(ds, "STZ")] - at[(ds, "SZ3")]) < 4.0, ds
    # ... and SZ3 leads on WarpX/Miranda (paper: "slightly lower ...
    # at low CR"; the gap is amplified at our 64^3 scale where the
    # cascaded predictor's advantage on ultra-smooth fields is larger)
    for ds in ("warpx", "miranda"):
        assert at[(ds, "SZ3")] > at[(ds, "STZ")] - 1.0, ds
        assert at[(ds, "SZ3")] - at[(ds, "STZ")] < 12.0, ds
    # SPERR wins on the widespread-high-frequency dataset (§4.2)
    assert at[("magrec", "SPERR")] > at[("magrec", "STZ")] - 1.0
