"""Figure 5 — rate-distortion of the prediction-optimization ladder on
Nyx: Partition -> Direct pred -> Multi-dim Interp -> Multi-dim + Qt ->
Cubic-Multi + Qt -> Cubic-Multi-Qt + Adp -> 3-level + All, against SZ3.

The paper's claim: each optimization improves rate-distortion, and the
final designs match SZ3 despite supporting streaming.
"""

import numpy as np

from repro.core.ablation import VARIANT_LABELS, get_config, variant_names
from repro.core.pipeline import stz_compress, stz_decompress
from repro.datasets import load
from repro.metrics.rate import interpolate_psnr_at_cr, rd_curve
from repro.sz3 import sz3_compress, sz3_decompress

from conftest import REL_EBS, fmt_table


def test_fig05_ablation_ladder(benchmark, artifact):
    data = load("nyx")
    curves = {}
    for name in variant_names():
        cfg = get_config(name)
        curves[VARIANT_LABELS[name]] = rd_curve(
            lambda d, e, c=cfg: stz_compress(d, e, "rel", config=c),
            stz_decompress,
            data,
            REL_EBS,
        )
    curves["SZ3"] = rd_curve(
        lambda d, e: sz3_compress(d, e, "rel"), sz3_decompress, data, REL_EBS
    )

    # benchmark the final configuration's compression
    benchmark(stz_compress, data, 1e-3, "rel")

    rows = []
    for label, pts in curves.items():
        for p in pts:
            rows.append([label, p.eb, p.cr, p.bitrate, p.psnr])
    artifact(
        "fig05_ablation_rd",
        fmt_table(["series", "rel eb", "CR", "bits/val", "PSNR (dB)"], rows),
    )

    # compare PSNR at a common mid-curve CR (paper reads the plot the
    # same way)
    ref_cr = float(np.median([p.cr for p in curves["SZ3"]]))
    at = {
        label: interpolate_psnr_at_cr(pts, ref_cr)
        for label, pts in curves.items()
    }
    artifact(
        "fig05_psnr_at_common_cr",
        fmt_table(
            ["series", f"PSNR @ CR={ref_cr:.0f}"],
            [[k, v] for k, v in at.items()],
        ),
    )

    # --- shape claims -----------------------------------------------------
    # 1. the full cubic+Qt designs beat the naive partition clearly
    assert at["Cubic-Multi-Qt + Adp"] > at["Partition"] + 1.0
    assert at["3-level + All"] > at["Partition"] + 1.0
    # 2. removing the second SZ3 pass (Qt) does not hurt vs keeping it
    assert at["Multi-dim + Qt"] >= at["Multi-dim Interp"] - 0.5
    # 3. cubic >= linear interpolation
    assert at["Cubic-Multi + Qt"] >= at["Multi-dim + Qt"] - 0.3
    # 4. the final designs are comparable to SZ3 (within a few dB)
    assert abs(at["3-level + All"] - at["SZ3"]) < 6.0
