"""Table 3 — compression/decompression times, serial and OMP (threaded)
modes, five codecs x four datasets.

Error bounds are matched per dataset (same relative bound for all
codecs, as the paper does).  Shape claims:

* ZFP is the fastest compressor (or within noise of STZ);
* STZ beats SZ3, SPERR, and MGARD-X in both directions;
* SPERR is the slowest family;
* threading speeds STZ up, and SZ3's OMP mode loses compression ratio
  (the paper's asterisk) while STZ's does not.
"""

import time

import numpy as np

from repro.core.pipeline import stz_compress, stz_decompress
from repro.datasets import dataset_names, load
from repro.mgard import mgard_compress, mgard_decompress
from repro.sperr import sperr_compress, sperr_decompress
from repro.sz3 import (
    sz3_compress,
    sz3_compress_omp,
    sz3_decompress,
    sz3_decompress_omp,
)
from repro.zfp import zfp_compress, zfp_decompress

from conftest import fmt_table, record_bench

REL_EB = 1e-3
THREADS = 8


def _time(fn, *args, **kw):
    t0 = time.perf_counter()
    out = fn(*args, **kw)
    return out, time.perf_counter() - t0


def test_table3_speed(benchmark, artifact):
    rows = []
    times: dict[tuple[str, str, str, str], float] = {}
    crs: dict[tuple[str, str, str], float] = {}
    for ds in dataset_names():
        # 2x the default grids: timing contrasts need per-task work
        # that clears the fixed numpy/thread dispatch overheads
        data = load(ds, scale=2)
        runs = {
            "STZ": {
                "serial": (
                    lambda d: stz_compress(d, REL_EB, "rel"),
                    stz_decompress,
                ),
                "omp": (
                    lambda d: stz_compress(d, REL_EB, "rel", threads=THREADS),
                    lambda b: stz_decompress(b, threads=THREADS),
                ),
            },
            "SZ3": {
                "serial": (
                    lambda d: sz3_compress(d, REL_EB, "rel"),
                    sz3_decompress,
                ),
                "omp": (
                    lambda d: sz3_compress_omp(
                        d, REL_EB, "rel", threads=THREADS
                    ),
                    lambda b: sz3_decompress_omp(b, threads=THREADS),
                ),
            },
            "SPERR": {
                "serial": (
                    lambda d: sperr_compress(d, REL_EB, "rel"),
                    sperr_decompress,
                ),
            },
            "ZFP": {
                # certify=False: real zfp's advisory-tolerance behavior
                # (no exact-outlier pass), matching fig11/fig12 — the
                # certified mode would time a stage real zfp lacks
                "serial": (
                    lambda d: zfp_compress(d, REL_EB, "rel", certify=False),
                    zfp_decompress,
                ),
            },
            "MGARD-X": {
                "serial": (
                    lambda d: mgard_compress(d, REL_EB, "rel"),
                    mgard_decompress,
                ),
            },
        }
        for codec, modes in runs.items():
            for mode, (comp, dec) in modes.items():
                blob, t_c = _time(comp, data)
                _, t_d = _time(dec, blob)
                times[(ds, codec, mode, "comp")] = t_c
                times[(ds, codec, mode, "dec")] = t_d
                crs[(ds, codec, mode)] = data.nbytes / len(blob)
                rows.append(
                    [ds, codec, mode, t_c, t_d, crs[(ds, codec, mode)]]
                )

    data = load("nyx")
    benchmark(stz_compress, data, REL_EB, "rel")

    artifact(
        "table3_speed",
        fmt_table(
            ["dataset", "codec", "mode", "comp (s)", "dec (s)", "CR"], rows
        )
        + "\npaper shape: ZFP fastest; STZ second and faster than "
        "SZ3/SPERR/MGARD; SZ3-OMP loses CR (*)\n",
    )
    # machine-readable perf trajectory for future PRs (repo root)
    record_bench(
        "table3_speed",
        {
            f"{ds}/{codec}/{mode}": {
                "comp_s": round(times[(ds, codec, mode, "comp")], 4),
                "dec_s": round(times[(ds, codec, mode, "dec")], 4),
                "cr": round(cr, 3),
            }
            for (ds, codec, mode), cr in crs.items()
        },
    )

    # --- shape claims (averaged over datasets to damp noise) --------------
    def mean_time(codec, mode, direction):
        return float(
            np.mean(
                [times[(ds, codec, mode, direction)] for ds in dataset_names()]
            )
        )

    for direction in ("comp", "dec"):
        stz = mean_time("STZ", "serial", direction)
        assert stz < mean_time("SPERR", "serial", direction), direction
        assert stz < mean_time("MGARD-X", "serial", direction), direction
        assert stz < mean_time("SZ3", "serial", direction) * 1.1, direction

    # SZ3's OMP chunking costs compression ratio; STZ's does not.
    # (Our threaded mode gains far less than real OpenMP — Python glue
    # holds the GIL between numpy kernels; DESIGN.md §3 documents the
    # substitution — so the asserted contrast is the structural one.)
    for ds in dataset_names():
        assert crs[(ds, "SZ3", "omp")] <= crs[(ds, "SZ3", "serial")] * 1.001
        assert crs[(ds, "STZ", "omp")] == crs[(ds, "STZ", "serial")]
        # threading must at least not cripple compression
        assert (
            times[(ds, "STZ", "omp", "comp")]
            < times[(ds, "STZ", "serial", "comp")] * 2.0
        )
