"""Micro-benchmark: pre-PR per-block encode path vs the batched path.

The reference implementation below reproduces the seed's serial STZ
encode pipeline algorithm-for-algorithm — per-sub-block float64
quantization, per-segment Huffman encode with the 3-byte-plane pack
scatter, unconditional zlib over every Huffman blob, the
linear-everywhere predictor, and the level-1 SZ3 decompression
round-trip — built from today's container/format primitives so the
output stays decodable.  The production path is the level-batched
encoder (``quantize_many`` + ``huffman_encode_many`` + probe-mode
lossless + shift-cached boundary-linear prediction + level-1 recon
reuse).

Both paths run interleaved in one process under the same allocator
tuning, so the reported speedup isolates the algorithmic changes.
Results land in ``BENCH_speed.json`` at the repo root (the perf
trajectory future PRs regress against).
"""

from __future__ import annotations

import itertools
import statistics
import struct
import time
import zlib

import numpy as np

from repro.core.config import STZConfig
from repro.core.partition import (
    interleave,
    lattice_shape,
    level_strides,
    nonzero_offsets,
    subblock_shape,
    subblock_view_in,
)
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.predict import (
    _clamp_shift,
    _cubic_combine,
    _linear_combine,
    _predict_block_tensor,
    _validate,
)
from repro.core.stream import KIND_L1_SZ3, KIND_RESIDUAL_Q, StreamWriter
from repro.encoding.huffman import (
    _HEADER,
    _MAGIC,
    _canonical_codes,
    _choose_chunk,
    _code_lengths,
    _limit_lengths,
)
from repro.sz3.compressor import sz3_compress, sz3_decompress
from repro.util.sections import pack_sections
from repro.util.validation import as_float_array, resolve_eb

from conftest import fmt_table, record_bench, smooth_field

GRID = (128, 128, 128)
REL_EB = 1e-3
REPS = 7
#: noise-tolerant assertion floor; the recorded median ratio is the
#: number that matters for the perf trajectory (≈1.5x on quiet machines)
MIN_SPEEDUP = 1.30


# ---------------------------------------------------------------------------
# seed-faithful reference implementations
# ---------------------------------------------------------------------------

def _ref_predict_block(C, eps, ts, interp="cubic", mode="diagonal"):
    """Seed predictor: full-block linear, cubic interior overwrite."""
    odd = _validate(C, eps, ts)
    if any(t == 0 for t in ts):
        return np.empty(ts, dtype=C.dtype)
    if interp == "cubic" and mode == "tensor":
        return _predict_block_tensor(C, odd, ts)
    restrict = tuple(
        slice(0, ts[a]) if a in set(odd) else slice(None)
        for a in range(C.ndim)
    )
    if interp == "direct":
        return np.ascontiguousarray(C[restrict])
    shifted = {frozenset(): C}
    for a in odd:
        for key in list(shifted):
            if a not in key:
                shifted[key | {a}] = _clamp_shift(shifted[key], a)
    j = len(odd)
    corners = [
        shifted[frozenset(a for a, d in zip(odd, delta) if d)][restrict]
        for delta in itertools.product((0, 1), repeat=j)
    ]
    pred = _linear_combine(corners, j)
    if interp == "linear":
        return pred
    los = {a: 1 for a in odd}
    his = {a: min(C.shape[a] - 2, ts[a]) for a in odd}
    if any(his[a] <= los[a] for a in odd):
        return pred

    def slab(dm):
        return tuple(
            slice(los[a] + dm[a], his[a] + dm[a])
            if a in set(odd)
            else slice(None)
            for a in range(C.ndim)
        )

    near = [
        C[slab({a: d for a, d in zip(odd, delta)})]
        for delta in itertools.product((0, 1), repeat=j)
    ]
    outer = [
        C[slab({a: d for a, d in zip(odd, delta)})]
        for delta in itertools.product((-1, 2), repeat=j)
    ]
    target = tuple(
        slice(los[a], his[a]) if a in set(odd) else slice(None)
        for a in range(C.ndim)
    )
    pred[target] = _cubic_combine(near, outer, j)
    return pred


def _ref_pack_codes(codes, lengths64):
    """Seed pack: byte-aligned u32 containers, three u8-plane scatters."""
    ends = np.cumsum(lengths64)
    total = int(ends[-1]) if ends.size else 0
    if total == 0:
        return np.zeros(0, np.uint8), 0
    starts = ends - lengths64
    rem = (starts & 7).astype(np.uint32)
    byte_idx = starts >> 3
    shift = np.uint32(32) - lengths64.astype(np.uint32) - rem
    w = codes << shift
    nbytes = (total + 7) >> 3
    out = np.zeros(nbytes + 3, dtype=np.float64)
    for k in range(3):
        plane = ((w >> np.uint32(8 * (3 - k))) & np.uint32(0xFF)).astype(
            np.float64
        )
        out += np.bincount(byte_idx + k, weights=plane, minlength=nbytes + 3)
    return out[:nbytes].astype(np.uint8), total


def _ref_huffman_encode(symbols):
    symbols = np.ascontiguousarray(symbols).ravel().astype(
        np.uint32, copy=False
    )
    m = symbols.size
    if m == 0:
        return _HEADER.pack(_MAGIC, 0, 0, 0, 0, 0, 0, 0)
    freqs = np.bincount(symbols)
    present = np.flatnonzero(freqs)
    if present.size == 1:
        return _HEADER.pack(_MAGIC, 1, 0, freqs.size, m, int(present[0]), 0, 0)
    lengths = _limit_lengths(_code_lengths(freqs), freqs)
    codes = _canonical_codes(lengths)
    packed, nbits = _ref_pack_codes(
        codes[symbols], lengths[symbols].astype(np.int64)
    )
    chunk = _choose_chunk(m)
    starts = np.cumsum(lengths[symbols].astype(np.int64))
    starts -= lengths[symbols]
    sync = starts[::chunk].astype(np.uint64)
    sync_delta = np.diff(sync, prepend=np.uint64(0)).astype(np.uint32)
    lens_z = zlib.compress(lengths.tobytes(), 6)
    sync_z = zlib.compress(sync_delta.tobytes(), 6)
    header = _HEADER.pack(
        _MAGIC, 0, chunk, freqs.size, m, nbits, len(lens_z), len(sync_z)
    )
    return b"".join([header, lens_z, sync_z, packed.tobytes(), b"\0\0\0\0"])


def _ref_quantize(values, pred, eb, radius):
    """Seed quantizer: float64 arithmetic for every payload dtype."""
    flat = values.reshape(-1)
    pflat = pred.reshape(-1)
    diff = flat.astype(np.float64) - pflat.astype(np.float64)
    finite_diff = np.where(np.isfinite(diff), diff, 0.0)
    q = np.rint(finite_diff / (2.0 * eb)).astype(np.int64)
    recon = (pflat.astype(np.float64) + q * (2.0 * eb)).astype(values.dtype)
    ok = (np.abs(q) < radius) & (
        np.abs(recon.astype(np.float64) - flat.astype(np.float64)) <= eb
    )
    ok &= np.isfinite(flat)
    codes = np.where(ok, q + radius, 0).astype(np.uint32)
    bad = np.flatnonzero(~ok)
    out_val = flat[bad].copy()
    recon[bad] = flat[bad]
    return codes, bad, out_val, recon


def _ref_compress_bytes(data, level=1):
    """Seed lossless stage: unconditional DEFLATE attempt (no probe)."""
    if level == 0 or len(data) < 64:
        return b"\x00" + data
    z = zlib.compress(data, level)
    return (b"\x00" + data) if len(z) >= len(data) else (b"\x01" + z)


def reference_stz_compress(data, eb, eb_mode="rel", config=None):
    """The seed's serial compression loop, per sub-block end to end."""
    # the seed quantized in float64 and predates the f32-quant container
    # flag, so the reference container must not carry it — the shared
    # reader selects the reconstruction formula from that bit
    config = (config or STZConfig()).with_(f32_quant=False)
    data = as_float_array(data)
    abs_eb = resolve_eb(data, eb, eb_mode)
    writer = StreamWriter(data.shape, data.dtype, config, abs_eb)
    offsets = nonzero_offsets(data.ndim)
    strides = level_strides(config.levels)
    eb1 = config.level_eb(abs_eb, 1)
    A = np.ascontiguousarray(
        data[tuple(slice(0, None, strides[0]) for _ in data.shape)]
    )
    seg1 = sz3_compress(
        A, eb1, "abs", config.sz3_interp, config.quant_radius,
        config.zlib_level,
    )
    writer.add_segment(1, (0,) * data.ndim, KIND_L1_SZ3, seg1)
    C = sz3_decompress(seg1)  # the seed's round-trip for the basis
    for level in range(2, config.levels + 1):
        stride = strides[level - 1]
        fs = lattice_shape(data.shape, stride)
        ebl = config.level_eb(abs_eb, level)
        blocks = {}
        for eps in offsets:
            B = np.ascontiguousarray(subblock_view_in(data, eps, stride))
            ts = subblock_shape(fs, eps)
            if B.size == 0:
                writer.add_segment(level, eps, KIND_RESIDUAL_Q, b"")
                blocks[eps] = np.empty(ts, dtype=data.dtype)
                continue
            pred = _ref_predict_block(
                C, eps, ts, config.interp, config.cubic_mode
            )
            codes, bad, out_val, recon = _ref_quantize(
                B, pred, ebl, config.quant_radius
            )
            payload = pack_sections(
                [
                    _ref_compress_bytes(
                        _ref_huffman_encode(codes), config.zlib_level
                    ),
                    struct.pack("<Q", bad.size)
                    + bad.astype(np.uint32).tobytes()
                    + out_val.tobytes(),
                ]
            )
            writer.add_segment(level, eps, KIND_RESIDUAL_Q, payload)
            blocks[eps] = recon.reshape(ts)
        C = interleave(C, blocks, fs)
    return writer.tobytes()


# ---------------------------------------------------------------------------
# benchmark
# ---------------------------------------------------------------------------

def test_encode_batched_speedup(artifact):
    data = smooth_field(GRID, seed=11).astype(np.float32)

    ref = lambda: reference_stz_compress(data, REL_EB)  # noqa: E731
    new = lambda: stz_compress(data, REL_EB, "rel")  # noqa: E731

    blob_ref = ref()
    blob_new = new()
    # both containers must decode within the bound via the one reader
    vr = float(data.max() - data.min())
    for blob in (blob_ref, blob_new):
        rec = stz_decompress(blob)
        err = np.max(
            np.abs(rec.astype(np.float64) - data.astype(np.float64))
        )
        assert err <= REL_EB * vr

    t_ref, t_new = [], []
    for _ in range(REPS):  # interleaved to decorrelate machine noise
        t0 = time.perf_counter()
        ref()
        t_ref.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        new()
        t_new.append(time.perf_counter() - t0)
    m_ref = statistics.median(t_ref)
    m_new = statistics.median(t_new)
    speedup = m_ref / m_new

    mbs = data.nbytes / 1e6
    rows = [
        ["per-block (pre-PR)", m_ref * 1e3, mbs / m_ref,
         data.nbytes / len(blob_ref)],
        ["batched", m_new * 1e3, mbs / m_new, data.nbytes / len(blob_new)],
        ["speedup", speedup, "", ""],
    ]
    artifact(
        "encode_batched",
        fmt_table(["path", "comp (ms)", "MB/s", "CR"], rows),
    )
    record_bench(
        "encode_batched",
        {
            "grid": list(GRID),
            "dtype": "float32",
            "rel_eb": REL_EB,
            "reference_ms": round(m_ref * 1e3, 2),
            "batched_ms": round(m_new * 1e3, 2),
            "reference_mb_s": round(mbs / m_ref, 2),
            "batched_mb_s": round(mbs / m_new, 2),
            "speedup": round(speedup, 3),
            "cr_reference": round(data.nbytes / len(blob_ref), 3),
            "cr_batched": round(data.nbytes / len(blob_new), 3),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched encode only {speedup:.2f}x over the per-block path"
    )


# ---------------------------------------------------------------------------
# streaming throughput (steps/s, peak RSS)
# ---------------------------------------------------------------------------

STREAM_GRID = (64, 64, 64)
STREAM_STEPS = 16

# the sampler moved to conftest so the chunked out-of-core benchmark
# shares one definition; keep the historic local names working
from conftest import RSSSampler as _RSSSampler  # noqa: E402
from conftest import vm_rss_kb as _vm_rss_kb  # noqa: E402


def test_streaming_throughput(artifact, tmp_path):
    """Record the streaming subsystem's trajectory: steps/s in each
    direction and the peak RSS of a straight-to-disk run (the bounded
    working set is the subsystem's reason to exist — compressing N
    steps must not cost N frames of memory)."""
    from repro.core.streaming import StreamingCompressor, StreamingDecompressor

    from repro.testing import evolving_field

    def simulation(nsteps=STREAM_STEPS):
        return evolving_field(nsteps, STREAM_GRID, scale=0.02)

    step_bytes = int(np.prod(STREAM_GRID)) * 4
    eb = 1e-3
    path = tmp_path / "stream.stz"

    def run(nsteps, out_path):
        with _RSSSampler() as sampler:
            t0 = time.perf_counter()
            with open(out_path, "wb") as sink:
                with StreamingCompressor(eb, "rel", sink=sink) as sc:
                    sc.extend(simulation(nsteps))
            elapsed = time.perf_counter() - t0
        return elapsed, sampler.peak

    baseline_kb = _vm_rss_kb()
    # short run first: faults in the constant pipeline working set, so
    # the peak difference vs the long run isolates per-step growth
    _, short_peak_kb = run(4, tmp_path / "warmup.stz")
    t_comp, peak_kb = run(STREAM_STEPS, path)
    out_bytes = path.stat().st_size

    with open(path, "rb") as fh:
        sd = StreamingDecompressor(fh)
        t0 = time.perf_counter()
        ndec = sum(1 for _ in sd)
        t_dec = time.perf_counter() - t0
    assert ndec == STREAM_STEPS

    comp_sps = STREAM_STEPS / t_comp
    dec_sps = STREAM_STEPS / t_dec
    total = STREAM_STEPS * step_bytes
    rows = [
        ["compress", round(t_comp * 1e3, 1), round(comp_sps, 2),
         round(total / t_comp / 1e6, 1)],
        ["decompress", round(t_dec * 1e3, 1), round(dec_sps, 2),
         round(total / t_dec / 1e6, 1)],
    ]
    artifact(
        "streaming_throughput",
        fmt_table(["direction", "total (ms)", "steps/s", "MB/s"], rows)
        + f"peak RSS {peak_kb / 1024:.0f} MiB "
        f"(baseline {baseline_kb / 1024:.0f} MiB, "
        f"{STREAM_STEPS} x {step_bytes / 1e6:.0f} MB steps, "
        f"CR {total / out_bytes:.1f})\n",
    )
    record_bench(
        "streaming",
        {
            "grid": list(STREAM_GRID),
            "steps": STREAM_STEPS,
            "dtype": "float32",
            "rel_eb": eb,
            "compress_steps_per_s": round(comp_sps, 2),
            "decompress_steps_per_s": round(dec_sps, 2),
            "compress_mb_s": round(total / t_comp / 1e6, 2),
            "decompress_mb_s": round(total / t_dec / 1e6, 2),
            "peak_rss_mb": round(peak_kb / 1024, 1),
            "baseline_rss_mb": round(baseline_kb / 1024, 1),
            "cr": round(total / out_bytes, 3),
        },
    )
    # the bounded-memory claim: 4x the steps must not move the peak by
    # more than a couple of frames — working memory is O(1 step), never
    # "all steps resident" (tests/test_streaming.py pins the same claim
    # deterministically with tracemalloc)
    assert peak_kb - short_peak_kb < 3 * step_bytes / 1024
