"""Selection-overhead benchmark: ``auto`` vs every fixed backend.

For each registry dataset, compress with every fixed candidate codec
and with ``codec="auto"``, then report:

* the chosen codec and whether it matches the best fixed codec,
* ``auto``'s compression ratio relative to the best fixed codec's
  (the acceptance criterion: >= 0.9x per dataset),
* selection overhead — the time ``auto`` spends on top of running the
  chosen codec directly.  The probe cost is *fixed* (it compresses a
  few bounded-size tiles, independent of the array), so the overhead
  percentage shrinks roughly linearly with data volume: substantial on
  the 64^3 bench grids, negligible at the paper's 512^3 scale.  The
  recorded ``probe_ms`` is the number to watch across PRs.

Results land in ``BENCH_speed.json`` under ``select_auto``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.api import compress
from repro.core.config import STZConfig
from repro.core.select import CANDIDATES
from repro.core.stream import CODEC_NAMES, unwrap_selected
from repro.datasets import dataset_names, load

from conftest import fmt_table, record_bench

REL_EB = 1e-3
#: acceptance floor: auto's CR vs the best fixed codec, per dataset
MIN_CR_RATIO = 0.9


def _time(fn, *args, repeats: int = 2, **kw):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn(*args, **kw)
        best = min(best, time.perf_counter() - t0)
    return out, best


def test_select_auto(artifact):
    cfg = STZConfig()
    rows = []
    payload: dict[str, dict] = {}
    for ds in dataset_names():
        data = load(ds)
        abs_eb = REL_EB * float(data.max() - data.min())

        fixed_sizes: dict[str, int] = {}
        fixed_times: dict[str, float] = {}
        for name, cand in CANDIDATES.items():
            blob, t = _time(cand.compress, data, abs_eb, cfg, None)
            fixed_sizes[name] = len(blob)
            fixed_times[name] = t

        auto_blob, t_auto = _time(compress, data, abs_eb, "abs", codec="auto")
        chosen = CODEC_NAMES[unwrap_selected(auto_blob)[0]]
        best = min(fixed_sizes, key=fixed_sizes.get)

        auto_cr = data.nbytes / len(auto_blob)
        best_cr = data.nbytes / fixed_sizes[best]
        ratio = auto_cr / best_cr
        overhead_s = t_auto - fixed_times[chosen]
        rows.append(
            [
                ds, chosen, best, f"{auto_cr:.2f}", f"{best_cr:.2f}",
                f"{ratio:.3f}", f"{1e3 * t_auto:.0f}",
                f"{1e3 * overhead_s:.0f}",
            ]
        )
        payload[ds] = {
            "chosen": chosen,
            "best_fixed": best,
            "auto_cr": round(auto_cr, 3),
            "best_fixed_cr": round(best_cr, 3),
            "cr_ratio": round(ratio, 4),
            "auto_s": round(t_auto, 4),
            "chosen_fixed_s": round(fixed_times[chosen], 4),
            "probe_ms": round(1e3 * overhead_s, 1),
        }

    artifact(
        "select_auto",
        fmt_table(
            [
                "dataset", "chosen", "best", "auto CR", "best CR",
                "ratio", "auto (ms)", "overhead (ms)",
            ],
            rows,
        )
        + "\nshape: auto >= 0.9x the best fixed codec's CR per dataset; "
        "overhead is a fixed probe cost, amortized at scale\n",
    )
    payload["rel_eb"] = REL_EB
    payload["grids"] = {
        ds: list(load(ds).shape) for ds in dataset_names()
    }
    record_bench("select_auto", payload)

    # --- acceptance shape: auto within ~10% of the best fixed codec ------
    for ds in dataset_names():
        assert payload[ds]["cr_ratio"] >= MIN_CR_RATIO, (
            ds, payload[ds]
        )
    # auto's L-inf bound is swept by tests/; here just sanity-check one
    from repro.core.api import decompress

    data = load("nyx")
    abs_eb = REL_EB * float(data.max() - data.min())
    blob = compress(data, abs_eb, "abs", codec="auto")
    err = float(
        np.abs(
            decompress(blob).astype(np.float64) - data.astype(np.float64)
        ).max()
    )
    assert err <= abs_eb
