"""Selection-overhead benchmark: ``auto`` vs every fixed backend.

For each registry dataset, compress with every fixed candidate codec
and with ``codec="auto"``, then report:

* the chosen codec and whether it matches the best fixed codec,
* ``auto``'s compression ratio relative to the best fixed codec's
  (the acceptance criterion: >= 0.9x per dataset),
* selection overhead — the time ``auto`` spends on top of running the
  chosen codec directly, and the ``speed_ratio`` auto_s /
  chosen_fixed_s that the amortization work drives toward 1x.  The
  best-of-repeats timing protocol makes this the *amortized* number:
  the first call pays the full probe, repeats hit the content-digest
  probe cache (repro.core.select), exactly like any workload that
  compresses the same or recurring data.

The second half measures streaming: ``codec="auto"`` over the evolving
field with today's amortized engine (feature-drift gate, label-keyed
score transfer, challenger refreshes, single-pass verified commit)
against a faithful reproduction of the pre-PR cadence (a full
multi-candidate compression probe at every keyframe, first delta, and
epsilon draw, plus float64-arithmetic SZ3 and no probe caching).  The
reproduction mirrors the pre-PR ``StreamingCompressor.append`` loop
statement for statement, so the reported speedup isolates the
amortization work — the bench_encode_batched.py protocol.

Results land in ``BENCH_speed.json`` under ``select_auto`` and
``select_stream``.  ``STZ_BENCH_DATASETS`` (comma-separated names)
restricts the dataset sweep — the CI bench-smoke step runs one dataset
and relies on the speed-ratio assertion below.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.api import compress, compress_stream
from repro.core.config import STZConfig
from repro.core.select import (
    CANDIDATES,
    SHORTLISTS,
    CodecSelector,
    bound_holds,
    clear_probe_cache,
    probe_features,
)
from repro.core.stream import CODEC_NAMES, unwrap_selected
from repro.core.streaming import StreamingDecompressor
from repro.datasets import dataset_names, load
from repro.sz3.compressor import sz3_compress_with_recon

from conftest import fmt_table, record_bench

REL_EB = 1e-3
#: acceptance floor: auto's CR vs the best fixed codec, per dataset
MIN_CR_RATIO = 0.9
#: CI smoke gate: amortized auto must stay within 2x of running the
#: chosen codec directly (the recorded ratios sit near 1.1-1.3)
MAX_SPEED_RATIO = 2.0

STREAM_GRID = (64, 64, 64)
STREAM_STEPS = 16
#: noise-tolerant assertion floor for the streaming speedup.  The
#: recorded ratio is the trajectory number; note the in-benchmark
#: reference is *conservative* — it inherits this PR's shared-helper
#: optimizations (fused bound_holds etc.), so the ratio understates
#: the improvement over the actual pre-PR build (interleaved runs of
#: the real PR-3 tree measured 2.3-2.4x on the same workload)
MIN_STREAM_SPEEDUP = 1.5


def _bench_datasets() -> list[str]:
    names = list(dataset_names())
    sel = os.environ.get("STZ_BENCH_DATASETS")
    if not sel:
        return names
    picked = [n.strip() for n in sel.split(",") if n.strip()]
    unknown = set(picked) - set(names)
    if unknown:
        raise ValueError(f"unknown STZ_BENCH_DATASETS entries: {unknown}")
    return picked


def _time(fn, *args, repeats: int = 2, **kw):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn(*args, **kw)
        best = min(best, time.perf_counter() - t0)
    return out, best


def test_select_auto(artifact):
    cfg = STZConfig()
    rows = []
    payload: dict[str, dict] = {}
    datasets = _bench_datasets()
    for ds in datasets:
        data = load(ds)
        abs_eb = REL_EB * float(data.max() - data.min())

        fixed_sizes: dict[str, int] = {}
        fixed_times: dict[str, float] = {}
        for name, cand in CANDIDATES.items():
            blob, t = _time(cand.compress, data, abs_eb, cfg, None)
            fixed_sizes[name] = len(blob)
            fixed_times[name] = t

        clear_probe_cache()  # first repeat pays the probe, second hits
        auto_blob, t_auto = _time(compress, data, abs_eb, "abs", codec="auto")
        chosen = CODEC_NAMES[unwrap_selected(auto_blob)[0]]
        best = min(fixed_sizes, key=fixed_sizes.get)

        auto_cr = data.nbytes / len(auto_blob)
        best_cr = data.nbytes / fixed_sizes[best]
        ratio = auto_cr / best_cr
        overhead_s = t_auto - fixed_times[chosen]
        speed_ratio = t_auto / fixed_times[chosen]
        rows.append(
            [
                ds, chosen, best, f"{auto_cr:.2f}", f"{best_cr:.2f}",
                f"{ratio:.3f}", f"{1e3 * t_auto:.0f}",
                f"{1e3 * overhead_s:.0f}", f"{speed_ratio:.2f}",
            ]
        )
        payload[ds] = {
            "chosen": chosen,
            "best_fixed": best,
            "auto_cr": round(auto_cr, 3),
            "best_fixed_cr": round(best_cr, 3),
            "cr_ratio": round(ratio, 4),
            "auto_s": round(t_auto, 4),
            "chosen_fixed_s": round(fixed_times[chosen], 4),
            "probe_ms": round(1e3 * overhead_s, 1),
            "speed_ratio": round(speed_ratio, 3),
        }

    artifact(
        "select_auto",
        fmt_table(
            [
                "dataset", "chosen", "best", "auto CR", "best CR",
                "ratio", "auto (ms)", "overhead (ms)", "speed ratio",
            ],
            rows,
        )
        + "\nshape: auto >= 0.9x the best fixed codec's CR per dataset, "
        "and amortized auto within 2x of the chosen codec alone\n",
    )
    payload["rel_eb"] = REL_EB
    payload["grids"] = {ds: list(load(ds).shape) for ds in datasets}
    record_bench("select_auto", payload)

    # --- acceptance shape: near-best CR at near-fixed-codec speed ------
    for ds in datasets:
        assert payload[ds]["cr_ratio"] >= MIN_CR_RATIO, (ds, payload[ds])
        assert payload[ds]["speed_ratio"] <= MAX_SPEED_RATIO, (
            ds, payload[ds]
        )
    # auto's L-inf bound is swept by tests/; here just sanity-check one
    from repro.core.api import decompress

    data = load(datasets[0])
    abs_eb = REL_EB * float(data.max() - data.min())
    blob = compress(data, abs_eb, "abs", codec="auto")
    err = float(
        np.abs(
            decompress(blob).astype(np.float64) - data.astype(np.float64)
        ).max()
    )
    assert err <= abs_eb


# ---------------------------------------------------------------------------
# streaming: amortized engine vs the pre-PR per-step re-probe cadence
# ---------------------------------------------------------------------------

def _reference_auto_stream(
    steps: list[np.ndarray],
    abs_eb: float,
    keyframe_interval: int = 8,
    seed: int = 0,
) -> bytes:
    """The pre-PR ``codec="auto"`` streaming loop, reproduced faithfully.

    Cadence: a full multi-candidate probe at every keyframe (intra) and
    whenever the delta shortlist is unset — which the keyframe reset
    forces — plus a *full* re-probe on every epsilon draw; no probe
    cache, no drift gate, no label transfer, no commit feedback, and
    the pre-flag float64 SZ3 arithmetic.  Byte-wise this writes the
    same container format as today (pre-PR sz3 blobs are the v1
    containers the default ``f32=False`` still produces).
    """
    from repro.core.stream import CODEC_IDS, FRAME_DELTA, MULTI_CODEC, \
        MultiFrameWriter

    cfg = STZConfig(codec="auto", select_seed=seed)

    def sz3_f64_c(data, eb, config, threads):  # pre-flag sz3 candidate
        return sz3_compress_with_recon(
            data, eb, "abs", config.sz3_interp, config.quant_radius,
            config.zlib_level,
        )[0]

    def sz3_f64_wr(data, eb, config, threads):
        return sz3_compress_with_recon(
            data, eb, "abs", config.sz3_interp, config.quant_radius,
            config.zlib_level,
        )

    compressors = {
        name: (sz3_f64_c if name == "sz3" else cand.compress)
        for name, cand in CANDIDATES.items()
    }

    def probe(sel, data, eb, names):  # pre-cache, serial, full probe
        from repro.core.select import sample_tiles, _TILE_EDGE

        tiles = sample_tiles(data)
        npoints = sum(t.size for t in tiles)
        small = None
        if not (len(tiles) == 1 and tiles[0].size == data.size):
            small = sample_tiles(data, _TILE_EDGE // 2)
            if sum(t.size for t in small) >= npoints:
                small = None
        for name in names:
            try:
                nbytes = sum(
                    len(compressors[name](t, eb, cfg, None)) for t in tiles
                )
                if small is not None:
                    nsmall = sum(t.size for t in small)
                    nbytes_s = sum(
                        len(compressors[name](t, eb, cfg, None))
                        for t in small
                    )
                    bpv = 8.0 * max(nbytes - nbytes_s, 1) / (npoints - nsmall)
                else:
                    bpv = 8.0 * nbytes / npoints
            except (ValueError, TypeError):
                continue
            sel.fold({name: bpv})
        sel.nprobes += 1

    def encode(sel, shortlist, data, eb):
        for name in sel.rank(shortlist):
            cand = CANDIDATES[name]
            if name == "sz3":
                blob, recon = sz3_f64_wr(data, eb, cfg, None)
            else:
                # pre-PR: only stz/sz3 tracked recon; others decompress
                blob = compressors[name](data, eb, cfg, None)
                recon = cand.decompress(blob)
            if bound_holds(data, recon, eb):
                return name, blob, recon
        raise AssertionError("unreachable")

    sel_intra = CodecSelector(seed=seed)
    sel_delta = CodecSelector(seed=seed + 1)
    intra_short = delta_short = None
    writer = MultiFrameWriter(None, flags=MULTI_CODEC)
    prev = None
    for index, step in enumerate(steps):
        is_key = index % keyframe_interval == 0
        if is_key:
            delta_short = None
        scale = (np.max(np.abs(prev)) + abs_eb) if prev is not None else 0.0
        delta_eb = abs_eb - float(scale) * 2.0**-23
        if prev is not None and not is_key and delta_eb > 0:
            resid = step - prev
            if delta_short is None or sel_delta.explore_draw():
                delta_short = SHORTLISTS[
                    probe_features(resid, delta_eb).label
                ]
                probe(sel_delta, resid, delta_eb, delta_short)
            name, blob, rr = encode(sel_delta, delta_short, resid, delta_eb)
            recon = prev + rr
            err = float(
                np.max(
                    np.abs(
                        recon.astype(np.float64) - step.astype(np.float64)
                    )
                )
            )
            if err <= abs_eb:
                writer.add_frame(blob, FRAME_DELTA, codec_id=CODEC_IDS[name])
                prev = recon
                continue
        if is_key or intra_short is None:
            intra_short = SHORTLISTS[probe_features(step, abs_eb).label]
            probe(sel_intra, step, abs_eb, intra_short)
        name, blob, recon = encode(sel_intra, intra_short, step, abs_eb)
        writer.add_frame(blob, codec_id=CODEC_IDS[name])
        prev = recon
    writer.finalize()
    return writer.getvalue()


def test_select_stream_amortized(artifact):
    from repro.testing import evolving_field

    steps = list(evolving_field(STREAM_STEPS, STREAM_GRID, scale=0.02))
    abs_eb = REL_EB * float(steps[0].max() - steps[0].min())
    total = sum(s.nbytes for s in steps)

    def ref():
        return _reference_auto_stream(steps, abs_eb)

    def amortized():
        clear_probe_cache()
        return compress_stream(steps, abs_eb, "abs", codec="auto")

    blob_ref = ref()
    blob_new = amortized()
    # both archives must decode within the bound
    for blob in (blob_ref, blob_new):
        for t, rec in enumerate(StreamingDecompressor(blob)):
            err = np.max(
                np.abs(
                    rec.astype(np.float64) - steps[t].astype(np.float64)
                )
            )
            assert err <= abs_eb, (t, err)

    t_ref = t_new = float("inf")
    for _ in range(3):  # interleaved best-of to decorrelate noise
        t0 = time.perf_counter()
        ref()
        t_ref = min(t_ref, time.perf_counter() - t0)
        t0 = time.perf_counter()
        amortized()
        t_new = min(t_new, time.perf_counter() - t0)
    ref_sps = STREAM_STEPS / t_ref
    new_sps = STREAM_STEPS / t_new
    speedup = t_ref / t_new

    rows = [
        ["pre-PR cadence", t_ref * 1e3, ref_sps, total / len(blob_ref)],
        ["amortized", t_new * 1e3, new_sps, total / len(blob_new)],
        ["speedup", speedup, "", ""],
    ]
    artifact(
        "select_stream",
        fmt_table(["path", "total (ms)", "steps/s", "CR"], rows)
        + f"\n{STREAM_STEPS} x {STREAM_GRID} f32 evolving field, "
        f"rel eb {REL_EB}; shape: amortized auto >= 2x the per-step "
        "re-probe cadence at matching CR\n",
    )
    record_bench(
        "select_stream",
        {
            "grid": list(STREAM_GRID),
            "steps": STREAM_STEPS,
            "dtype": "float32",
            "rel_eb": REL_EB,
            "ref_steps_per_s": round(ref_sps, 2),
            "amortized_steps_per_s": round(new_sps, 2),
            "speedup": round(speedup, 3),
            "cr_ref": round(total / len(blob_ref), 3),
            "cr_amortized": round(total / len(blob_new), 3),
        },
    )
    assert speedup >= MIN_STREAM_SPEEDUP, (
        f"amortized auto streaming only {speedup:.2f}x over the pre-PR "
        "cadence"
    )
    # amortization must not cost ratio: same chosen codecs => same CR
    # class (small per-frame variance allowed)
    assert len(blob_new) <= 1.1 * len(blob_ref)
