"""Figure 3 — visual quality of naive partition vs SZ3 vs STZ on the
Nyx field at matched compression ratio (paper: CR ~205, partition
SSIM 0.67 / PSNR 107 vs SZ3 0.95/118 vs STZ 0.95/120).

The claim reproduced: at the same CR, naive partitioning loses
significant quality and STZ's hierarchical prediction recovers it to
SZ3's level.
"""

import numpy as np

from repro.core.ablation import get_config
from repro.core.pipeline import stz_compress, stz_decompress
from repro.datasets import load
from repro.metrics import psnr, ssim
from repro.sz3 import sz3_compress, sz3_decompress

from conftest import eb_for_target_cr, fmt_table

TARGET_CR = 60.0  # smaller grids sustain lower CR than the paper's 512^3


def _at_cr(name, compress, decompress, data, artifact_rows):
    eb = eb_for_target_cr(compress, data, TARGET_CR)
    blob = compress(data, eb)
    rec = decompress(blob)
    cr = data.nbytes / len(blob)
    # the paper evaluates a 2D slice zoom; use the central slice
    mid = data.shape[0] // 2
    s = ssim(
        data[mid].astype(np.float64), rec[mid].astype(np.float64)
    )
    p = psnr(data, rec)
    artifact_rows.append([name, cr, p, s])
    return p, s


def test_fig03_partition_vs_sz3_vs_stz(benchmark, artifact):
    data = load("nyx")
    rows: list[list] = []

    part_cfg = get_config("partition")
    _at_cr(
        "Partition",
        lambda d, e: stz_compress(d, e, "rel", config=part_cfg),
        stz_decompress,
        data,
        rows,
    )
    _at_cr(
        "SZ3",
        lambda d, e: sz3_compress(d, e, "rel"),
        sz3_decompress,
        data,
        rows,
    )

    stz_eb = eb_for_target_cr(
        lambda d, e: stz_compress(d, e, "rel"), data, TARGET_CR
    )
    blob = benchmark(stz_compress, data, stz_eb, "rel")
    rec = stz_decompress(blob)
    mid = data.shape[0] // 2
    rows.append(
        [
            "STZ (ours)",
            data.nbytes / len(blob),
            psnr(data, rec),
            ssim(data[mid].astype(np.float64), rec[mid].astype(np.float64)),
        ]
    )

    artifact(
        "fig03_partition_quality",
        fmt_table(["method", "CR", "PSNR (dB)", "slice SSIM"], rows)
        + "\npaper (512^3, CR~205): Partition SSIM 0.67 / 107 dB; "
        "SZ3 0.95 / 118 dB; STZ 0.95 / 120 dB\n",
    )

    by = {r[0]: (r[2], r[3]) for r in rows}
    # shape claims: STZ ~ SZ3, both clearly above naive partitioning
    assert by["STZ (ours)"][0] > by["Partition"][0] + 1.0
    assert abs(by["STZ (ours)"][0] - by["SZ3"][0]) < 5.0
