"""Integrity-layer overhead benchmark: the cost of trust.

The checksum/recoverable layer (DESIGN.md §9) guards every payload with
CRC32 and a whole-archive digest.  Those guards run on *compressed*
bytes — a small fraction of the raw array — so the end-to-end overhead
must stay in the noise.  This benchmark measures it honestly on a
registry dataset, interleaving checked and unchecked runs so machine
drift decorrelates (the bench_chunked protocol):

* single-frame ``compress``/``decompress`` with and without
  ``checksum=True`` (digest + trailing-CRC verify at open),
* sharded ``compress_chunked``/``decompress_chunked`` with per-chunk
  CRCs plus the recoverable record prefixes,
* ``verify_archive`` scrub throughput (recorded, not asserted — the
  scrub is a new capability, not an overhead on an old path).

Results land in ``BENCH_speed.json`` under ``integrity``; the gate is
that checksum overhead stays <= ``MAX_OVERHEAD`` on both round trips.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.api import compress, compress_chunked, decompress
from repro.core.chunked import decompress_chunked
from repro.core.integrity import verify_archive
from repro.datasets import load

from conftest import fmt_table, record_bench

GRID = (96, 96, 96)
CHUNKS = 32
DATASET = "nyx"
REL_EB = 1e-3
REPS = 5
#: CI gate: the integrity layer may cost at most this fraction of the
#: unchecked round-trip time (CRC32 over compressed bytes is cheap;
#: anything above this means the guards landed on a hot path)
MAX_OVERHEAD = 0.05


def _interleaved(fn_plain, fn_checked, reps=REPS):
    """Best-of-reps for both variants, alternating runs."""
    t_plain, t_checked = np.inf, np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_plain()
        t_plain = min(t_plain, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_checked()
        t_checked = min(t_checked, time.perf_counter() - t0)
    return t_plain, t_checked


def test_integrity_overhead(artifact):
    data = load(DATASET, shape=GRID)
    abs_eb = REL_EB * float(data.max() - data.min())
    mbs = data.nbytes / 1e6

    # single-frame archive: digest appended, verified at reader open
    plain = compress(data, abs_eb, "abs")
    checked = compress(data, abs_eb, "abs", checksum=True)
    enc_plain, enc_checked = _interleaved(
        lambda: compress(data, abs_eb, "abs"),
        lambda: compress(data, abs_eb, "abs", checksum=True),
    )
    dec_plain, dec_checked = _interleaved(
        lambda: decompress(plain),
        lambda: decompress(checked),
    )

    # sharded archive: per-chunk CRCs + recoverable record prefixes
    cplain = compress_chunked(
        data, abs_eb, "abs", chunks=CHUNKS, executor="serial"
    )
    cchecked = compress_chunked(
        data, abs_eb, "abs", chunks=CHUNKS, executor="serial",
        checksum=True, recoverable=True,
    )
    cenc_plain, cenc_checked = _interleaved(
        lambda: compress_chunked(
            data, abs_eb, "abs", chunks=CHUNKS, executor="serial"
        ),
        lambda: compress_chunked(
            data, abs_eb, "abs", chunks=CHUNKS, executor="serial",
            checksum=True, recoverable=True,
        ),
    )
    cdec_plain, cdec_checked = _interleaved(
        lambda: decompress_chunked(cplain, executor="serial"),
        lambda: decompress_chunked(cchecked, executor="serial"),
    )

    t0 = time.perf_counter()
    report = verify_archive(cchecked)
    t_verify = time.perf_counter() - t0
    assert report.ok and not report.unchecked

    def _ovh(t_plain, t_checked):
        return t_checked / t_plain - 1.0

    overheads = {
        "single_compress": _ovh(enc_plain, enc_checked),
        "single_decompress": _ovh(dec_plain, dec_checked),
        "chunked_compress": _ovh(cenc_plain, cenc_checked),
        "chunked_decompress": _ovh(cdec_plain, cdec_checked),
    }
    size_overhead = len(cchecked) / len(cplain) - 1.0

    rows = [
        ["single compress", round(enc_plain, 3), round(enc_checked, 3),
         f"{overheads['single_compress'] * 100:+.1f}%"],
        ["single decompress", round(dec_plain, 3), round(dec_checked, 3),
         f"{overheads['single_decompress'] * 100:+.1f}%"],
        ["chunked compress", round(cenc_plain, 3), round(cenc_checked, 3),
         f"{overheads['chunked_compress'] * 100:+.1f}%"],
        ["chunked decompress", round(cdec_plain, 3), round(cdec_checked, 3),
         f"{overheads['chunked_decompress'] * 100:+.1f}%"],
    ]
    artifact(
        "integrity_overhead",
        fmt_table(["path", "plain (s)", "checked (s)", "overhead"], rows)
        + f"(dataset {DATASET} {'x'.join(map(str, GRID))}, chunks "
        f"{CHUNKS}^3; archive size {len(cplain)} -> {len(cchecked)} B "
        f"[{size_overhead * 100:+.1f}%]; verify_archive scrub "
        f"{mbs / t_verify:.0f} MB/s over {len(report.units)} units)\n",
    )
    record_bench(
        "integrity",
        {
            "dataset": DATASET,
            "grid": list(GRID),
            "chunks": CHUNKS,
            "rel_eb": REL_EB,
            "overhead": {k: round(v, 4) for k, v in overheads.items()},
            "size_overhead": round(size_overhead, 4),
            "verify_mb_s": round(mbs / t_verify, 1),
            "verify_units": len(report.units),
            "compress_mb_s_checked": round(mbs / cenc_checked, 2),
            "decompress_mb_s_checked": round(mbs / cdec_checked, 2),
        },
    )
    for path, ovh in overheads.items():
        assert ovh <= MAX_OVERHEAD, (
            f"integrity overhead on {path} is {ovh * 100:.1f}% "
            f"(gate {MAX_OVERHEAD * 100:.0f}%)"
        )
