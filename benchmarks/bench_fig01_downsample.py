"""Figure 1 — motivation: a 2x-downsampled WarpX field is visually
near-identical to the original (the paper reports SSIM = 0.96).

We downsample the WarpX-like field by 2 per axis, upsample back, and
measure SSIM against the original.
"""

from repro.core.progressive import upsample_nearest
from repro.datasets import load
from repro.metrics import ssim

from conftest import fmt_table


def test_fig01_downsample_ssim(benchmark, artifact):
    data = load("warpx").astype("float64")

    def downsample_roundtrip():
        coarse = data[::2, ::2, ::2]
        return upsample_nearest(coarse, data.shape)

    up = benchmark(downsample_roundtrip)
    score = ssim(data, up)
    artifact(
        "fig01_downsample",
        fmt_table(
            ["field", "full dims", "coarse dims", "SSIM", "paper SSIM"],
            [[
                "WarpX-like Ez",
                "x".join(map(str, data.shape)),
                "x".join(str(n // 2) for n in data.shape),
                score,
                0.96,
            ]],
        ),
    )
    # shape claim: the half-resolution preview is structurally faithful
    assert score > 0.85
