"""Decompression-throughput benchmark (serial + threaded, 128^3 f32).

Decode speed went unbenchmarked while three PRs of encode work landed;
this file closes the gap and records the decode trajectory the same way
``bench_encode_batched.py`` records the encode one.  The serial path
exercises the level-fused entropy decode (``huffman_decode_many``, with
the digest-cached window tables) plus the level-wide fused
``dequantize_many`` reconstruction; the threaded path exercises the
paper's OMP mode, where the per-sub-block predict+dequantize chain
spreads across the pool.  Both paths must reproduce the input within
the bound and agree with each other bit for bit (the fused/per-block
primitives are bit-identical by construction).

Results land in ``BENCH_speed.json`` under ``decode_batched``.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.core.pipeline import stz_compress, stz_decompress

from conftest import fmt_table, record_bench, smooth_field

GRID = (128, 128, 128)
REL_EB = 1e-3
REPS = 7
THREADS = 8


def test_decode_batched_throughput(artifact):
    data = smooth_field(GRID, seed=11).astype(np.float32)
    blob = stz_compress(data, REL_EB, "rel")

    # correctness first: both decode paths within the bound, bit-equal
    vr = float(data.max() - data.min())
    rec_serial = stz_decompress(blob)
    rec_threaded = stz_decompress(blob, threads=THREADS)
    assert rec_serial.tobytes() == rec_threaded.tobytes()
    err = np.max(
        np.abs(rec_serial.astype(np.float64) - data.astype(np.float64))
    )
    assert err <= REL_EB * vr

    t_serial, t_threaded = [], []
    for _ in range(REPS):  # interleaved to decorrelate machine noise
        t0 = time.perf_counter()
        stz_decompress(blob)
        t_serial.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        stz_decompress(blob, threads=THREADS)
        t_threaded.append(time.perf_counter() - t0)
    m_serial = statistics.median(t_serial)
    m_threaded = statistics.median(t_threaded)

    mbs = data.nbytes / 1e6
    rows = [
        ["serial (fused)", m_serial * 1e3, mbs / m_serial],
        [f"threaded ({THREADS})", m_threaded * 1e3, mbs / m_threaded],
    ]
    artifact(
        "decode_batched",
        fmt_table(["path", "decomp (ms)", "MB/s"], rows)
        + f"CR {data.nbytes / len(blob):.2f} at rel eb {REL_EB}\n",
    )
    record_bench(
        "decode_batched",
        {
            "grid": list(GRID),
            "dtype": "float32",
            "rel_eb": REL_EB,
            "threads": THREADS,
            "serial_ms": round(m_serial * 1e3, 2),
            "threaded_ms": round(m_threaded * 1e3, 2),
            "serial_mb_s": round(mbs / m_serial, 2),
            "threaded_mb_s": round(mbs / m_threaded, 2),
            "cr": round(data.nbytes / len(blob), 3),
        },
    )
