"""Decompression-throughput benchmark (jit x threads, 128^3 f32).

Decode is now a two-axis story (DESIGN.md §10):

* **jit on/off** — the compiled decode kernels (`stz_huff_decode`'s
  8-lane lockstep Huffman walk, the fused `stz_dqc_*`
  predict+dequantize, the `stz_scatter*` reassembly) versus the pure
  NumPy reference.  Both produce bit-identical output; jit-on serial is
  gated at ``MIN_JIT_SPEEDUP`` over the NumPy baseline when the kernels
  are available (they may legitimately be absent: no C compiler).
* **serial/threaded** — the compiled kernels are called through ctypes,
  which releases the GIL, so the thread fan-outs in
  ``huffman_decode_many`` and the chunk/sub-block executors genuinely
  overlap.  Threaded >= serial is asserted only on hosts with enough
  usable cores (``parallel_capacity()``); a 1-core runner records the
  rows but skips the gate with a reason, like ``bench_chunked``.

All four cells must agree bit for bit — the kernels replicate the
reference op order exactly.  Results land in ``BENCH_speed.json`` under
``decode_batched``.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.parallel import parallel_capacity
from repro.util import jit

from conftest import fmt_table, record_bench, smooth_field

GRID = (128, 128, 128)
REL_EB = 1e-3
REPS = 7
THREADS = 8
#: jit-on serial decode must beat the NumPy baseline by this factor
#: when the compiled kernels are available.  The kernels measure ~3x on
#: a quiet host; the gate keeps slack for noisy shared runners while
#: still catching a real regression to scalar-ish speed.
MIN_JIT_SPEEDUP = 1.8
#: threaded decode must at least match serial on hosts with this many
#: usable cores (same bar as bench_chunked's pool gate)
MIN_CORES_FOR_THREAD_GATE = 4


def _median_time(fn) -> float:
    out = []
    for _ in range(REPS):
        t0 = time.perf_counter()
        fn()
        out.append(time.perf_counter() - t0)
    return statistics.median(out)


def test_decode_batched_throughput(artifact):
    data = smooth_field(GRID, seed=11).astype(np.float32)
    blob = stz_compress(data, REL_EB, "rel")
    vr = float(data.max() - data.min())

    # correctness first: every (jit, threads) cell within the bound and
    # bit-identical to the jit-off serial reference
    with jit.override(False):
        ref = stz_decompress(blob)
    err = np.max(np.abs(ref.astype(np.float64) - data.astype(np.float64)))
    assert err <= REL_EB * vr
    cells = {}
    for jit_on in (False, True):
        with jit.override(jit_on):
            cells[(jit_on, "serial")] = stz_decompress(blob)
            cells[(jit_on, "threaded")] = stz_decompress(blob, threads=THREADS)
    for key, rec in cells.items():
        assert rec.tobytes() == ref.tobytes(), key

    # interleaved timing to decorrelate machine noise
    med = {k: [] for k in cells}
    for _ in range(REPS):
        for jit_on in (False, True):
            with jit.override(jit_on):
                t0 = time.perf_counter()
                stz_decompress(blob)
                med[(jit_on, "serial")].append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                stz_decompress(blob, threads=THREADS)
                med[(jit_on, "threaded")].append(time.perf_counter() - t0)
    times = {k: statistics.median(v) for k, v in med.items()}

    mbs = data.nbytes / 1e6
    rows = [
        [
            f"jit={'on' if j else 'off'} {path}",
            times[(j, path)] * 1e3,
            mbs / times[(j, path)],
        ]
        for j in (False, True)
        for path in ("serial", "threaded")
    ]
    cores = parallel_capacity()
    jit_speedup = times[(False, "serial")] / times[(True, "serial")]
    thread_speedup = times[(True, "serial")] / times[(True, "threaded")]
    artifact(
        "decode_batched",
        fmt_table(["path", "decomp (ms)", "MB/s"], rows)
        + f"CR {data.nbytes / len(blob):.2f} at rel eb {REL_EB}; "
        f"jit {'available' if jit.available() else 'unavailable'}; "
        f"jit-on serial speedup {jit_speedup:.2f}x; "
        f"threaded/serial (jit on) {thread_speedup:.2f}x; "
        f"{cores} usable cores\n",
    )
    record_bench(
        "decode_batched",
        {
            "grid": list(GRID),
            "dtype": "float32",
            "rel_eb": REL_EB,
            "threads": THREADS,
            "cores": cores,
            "jit_available": jit.available(),
            "numpy_serial_ms": round(times[(False, "serial")] * 1e3, 2),
            "numpy_threaded_ms": round(times[(False, "threaded")] * 1e3, 2),
            "jit_serial_ms": round(times[(True, "serial")] * 1e3, 2),
            "jit_threaded_ms": round(times[(True, "threaded")] * 1e3, 2),
            "jit_serial_mb_s": round(mbs / times[(True, "serial")], 2),
            "jit_serial_speedup": round(jit_speedup, 2),
            "threaded_speedup_jit": round(thread_speedup, 2),
            "cr": round(data.nbytes / len(blob), 3),
        },
    )

    if jit.available():
        assert jit_speedup >= MIN_JIT_SPEEDUP, (
            f"jit-on serial decode only {jit_speedup:.2f}x the NumPy "
            f"baseline (gate {MIN_JIT_SPEEDUP}x)"
        )
    if cores >= MIN_CORES_FOR_THREAD_GATE:
        assert thread_speedup >= 1.0, (
            f"threaded decode slower than serial ({thread_speedup:.2f}x) "
            f"on a {cores}-core host"
        )
    else:
        print(
            f"\nthread gate skipped: {cores} usable core(s) < "
            f"{MIN_CORES_FOR_THREAD_GATE} (threads cannot win here)"
        )
