"""Shared benchmark machinery.

Every benchmark file regenerates one table or figure of the paper (see
DESIGN.md §4).  Conventions:

* grids default to the registry's bench dims (64^3-class); set
  ``REPRO_SCALE=2`` (or higher) to scale every axis up,
* each benchmark prints its paper-style table (visible with ``-s``) and
  writes it to ``benchmarks/out/<name>.txt`` so results persist in any
  capture mode,
* "shape" assertions encode the paper's qualitative claims (who wins,
  roughly by how much) — they are the reproduction criteria, since our
  substrate is numpy, not the authors' C++ testbed.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable

import numpy as np
import pytest

# tests/ modules do `from conftest import max_err, smooth_field`; if a
# single pytest invocation ever collects tests/ and benchmarks/
# together, this module wins the `conftest` import, so keep those
# helpers (and the shared synthetic-volume fixtures) available here too
# (the default run is scoped to tests/ by pytest.ini precisely to avoid
# the shadowing).  Fixture bodies live in repro.testing — one
# definition for both trees.
from repro.testing import (  # noqa: F401
    max_err,
    rng,
    smooth2d_f32,
    smooth3d_f32,
    smooth3d_f64,
    smooth_field,
)
from repro.util.alloc import tune_allocator

# malloc tuning is opt-in (it raises steady-state RSS); the benchmark
# harness is a throughput-measuring entry point, so it opts in —
# without this both encode paths are page-fault-bound (DESIGN.md §3)
tune_allocator()

OUT_DIR = Path(__file__).parent / "out"
#: repo-root machine-readable speed record (see record_bench below)
BENCH_JSON = Path(__file__).parent.parent / "BENCH_speed.json"

#: relative error bounds swept by the rate-distortion benchmarks
REL_EBS = (1e-2, 3e-3, 1e-3, 3e-4, 1e-4)


@pytest.fixture(scope="session")
def artifact():
    """Writer: artifact("name", text) persists and echoes a table."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text)
        print(f"\n=== {name} ===\n{text}")

    return write


def record_bench(section: str, payload: dict) -> None:
    """Merge one benchmark's numbers into ``BENCH_speed.json``.

    The repo-root JSON is the machine-readable perf trajectory future
    PRs regress against: each benchmark owns one top-level key and
    overwrites only its own section.
    """
    data: dict = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def fmt_table(
    headers: list[str], rows: list[list], widths: list[int] | None = None
) -> str:
    """Plain-text table used by every benchmark printout."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0 or math.isinf(v) or math.isnan(v):
            return f"{v}"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def vm_rss_kb() -> int:
    """Current resident set size (KiB) from /proc (Linux)."""
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0


class RSSSampler:
    """Background peak-RSS sampler (1 ms cadence) — catches the
    transient working set a before/after pair would miss.  Shared by
    the streaming and chunked out-of-core benchmarks."""

    def __init__(self):
        import threading

        self.peak = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            self.peak = max(self.peak, vm_rss_kb())
            self._stop.wait(0.001)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join()
        self.peak = max(self.peak, vm_rss_kb())


def eb_for_target_cr(
    compress: Callable[[np.ndarray, float], bytes],
    data: np.ndarray,
    target_cr: float,
    lo: float = 1e-6,
    hi: float = 0.3,
    iters: int = 10,
) -> float:
    """Bisect (in log error-bound) for the bound hitting a target CR —
    the paper compares codecs "at similar compression ratios"."""
    lo_l, hi_l = math.log(lo), math.log(hi)
    for _ in range(iters):
        mid = math.exp(0.5 * (lo_l + hi_l))
        cr = data.nbytes / len(compress(data, mid))
        if cr < target_cr:
            lo_l = math.log(mid)
        else:
            hi_l = math.log(mid)
    return math.exp(0.5 * (lo_l + hi_l))
