"""Table 1 — feature matrix of the five compressors.

Progressive / random-access capability comes from the codec classes;
speed and quality classes are cross-checked by the measuring benchmarks
(Tables 3, Figure 11), so this bench asserts the capability pattern the
paper's whole argument rests on: STZ is the only codec with both
streaming features.
"""

from repro.core.api import STZCompressor
from repro.mgard import MGARDCompressor
from repro.sperr import SPERRCompressor
from repro.sz3 import SZ3Compressor
from repro.zfp import ZFPCompressor

from conftest import fmt_table

#: the paper's Table 1 speed/quality classes (measured benches verify)
PAPER_CLASSES = {
    "SZ3": ("mid", "high"),
    "SPERR": ("very low", "very high"),
    "MGARD-X": ("low", "mid"),
    "ZFP": ("very high", "low"),
    "STZ": ("high", "high"),
}

ALL = [SZ3Compressor, SPERRCompressor, MGARDCompressor, ZFPCompressor, STZCompressor]


def test_table1_feature_matrix(benchmark, artifact):
    def build():
        rows = []
        for cls in ALL:
            speed, quality = PAPER_CLASSES[cls.name]
            rows.append(
                [
                    cls.name,
                    "yes" if cls.supports_progressive else "no",
                    "yes" if cls.supports_random_access else "no",
                    speed,
                    quality,
                ]
            )
        return rows

    rows = benchmark(build)
    artifact(
        "table1_features",
        fmt_table(
            ["compressor", "progressive", "random-access", "speed", "quality"],
            rows,
        ),
    )
    flags = {r[0]: (r[1], r[2]) for r in rows}
    # the paper's Table 1, exactly
    assert flags["STZ"] == ("yes", "yes")
    assert flags["SZ3"] == ("no", "no")
    assert flags["SPERR"] == ("yes", "no")
    assert flags["MGARD-X"] == ("yes", "no")
    assert flags["ZFP"] == ("no", "yes")
