"""Figure 13 — progressive decompression of the Miranda-like dataset:
decompression time and SSIM at the coarsest / coarse / full resolution.

Paper (1024^3, CR 447): full 11.4s, half 2.5s, quarter 0.71s; SSIM
0.96 / 0.86 / 0.74.  Shape claims: time drops superlinearly with
resolution, structure (SSIM vs original) degrades gracefully.
"""

import numpy as np

from repro.core.pipeline import stz_compress
from repro.core.progressive import progressive_ladder, upsample_nearest
from repro.datasets import load
from repro.metrics import ssim

from conftest import fmt_table


def test_fig13_progressive_ladder(benchmark, artifact):
    data = load("miranda")
    # Miranda is the high-CR dataset of the paper (CR 447); use a loose
    # bound to get into the high-CR regime
    blob = stz_compress(data, 4e-3, "rel")
    cr = data.nbytes / len(blob)

    steps = benchmark.pedantic(
        progressive_ladder, args=(blob,), rounds=3, iterations=1
    )

    rows = []
    f64 = data.astype(np.float64)
    for s in steps:
        up = upsample_nearest(s.data.astype(np.float64), data.shape)
        rows.append(
            [
                "x".join(map(str, s.shape)),
                s.seconds,
                ssim(f64, up),
            ]
        )
    artifact(
        "fig13_progressive",
        fmt_table(["resolution", "dec time (s)", "SSIM vs original"], rows)
        + f"\nfull-resolution CR = {cr:.0f}  "
        "(paper: 447 at 1024^3; SSIM 0.74/0.86/0.96, times 0.71/2.5/11.4s)\n",
    )

    times = [r[1] for r in rows]
    ssims = [r[2] for r in rows]
    # coarser levels must be much faster than full reconstruction ...
    assert times[0] < 0.5 * times[-1]
    assert times[1] < times[-1]
    # ... and quality must improve monotonically with resolution
    assert ssims[0] < ssims[-1]
    assert ssims[1] <= ssims[-1] + 1e-9
    # the coarsest preview still shows the structure
    assert ssims[0] > 0.4
