"""Serve-layer benchmark: closed-loop load against a live server.

The Fig.-10 detect-then-extract workflow, served: many small ROI
requests hammer the same few chunks of one archive (the halos everyone
is looking at).  This benchmark runs that repeated-ROI workload
closed-loop — each client thread issues its next request only after
the previous response lands — over real TCP against the in-process
:class:`~repro.testing.ServerHarness`, twice:

* **warm cache** — the default server; after warm-up every hot chunk
  sits decoded in the :class:`DecodedChunkCache` and requests cost a
  dict lookup plus the ROI copy,
* **cache disabled** — ``cache_bytes=0``; the identical code path
  re-decodes the chunk (checksum + Huffman + interpolation) on every
  request.  This cold-miss run happens twice, under ``jit.override``
  on and off, because every cold miss now rides the compiled decode
  kernels (DESIGN.md §10) — the jit-keyed pair records how much of the
  cold-miss p50 the kernels buy back, and gates that jit-on is never
  slower than the NumPy path.

Reported per run: p50/p99 request latency, closed-loop request
throughput, and the server's own cache hit rate.  Three gates double
as the CI smoke contract:

* warm-cache p50 must undercut the cache-disabled p50 by
  ``MIN_CACHE_SPEEDUP``x — the cache has to *pay*, not just exist,
* the warm run's hit rate must be positive on a repeated-ROI workload
  (a zero here means the digest/index keying broke),
* post-warm-up p99 <= ``MAX_TAIL_RATIO`` x p50 — admission control and
  the executor hand-off must keep the tail bounded, not park requests
  behind a convoy.

Results land in ``BENCH_speed.json`` under ``serve``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.testing import ServerHarness, smooth_field
from repro.util import jit

from conftest import fmt_table, record_bench

GRID = (96, 96, 96)
CHUNKS = 48
REL_EB = 1e-3
TENANT = "bench"
CLIENTS = 3
#: timed requests per client (after warm-up); closed loop, so total
#: wall clock adapts to the server rather than overrunning it
REQS_PER_CLIENT = 40
WARMUP_PER_CLIENT = 6
#: the hotspot: a handful of sub-chunk boxes inside two of the eight
#: 48^3 chunks — every request after warm-up re-reads a decoded chunk
HOT_BOXES = (
    "8:24,8:24,8:24",
    "16:32,0:16,24:40",
    "32:46,30:44,2:18",
    "50:66,50:66,50:66",
    "60:76,48:64,70:86",
)
#: CI gates (see module docstring)
MIN_CACHE_SPEEDUP = 5.0
MAX_TAIL_RATIO = 10.0


def _drive(harness, digest: str) -> dict:
    """Closed-loop repeated-ROI workload; returns latency stats."""

    def client_loop(cid: int) -> list[float]:
        lat: list[float] = []
        with harness.client(TENANT, timeout=120) as cli:
            for i in range(WARMUP_PER_CLIENT + REQS_PER_CLIENT):
                box = HOT_BOXES[(cid + i) % len(HOT_BOXES)]
                t0 = time.perf_counter()
                resp = cli.roi(digest, box)
                dt = time.perf_counter() - t0
                assert resp.status == 200, (resp.status, resp.body[:200])
                if i >= WARMUP_PER_CLIENT:
                    lat.append(dt)
        return lat

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENTS) as tp:
        per_client = list(tp.map(client_loop, range(CLIENTS)))
    wall = time.perf_counter() - t0
    lat = np.array([dt for lats in per_client for dt in lats])
    stats = harness.client(TENANT).stats()
    return {
        "requests": int(lat.size),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
        "mean_ms": round(float(lat.mean()) * 1e3, 3),
        "req_per_s": round(lat.size / wall, 1),
        "cache_hit_rate": round(
            stats["engine"]["cache"]["hit_rate"], 4
        ),
        "rejected": stats["admission"]["rejected"],
    }


def _serve_workload(cache_bytes: int, jit_mode: bool | None = None) -> dict:
    """One full harness run.  ``jit_mode`` pins the compiled-kernel
    facade on/off for the in-process server's decode threads (None
    follows the environment, i.e. the default jit-on path)."""
    data = smooth_field(GRID, seed=11).astype(np.float32)
    eb = REL_EB * float(data.max() - data.min())
    with jit.override(jit_mode), ServerHarness(
        executor="thread",
        workers=2,
        cache_bytes=cache_bytes,
        max_inflight=8,
        max_queue=64,
        request_timeout=120.0,
    ) as h:
        with h.client(TENANT, timeout=120) as cli:
            resp = cli.compress(data, eb, chunks=CHUNKS)
            assert resp.status == 200, resp.body[:200]
            digest = resp.headers["x-archive-digest"]
        return _drive(h, digest)


def test_serve_repeated_roi(artifact):
    """Warm-cache vs cache-disabled repeated-ROI latency, the jit-keyed
    cold-miss pair, plus the tail-latency and hit-rate smoke gates."""
    warm = _serve_workload(cache_bytes=64 * (1 << 20))
    cold = _serve_workload(cache_bytes=0)  # env default (jit on)
    # cold misses are pure decode: re-run with the kernels pinned off
    # to record what the compiled decode path buys on a cache miss
    cold_numpy = _serve_workload(cache_bytes=0, jit_mode=False)

    speedup = cold["p50_ms"] / warm["p50_ms"]
    tail_ratio = warm["p99_ms"] / warm["p50_ms"]
    jit_cold_speedup = cold_numpy["p50_ms"] / cold["p50_ms"]
    rows = [
        ["warm cache", warm["p50_ms"], warm["p99_ms"], warm["req_per_s"],
         warm["cache_hit_rate"]],
        ["cache off (jit)", cold["p50_ms"], cold["p99_ms"],
         cold["req_per_s"], cold["cache_hit_rate"]],
        ["cache off (numpy)", cold_numpy["p50_ms"], cold_numpy["p99_ms"],
         cold_numpy["req_per_s"], cold_numpy["cache_hit_rate"]],
    ]
    artifact(
        "serve_repeated_roi",
        fmt_table(
            ["server", "p50 (ms)", "p99 (ms)", "req/s", "hit rate"], rows
        )
        + f"(grid {'x'.join(map(str, GRID))}, chunks {CHUNKS}^3, "
        f"{CLIENTS} closed-loop clients x {REQS_PER_CLIENT} ROI reqs; "
        f"cache p50 speedup {speedup:.1f}x, warm tail p99/p50 "
        f"{tail_ratio:.1f}; jit {'available' if jit.available() else 'unavailable'}, "
        f"cold-miss p50 jit speedup {jit_cold_speedup:.2f}x)\n",
    )
    record_bench(
        "serve",
        {
            "grid": list(GRID),
            "chunks": CHUNKS,
            "clients": CLIENTS,
            "requests_per_client": REQS_PER_CLIENT,
            "hot_boxes": len(HOT_BOXES),
            "executor": "thread",
            "workers": 2,
            "jit_available": jit.available(),
            "warm_cache": warm,
            "cache_disabled": cold,
            "cold_miss": {
                "jit_on": cold,
                "jit_off": cold_numpy,
                "p50_jit_speedup": round(jit_cold_speedup, 2),
            },
            "cache_p50_speedup": round(speedup, 2),
            "warm_tail_p99_over_p50": round(tail_ratio, 2),
        },
    )
    # the CI smoke gates
    assert warm["cache_hit_rate"] > 0, warm
    assert speedup >= MIN_CACHE_SPEEDUP, (warm, cold)
    assert tail_ratio <= MAX_TAIL_RATIO, warm
    # closed-loop load within max_inflight: admission must not reject
    assert warm["rejected"] == 0 and cold["rejected"] == 0
    assert cold_numpy["rejected"] == 0
    if jit.available():
        # compiled cold-miss decode must not lose to the NumPy path
        # (slack for shared-runner noise; a quiet host shows ~1.5-3x)
        assert jit_cold_speedup >= 0.9, (cold, cold_numpy)
