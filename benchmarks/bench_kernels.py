"""Micro-benchmark: compiled hot kernels vs the pure-NumPy reference.

The ``repro.util.jit`` facade (DESIGN.md §10) compiles the serial
encode path's hot kernels — quantize/predict, Huffman tree + packing,
SZx plane packing — to native code behind a byte-identical contract.
This bench measures what that buys on the standard speed dataset
(``smooth_field`` 128^3 float32, the ``encode_batched`` reference
workload) plus a high-entropy field where the Huffman side dominates.

Both modes run interleaved in one process via ``jit.override`` so the
ratio isolates the kernels; byte-identity of the two archives is
asserted on every rep (the facade's contract is not just speed).
Results land in ``BENCH_speed.json`` under ``kernels``.  The CI gate:
when the compiled kernels are available, jit-on serial encode must not
regress below the pure-NumPy baseline (``MIN_SPEEDUP``); when no
compiler exists, availability is recorded and the gate stands down —
the facade may never turn a missing toolchain into a failure.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.api import compress, decompress
from repro.util import jit
from repro.util.validation import resolve_eb

from conftest import fmt_table, record_bench, smooth_field

GRID = (128, 128, 128)
REL_EB = 1e-3
REPS = 5
#: the jit path must at least match the reference it replaces — a
#: noise-tolerant floor just under parity; the recorded speedup is the
#: trajectory number (≈2x smooth, >4x high-entropy on quiet machines)
MIN_SPEEDUP = 0.95


def _fields() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    return {
        "smooth": smooth_field(GRID).astype(np.float32),
        "high_entropy": np.cumsum(
            rng.standard_normal(GRID), axis=0
        ).astype(np.float32),
    }


def test_kernels_serial_encode(artifact):
    available = jit.available()
    rows = []
    payload: dict = {
        "grid": list(GRID),
        "rel_eb": REL_EB,
        "available": available,
        "backend": jit.status()["backend"],
        "datasets": {},
    }
    for name, data in _fields().items():
        eb = resolve_eb(data, REL_EB, "rel")
        mb = data.nbytes / 1e6
        # warm both paths (first-call compile/load + allocator)
        with jit.override(True):
            blob_jit = compress(data, eb)
        with jit.override(False):
            blob_ref = compress(data, eb)
        # byte identity is part of the contract being benchmarked
        assert blob_jit == blob_ref, name
        t_jit, t_ref, t_dec = np.inf, np.inf, np.inf
        for _ in range(REPS):  # interleaved: noise decorrelates
            with jit.override(False):
                t0 = time.perf_counter()
                compress(data, eb)
                t_ref = min(t_ref, time.perf_counter() - t0)
            with jit.override(True):
                t0 = time.perf_counter()
                compress(data, eb)
                t_jit = min(t_jit, time.perf_counter() - t0)
                t0 = time.perf_counter()
                decompress(blob_jit)
                t_dec = min(t_dec, time.perf_counter() - t0)
        speedup = t_ref / t_jit
        payload["datasets"][name] = {
            "numpy_s": round(t_ref, 4),
            "jit_s": round(t_jit, 4),
            "numpy_mb_s": round(mb / t_ref, 1),
            "jit_mb_s": round(mb / t_jit, 1),
            "speedup": round(speedup, 3),
            "decompress_s": round(t_dec, 4),
        }
        rows.append(
            [name, round(mb / t_ref, 1), round(mb / t_jit, 1),
             round(speedup, 2)]
        )
    artifact(
        "kernels",
        fmt_table(
            ["dataset", "numpy MB/s", "jit MB/s", "speedup"], rows
        )
        + f"(grid {'x'.join(map(str, GRID))} f32, rel_eb {REL_EB}; "
        f"jit available: {available}; archives byte-identical "
        "in both modes)\n",
    )
    record_bench("kernels", payload)
    if available:
        for name, d in payload["datasets"].items():
            assert d["speedup"] >= MIN_SPEEDUP, (name, d)
