"""Figure 10 — ROI extraction on the Nyx dataset: max-value
thresholding at the halo-formation threshold (81.66) captures every
halo while selecting well under 1% of the volume (paper: 0.69%).

The full workflow is exercised: compress -> progressive coarse preview
-> select ROI blocks on the preview -> random-access decompress each
ROI at full resolution -> verify halo capture on the reconstruction.
"""

import numpy as np

from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.random_access import stz_decompress_roi
from repro.core.roi import capture_recall, select_blocks
from repro.datasets import load
from repro.datasets.nyx import HALO_THRESHOLD

from conftest import fmt_table


def test_fig10_roi_halo_capture(benchmark, artifact):
    data = load("nyx")
    blob = stz_compress(data, 1e-3, "rel")

    # selection runs on the *coarse preview*, as the paper's workflow
    coarse = stz_decompress(blob, level=2)
    up_factor = data.shape[0] // coarse.shape[0]

    def select():
        return select_blocks(
            data, block=4, stat="max", threshold=HALO_THRESHOLD
        )

    sel = benchmark(select)
    recall_orig = capture_recall(data, sel, HALO_THRESHOLD)

    # reconstruct every ROI via random access and verify values there
    total_err = 0.0
    for box in sel.boxes:
        res = stz_decompress_roi(blob, box)
        ref = data[box]
        total_err = max(
            total_err,
            float(np.max(np.abs(res.data.astype(np.float64) - ref))),
        )

    halo_frac = float((data >= HALO_THRESHOLD).mean())
    artifact(
        "fig10_roi",
        fmt_table(
            ["quantity", "value", "paper"],
            [
                ["halo threshold", HALO_THRESHOLD, 81.66],
                ["cells above threshold", f"{halo_frac:.4%}", "-"],
                ["ROI fraction of volume", f"{sel.fraction:.4%}", "0.69%"],
                ["halo capture recall", recall_orig, "1.0 (all halos)"],
                ["ROI boxes", len(sel), "-"],
                ["max err in ROI recon", total_err, "<= eb"],
                ["coarse preview factor", up_factor, "-"],
            ],
        ),
    )
    assert recall_orig == 1.0  # every halo captured
    assert sel.fraction < 0.02  # tiny fraction of the volume, as Fig 10
    eb_abs = 1e-3 * float(data.max() - data.min())
    assert total_err <= eb_abs
