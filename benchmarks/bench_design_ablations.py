"""Design-choice ablations beyond the paper's figures.

Quantifies the §3.2 structural claims and the design decisions DESIGN.md
calls out:

* dependency footprint: the coarsest level is 1/64 = 1.6% of a 3-level
  3D dataset (12.5% for 2-level) — the paper's random-access overhead
  argument;
* 3-level is faster than 2-level (paper: up to 2.2x) because the
  embedded SZ3 handles 8x less data;
* diagonal vs tensor cubic (paper Eq. 7-8 approximation vs full
  separable product);
* adaptive error-bound ratio sweep around the paper's 2.5 optimum;
* MGARD correction on/off.
"""

import time

import numpy as np

from repro.core.config import STZConfig
from repro.core.partition import level_fraction
from repro.core.pipeline import stz_compress, stz_decompress
from repro.datasets import load
from repro.metrics import psnr
from repro.mgard import mgard_compress, mgard_decompress

from conftest import fmt_table


def test_dependency_footprint(benchmark, artifact):
    frac3 = benchmark(level_fraction, 3, 3)
    rows = [
        ["2-level 3D coarsest fraction", level_fraction(3, 2), "12.5%"],
        ["3-level 3D coarsest fraction", frac3, "1.6%"],
        ["4-level 3D coarsest fraction", level_fraction(3, 4), "0.2%"],
    ]
    artifact("ablation_dependency_footprint", fmt_table(
        ["quantity", "value", "paper"], rows))
    assert frac3 == 1 / 64


def test_three_level_faster_than_two_level(benchmark, artifact):
    # 128^3: at 64^3 the level-1 SZ3 share is noise either way
    data = load("miranda", shape=(128, 128, 128))

    def run(levels):
        cfg = STZConfig(levels=levels)
        t0 = time.perf_counter()
        blob = stz_compress(data, 1e-3, "rel", config=cfg)
        t_c = time.perf_counter() - t0
        t0 = time.perf_counter()
        stz_decompress(blob)
        t_d = time.perf_counter() - t0
        return t_c, t_d, data.nbytes / len(blob)

    t2 = run(2)
    t3 = run(3)
    benchmark.pedantic(
        stz_compress, args=(data, 1e-3, "rel"),
        kwargs={"config": STZConfig(levels=3)}, rounds=3, iterations=1,
    )
    artifact("ablation_levels_speed", fmt_table(
        ["levels", "comp (s)", "dec (s)", "CR"],
        [[2, *t2], [3, *t3]],
    ) + "\npaper: 3-level up to 2.2x faster than 2-level\n")
    # 3-level must not be slower overall (the SZ3 share shrinks 8x)
    assert t3[0] + t3[1] < (t2[0] + t2[1]) * 1.15


def test_diagonal_vs_tensor_cubic(benchmark, artifact):
    data = load("nyx")
    rows = []
    results = {}
    for mode in ("diagonal", "tensor"):
        cfg = STZConfig(cubic_mode=mode)
        t0 = time.perf_counter()
        blob = stz_compress(data, 1e-3, "rel", config=cfg)
        t_c = time.perf_counter() - t0
        rec = stz_decompress(blob)
        results[mode] = (data.nbytes / len(blob), psnr(data, rec), t_c)
        rows.append([mode, *results[mode]])
    benchmark(stz_compress, data, 1e-3, "rel")
    artifact("ablation_cubic_mode", fmt_table(
        ["cubic mode", "CR", "PSNR (dB)", "comp (s)"], rows))
    # the diagonal approximation gives up little quality (paper's
    # rationale for Eqs. 7-8) — within 1 dB of the full tensor product
    assert abs(results["diagonal"][1] - results["tensor"][1]) < 1.0


def test_adaptive_ratio_sweep(benchmark, artifact):
    data = load("nyx")
    rows = []
    scores = {}
    for ratio in (1.0, 1.5, 2.5, 4.0, 8.0):
        cfg = STZConfig(eb_ratio=ratio) if ratio > 1 else STZConfig(
            adaptive_eb=False
        )
        blob = stz_compress(data, 1e-3, "rel", config=cfg)
        rec = stz_decompress(blob)
        scores[ratio] = (data.nbytes / len(blob), psnr(data, rec))
        rows.append([ratio, *scores[ratio]])
    benchmark(stz_compress, data, 1e-3, "rel")
    artifact("ablation_eb_ratio", fmt_table(
        ["eb ratio (1 = uniform)", "CR", "PSNR (dB)"], rows)
        + "\npaper: 2.5 is the measured optimum\n")
    # the paper's 2.5 must beat uniform bounds on quality
    assert scores[2.5][1] > scores[1.0][1]


def test_mgard_correction_ablation(benchmark, artifact):
    data = load("miranda")
    rows = []
    for corr in (True, False):
        t0 = time.perf_counter()
        blob = mgard_compress(data, 1e-3, "rel", correction=corr)
        t_c = time.perf_counter() - t0
        rec = mgard_decompress(blob)
        rows.append(
            [corr, data.nbytes / len(blob), psnr(data, rec), t_c]
        )
    benchmark.pedantic(
        mgard_compress, args=(data, 1e-3, "rel"), rounds=3, iterations=1
    )
    artifact("ablation_mgard_correction", fmt_table(
        ["correction", "CR", "PSNR (dB)", "comp (s)"], rows))
    # correction costs time (the multigrid solves)
    assert rows[0][3] > rows[1][3] * 0.9
