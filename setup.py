"""Thin shim: metadata lives in pyproject.toml.

Kept so the package installs in offline environments whose pip lacks the
`wheel` package needed for PEP 660 editable builds
(`python setup.py develop` / `pip install -e . --no-build-isolation`).
"""

from setuptools import setup

setup()
