"""Quickstart: compress a scientific field with STZ, decompress it
fully, progressively, and by region of interest.

Time-step *sequences* have their own streaming API —
``stz.compress_stream`` / ``stz.iter_decompress`` (and the stateful
``repro.core.streaming.StreamingCompressor`` for bounded-memory,
straight-to-disk use); see examples/streaming_timesteps.py.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.core as stz
from repro.datasets import load
from repro.metrics import psnr


def main() -> None:
    # a Nyx-like cosmology density field (synthetic stand-in, see
    # DESIGN.md); any float32/float64 numpy array works
    data = load("nyx", shape=(64, 64, 64))
    print(f"field: {data.shape} {data.dtype}, {data.nbytes / 2**20:.1f} MiB")

    # --- compress with a relative error bound of 1e-3 ------------------
    blob = stz.compress(data, eb=1e-3, eb_mode="rel")
    print(f"compressed: {len(blob)} bytes, CR = {data.nbytes / len(blob):.1f}")

    # --- full decompression --------------------------------------------
    rec = stz.decompress(blob)
    abs_eb = 1e-3 * float(data.max() - data.min())
    err = float(np.abs(rec.astype(np.float64) - data.astype(np.float64)).max())
    print(f"full reconstruction: PSNR {psnr(data, rec):.1f} dB, "
          f"max error {err:.3g} (bound {abs_eb:.3g})")
    assert err <= abs_eb

    # --- progressive: coarse previews without full reconstruction ------
    for level in (1, 2):
        coarse = stz.decompress_progressive(blob, level=level)
        print(f"progressive level {level}: {coarse.shape} "
              f"({coarse.size / data.size:.1%} of the data)")

    # --- random access: one 2D slice at full resolution -----------------
    z = data.shape[0] // 2
    sl = stz.decompress_roi(blob, (z, slice(None), slice(None)))
    assert np.array_equal(sl[0], rec[z])  # identical to cropping a full pass
    print(f"ROI slice z={z}: {sl.shape}, bit-identical to full decompression")

    # --- adaptive codec selection: let the engine pick the backend ------
    # codec="auto" probes the data (smoothness, constant blocks) and
    # routes it to whichever registered backend — STZ, SZ3, ZFP, SPERR,
    # or the SZx-style fast tier — wins on estimated bits-per-value at
    # this bound.  The hard error bound is verified before committing,
    # and the same bytes come back for the same input + seed.
    auto_blob = stz.compress(data, eb=1e-3, eb_mode="rel", codec="auto")
    auto_rec = stz.decompress(auto_blob)
    err = float(
        np.abs(auto_rec.astype(np.float64) - data.astype(np.float64)).max()
    )
    assert err <= abs_eb
    print(f"auto codec: {len(auto_blob)} bytes "
          f"(CR {data.nbytes / len(auto_blob):.1f}), max error {err:.3g}")


if __name__ == "__main__":
    main()
