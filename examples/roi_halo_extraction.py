"""Region-of-interest workflow on a cosmology field (paper Figure 10).

1. compress the full Nyx-like density field once;
2. decompress only a *coarse preview* (progressive);
3. find halo candidates on the preview with the ROI module's
   max-value thresholding (the paper's halo threshold 81.66);
4. random-access decompress only those regions at full resolution.

The final full-resolution data touched is a fraction of a percent of
the volume.

Run:  python examples/roi_halo_extraction.py
"""

import numpy as np

import repro.core as stz
from repro.core.roi import capture_recall, select_blocks
from repro.datasets import load
from repro.datasets.nyx import HALO_THRESHOLD


def main() -> None:
    data = load("nyx", shape=(96, 96, 96), seed=7)
    blob = stz.compress(data, eb=1e-3, eb_mode="rel")
    print(f"compressed {data.shape} field: CR {data.nbytes / len(blob):.0f}")

    # coarse preview (level 2 = 1/8 of the points) to scout for halos
    preview = stz.decompress_progressive(blob, level=2)
    print(f"preview: {preview.shape}, max density {preview.max():.0f}")

    # threshold the *preview* — halos are huge over-densities, so they
    # survive 2x downsampling; dilate the threshold a little for safety
    candidates = select_blocks(
        preview, block=4, stat="max", threshold=HALO_THRESHOLD * 0.5
    )
    print(f"{len(candidates)} candidate blocks on the preview "
          f"({candidates.fraction:.2%} of the coarse volume)")

    # map preview blocks to full-resolution boxes and fetch them
    fetched = 0
    halo_cells = 0
    for box in candidates.boxes:
        full_box = tuple(slice(2 * s.start, min(2 * s.stop, n))
                         for s, n in zip(box, data.shape))
        roi = stz.decompress_roi(blob, full_box)
        fetched += roi.size
        halo_cells += int((roi >= HALO_THRESHOLD).sum())
    print(f"fetched {fetched} cells at full resolution "
          f"({fetched / data.size:.2%} of the volume), "
          f"{halo_cells} halo cells found")

    # verify against ground truth: every halo cell is inside a candidate
    sel_full = select_blocks(
        data, block=8, stat="max", threshold=HALO_THRESHOLD
    )
    recall = capture_recall(data, sel_full, HALO_THRESHOLD)
    truth = int((data >= HALO_THRESHOLD).sum())
    print(f"ground truth: {truth} halo cells; direct-selection recall "
          f"{recall:.2f} (paper: 0.69% of data captures all halos)")
    assert halo_cells >= truth * 0.95


if __name__ == "__main__":
    main()
