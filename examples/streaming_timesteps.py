"""Streaming compression of a time-evolving simulation.

A simulation emits one field snapshot per time step; consecutive steps
are highly correlated.  `StreamingCompressor` exploits that: each step
is delta-predicted from the previous step's *reconstruction* (so errors
never accumulate), the residual runs through the normal spatial STZ
cascade, and every step lands as an independently seekable frame in one
multi-frame archive — with O(1 step) memory on both ends.

Run:  python examples/streaming_timesteps.py
"""

import io

import numpy as np

from repro.core import compress, compress_stream, decompress_frame
from repro.core.streaming import StreamingCompressor, StreamingDecompressor
from repro.datasets.synthetic import smooth_field


def simulation(nsteps: int, shape=(64, 64, 64)):
    """A slowly evolving field: each step adds a small smooth forcing
    term, like a diffusive solver between snapshots."""
    field = smooth_field(shape, seed=0).astype(np.float32)
    for t in range(nsteps):
        field = field + 0.02 * smooth_field(shape, seed=100 + t).astype(
            np.float32
        )
        yield field


def main() -> None:
    nsteps = 12
    steps = list(simulation(nsteps))  # kept only to score the results
    eb = 1e-3 * float(steps[0].max() - steps[0].min())
    raw_bytes = sum(s.nbytes for s in steps)

    # --- stream-compress, one step at a time ---------------------------
    sink = io.BytesIO()  # any append-only sink works (e.g. open(p, "wb"))
    with StreamingCompressor(
        eb, "abs", keyframe_interval=8, sink=sink
    ) as sc:
        for step in simulation(nsteps):  # a generator: O(1 step) memory
            st = sc.append(step)
            kind = "delta" if st.is_delta else "intra"
            print(f"  step {st.index:>2d}: {kind} {st.nbytes:>7d} B")
    archive = sink.getvalue()
    print(f"archive: {raw_bytes} B -> {len(archive)} B "
          f"(CR {raw_bytes / len(archive):.1f})")

    # --- the temporal predictor is what buys the ratio -----------------
    independent = sum(len(compress(s, eb)) for s in steps)
    print(f"vs per-step independent STZ: {independent} B "
          f"(CR {raw_bytes / independent:.1f})")

    # --- sequential decode: every step within the hard bound -----------
    worst = 0.0
    for t, rec in enumerate(StreamingDecompressor(archive)):
        err = float(np.abs(rec.astype(np.float64)
                           - steps[t].astype(np.float64)).max())
        worst = max(worst, err)
    print(f"sequential decode: worst per-step error {worst:.3g} "
          f"(bound {eb:.3g})")
    assert worst <= eb

    # --- random access: frame 10 without touching frames 0..7 ----------
    r10 = decompress_frame(archive, 10)
    assert np.abs(r10.astype(np.float64)
                  - steps[10].astype(np.float64)).max() <= eb
    print(f"random access frame 10: {r10.shape} (rolled forward from the "
          f"keyframe at step 8)")

    # one-shot functional form over any iterable of steps
    assert compress_stream(simulation(3), eb)[:4] == b"STZM"


if __name__ == "__main__":
    main()
