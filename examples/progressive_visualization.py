"""Progressive decompression workflow (paper Figure 13).

A Miranda-like turbulence volume is compressed once; an analyst then
pulls increasingly fine previews out of the *same file*, paying I/O and
compute only for the resolution they need.  With a real 1024^3 dump the
coarsest preview touches ~1.6% of the bytes.

Run:  python examples/progressive_visualization.py
"""

import os
import tempfile

import numpy as np

from repro.core.api import STZFile
from repro.core.progressive import upsample_nearest
from repro.datasets import load
from repro.metrics import ssim


def main() -> None:
    data = load("miranda", shape=(96, 96, 96))
    with tempfile.TemporaryDirectory() as td:
        path = os.path.join(td, "miranda.stz")
        f = STZFile.write(path, data, eb=2e-3, eb_mode="rel")
        size = os.path.getsize(path)
        print(f"wrote {path}: {size} bytes (CR {data.nbytes / size:.0f})")

        print(f"{'resolution':>14} {'time':>8} {'payload read':>13} "
              f"{'SSIM vs orig':>13}")
        import time

        for level in range(1, f.levels + 1):
            before = f.bytes_read
            t0 = time.perf_counter()
            coarse = f.decompress(level=level)
            elapsed = time.perf_counter() - t0
            read = f.bytes_read - before
            up = upsample_nearest(coarse.astype(np.float64), data.shape)
            score = ssim(data.astype(np.float64), up)
            print(f"{'x'.join(map(str, coarse.shape)):>14} "
                  f"{elapsed * 1e3:7.1f}ms {read:12d}B {score:13.3f}")
        f.close()

    print("\nThe coarse rungs read a fraction of the file and of the "
          "decode time,\nyet already show the flow structure — exactly the "
          "paper's Figure 13 story.")


if __name__ == "__main__":
    main()
