"""Compare all five compressors on one dataset across error bounds —
a miniature of the paper's Figure 11.

Run:  python examples/rate_distortion_sweep.py [dataset]
where dataset is one of: nyx, warpx, magrec, miranda (default nyx).
"""

import sys

from repro.core.pipeline import stz_compress, stz_decompress
from repro.datasets import load
from repro.metrics.rate import rd_curve
from repro.mgard import mgard_compress, mgard_decompress
from repro.sperr import sperr_compress, sperr_decompress
from repro.sz3 import sz3_compress, sz3_decompress
from repro.zfp import zfp_compress, zfp_decompress

CODECS = {
    "STZ": (lambda d, e: stz_compress(d, e, "rel"), stz_decompress),
    "SZ3": (lambda d, e: sz3_compress(d, e, "rel"), sz3_decompress),
    "SPERR": (lambda d, e: sperr_compress(d, e, "rel"), sperr_decompress),
    "MGARD-X": (lambda d, e: mgard_compress(d, e, "rel"), mgard_decompress),
    "ZFP": (lambda d, e: zfp_compress(d, e, "rel"), zfp_decompress),
}
EBS = (1e-2, 3e-3, 1e-3, 3e-4, 1e-4)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "nyx"
    data = load(name)
    print(f"dataset {name}: {data.shape} {data.dtype}\n")
    print(f"{'codec':>8} {'rel eb':>8} {'CR':>8} {'bits/val':>9} "
          f"{'PSNR (dB)':>10} {'max err':>10}")
    for codec, (comp, dec) in CODECS.items():
        for p in rd_curve(comp, dec, data, EBS):
            print(f"{codec:>8} {p.eb:8.0e} {p.cr:8.1f} {p.bitrate:9.2f} "
                  f"{p.psnr:10.2f} {p.max_err:10.3g}")
        print()
    print("read the table at a fixed CR: STZ tracks SZ3 while also "
          "supporting progressive + random access;\nZFP trails badly; "
          "SPERR leads on high-frequency fields at the cost of speed.")


if __name__ == "__main__":
    main()
