"""Serial vs threaded ("OMP mode") throughput, and the SZ3-OMP
compression-ratio penalty (paper Table 3's asterisk).

STZ's sub-block tasks are independent once the coarser level is
reconstructed, so its threaded mode compresses the *identical* stream.
SZ3 must domain-split to parallelize, and each chunk pays its own
anchors and Huffman table — the CR drops.

Run:  python examples/parallel_throughput.py
"""

import time

from repro.core.pipeline import stz_compress, stz_decompress
from repro.datasets import load
from repro.sz3 import sz3_compress, sz3_compress_omp

THREADS = 8


def timed(fn, *args, **kw):
    fn(*args, **kw)  # warm-up
    t0 = time.perf_counter()
    out = fn(*args, **kw)
    return out, time.perf_counter() - t0


def main() -> None:
    data = load("miranda", shape=(128, 128, 128))
    mb = data.nbytes / 2**20
    print(f"field: {data.shape}, {mb:.0f} MiB\n")

    blob_s, t_s = timed(stz_compress, data, 1e-3, "rel")
    blob_p, t_p = timed(stz_compress, data, 1e-3, "rel", threads=THREADS)
    _, t_d = timed(stz_decompress, blob_s)
    print(f"STZ serial   : comp {t_s:.3f}s ({mb / t_s:6.1f} MiB/s), "
          f"dec {t_d:.3f}s, CR {data.nbytes / len(blob_s):.1f}")
    print(f"STZ {THREADS} threads: comp {t_p:.3f}s ({mb / t_p:6.1f} MiB/s), "
          f"stream identical to serial: {blob_s == blob_p}")

    z_s, tz_s = timed(sz3_compress, data, 1e-3, "rel")
    z_p, tz_p = timed(sz3_compress_omp, data, 1e-3, "rel", threads=THREADS)
    print(f"\nSZ3 serial   : comp {tz_s:.3f}s, CR {data.nbytes / len(z_s):.2f}")
    print(f"SZ3 {THREADS} chunks : comp {tz_p:.3f}s, "
          f"CR {data.nbytes / len(z_p):.2f}  <- ratio drops (*)")

    print("\nNote: in this pure-numpy reproduction the thread pool gains "
          "far less than the paper's\nOpenMP build (Python glue holds the "
          "GIL between kernels) — the structural contrast\nis that STZ "
          "parallelizes without touching the stream while SZ3 cannot.")


if __name__ == "__main__":
    main()
