"""Input validation and dtype bookkeeping shared by all codecs."""

from __future__ import annotations

import numpy as np

# Stable on-disk dtype codes for the container formats.  Only floating
# point payloads are supported by the compressors (the paper targets FP32
# and FP64 simulation fields).
_DTYPE_CODES: dict[str, int] = {"float32": 1, "float64": 2}
_CODE_DTYPES: dict[int, np.dtype] = {v: np.dtype(k) for k, v in _DTYPE_CODES.items()}


def dtype_code(dtype: np.dtype) -> int:
    """Return the container code for a supported floating dtype."""
    name = np.dtype(dtype).name
    try:
        return _DTYPE_CODES[name]
    except KeyError:
        raise TypeError(
            f"unsupported dtype {name!r}: compressors accept float32/float64"
        ) from None


def dtype_from_code(code: int) -> np.dtype:
    try:
        return _CODE_DTYPES[code]
    except KeyError:
        raise ValueError(f"unknown dtype code {code}") from None


def as_float_array(data: np.ndarray) -> np.ndarray:
    """Validate and return a C-contiguous float32/float64 ndarray."""
    arr = np.asarray(data)
    if arr.dtype not in (np.float32, np.float64):
        raise TypeError(
            f"expected float32/float64 data, got {arr.dtype}"
        )
    if arr.size == 0:
        raise ValueError("cannot compress an empty array")
    return np.ascontiguousarray(arr)


def check_ndim(arr: np.ndarray, allowed: tuple[int, ...]) -> None:
    if arr.ndim not in allowed:
        raise ValueError(f"expected ndim in {allowed}, got {arr.ndim}")


def check_positive(value: float, name: str) -> None:
    if not (value > 0):
        raise ValueError(f"{name} must be > 0, got {value}")


def resolve_eb(data: np.ndarray, eb: float, eb_mode: str) -> float:
    """Translate a user error bound into the absolute bound to enforce.

    ``abs`` passes through; ``rel`` scales by the data's value range
    (the convention used throughout the lossy-compression literature and
    the paper's experiments).
    """
    check_positive(eb, "error bound")
    if eb_mode == "abs":
        return float(eb)
    if eb_mode == "rel":
        lo = float(np.min(data))
        hi = float(np.max(data))
        rng = hi - lo
        return float(eb) * (rng if rng > 0 else 1.0)
    raise ValueError(f"unknown eb_mode {eb_mode!r} (use 'abs' or 'rel')")
