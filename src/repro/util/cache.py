"""Small thread-safe bounded LRU keyed by bytes digests.

Two hot paths cache pure-function results under content digests: the
Huffman decode-table cache (:mod:`repro.encoding.huffman`) and the
codec-selection probe cache (:mod:`repro.core.select`).  Both need the
same structure — blake2b key, lock-guarded ``OrderedDict``, LRU
eviction — so it lives here once instead of drifting apart in two
copies.  Values must be treated as immutable by callers (the caches
hand out the stored object, not a copy).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, TypeVar

V = TypeVar("V")


class BoundedLRU(Generic[V]):
    """Lock-guarded LRU mapping ``bytes`` keys to cached values."""

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[bytes, V]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: bytes) -> V | None:
        """Return the cached value (refreshing its recency) or None."""
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key: bytes, value: V) -> None:
        """Insert/refresh an entry, evicting the least recently used."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)
