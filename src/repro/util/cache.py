"""Small thread-safe bounded LRU keyed by bytes digests.

Two hot paths cache pure-function results under content digests: the
Huffman decode-table cache (:mod:`repro.encoding.huffman`) and the
codec-selection probe cache (:mod:`repro.core.select`).  Both need the
same structure — blake2b key, lock-guarded ``OrderedDict``, LRU
eviction — so it lives here once instead of drifting apart in two
copies.  Values must be treated as immutable by callers (the caches
hand out the stored object, not a copy).

Concurrency contract (audited for the multi-tenant serve layer, where
every request thread hits both process-wide caches):

* every individual ``get``/``put``/``clear``/``len`` holds
  ``self._lock`` for its whole critical section, so the underlying
  ``OrderedDict`` is never observed mid-mutation — there is no torn
  insert to see;
* the callers' compound *get → miss → build → put* sequence is
  deliberately **not** atomic.  That race is benign by invariant, not
  by luck: cached values are pure functions of the key (the key is a
  content digest of exactly the build inputs), so two threads that
  miss concurrently build identical values and the last ``put`` wins
  — the only cost is one redundant build.  Values are immutable
  (decode tables are ``setflags(write=False)`` arrays, probe results
  are copied dicts), so a value handed out before a concurrent
  refresh is still correct.  ``tests/test_serve.py`` stress-tests
  both caches under eviction churn to pin this invariant.

Callers that cache anything *not* a pure function of the key must not
use this pattern — they need the whole compound sequence under one
lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, TypeVar

V = TypeVar("V")


class BoundedLRU(Generic[V]):
    """Lock-guarded LRU mapping ``bytes`` keys to cached values."""

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[bytes, V]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: bytes) -> V | None:
        """Return the cached value (refreshing its recency) or None."""
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key: bytes, value: V) -> None:
        """Insert/refresh an entry, evicting the least recently used."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)
