"""Shared utilities: timers, validation helpers."""

from repro.util.timer import Timer, StageTimer
from repro.util.validation import (
    as_float_array,
    check_ndim,
    check_positive,
    dtype_code,
    dtype_from_code,
)

__all__ = [
    "Timer",
    "StageTimer",
    "as_float_array",
    "check_ndim",
    "check_positive",
    "dtype_code",
    "dtype_from_code",
]
