"""Native-tier hot kernels behind a feature-gated facade (DESIGN.md §10).

The pure-NumPy implementations in :mod:`repro.encoding`,
:mod:`repro.szx` and :mod:`repro.core.predict` are the *reference*:
always importable, always tested.  This module compiles a small C
translation of the profiled hot spots — quantize/predict arithmetic,
Huffman bit-packing *and* table-driven decoding, the fused
dequantize+predict-combine reconstruction, SZx plane-major packing —
once per host into a cached shared library and exposes them through
wrappers that return ``None`` whenever the compiled path cannot (or
must not) run, so every call site degrades to the reference with one
``if``.

Every kernel is called through :mod:`ctypes` ``CDLL``, which releases
the GIL for the duration of the call.  That is a load-bearing part of
the decode story: the thread executors in :mod:`repro.core.parallel` /
:mod:`repro.core.chunked` only beat the serial walk when the per-chunk
work actually runs concurrently, and the compiled Huffman decoder +
fused reconstruction kernels turn the decompress path from a
GIL-bound Python loop into native code that threads can overlap
(DESIGN.md §10).

Contract (the reason this is safe to engage silently):

* **Byte determinism.**  Each C kernel replicates the NumPy op
  sequence exactly — same op order, same precision, same rounding
  (``rint``/``rintf`` are round-half-even, matching ``np.rint``), and
  the library is compiled with ``-ffp-contract=off`` so the compiler
  cannot fuse a multiply-add the NumPy path performs as two rounded
  ops.  Archives written with the jit engaged are byte-identical to
  archives written by the reference path; tests assert this over every
  golden fixture and the conformance value-edge cases.
* **Kill switch.**  ``STZ_JIT=0`` (or ``off``/``false``) disables the
  compiled path entirely — no compile, no load, wrappers return
  ``None``.  The reference path is therefore always reachable.
* **Graceful absence.**  No compiler, an unwritable cache directory, a
  failed compile or load: the failure is recorded once (see
  :func:`status`) and the process runs on the reference path.  Nothing
  is ever raised from the facade.
* **Cache.**  ``$STZ_JIT_CACHE`` (default ``~/.cache/stz/jit``) keyed
  by a digest of the C source, so editing the kernels invalidates
  naturally and concurrent processes race benignly (atomic rename).

Backend: generated C compiled with the host ``cc`` and loaded via
``ctypes`` — chosen over cffi/Numba because it adds zero import-time
dependencies; the facade boundary is the same either way.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

__all__ = [
    "enabled",
    "available",
    "status",
    "override",
    "has",
    "quantize",
    "dequantize",
    "huffman_pack",
    "huffman_decode",
    "szx_pack",
    "szx_unpack",
    "combine",
    "combine_dequant",
    "scatter",
]

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <math.h>
#include <string.h>

#define API __attribute__((visibility("default")))

/* SZ-style quantizer, float32 fast path: replicates the op order of
   repro.encoding.quantizer._quantize_flat_impl (f32 branch) exactly.
   Returns the outlier count; outlier flat indices land in `bad`
   (ascending), recon/codes are fully written. */
API int64_t stz_quantize_f32(
    const float *x, const float *p, int64_t n,
    float two_eb, float fradius, float guard, double eb,
    uint32_t *codes, float *recon, int64_t *bad)
{
    int64_t nbad = 0;
    for (int64_t i = 0; i < n; i++) {
        float qf = (x[i] - p[i]) / two_eb;
        qf = rintf(qf);
        float q = (fabsf(qf) < fradius) ? qf : 0.0f;
        q = q + 0.0f;              /* normalize -0.0 bins, like the ref */
        float r = p[i] + q * two_eb;
        float err = fabsf(r - x[i]);
        int ok = (err <= guard);
        if (!ok)                   /* borderline: exact float64 recheck */
            ok = (fabs((double)r - (double)x[i]) <= eb);
        if (ok) {
            codes[i] = (uint32_t)(q + fradius);
            recon[i] = r;
        } else {
            codes[i] = 0u;
            recon[i] = x[i];
            bad[nbad++] = i;
        }
    }
    return nbad;
}

/* float64 reference formula (payload dtype T), same op order as the
   NumPy f64 branch.  Out-of-radius / non-finite points route to exact
   outlier storage before any reconstruction is attempted, which is
   outcome-identical to the vectorized reference (see quantizer.py). */
#define DEFINE_QUANT64(NAME, T)                                         \
API int64_t NAME(const T *x, const T *p, int64_t n,                     \
                 double eb, int64_t radius,                             \
                 uint32_t *codes, T *recon, int64_t *bad)               \
{                                                                       \
    const double two_eb = 2.0 * eb;                                     \
    const double dradius = (double)radius;                              \
    int64_t nbad = 0;                                                   \
    for (int64_t i = 0; i < n; i++) {                                   \
        double xd = (double)x[i], pd = (double)p[i];                    \
        double diff = xd - pd;                                          \
        if (!isfinite(diff)) diff = 0.0;                                \
        double qd = rint(diff / two_eb);                                \
        int ok = 0;                                                     \
        T rt = (T)0;                                                    \
        if (fabs(qd) < dradius) {                                       \
            rt = (T)(pd + qd * two_eb);                                 \
            ok = (fabs((double)rt - xd) <= eb) && isfinite(xd);         \
        }                                                               \
        if (ok) {                                                       \
            codes[i] = (uint32_t)((int64_t)qd + radius);                \
            recon[i] = rt;                                              \
        } else {                                                        \
            codes[i] = 0u;                                              \
            recon[i] = x[i];                                            \
            bad[nbad++] = i;                                            \
        }                                                               \
    }                                                                   \
    return nbad;                                                        \
}
DEFINE_QUANT64(stz_quantize_f64, double)
DEFINE_QUANT64(stz_quantize_f64_f32, float)

API void stz_dequant_f32(
    const uint32_t *codes, const float *p, int64_t n,
    float two_eb, float fradius, float *recon)
{
    for (int64_t i = 0; i < n; i++) {
        float qf = (float)codes[i] - fradius;
        recon[i] = p[i] + qf * two_eb;
    }
}

#define DEFINE_DEQUANT64(NAME, T)                                       \
API void NAME(const uint32_t *codes, const T *p, int64_t n,             \
              double eb, int64_t radius, T *recon)                      \
{                                                                       \
    const double two_eb = 2.0 * eb;                                     \
    for (int64_t i = 0; i < n; i++) {                                   \
        int64_t q = (int64_t)codes[i] - radius;                         \
        recon[i] = (T)((double)p[i] + (double)q * two_eb);              \
    }                                                                   \
}
DEFINE_DEQUANT64(stz_dequant_f64, double)
DEFINE_DEQUANT64(stz_dequant_f64_f32, float)

/* Huffman payload packer: codewords back to back, MSB-first (the
   np.packbits convention of encoding/bitstream.py), recording the bit
   offset of every chunk-th symbol (the segment's sync index).  combo
   is the fused (code << 5 | length) table of huffman.py; lengths are
   <= 16 so the accumulator never holds more than 23 live bits.
   Returns the total payload bit count. */
API int64_t stz_huff_pack(
    const uint32_t *syms, int64_t n, const uint32_t *combo,
    int64_t chunk, uint8_t *out, int64_t *sync)
{
    uint64_t acc = 0;
    unsigned accbits = 0;
    int64_t total = 0, ob = 0, si = 0, until = 0;
    for (int64_t i = 0; i < n; i++) {
        if (until == 0) { sync[si++] = total; until = chunk; }
        until--;
        uint32_t c = combo[syms[i]];
        unsigned len = c & 31u;
        acc = (acc << len) | (c >> 5);
        accbits += len;
        total += len;
        while (accbits >= 8) {
            accbits -= 8;
            out[ob++] = (uint8_t)(acc >> accbits);
        }
    }
    if (accbits)
        out[ob++] = (uint8_t)(acc << (8 - accbits));
    return total;
}

/* Guarded 16-bit window read for the decoder's tail: bytes past the
   payload end read as zero, exactly like the zero padding the NumPy
   reference appends before its vectorized window gather. */
static uint32_t stz_win16(const uint8_t *p, int64_t plen, int64_t pos)
{
    int64_t byte = pos >> 3;
    uint32_t w = 0;
    for (int k = 0; k < 3; k++) {
        uint32_t b = (byte + k < plen) ? p[byte + k] : 0u;
        w = (w << 8) | b;
    }
    return (w >> (8 - (pos & 7))) & 0xFFFFu;
}

/* Unguarded window read for the hot loop: one 4-byte load swapped to
   big-endian order, valid while pos >> 3 <= plen - 4.  Identical to
   stz_win16 for in-bounds positions. */
static inline uint32_t stz_win16_fast(const uint8_t *p, int64_t pos)
{
    uint32_t w;
    memcpy(&w, p + (pos >> 3), 4);
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ != __ORDER_BIG_ENDIAN__
    w = __builtin_bswap32(w);
#endif
    return (w >> (16 - (pos & 7))) & 0xFFFFu;
}

/* Table-driven canonical Huffman decoder: the compiled twin of the
   interleaved lockstep loop in huffman.huffman_decode_many (and the
   chunk-bounded huffman_decode_range).  `table` is the fused 2^16
   window table ((symbol << 5) | length); `sync` holds the absolute
   bit offset of each selected chunk's first codeword.  Chunks decode
   sequentially — the output is a pure function of the table walk, so
   the symbols are identical to the reference's lockstep/transpose by
   construction, already in symbol order (no transpose needed).
   Returns 0, or -1 when a sync position lies outside the payload
   (corrupt segment: the caller falls back to the reference so damaged
   archives keep their established failure behavior). */
API int32_t stz_huff_decode(
    const uint8_t *p, int64_t plen, const uint32_t *table,
    const int64_t *sync, int64_t nchunks, int64_t chunk, int64_t total,
    uint32_t *out)
{
    const int64_t safe4 = 8 * (plen - 4) + 7;  /* 4-byte fast-load bound */
    int64_t c = 0;
    /* Hot path: eight full chunks in lockstep.  Each chunk's bit
       cursor only depends on its own codeword lengths, so the lanes
       give the CPU eight independent dependency chains — the compiled
       analogue of the reference's vectorized segment interleave.
       (lp[0]|..|lp[7]) > safe4 over-approximates "any lane near the
       payload end"; those rare tails finish on the guarded path, which
       reads identical windows. */
    for (; c + 8 <= nchunks && (c + 8) * chunk <= total; c += 8) {
        int64_t lp[8];
        uint32_t *lo[8];
        for (int l = 0; l < 8; l++) {
            lp[l] = sync[c + l];
            if (lp[l] < 0 || lp[l] >= 8 * plen)
                return -1;
            lo[l] = out + (c + l) * chunk;
        }
        int64_t k = 0;
        for (; k < chunk; k++) {
            int64_t m = lp[0] | lp[1] | lp[2] | lp[3]
                      | lp[4] | lp[5] | lp[6] | lp[7];
            if (m > safe4)
                break;
            for (int l = 0; l < 8; l++) {
                uint32_t e = table[stz_win16_fast(p, lp[l])];
                lo[l][k] = e >> 5;
                lp[l] += e & 31u;
            }
        }
        for (int l = 0; k < chunk && l < 8; l++) {
            /* payload-end tail (or corrupt overrun) */
            int64_t pos = lp[l];
            for (int64_t kk = k; kk < chunk; kk++) {
                uint32_t e = table[stz_win16(p, plen, pos)];
                lo[l][kk] = e >> 5;
                pos += e & 31u;
            }
        }
    }
    for (; c < nchunks; c++) {
        int64_t i = c * chunk;
        int64_t i1 = (i + chunk < total) ? i + chunk : total;
        int64_t pos = sync[c];
        if (pos < 0 || pos >= 8 * plen)
            return -1;
        while (i < i1 && pos <= safe4) {
            uint32_t e = table[stz_win16_fast(p, pos)];
            out[i++] = e >> 5;
            pos += e & 31u;
        }
        while (i < i1) {  /* corrupt overrun: decode zero-filled bits */
            uint32_t e = table[stz_win16(p, plen, pos)];
            out[i++] = e >> 5;
            pos += e & 31u;
        }
    }
    return 0;
}

/* Two-queue Huffman over ascending leaf frequencies: the compiled
   twin of huffman._code_lengths' merge loop (same leaf-wins tie
   break, same parent/depth walk — including the uint8 narrowing of
   the final depths).  Returns 0, or -1 on allocation failure. */
API int32_t stz_huff_tree(
    const int64_t *leaf_freq, int64_t n, uint8_t *out)
{
    int64_t total = 2 * n - 1;
    int64_t *parent = (int64_t *)malloc((size_t)total * sizeof(int64_t));
    int64_t *node_freq = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    int64_t *depth = (int64_t *)malloc((size_t)total * sizeof(int64_t));
    if (!parent || !node_freq || !depth) {
        free(parent); free(node_freq); free(depth);
        return -1;
    }
    int64_t li = 0, ni = 0, created = 0;
    for (int64_t new_id = n; new_id < total; new_id++) {
        for (int r = 0; r < 2; r++) {
            int take_leaf = (li < n) &&
                (ni >= created || leaf_freq[li] <= node_freq[ni]);
            int64_t f, idx;
            if (take_leaf) { f = leaf_freq[li]; idx = li; li++; }
            else           { f = node_freq[ni]; idx = n + ni; ni++; }
            parent[idx] = new_id;
            if (r == 0) node_freq[created] = f;
            else        node_freq[created] += f;
        }
        created++;
    }
    depth[total - 1] = 0;
    for (int64_t node = total - 2; node >= 0; node--)
        depth[node] = depth[parent[node]] + 1;
    for (int64_t i = 0; i < n; i++)
        out[i] = (uint8_t)depth[i];
    free(parent); free(node_freq); free(depth);
    return 0;
}

/* Kraft restore + tighten of huffman._limit_lengths, same symbol
   orders (by_rarity ascending-frequency, by_freq descending), same
   iteration scheme, operating on the int64 length array in place. */
API void stz_huff_limit(
    int64_t *L, const int64_t *by_rarity, const int64_t *by_freq,
    int64_t npresent, int32_t maxlen)
{
    const int64_t budget = (int64_t)1 << maxlen;
    int64_t kraft = 0;
    for (int64_t i = 0; i < npresent; i++)
        kraft += (int64_t)1 << (maxlen - L[by_freq[i]]);
    if (kraft > budget) {
        int64_t idx = 0;
        while (kraft > budget) {
            int64_t s = by_rarity[idx % npresent];
            idx++;
            if (L[s] < maxlen) {
                kraft -= (int64_t)1 << (maxlen - L[s] - 1);
                L[s] += 1;
            }
        }
    }
    for (int64_t i = 0; i < npresent; i++) {
        int64_t s = by_freq[i];
        while (L[s] > 1 &&
               kraft + ((int64_t)1 << (maxlen - L[s])) <= budget) {
            kraft += (int64_t)1 << (maxlen - L[s]);
            L[s] -= 1;
        }
    }
}

/* SZx width-group packing: all blocks of one bit width, plane-major
   from the top plane down, MSB-first — the bit-for-bit layout of
   np.packbits over ((codes >> plane) & 1) in szx/codec.py. */
API void stz_szx_pack(
    const uint32_t *codes, int64_t nvals, int32_t w, uint8_t *out)
{
    uint32_t acc = 0;
    unsigned accbits = 0;
    int64_t ob = 0;
    for (int32_t pl = w - 1; pl >= 0; pl--) {
        for (int64_t k = 0; k < nvals; k++) {
            acc = (acc << 1) | ((codes[k] >> pl) & 1u);
            if (++accbits == 8) { out[ob++] = (uint8_t)acc; accbits = 0; }
        }
    }
    if (accbits)
        out[ob++] = (uint8_t)(acc << (8 - accbits));
}

API void stz_szx_unpack(
    const uint8_t *in, int64_t nvals, int32_t w, uint32_t *out)
{
    memset(out, 0, (size_t)nvals * sizeof(uint32_t));
    int64_t bit = 0;
    for (int32_t pl = w - 1; pl >= 0; pl--) {
        for (int64_t k = 0; k < nvals; k++, bit++) {
            uint32_t b = (in[bit >> 3] >> (7 - (bit & 7))) & 1u;
            out[k] |= b << pl;
        }
    }
}

/* Fused predictor combine: out = sum(near)*wn - sum(outer)*wo with the
   left-to-right op order of predict._sum_seq, over up to 16 strided
   views of <= 4 dims.  strides is [narr][4] in bytes (leading dims
   padded), out is C-contiguous. */
#define DEFINE_COMBINE(NAME, T)                                         \
API void NAME(const char **ptrs, int32_t nnear, int32_t nouter,         \
              const int64_t *strides, const int64_t *shape,             \
              T wn, T wo, T *out)                                       \
{                                                                       \
    const int32_t narr = nnear + nouter;                                \
    int64_t oi = 0;                                                     \
    for (int64_t i0 = 0; i0 < shape[0]; i0++)                           \
    for (int64_t i1 = 0; i1 < shape[1]; i1++)                           \
    for (int64_t i2 = 0; i2 < shape[2]; i2++) {                         \
        const char *row[16];                                            \
        for (int32_t t = 0; t < narr; t++)                              \
            row[t] = ptrs[t] + i0 * strides[4 * t]                      \
                             + i1 * strides[4 * t + 1]                  \
                             + i2 * strides[4 * t + 2];                 \
        for (int64_t i3 = 0; i3 < shape[3]; i3++) {                     \
            T sn = *(const T *)(row[0] + i3 * strides[3]);              \
            for (int32_t t = 1; t < nnear; t++)                         \
                sn += *(const T *)(row[t] + i3 * strides[4 * t + 3]);   \
            T v;                                                        \
            if (nouter > 0) {                                           \
                T so = *(const T *)(row[nnear]                          \
                                    + i3 * strides[4 * nnear + 3]);     \
                for (int32_t t = nnear + 1; t < narr; t++)              \
                    so += *(const T *)(row[t]                           \
                                       + i3 * strides[4 * t + 3]);      \
                v = sn * wn - so * wo;                                  \
            } else {                                                    \
                v = sn * wn;                                            \
            }                                                           \
            out[oi++] = v;                                              \
        }                                                               \
    }                                                                   \
}
DEFINE_COMBINE(stz_combine_f32, float)
DEFINE_COMBINE(stz_combine_f64, double)

/* Fused predict-combine + dequantize: the decode-side reconstruction
   out = dequant(sum(near)*wn - sum(outer)*wo, code) in one pass, so
   stz_decompress never materializes the prediction array.  Same
   strided-view walk as DEFINE_COMBINE, with the quantization codes
   read through their own strides and the result written through
   strided `out` (a region view of the sub-block) — region writes land
   in place.  BODY is the per-element dequantize formula, replicating
   quantizer.dequantize's op order exactly (pv is the combine result
   in the payload dtype T, `code` the uint32 quantizer code). */
/* Fixed-count unit-stride inner loop: NN/NO are literal constants, so
   the t-loops fully unroll and the i3 loop vectorizes.  The add order
   (ap[0] + ap[1] + ...) matches predict._sum_seq exactly; elementwise
   SIMD keeps results bit-identical to the scalar walk. */
#define STZ_DQ_UNIT(T, NN, NO, BODY)                                    \
    for (int64_t i3 = 0; i3 < shape[3]; i3++) {                         \
        T sn = ap[0][i3];                                               \
        for (int32_t t = 1; t < (NN); t++)                              \
            sn += ap[t][i3];                                            \
        T pv;                                                           \
        if ((NO) > 0) {                                                 \
            T so = ap[NN][i3];                                          \
            for (int32_t t = (NN) + 1; t < (NN) + (NO); t++)            \
                so += ap[t][i3];                                        \
            pv = sn * wn - so * wo;                                     \
        } else {                                                        \
            pv = sn * wn;                                               \
        }                                                               \
        uint32_t code = q[i3];                                          \
        o[i3] = (BODY);                                                 \
    }

/* Fixed-count strided inner loop (rotated boundary shells land here:
   long inner extent, non-unit strides).  Same add order as the
   runtime-count walk; the literal NN/NO just let the t-loops unroll. */
#define STZ_DQ_STRIDED(T, NN, NO, BODY)                                 \
    for (int64_t i3 = 0; i3 < shape[3]; i3++) {                         \
        T sn = *(const T *)(row[0] + i3 * strides[3]);                  \
        for (int32_t t = 1; t < (NN); t++)                              \
            sn += *(const T *)(row[t] + i3 * strides[4 * t + 3]);       \
        T pv;                                                           \
        if ((NO) > 0) {                                                 \
            T so = *(const T *)(row[NN] + i3 * strides[4 * (NN) + 3]);  \
            for (int32_t t = (NN) + 1; t < (NN) + (NO); t++)            \
                so += *(const T *)(row[t] + i3 * strides[4 * t + 3]);   \
            pv = sn * wn - so * wo;                                     \
        } else {                                                        \
            pv = sn * wn;                                               \
        }                                                               \
        uint32_t code = *(const uint32_t *)(qrow + i3 * qs[3]);         \
        *(T *)(orow + i3 * os[3]) = (BODY);                             \
    }

#define DEFINE_DQ_COMBINE(NAME, T, BODY)                                \
API void NAME(const char **ptrs, int32_t nnear, int32_t nouter,         \
              const int64_t *strides, const int64_t *shape,             \
              T wn, T wo,                                               \
              const char *codes, const int64_t *qs,                     \
              char *out, const int64_t *os,                             \
              double two_eb, int64_t radius)                            \
{                                                                       \
    const int32_t narr = nnear + nouter;                                \
    const float twf = (float)two_eb;                                    \
    const float frad = (float)radius;                                   \
    (void)twf; (void)frad;                                              \
    /* unit-stride last dim on every operand -> vectorizable loops */   \
    int unit = qs[3] == (int64_t)sizeof(uint32_t)                       \
               && os[3] == (int64_t)sizeof(T);                          \
    for (int32_t t = 0; t < narr; t++)                                  \
        unit = unit && strides[4 * t + 3] == (int64_t)sizeof(T);        \
    for (int64_t i0 = 0; i0 < shape[0]; i0++)                           \
    for (int64_t i1 = 0; i1 < shape[1]; i1++)                           \
    for (int64_t i2 = 0; i2 < shape[2]; i2++) {                         \
        const char *row[16];                                            \
        for (int32_t t = 0; t < narr; t++)                              \
            row[t] = ptrs[t] + i0 * strides[4 * t]                      \
                             + i1 * strides[4 * t + 1]                  \
                             + i2 * strides[4 * t + 2];                 \
        const char *qrow = codes + i0 * qs[0] + i1 * qs[1] + i2 * qs[2];\
        char *orow = out + i0 * os[0] + i1 * os[1] + i2 * os[2];        \
        int done = 0;                                                   \
        if (unit) {                                                     \
            /* every cubic/linear corner count the predictor emits */   \
            const T *ap[16];                                            \
            const uint32_t *q = (const uint32_t *)qrow;                 \
            T *o = (T *)orow;                                           \
            for (int32_t t = 0; t < narr; t++)                          \
                ap[t] = (const T *)row[t];                              \
            done = 1;                                                   \
            if      (nnear == 2 && nouter == 2) { STZ_DQ_UNIT(T, 2, 2, BODY) } \
            else if (nnear == 4 && nouter == 4) { STZ_DQ_UNIT(T, 4, 4, BODY) } \
            else if (nnear == 8 && nouter == 8) { STZ_DQ_UNIT(T, 8, 8, BODY) } \
            else if (nnear == 2 && nouter == 0) { STZ_DQ_UNIT(T, 2, 0, BODY) } \
            else if (nnear == 4 && nouter == 0) { STZ_DQ_UNIT(T, 4, 0, BODY) } \
            else if (nnear == 8 && nouter == 0) { STZ_DQ_UNIT(T, 8, 0, BODY) } \
            else if (nnear == 1 && nouter == 0) { STZ_DQ_UNIT(T, 1, 0, BODY) } \
            else done = 0;                                              \
        }                                                               \
        if (done)                                                       \
            continue;                                                   \
        /* strided fallback: fixed corner counts unroll the t-loop */   \
        if      (nnear == 2 && nouter == 0) { STZ_DQ_STRIDED(T, 2, 0, BODY) } \
        else if (nnear == 4 && nouter == 0) { STZ_DQ_STRIDED(T, 4, 0, BODY) } \
        else if (nnear == 8 && nouter == 0) { STZ_DQ_STRIDED(T, 8, 0, BODY) } \
        else if (nnear == 2 && nouter == 2) { STZ_DQ_STRIDED(T, 2, 2, BODY) } \
        else if (nnear == 4 && nouter == 4) { STZ_DQ_STRIDED(T, 4, 4, BODY) } \
        else if (nnear == 8 && nouter == 8) { STZ_DQ_STRIDED(T, 8, 8, BODY) } \
        else {                                                          \
        for (int64_t i3 = 0; i3 < shape[3]; i3++) {                     \
            T sn = *(const T *)(row[0] + i3 * strides[3]);              \
            for (int32_t t = 1; t < nnear; t++)                         \
                sn += *(const T *)(row[t] + i3 * strides[4 * t + 3]);   \
            T pv;                                                       \
            if (nouter > 0) {                                           \
                T so = *(const T *)(row[nnear]                          \
                                    + i3 * strides[4 * nnear + 3]);     \
                for (int32_t t = nnear + 1; t < narr; t++)              \
                    so += *(const T *)(row[t]                           \
                                       + i3 * strides[4 * t + 3]);      \
                pv = sn * wn - so * wo;                                 \
            } else {                                                    \
                pv = sn * wn;                                           \
            }                                                           \
            uint32_t code = *(const uint32_t *)(qrow + i3 * qs[3]);     \
            *(T *)(orow + i3 * os[3]) = (BODY);                        \
        }                                                               \
        }                                                               \
    }                                                                   \
}
/* f32 fast path: qf = (float)code - radius; pv + qf * two_eb, all in
   float32 — quantizer.dequantize's f32_mode formula. */
DEFINE_DQ_COMBINE(stz_dqc_f32, float,
    pv + ((float)code - frad) * twf)
/* f64 reference formula: (double)pv + (double)(code - radius) * 2eb,
   cast back to the payload dtype. */
DEFINE_DQ_COMBINE(stz_dqc_f64, double,
    pv + (double)((int64_t)code - radius) * two_eb)
DEFINE_DQ_COMBINE(stz_dqc_f64_f32, float,
    (float)((double)pv + (double)((int64_t)code - radius) * two_eb))

/* Strided scatter: copy a C-contiguous source into a strided view of
   <= 4 dims (leading dims padded, strides in bytes) — the reassembly
   step that places parity sub-blocks back into the fine lattice.  A
   pure bit copy, so one kernel per element width covers all dtypes. */
#define DEFINE_SCATTER(NAME, T)                                         \
API void NAME(const T *src, char *dst, const int64_t *ds,               \
              const int64_t *shape)                                     \
{                                                                       \
    int64_t si = 0;                                                     \
    for (int64_t i0 = 0; i0 < shape[0]; i0++)                           \
    for (int64_t i1 = 0; i1 < shape[1]; i1++)                           \
    for (int64_t i2 = 0; i2 < shape[2]; i2++) {                         \
        char *drow = dst + i0 * ds[0] + i1 * ds[1] + i2 * ds[2];        \
        for (int64_t i3 = 0; i3 < shape[3]; i3++)                       \
            *(T *)(drow + i3 * ds[3]) = src[si++];                      \
    }                                                                   \
}
DEFINE_SCATTER(stz_scatter32, uint32_t)
DEFINE_SCATTER(stz_scatter64, uint64_t)
"""

_VERSION = 1  # bump to invalidate caches when the ABI (not source) changes

# ctypes prototypes: (argtypes, restype).  Pointers are passed as raw
# addresses (ndarray.ctypes.data) under c_void_p.
_i64 = ctypes.c_int64
_i32 = ctypes.c_int32
_f32 = ctypes.c_float
_f64 = ctypes.c_double
_ptr = ctypes.c_void_p
_SIGNATURES: dict[str, tuple[list, object]] = {
    "stz_quantize_f32": (
        [_ptr, _ptr, _i64, _f32, _f32, _f32, _f64, _ptr, _ptr, _ptr], _i64
    ),
    "stz_quantize_f64": ([_ptr, _ptr, _i64, _f64, _i64, _ptr, _ptr, _ptr], _i64),
    "stz_quantize_f64_f32": (
        [_ptr, _ptr, _i64, _f64, _i64, _ptr, _ptr, _ptr], _i64
    ),
    "stz_dequant_f32": ([_ptr, _ptr, _i64, _f32, _f32, _ptr], None),
    "stz_dequant_f64": ([_ptr, _ptr, _i64, _f64, _i64, _ptr], None),
    "stz_dequant_f64_f32": ([_ptr, _ptr, _i64, _f64, _i64, _ptr], None),
    "stz_huff_pack": ([_ptr, _i64, _ptr, _i64, _ptr, _ptr], _i64),
    "stz_huff_decode": (
        [_ptr, _i64, _ptr, _ptr, _i64, _i64, _i64, _ptr], _i32
    ),
    "stz_huff_tree": ([_ptr, _i64, _ptr], _i32),
    "stz_huff_limit": ([_ptr, _ptr, _ptr, _i64, _i32], None),
    "stz_szx_pack": ([_ptr, _i64, _i32, _ptr], None),
    "stz_szx_unpack": ([_ptr, _i64, _i32, _ptr], None),
    "stz_combine_f32": (
        [_ptr, _i32, _i32, _ptr, _ptr, _f32, _f32, _ptr], None
    ),
    "stz_combine_f64": (
        [_ptr, _i32, _i32, _ptr, _ptr, _f64, _f64, _ptr], None
    ),
    "stz_dqc_f32": (
        [_ptr, _i32, _i32, _ptr, _ptr, _f32, _f32, _ptr, _ptr, _ptr,
         _ptr, _f64, _i64], None
    ),
    "stz_dqc_f64": (
        [_ptr, _i32, _i32, _ptr, _ptr, _f64, _f64, _ptr, _ptr, _ptr,
         _ptr, _f64, _i64], None
    ),
    "stz_dqc_f64_f32": (
        [_ptr, _i32, _i32, _ptr, _ptr, _f32, _f32, _ptr, _ptr, _ptr,
         _ptr, _f64, _i64], None
    ),
    "stz_scatter32": ([_ptr, _ptr, _ptr, _ptr], None),
    "stz_scatter64": ([_ptr, _ptr, _ptr, _ptr], None),
}

_LOCK = threading.Lock()
_LIB: ctypes.CDLL | None = None
_LOAD_TRIED = False
_ERROR: str | None = None
_LIB_PATH: str | None = None
_OVERRIDE: bool | None = None  # test/bench hook; None = follow the env


def enabled() -> bool:
    """Whether the compiled path *may* engage (the ``STZ_JIT`` gate)."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("STZ_JIT", "1").lower() not in ("0", "off", "false")


class override:
    """Force the facade on/off regardless of ``STZ_JIT`` (tests, the
    kernels bench).  ``override(False)`` guarantees the reference path;
    ``override(True)`` forces engagement even under ``STZ_JIT=0``;
    ``override(None)`` restores env-driven behavior."""

    def __init__(self, mode: bool | None):
        self.mode = mode
        self._prev: bool | None = None

    def __enter__(self):
        global _OVERRIDE
        self._prev = _OVERRIDE
        _OVERRIDE = self.mode
        return self

    def __exit__(self, *exc):
        global _OVERRIDE
        _OVERRIDE = self._prev
        return False


def _cache_dir() -> str:
    env = os.environ.get("STZ_JIT_CACHE")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "stz", "jit")


def _compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc.split()[0]):
        return cc
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    return None


def _compile(cc: str, src_path: str, out_path: str) -> None:
    base = [cc, "-O3", "-fPIC", "-shared", "-ffp-contract=off"]
    # -march=native vectorizes the packing loops where supported; the
    # flags stay IEEE-exact (contraction is what changes results, and
    # it is off).  Retried without for toolchains that reject it.
    for extra in (["-march=native"], []):
        try:
            subprocess.run(
                base + extra + ["-o", out_path, src_path, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            return
        except subprocess.CalledProcessError as exc:
            err = exc.stderr.decode(errors="replace")[-500:]
    raise RuntimeError(f"cc failed: {err}")


def _load_locked() -> None:
    global _LIB, _LOAD_TRIED, _ERROR, _LIB_PATH
    _LOAD_TRIED = True
    cc = _compiler()
    if cc is None:
        _ERROR = "no C compiler on PATH (cc/gcc/clang)"
        return
    digest = hashlib.blake2b(
        f"{_VERSION}|{_C_SOURCE}".encode(), digest_size=8
    ).hexdigest()
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"stzjit-{digest}.so")
    try:
        if not os.path.exists(lib_path):
            os.makedirs(cache, exist_ok=True)
            fd, tmp_c = tempfile.mkstemp(suffix=".c", dir=cache)
            with os.fdopen(fd, "w") as f:
                f.write(_C_SOURCE)
            tmp_so = tmp_c[:-2] + ".so"
            try:
                _compile(cc, tmp_c, tmp_so)
                os.replace(tmp_so, lib_path)  # atomic: racers converge
            finally:
                for p in (tmp_c, tmp_so):
                    try:
                        os.unlink(p)
                    except OSError:
                        pass
        lib = ctypes.CDLL(lib_path)
        for name, (argtypes, restype) in _SIGNATURES.items():
            fn = getattr(lib, name)
            fn.argtypes = argtypes
            fn.restype = restype
        _LIB = lib
        _LIB_PATH = lib_path
    except Exception as exc:  # noqa: BLE001 — facade never raises
        _ERROR = f"{type(exc).__name__}: {exc}"


def _lib() -> ctypes.CDLL | None:
    """The loaded kernel library, or None (disabled or unavailable)."""
    if not enabled():
        return None
    if _LOAD_TRIED:
        return _LIB
    with _LOCK:
        if not _LOAD_TRIED:
            _load_locked()
    return _LIB


def available() -> bool:
    """Whether the compiled kernels are loaded (compiling on first ask)."""
    return _lib() is not None


def has(kernel: str) -> bool:
    """Whether a named kernel is callable right now."""
    lib = _lib()
    return lib is not None and hasattr(lib, f"stz_{kernel}")


def status() -> dict:
    """Introspection for ``stz info`` and the test suite."""
    return {
        "backend": "generated-c/ctypes",
        "enabled": enabled(),
        "loaded": _LIB is not None,
        "attempted": _LOAD_TRIED,
        "library": _LIB_PATH,
        "cache_dir": _cache_dir(),
        "error": _ERROR,
    }


# ---------------------------------------------------------------------------
# kernel wrappers — every one returns None when the compiled path cannot
# run (disabled, unavailable, or ineligible inputs)
# ---------------------------------------------------------------------------

def _eligible(arr: np.ndarray, dtype) -> bool:
    return arr.dtype == dtype and arr.flags.c_contiguous


def quantize(
    flat: np.ndarray,
    pflat: np.ndarray,
    eb: float,
    radius: int,
    f32_mode: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
    """Compiled `_quantize_flat_impl`: ``(codes, bad, outlier_val,
    recon)`` or None.  ``f32_mode`` selects the float32 fast formula
    (caller has already validated ``_f32_mode``)."""
    lib = _lib()
    if lib is None:
        return None
    n = flat.size
    if f32_mode:
        if not (_eligible(flat, np.float32) and _eligible(pflat, np.float32)):
            return None
        fn = lib.stz_quantize_f32
        recon = np.empty(n, dtype=np.float32)
        bad = np.empty(n, dtype=np.int64)
        codes = np.empty(n, dtype=np.uint32)
        nbad = fn(
            flat.ctypes.data, pflat.ctypes.data, n,
            _f32(np.float32(2.0 * eb)), _f32(np.float32(radius)),
            _f32(np.float32(eb * (1.0 - 1e-5))), _f64(eb),
            codes.ctypes.data, recon.ctypes.data, bad.ctypes.data,
        )
    else:
        if flat.dtype == np.float64:
            fn = lib.stz_quantize_f64
        elif flat.dtype == np.float32:
            fn = lib.stz_quantize_f64_f32
        else:
            return None
        if not (_eligible(flat, flat.dtype) and _eligible(pflat, flat.dtype)):
            return None
        recon = np.empty(n, dtype=flat.dtype)
        bad = np.empty(n, dtype=np.int64)
        codes = np.empty(n, dtype=np.uint32)
        nbad = fn(
            flat.ctypes.data, pflat.ctypes.data, n, _f64(eb), radius,
            codes.ctypes.data, recon.ctypes.data, bad.ctypes.data,
        )
    pos = bad[:nbad].copy()
    return codes, pos, flat[pos], recon


def dequantize(
    codes: np.ndarray,
    pflat: np.ndarray,
    eb: float,
    radius: int,
    f32_mode: bool,
) -> np.ndarray | None:
    """Compiled reconstruction (no outlier scatter), or None."""
    lib = _lib()
    if lib is None or not _eligible(codes, np.uint32):
        return None
    n = codes.size
    if f32_mode:
        if not _eligible(pflat, np.float32):
            return None
        recon = np.empty(n, dtype=np.float32)
        lib.stz_dequant_f32(
            codes.ctypes.data, pflat.ctypes.data, n,
            _f32(np.float32(2.0 * eb)), _f32(np.float32(radius)),
            recon.ctypes.data,
        )
        return recon
    if pflat.dtype == np.float64:
        fn = lib.stz_dequant_f64
    elif pflat.dtype == np.float32:
        fn = lib.stz_dequant_f64_f32
    else:
        return None
    if not pflat.flags.c_contiguous:
        return None
    recon = np.empty(n, dtype=pflat.dtype)
    fn(codes.ctypes.data, pflat.ctypes.data, n, _f64(eb), radius,
       recon.ctypes.data)
    return recon


def huffman_pack(
    symbols: np.ndarray, combo: np.ndarray, chunk: int
) -> tuple[np.ndarray, int, np.ndarray] | None:
    """Compiled codeword packer: ``(packed, nbits, sync_starts)`` or
    None.  ``combo`` is huffman.py's fused ``(code << 5) | length``
    table; the sync index records the bit start of every ``chunk``-th
    symbol, exactly like ``starts[::chunk]`` on the reference path."""
    lib = _lib()
    if lib is None:
        return None
    if not (_eligible(symbols, np.uint32) and _eligible(combo, np.uint32)):
        return None
    m = symbols.size
    out = np.empty(2 * m + 8, dtype=np.uint8)  # <=16 bits per codeword
    sync = np.empty(-(-m // chunk), dtype=np.int64)
    nbits = lib.stz_huff_pack(
        symbols.ctypes.data, m, combo.ctypes.data, chunk,
        out.ctypes.data, sync.ctypes.data,
    )
    return out[: (nbits + 7) >> 3], int(nbits), sync


def huffman_decode(
    payload: np.ndarray,
    table: np.ndarray,
    sync: np.ndarray,
    chunk: int,
    total: int,
) -> np.ndarray | None:
    """Compiled table-driven Huffman decode of one segment (or a
    chunk-bounded slice of one): uint32 symbols in order, or None.

    ``payload`` is the segment's byte buffer (its 4-byte zero tail pad
    included), ``table`` the fused 2^16 window table of
    ``huffman._decode_table``, ``sync`` the absolute bit offsets of the
    selected chunks' first codewords, ``total`` the number of symbols
    those chunks hold.  Declines (None) when a sync offset lies outside
    the payload or the sync/total geometry is inconsistent — corrupt
    segments fall back to the reference loop so damaged archives keep
    byte-for-byte the failure behavior they had before the compiled
    decoder existed."""
    lib = _lib()
    if lib is None:
        return None
    if not (_eligible(payload, np.uint8) and _eligible(table, np.uint32)):
        return None
    if chunk <= 0 or total <= 0:
        return None
    sync = np.ascontiguousarray(sync, dtype=np.int64)
    if sync.size != -(-total // chunk):
        return None
    out = np.empty(total, dtype=np.uint32)
    rc = lib.stz_huff_decode(
        payload.ctypes.data, payload.size, table.ctypes.data,
        sync.ctypes.data, sync.size, chunk, total, out.ctypes.data,
    )
    return out if rc == 0 else None


def huffman_tree(leaf_freq: np.ndarray) -> np.ndarray | None:
    """Compiled two-queue Huffman: uint8 leaf depths for ascending
    ``leaf_freq`` (>= 2 leaves), or None."""
    lib = _lib()
    if lib is None or leaf_freq.size < 2:
        return None
    if not _eligible(leaf_freq, np.int64):
        return None
    out = np.empty(leaf_freq.size, dtype=np.uint8)
    rc = lib.stz_huff_tree(
        leaf_freq.ctypes.data, leaf_freq.size, out.ctypes.data
    )
    return out if rc == 0 else None


def huffman_limit(
    L: np.ndarray, present: np.ndarray, freqs: np.ndarray, maxlen: int
) -> np.ndarray | None:
    """Compiled Kraft restore + tighten over the int64 length array
    ``L`` (mutated in place); returns the uint8 lengths or None."""
    lib = _lib()
    if lib is None or not _eligible(L, np.int64):
        return None
    fp = freqs[present]
    by_rarity = np.ascontiguousarray(
        present[np.argsort(fp, kind="stable")].astype(np.int64)
    )
    by_freq = np.ascontiguousarray(
        present[np.argsort(-fp, kind="stable")].astype(np.int64)
    )
    lib.stz_huff_limit(
        L.ctypes.data, by_rarity.ctypes.data, by_freq.ctypes.data,
        present.size, maxlen,
    )
    return L.astype(np.uint8)


def szx_pack(codes: np.ndarray, width: int) -> np.ndarray | None:
    """Compiled plane-major packbits over one SZx width group."""
    lib = _lib()
    if lib is None:
        return None
    flat = codes.reshape(-1)
    if not _eligible(flat, np.uint32):
        return None
    nbits = width * flat.size
    out = np.empty((nbits + 7) >> 3, dtype=np.uint8)
    lib.stz_szx_pack(flat.ctypes.data, flat.size, width, out.ctypes.data)
    return out


def szx_unpack(
    buf: np.ndarray, nvals: int, width: int
) -> np.ndarray | None:
    """Inverse of :func:`szx_pack`: uint32 codes of one width group."""
    lib = _lib()
    if lib is None or not _eligible(buf, np.uint8):
        return None
    out = np.empty(nvals, dtype=np.uint32)
    lib.stz_szx_unpack(buf.ctypes.data, nvals, width, out.ctypes.data)
    return out


def combine(
    near, outer, wn: float, wo: float
) -> np.ndarray | None:
    """Compiled ``sum(near)*wn - sum(outer)*wo`` over strided views
    (the predictor's combine step), or None.  Accepts what the
    predictor produces: up to 16 equally-shaped views of <= 4 dims."""
    lib = _lib()
    if lib is None:
        return None
    arrs = list(near) + list(outer)
    a0 = arrs[0]
    dt = a0.dtype
    if dt == np.float32:
        fn, scalar = lib.stz_combine_f32, _f32
    elif dt == np.float64:
        fn, scalar = lib.stz_combine_f64, _f64
    else:
        return None
    shape = a0.shape
    ndim = a0.ndim
    if ndim == 0 or ndim > 4 or len(arrs) > 16 or a0.size == 0:
        return None
    for a in arrs[1:]:
        if a.dtype != dt or a.shape != shape:
            return None
    pad = 4 - ndim
    c_shape = (ctypes.c_int64 * 4)(*([1] * pad), *shape)
    flat_strides: list[int] = []
    for a in arrs:
        flat_strides.extend([0] * pad)
        flat_strides.extend(a.strides)
    c_strides = (ctypes.c_int64 * (4 * len(arrs)))(*flat_strides)
    c_ptrs = (ctypes.c_void_p * len(arrs))(*[a.ctypes.data for a in arrs])
    out = np.empty(shape, dtype=dt)
    fn(
        c_ptrs, len(near), len(outer), c_strides, c_shape,
        scalar(dt.type(wn)), scalar(dt.type(wo)), out.ctypes.data,
    )
    return out


def combine_dequant(
    near,
    outer,
    wn: float,
    wo: float,
    codes: np.ndarray,
    out: np.ndarray,
    eb: float,
    radius: int,
    f32_mode: bool,
) -> bool:
    """Fused combine + dequantize into a region view: computes
    ``dequant(sum(near)*wn - sum(outer)*wo, codes)`` and writes it
    through the (possibly strided) ``out`` view in one pass — the
    decode-side reconstruction without a materialized prediction
    array.  ``codes`` is the matching uint32 region view; ``f32_mode``
    selects the float32 fast formula (caller has already validated
    ``_f32_mode`` against the container flag).  Returns False when the
    compiled path cannot run (caller falls back to predict + dequantize,
    which is bit-identical)."""
    lib = _lib()
    if lib is None:
        return False
    arrs = list(near) + list(outer)
    a0 = arrs[0]
    dt = a0.dtype
    if out.dtype != dt or codes.dtype != np.uint32:
        return False
    if dt == np.float32:
        fn = lib.stz_dqc_f32 if f32_mode else lib.stz_dqc_f64_f32
        scalar = _f32
    elif dt == np.float64:
        if f32_mode:
            return False
        fn, scalar = lib.stz_dqc_f64, _f64
    else:
        return False
    shape = a0.shape
    ndim = a0.ndim
    if ndim == 0 or ndim > 4 or len(arrs) > 16 or a0.size == 0:
        return False
    if out.shape != shape or codes.shape != shape:
        return False
    for a in arrs[1:]:
        if a.dtype != dt or a.shape != shape:
            return False
    if ndim >= 2 and shape[-1] < 8:
        # Boundary-shell regions fix one axis to a 1-2 element run; with
        # that axis innermost the kernel pays full per-row setup for
        # every element.  Rotate the longest axis innermost — a pure
        # view permutation applied to every operand, so the elementwise
        # walk (and hence the result) is unchanged.
        best = max(range(ndim), key=lambda a: shape[a])
        if shape[best] > shape[-1]:
            perm = tuple(a for a in range(ndim) if a != best) + (best,)
            arrs = [a.transpose(perm) for a in arrs]
            codes = codes.transpose(perm)
            out = out.transpose(perm)
            shape = arrs[0].shape
    pad = 4 - ndim
    c_shape = (ctypes.c_int64 * 4)(*([1] * pad), *shape)
    flat_strides: list[int] = []
    for a in arrs:
        flat_strides.extend([0] * pad)
        flat_strides.extend(a.strides)
    c_strides = (ctypes.c_int64 * (4 * len(arrs)))(*flat_strides)
    c_ptrs = (ctypes.c_void_p * len(arrs))(*[a.ctypes.data for a in arrs])
    c_qs = (ctypes.c_int64 * 4)(*([0] * pad), *codes.strides)
    c_os = (ctypes.c_int64 * 4)(*([0] * pad), *out.strides)
    fn(
        c_ptrs, len(near), len(outer), c_strides, c_shape,
        scalar(dt.type(wn)), scalar(dt.type(wo)),
        codes.ctypes.data, c_qs, out.ctypes.data, c_os,
        _f64(2.0 * eb), radius,
    )
    return True


def scatter(dst: np.ndarray, src: np.ndarray) -> bool:
    """Compiled strided scatter: ``dst[...] = src`` where ``dst`` is a
    strided view and ``src`` a C-contiguous array of the same shape —
    the lattice-reassembly step of decode.  A pure bit copy (4- or
    8-byte elements), so the result is exactly NumPy's assignment.
    Returns False when the compiled path cannot run."""
    lib = _lib()
    if lib is None:
        return False
    if dst.shape != src.shape or dst.dtype != src.dtype:
        return False
    if not src.flags.c_contiguous:
        return False
    ndim = dst.ndim
    if ndim == 0 or ndim > 4 or dst.size == 0:
        return False
    itemsize = dst.dtype.itemsize
    if itemsize == 4:
        fn = lib.stz_scatter32
    elif itemsize == 8:
        fn = lib.stz_scatter64
    else:
        return False
    pad = 4 - ndim
    c_shape = (ctypes.c_int64 * 4)(*([1] * pad), *dst.shape)
    c_ds = (ctypes.c_int64 * 4)(*([0] * pad), *dst.strides)
    fn(src.ctypes.data, dst.ctypes.data, c_ds, c_shape)
    return True
