"""Length-prefixed byte sections.

All container formats in this repo serialize a list of byte blobs with
u64 length prefixes; keeping the framing in one place keeps the codecs'
formats trivial to evolve and test.
"""

from __future__ import annotations

import struct

_LEN = struct.Struct("<Q")


def pack_sections(sections: list[bytes]) -> bytes:
    """Concatenate sections with u64 length prefixes."""
    parts: list[bytes] = [_LEN.pack(len(sections))]
    for s in sections:
        parts.append(_LEN.pack(len(s)))
        parts.append(bytes(s))
    return b"".join(parts)


def unpack_sections(blob: bytes | memoryview) -> list[memoryview]:
    """Inverse of :func:`pack_sections`; returns zero-copy views.

    Raises ``ValueError`` (never ``struct.error``) on malformed input so
    codec callers surface one uniform exception type.
    """
    blob = memoryview(blob)
    if len(blob) < _LEN.size:
        raise ValueError("not a section container (too short)")
    (count,) = _LEN.unpack(blob[: _LEN.size])
    off = _LEN.size
    if count > len(blob):  # cheap sanity bound: each section needs 8B
        raise ValueError("not a section container (bad count)")
    out: list[memoryview] = []
    for _ in range(count):
        if off + _LEN.size > len(blob):
            raise ValueError("truncated section container")
        (n,) = _LEN.unpack(blob[off : off + _LEN.size])
        off += _LEN.size
        if off + n > len(blob):
            raise ValueError("truncated section container")
        out.append(blob[off : off + n])
        off += n
    if off != len(blob):
        raise ValueError("trailing bytes after last section")
    return out
