"""Lightweight wall-clock timers used by the speed benchmarks and the
Table-4 decompression-stage breakdown."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class StageTimer:
    """Accumulates named stage durations (seconds).

    Used to reproduce the paper's Table 4, which breaks random-access
    decompression into L1-SZ3 / L2-decode / L2-predict / L2-reassemble /
    L3-decode / L3-predict / L3-reassemble stages.
    """

    stages: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def time(self, name: str) -> "_StageCtx":
        return _StageCtx(self, name)

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def row(self, names: list[str]) -> list[float]:
        """Stage values in a fixed column order (missing stages are 0)."""
        return [self.stages.get(n, 0.0) for n in names]


class _StageCtx:
    def __init__(self, timer: StageTimer, name: str):
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_StageCtx":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(self._name, time.perf_counter() - self._start)
