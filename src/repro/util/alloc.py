"""Allocator tuning for large-array throughput.

The hot paths allocate multi-megabyte numpy temporaries every call.
glibc's malloc serves those from ``mmap`` and returns them to the
kernel on free, so each compression pass re-faults its working set —
on the benchmark machines that page-fault traffic rivals the actual
arithmetic (DESIGN.md §3).  Raising ``M_MMAP_THRESHOLD`` and
``M_TRIM_THRESHOLD`` keeps big buffers on malloc's free lists, the
same effect as exporting ``MALLOC_MMAP_THRESHOLD_`` before launch.

Best effort by design: silently a no-op on non-glibc platforms.  The
trade-off is higher steady-state resident memory (freed large buffers
stay on the free lists instead of returning to the kernel), so the
tuning is *opt-in*: importing :mod:`repro` never calls it; the
benchmarks and the CLI do at startup, and embedding applications may
call :func:`tune_allocator` themselves.  ``REPRO_NO_MALLOC_TUNING=1``
remains a kill switch for environments where even the entry points
must leave malloc policy alone.
"""

from __future__ import annotations

import ctypes
import os
import sys

_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

_done = False


def tune_allocator(threshold: int = 1 << 30) -> bool:
    """Keep allocations below ``threshold`` bytes off the mmap path.

    Returns True if the tuning took effect (glibc only), False
    otherwise.  Idempotent; called by the benchmark harness and the
    CLI at startup (never at package import).
    """
    global _done
    if _done:
        return True
    if os.environ.get("REPRO_NO_MALLOC_TUNING"):
        return False
    if not sys.platform.startswith("linux"):
        return False
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        ok = bool(libc.mallopt(_M_MMAP_THRESHOLD, threshold)) and bool(
            libc.mallopt(_M_TRIM_THRESHOLD, threshold)
        )
    except (OSError, AttributeError):
        return False
    _done = ok
    return ok
