"""Crash-safe file output.

Every CLI/tool write goes through :func:`atomic_write`: the data lands
in a temporary file *in the destination directory* (same filesystem, so
the final rename is atomic), is fsynced, and only then renamed over the
destination.  A crash — or any exception inside the ``with`` block —
leaves either the complete old file or the complete new file, never a
truncated hybrid, and the temp file is removed on failure.  This is the
writer-side half of the integrity story (DESIGN.md §9): checksums
detect torn archives after the fact, atomic replacement stops the CLI
from creating them in the first place.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


@contextmanager
def atomic_write(path: str | os.PathLike) -> Iterator[IO[bytes]]:
    """Context manager yielding a binary file handle; on clean exit the
    written bytes atomically replace ``path`` (flush + fsync + rename).

    On *any* exception — including :class:`SystemExit` from CLI error
    paths — the temp file is deleted and ``path`` is untouched.
    """
    dest = Path(path)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{dest.name}.", suffix=".tmp", dir=dest.parent or "."
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (see
    :func:`atomic_write`)."""
    with atomic_write(path) as fh:
        fh.write(data)
