"""SZ3-style error-bounded lossy compressor.

A from-scratch reproduction of the interpolation-based SZ3 design
(Zhao et al., ICDE'21; Liang et al.): multi-level cascaded 1D spline
interpolation prediction, error-bounded linear quantization, Huffman
encoding, and a DEFLATE lossless pass.  It serves three roles here:

1. the paper's main *non-streaming* quality/speed baseline,
2. the codec STZ applies to its coarsest level (§3.1),
3. the residual codec of the pre-Optimization-3 ablation designs.
"""

from repro.sz3.compressor import (
    SZ3Compressor,
    sz3_compress,
    sz3_compress_omp,
    sz3_decompress,
    sz3_decompress_omp,
)

__all__ = [
    "SZ3Compressor",
    "sz3_compress",
    "sz3_decompress",
    "sz3_compress_omp",
    "sz3_decompress_omp",
]
