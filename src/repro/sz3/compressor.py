"""SZ3-style compressor: cascaded interpolation + quantization + Huffman.

Container layout (little-endian, via length-prefixed sections):

  header   : magic, version, dtype, ndim, interp, shape, eb, radius,
             anchor stride
  codes    : one Huffman segment over all quantization codes
  outliers : per-batch counts + in-batch positions + exact values
  anchors  : raw anchor lattice bytes (zlib)

The OMP mode mirrors real SZ3's OpenMP build: the domain is split into
independent chunks along axis 0 and compressed in a thread pool.  Each
chunk pays its own anchors and Huffman table, which is exactly why the
paper's Table 3 marks SZ3-OMP with a compression-ratio-drop asterisk —
the effect reproduces here structurally.
"""

from __future__ import annotations

import struct
import numpy as np

from repro.core.parallel import pmap
from repro.encoding.huffman import (
    huffman_decode,
    huffman_encode,
    huffman_encode_many,
)
from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.encoding.quantizer import DEFAULT_RADIUS, dequantize, quantize
from repro.sz3.interpolation import anchor_stride, predict_batch, schedule
from repro.util.sections import pack_sections, unpack_sections
from repro.util.validation import (
    as_float_array,
    dtype_code,
    dtype_from_code,
    resolve_eb,
)

_MAGIC = b"SZ3r"
#: v1: float64 quantizer arithmetic, plain interp byte.  v2 is emitted
#: only when the f32 fast-path flag is set: the high bit of the interp
#: byte records that quantization ran in float32 where the bound
#: analysis allows (the same record-it-in-the-container contract as the
#: STZ header's f32-quant bit, repro.encoding.quantizer docstring).
#: Readers accept both; pre-flag readers reject v2 with a clean version
#: error instead of silently decoding with the wrong formula.
_VERSION = 1
_VERSION_F32 = 2
_INTERP_CODE = {"linear": 0, "cubic": 1}
_INTERP_NAME = {v: k for k, v in _INTERP_CODE.items()}
_F32_BIT = 0x80  # in the interp byte, v2 only
_HEADER = struct.Struct("<4sBBBBdII")
# magic, version, dtype, ndim, interp, eb, radius, astride


class _SZ3Stages:
    """Prediction/quantization output of one (sub-)domain, pre-entropy.

    Splitting the pipeline here lets the OMP mode run the
    prediction-bound stage per chunk in threads and then entropy-code
    every chunk's symbol stream through one fused
    :func:`huffman_encode_many` call (DESIGN.md §2).  ``recon`` is the
    decompressor's exact output, so callers embedding SZ3 (the STZ
    level-1 stage) can skip a full decompression round-trip.
    """

    __slots__ = ("header", "codes", "outliers", "anchors", "recon")

    def __init__(self, header, codes, outliers, anchors, recon):
        self.header = header
        self.codes = codes
        self.outliers = outliers
        self.anchors = anchors
        self.recon = recon


def _sz3_encode(
    data: np.ndarray, abs_eb: float, interp: str, radius: int,
    f32: bool = False,
) -> _SZ3Stages:
    """Run the cascaded predict+quantize passes (no entropy coding)."""
    astride = anchor_stride(data.shape)
    recon = data.copy()
    anchors_sel = tuple(slice(0, None, astride) for _ in data.shape)
    anchors = np.ascontiguousarray(data[anchors_sel])

    codes_parts: list[np.ndarray] = []
    out_counts: list[int] = []
    out_pos: list[np.ndarray] = []
    out_val: list[np.ndarray] = []
    for batch in schedule(data.shape, astride):
        pred = predict_batch(recon, batch, interp)
        values = np.ascontiguousarray(recon[batch.target_sel])
        # the f32 fast path needs the container to record the arithmetic
        # mode so the decoder provably mirrors it: opting in bumps the
        # version and sets the interp byte's high bit (header below)
        qb = quantize(values, pred, abs_eb, radius, f32)
        codes_parts.append(qb.codes)
        out_counts.append(qb.outlier_pos.size)
        out_pos.append(qb.outlier_pos.astype(np.uint32))
        out_val.append(qb.outlier_val)
        recon[batch.target_sel] = qb.recon.reshape(values.shape)

    codes = (
        np.concatenate(codes_parts)
        if codes_parts
        else np.zeros(0, dtype=np.uint32)
    )
    header = _HEADER.pack(
        _MAGIC,
        _VERSION_F32 if f32 else _VERSION,
        dtype_code(data.dtype),
        data.ndim,
        _INTERP_CODE[interp] | (_F32_BIT if f32 else 0),
        abs_eb,
        radius,
        astride,
    ) + struct.pack(f"<{data.ndim}Q", *data.shape)
    outliers = (
        np.asarray(out_counts, dtype=np.uint32).tobytes()
        + (np.concatenate(out_pos).tobytes() if out_pos else b"")
        + (np.concatenate(out_val).tobytes() if out_val else b"")
    )
    return _SZ3Stages(header, codes, outliers, anchors, recon)


def _sz3_assemble(
    stages: _SZ3Stages, huff_blob: bytes, zlib_level: int
) -> bytes:
    return pack_sections(
        [
            stages.header,
            compress_bytes(huff_blob, zlib_level),
            compress_bytes(stages.outliers, zlib_level),
            compress_bytes(stages.anchors.tobytes(), max(zlib_level, 1)),
        ]
    )


def sz3_compress(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    interp: str = "cubic",
    radius: int = DEFAULT_RADIUS,
    zlib_level: int = 1,
    f32: bool = False,
) -> bytes:
    """Compress a float32/float64 array with absolute/relative bound.

    ``f32=True`` opts float32 payloads into float32 quantizer
    arithmetic where the bound analysis allows (borderline points are
    re-verified in exact float64, so the hard bound is unchanged); the
    container records the mode as version 2 so the decoder provably
    reconstructs with the encoder's formula.  Default off: containers
    stay byte-identical to pre-flag encoders.
    """
    return sz3_compress_with_recon(
        data, eb, eb_mode, interp, radius, zlib_level, f32
    )[0]


def sz3_compress_with_recon(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    interp: str = "cubic",
    radius: int = DEFAULT_RADIUS,
    zlib_level: int = 1,
    f32: bool = False,
) -> tuple[bytes, np.ndarray]:
    """:func:`sz3_compress` plus the decompressor's exact reconstruction.

    The compressor tracks the decoded values while encoding (it must,
    to keep prediction consistent), so callers that need both — STZ
    uses level 1's reconstruction as its prediction basis — can avoid
    paying a decompression pass over the fresh container.
    """
    data = as_float_array(data)
    abs_eb = resolve_eb(data, eb, eb_mode)
    if abs_eb <= 0:
        raise ValueError("error bound must be > 0")
    if interp not in _INTERP_CODE:
        raise ValueError(f"unknown interp {interp!r}")
    stages = _sz3_encode(data, abs_eb, interp, radius, f32)
    blob = _sz3_assemble(stages, huffman_encode(stages.codes), zlib_level)
    return blob, stages.recon


def sz3_decompress(blob: bytes | memoryview) -> np.ndarray:
    """Decompress an :func:`sz3_compress` container."""
    sections = unpack_sections(blob)
    header = bytes(sections[0])
    (magic, version, dt, ndim, interp_c, abs_eb, radius, astride) = (
        _HEADER.unpack(header[: _HEADER.size])
    )
    if magic != _MAGIC:
        raise ValueError("not an SZ3 container")
    if version not in (_VERSION, _VERSION_F32):
        raise ValueError(f"unsupported SZ3 container version {version}")
    # v2 carries the f32-quant flag in the interp byte's high bit; v1
    # predates the flag and always decodes with the float64 formula
    f32 = version == _VERSION_F32 and bool(interp_c & _F32_BIT)
    shape = struct.unpack(f"<{ndim}Q", header[_HEADER.size :])
    dtype = dtype_from_code(dt)
    interp = _INTERP_NAME[interp_c & ~_F32_BIT]

    codes = huffman_decode(decompress_bytes(sections[1]))
    batches = schedule(shape, astride)
    out_blob = decompress_bytes(sections[2])
    nb = len(batches)
    counts = np.frombuffer(out_blob[: 4 * nb], dtype=np.uint32)
    total_out = int(counts.sum())
    pos_all = np.frombuffer(
        out_blob[4 * nb : 4 * nb + 4 * total_out], dtype=np.uint32
    )
    val_all = np.frombuffer(out_blob[4 * nb + 4 * total_out :], dtype=dtype)
    anchors_bytes = decompress_bytes(sections[3])

    recon = np.empty(shape, dtype=dtype)
    anchors_sel = tuple(slice(0, None, astride) for _ in shape)
    recon[anchors_sel] = np.frombuffer(anchors_bytes, dtype=dtype).reshape(
        recon[anchors_sel].shape
    )

    c_off = 0
    o_off = 0
    for i, batch in enumerate(batches):
        pred = predict_batch(recon, batch, interp)
        bcodes = codes[c_off : c_off + batch.size]
        c_off += batch.size
        n_out = int(counts[i])
        pos = pos_all[o_off : o_off + n_out].astype(np.int64)
        val = val_all[o_off : o_off + n_out]
        o_off += n_out
        rec = dequantize(bcodes, pred, abs_eb, pos, val, radius, f32)
        recon[batch.target_sel] = rec.reshape(pred.shape)
    return recon


# ---------------------------------------------------------------------------
# OMP (thread-chunked) mode
# ---------------------------------------------------------------------------

_OMP_MAGIC = b"SZ3c"


def _chunk_slices(n: int, parts: int) -> list[slice]:
    """Split axis length ``n`` into at most ``parts`` contiguous runs."""
    parts = max(1, min(parts, n))
    bounds = np.linspace(0, n, parts + 1).astype(int)
    return [
        slice(int(a), int(b))
        for a, b in zip(bounds[:-1], bounds[1:])
        if b > a
    ]


def sz3_compress_omp(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    interp: str = "cubic",
    threads: int = 8,
    radius: int = DEFAULT_RADIUS,
    zlib_level: int = 1,
    f32: bool = False,
) -> bytes:
    """Domain-decomposed parallel compression (reduced CR vs serial).

    The prediction-bound stage runs per chunk in the thread pool; the
    entropy stage then Huffman-codes every chunk's symbols in one fused
    :func:`huffman_encode_many` pack.  Each chunk's container is
    byte-identical to a serial :func:`sz3_compress` of the chunk.
    """
    data = as_float_array(data)
    abs_eb = resolve_eb(data, eb, eb_mode)
    if abs_eb <= 0:
        raise ValueError("error bound must be > 0")
    if interp not in _INTERP_CODE:
        raise ValueError(f"unknown interp {interp!r}")
    slices = _chunk_slices(data.shape[0], threads)
    chunks = [np.ascontiguousarray(data[sl]) for sl in slices]
    stages = pmap(
        lambda c: _sz3_encode(c, abs_eb, interp, radius, f32), chunks, threads
    )
    huffs = huffman_encode_many([st.codes for st in stages])
    blobs = pmap(
        lambda sh: _sz3_assemble(sh[0], sh[1], zlib_level),
        list(zip(stages, huffs)),
        threads,
    )
    return pack_sections([_OMP_MAGIC, *blobs])


def sz3_decompress_omp(
    blob: bytes | memoryview, threads: int = 8
) -> np.ndarray:
    sections = unpack_sections(blob)
    if bytes(sections[0]) != _OMP_MAGIC:
        raise ValueError("not an SZ3 OMP container")
    parts = pmap(sz3_decompress, sections[1:], threads)
    return np.concatenate(parts, axis=0)


class SZ3Compressor:
    """Object API with the capability flags used by Table 1."""

    name = "SZ3"
    supports_progressive = False
    supports_random_access = False

    def __init__(
        self, eb: float, eb_mode: str = "abs", interp: str = "cubic"
    ):
        self.eb = eb
        self.eb_mode = eb_mode
        self.interp = interp

    def compress(self, data: np.ndarray) -> bytes:
        return sz3_compress(data, self.eb, self.eb_mode, self.interp)

    def decompress(self, blob: bytes) -> np.ndarray:
        return sz3_decompress(blob)
