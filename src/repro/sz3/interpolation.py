"""SZ3's cascaded multi-level 1D interpolation schedule.

SZ3 predicts the grid coarse-to-fine: at stride level ``s`` (halving
each level down to 2) it fills, axis by axis, the lattice points whose
coordinate along the processed axis is an odd multiple of ``s/2`` while
axes already processed at this level sit on the ``s/2`` lattice and
remaining axes on the ``s`` lattice.  Every batch is a 1D midpoint
interpolation (cubic spline with not-a-knot-style interior stencil,
linear at edges) between already-*reconstructed* values — using
reconstructed values is what stops quantization error from compounding
past the bound (§4.4 of the STZ paper discusses this dependency).

The schedule is expressed as a deterministic list of batches so the
compressor and decompressor iterate identically; each batch is realized
as strided views into one shared reconstruction buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predict import interp_axis_midpoints


@dataclass(frozen=True)
class Batch:
    """One (stride, axis) interpolation batch of the schedule."""

    stride: int  # lattice spacing of the *known* points along `axis`
    axis: int
    known_sel: tuple[slice, ...]  # known points, in array coordinates
    target_sel: tuple[slice, ...]  # points predicted by this batch
    size: int  # number of predicted points


def anchor_stride(shape: tuple[int, ...], target_points: int = 4) -> int:
    """Anchor lattice stride: power of two such that the losslessly
    stored anchor grid has roughly ``target_points`` points per axis."""
    longest = max(shape)
    s = 1
    while longest / (2 * s) > target_points:
        s *= 2
    return max(2, s)


def schedule(shape: tuple[int, ...], astride: int) -> list[Batch]:
    """The full coarse-to-fine batch list for a grid of ``shape``."""
    ndim = len(shape)
    batches: list[Batch] = []
    s = astride
    while s >= 2:
        half = s // 2
        for axis in range(ndim):
            known, target = [], []
            for a in range(ndim):
                if a == axis:
                    known.append(slice(0, None, s))
                    target.append(slice(half, None, s))
                elif a < axis:
                    known.append(slice(0, None, half))
                    target.append(slice(0, None, half))
                else:
                    known.append(slice(0, None, s))
                    target.append(slice(0, None, s))
            t_sel = tuple(target)
            size = 1
            for a in range(ndim):
                ext = _slice_len(t_sel[a], shape[a])
                size *= ext
            if size:
                batches.append(Batch(s, axis, tuple(known), t_sel, size))
        s = half
    return batches


def _slice_len(sl: slice, n: int) -> int:
    return len(range(*sl.indices(n)))


def predict_batch(
    recon: np.ndarray, batch: Batch, interp: str
) -> np.ndarray:
    """Predict the batch's target points from the known lattice.

    ``recon`` is the shared reconstruction buffer; known points must
    already hold reconstructed values.  Returns a contiguous array of
    the target shape.
    """
    known = recon[batch.known_sel]
    target_shape = recon[batch.target_sel].shape
    t = target_shape[batch.axis]
    pred = interp_axis_midpoints(known, batch.axis, t, interp)
    return pred
