"""ZFP-like block-transform compressor.

From-scratch reproduction of ZFP's design (Lindstrom, TVCG 2014): the
grid is cut into independent ``4**d`` blocks; each block is aligned to a
common exponent, decorrelated with ZFP's integer lifting transform,
mapped to negabinary, and truncated to the bit planes needed for the
requested accuracy.  Independence of blocks is what gives ZFP its
random-access capability and its speed — and also the block artifacts /
lower quality the STZ paper reports (Figures 11-12).

Deviation from real zfp (documented in DESIGN.md): per-block bit-plane
*truncation* grouped by precision instead of per-bit embedded group
testing.  This keeps the codec fully vectorized across blocks (it is
the fastest codec in this repo, as ZFP is in the paper's Table 3) at
some compression-ratio cost.  As in real zfp, the accuracy mode's
tolerance is a quantization parameter, not a hard guarantee.
"""

from repro.zfp.codec import ZFPCompressor, zfp_compress, zfp_decompress

__all__ = ["ZFPCompressor", "zfp_compress", "zfp_decompress"]
