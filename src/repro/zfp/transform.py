"""ZFP's integer decorrelating transform and coefficient ordering.

The forward/inverse lifting pair operates on length-4 integer vectors
(zfp's non-orthogonal approximation of the DCT, chosen for exact integer
invertibility); here it is applied to whole ``(nblocks, 4, ..., 4)``
batches at once along each block axis.

Coefficients are then laid out in *sequency* order (by total frequency
``i+j+k``) so low-frequency — high-magnitude — coefficients come first,
which is what makes bit-plane truncation effective.
"""

from __future__ import annotations

import itertools

import numpy as np

BLOCK = 4


def _vec4(blocks: np.ndarray, axis: int) -> list[np.ndarray]:
    """Views of the four lanes along one block axis."""
    sl = [slice(None)] * blocks.ndim
    lanes = []
    for i in range(BLOCK):
        sl[axis] = i
        lanes.append(blocks[tuple(sl)])
    return lanes


def fwd_lift(blocks: np.ndarray, axis: int) -> None:
    """In-place forward lift along ``axis`` (int64 batch)."""
    x, y, z, w = _vec4(blocks, axis)
    # zfp forward transform (bit-exact integer lifting)
    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1


def inv_lift(blocks: np.ndarray, axis: int) -> None:
    """Exact inverse of :func:`fwd_lift`."""
    x, y, z, w = _vec4(blocks, axis)
    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w


def forward_transform(blocks: np.ndarray) -> None:
    """Decorrelate a ``(n, 4**d)``-shaped batch in place (d block axes
    follow the batch axis)."""
    for axis in range(1, blocks.ndim):
        fwd_lift(blocks, axis)


def inverse_transform(blocks: np.ndarray) -> None:
    for axis in range(blocks.ndim - 1, 0, -1):
        inv_lift(blocks, axis)


def sequency_order(ndim: int) -> np.ndarray:
    """Flat coefficient permutation sorting by total sequency.

    Ties broken lexicographically — any fixed order works as long as
    encoder and decoder agree.
    """
    coords = list(itertools.product(range(BLOCK), repeat=ndim))
    order = sorted(range(len(coords)), key=lambda i: (sum(coords[i]), coords[i]))
    return np.asarray(order, dtype=np.int64)


def to_negabinary(i: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned negabinary (zfp's sign coding)."""
    mask = np.uint64(0xAAAAAAAAAAAAAAAA)
    u = i.astype(np.uint64)
    return (u + mask) ^ mask


def from_negabinary(u: np.ndarray) -> np.ndarray:
    mask = np.uint64(0xAAAAAAAAAAAAAAAA)
    return ((u ^ mask) - mask).astype(np.int64)
