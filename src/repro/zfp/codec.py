"""ZFP-like fixed-accuracy codec (vectorized across blocks).

Pipeline per 4^d block: common-exponent alignment -> integer lifting
transform -> sequency reorder -> negabinary -> keep only the bit planes
above the tolerance-derived cutoff.  Blocks with equal kept-plane counts
are encoded together plane-major (so the sparse high planes compress
well under DEFLATE), which keeps every stage a whole-array numpy op.

In real zfp's accuracy mode the tolerance steers quantization and holds
in practice but is not certified (the lifting transform itself rounds
low bits); empirically it spills past the tolerance by small factors on
ordinary smooth fields.  Container version 2 closes that gap with an
outlier pass: the encoder reconstructs exactly what the decoder will
produce, finds every point outside the tolerance (including non-finite
inputs, which the transform cannot represent), and stores those values
exactly.  Every v2 container therefore satisfies the *hard* bound
``max|x - x_hat| <= tol`` with NaN/inf preserved bit-exactly — the
contract the cross-codec conformance suite sweeps.  Version-1 blobs
(written before the outlier section existed) still decode, with their
original advisory-tolerance semantics.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.util.sections import pack_sections, unpack_sections
from repro.util.validation import (
    as_float_array,
    dtype_code,
    dtype_from_code,
    resolve_eb,
)
from repro.zfp.transform import (
    BLOCK,
    forward_transform,
    from_negabinary,
    inverse_transform,
    sequency_order,
    to_negabinary,
)

_MAGIC = b"ZFPr"
#: v1: advisory tolerance, no outlier section; v2 appends the exact
#: outlier section that certifies the bound.  The decoder reads both.
_VERSION = 2
_HEADER = struct.Struct("<4sBBBBd")
# magic, version, dtype, ndim, q, tol
#: bit planes kept below the tolerance cutoff.  v1 kept 2; v2 keeps 4 so
#: the empirical overshoot (up to ~3.3x tol at 2 guard bits) lands back
#: under the tolerance and the certifying outlier section stays small.
_GUARD_BITS = 4
_V1_GUARD_BITS = 2
_Q_BITS = {np.dtype(np.float32): 26, np.dtype(np.float64): 52}


def _blockify(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Edge-pad to multiples of 4 and reshape to ``(nblocks, 4**d)``."""
    pad = [(0, (-n) % BLOCK) for n in data.shape]
    padded = np.pad(data, pad, mode="edge")
    pshape = padded.shape
    d = data.ndim
    counts = tuple(n // BLOCK for n in pshape)
    # split each axis into (count, 4) and bring the block axes last
    arr = padded.reshape(
        tuple(v for n in counts for v in (n, BLOCK))
    )
    arr = arr.transpose(
        tuple(range(0, 2 * d, 2)) + tuple(range(1, 2 * d, 2))
    )
    return np.ascontiguousarray(arr.reshape(int(np.prod(counts)), BLOCK**d)), pshape


def _unblockify(
    blocks: np.ndarray, pshape: tuple[int, ...], shape: tuple[int, ...]
) -> np.ndarray:
    d = len(shape)
    counts = tuple(n // BLOCK for n in pshape)
    arr = blocks.reshape(counts + (BLOCK,) * d)
    perm = []
    for a in range(d):
        perm += [a, d + a]
    arr = arr.transpose(perm).reshape(pshape)
    return np.ascontiguousarray(arr[tuple(slice(0, n) for n in shape)])


def _max_exponents(blocks: np.ndarray) -> np.ndarray:
    """Per-block exponent e with max|v| < 2**e (e = 0 for all-zero)."""
    m = np.abs(blocks).max(axis=1)
    _, e = np.frexp(m)
    return e.astype(np.int16)


def _bitplane_reconstruct(
    e: np.ndarray,
    nplanes: np.ndarray,
    payload: bytes,
    ndim: int,
    q: int,
    abs_tol: float,
    guard: int = _GUARD_BITS,
) -> np.ndarray:
    """Reconstruct the ``(nblocks, 4**ndim)`` float64 block values from
    the encoded bit planes.

    This is the decoder's arithmetic, shared verbatim with the encoder's
    outlier pass (v2): the encoder runs it on its own payload to learn
    *exactly* what the decoder will produce, so the points it corrects
    are the points that actually violate the tolerance downstream.
    """
    perm = sequency_order(ndim)
    inv_perm = np.argsort(perm)
    nblocks = e.size
    ncoef = BLOCK**ndim

    tol_scaled = abs_tol * np.ldexp(1.0, (q - e).astype(np.int32))
    p_keep = np.where(
        tol_scaled >= 2.0**guard,
        np.floor(np.log2(tol_scaled)).astype(np.int64) - guard,
        0,
    )

    u = np.zeros((nblocks, ncoef), dtype=np.uint64)
    off = 0
    for np_val in np.unique(nplanes):
        if np_val == 0:
            continue
        sel = np.flatnonzero(nplanes == np_val)
        g = sel.size
        nbits = int(np_val) * g * ncoef
        nbytes = (nbits + 7) // 8
        bits = np.unpackbits(
            np.frombuffer(payload, dtype=np.uint8, count=nbytes, offset=off),
            count=nbits,
        ).reshape(int(np_val), g, ncoef)
        off += nbytes
        planes = np.arange(int(np_val) - 1, -1, -1, dtype=np.uint64)
        v = (bits.astype(np.uint64) << planes[:, None, None]).sum(
            axis=0, dtype=np.uint64
        )
        u[sel] = v << p_keep[sel].astype(np.uint64)[:, None]

    ints = from_negabinary(u[:, inv_perm]).reshape((nblocks,) + (BLOCK,) * ndim)
    inverse_transform(ints)
    scale = np.ldexp(1.0, (e.astype(np.int32) - q))[:, None]
    return ints.reshape(nblocks, -1).astype(np.float64) * scale


def zfp_compress(
    data: np.ndarray,
    tol: float,
    eb_mode: str = "abs",
    zlib_level: int = 1,
    certify: bool = True,
) -> bytes:
    """Compress with absolute/relative L-infinity tolerance ``tol``.

    With ``certify=True`` (default) the tolerance is a hard bound,
    enforced by the v2 exact-outlier pass (see the module docstring).
    ``certify=False`` writes the pre-correction v1 container — real
    zfp's advisory-tolerance behavior, block artifacts and all — which
    is what the paper-shape rate-distortion benchmarks compare against
    (an exact-outlier stage would flatter ZFP's quality beyond what
    the paper's ZFP can deliver).
    """
    return _zfp_compress_impl(data, tol, eb_mode, zlib_level, certify)[0]


def zfp_compress_with_recon(
    data: np.ndarray,
    tol: float,
    eb_mode: str = "abs",
    zlib_level: int = 1,
) -> tuple[bytes, np.ndarray]:
    """:func:`zfp_compress` plus the decoder's exact reconstruction.

    The certified (v2) encoder already runs the decoder's shared
    bit-plane arithmetic to find its exact outliers; patching those
    outliers into that reconstruction yields :func:`zfp_decompress`'s
    output bit for bit, so callers that verify the bound at commit time
    (the codec-selection engine) skip a full decompression pass.  Only
    certified containers track a reconstruction.
    """
    blob, recon = _zfp_compress_impl(data, tol, eb_mode, zlib_level, True)
    return blob, recon


def _zfp_compress_impl(
    data: np.ndarray,
    tol: float,
    eb_mode: str,
    zlib_level: int,
    certify: bool,
) -> tuple[bytes, np.ndarray | None]:
    data = as_float_array(data)
    if data.ndim > 4:
        raise ValueError("ZFP-like codec supports 1-4 dimensions")
    abs_tol = resolve_eb(data, tol, eb_mode)
    q = _Q_BITS[data.dtype]
    guard = _GUARD_BITS if certify else _V1_GUARD_BITS
    perm = sequency_order(data.ndim)

    blocks, pshape = _blockify(data)
    nblocks = blocks.shape[0]
    with np.errstate(invalid="ignore", over="ignore"):
        e = _max_exponents(np.where(np.isfinite(blocks), blocks, 0.0))
        scale = np.ldexp(1.0, (q - e).astype(np.int32))[:, None]
        ints = np.rint(
            np.where(np.isfinite(blocks), blocks, 0.0).astype(np.float64)
            * scale
        ).astype(np.int64)

    tblocks = ints.reshape((nblocks,) + (BLOCK,) * data.ndim)
    forward_transform(tblocks)
    u = to_negabinary(tblocks.reshape(nblocks, -1)[:, perm])

    # tolerance cutoff per block, in scaled units.  Certified mode keeps
    # _GUARD_BITS guard bits: enough margin that the lifting transform's
    # low-bit rounding almost never crosses the tolerance, keeping the
    # exact-outlier section tiny.
    tol_scaled = abs_tol * np.ldexp(1.0, (q - e).astype(np.int32))
    p_keep = np.where(
        tol_scaled >= 2.0**guard,
        np.floor(np.log2(tol_scaled)).astype(np.int64) - guard,
        0,
    )
    umax = u.max(axis=1)
    # bit length of the largest coefficient (exact: values < 2**55)
    maxbit = np.zeros(nblocks, dtype=np.int64)
    nz = umax > 0
    maxbit[nz] = np.floor(np.log2(umax[nz].astype(np.float64))).astype(np.int64) + 1
    nplanes = np.clip(maxbit - p_keep, 0, 63).astype(np.uint8)

    payload_parts: list[bytes] = []
    for np_val in np.unique(nplanes):
        if np_val == 0:
            continue
        sel = np.flatnonzero(nplanes == np_val)
        v = u[sel] >> p_keep[sel].astype(np.uint64)[:, None]
        planes = np.arange(int(np_val) - 1, -1, -1, dtype=np.uint64)
        # plane-major bit tensor: (nplanes, gblocks, 64)
        bits = ((v[None, :, :] >> planes[:, None, None]) & np.uint64(1)).astype(
            np.uint8
        )
        payload_parts.append(np.packbits(bits.reshape(-1)).tobytes())

    payload = b"".join(payload_parts)

    header = _HEADER.pack(
        _MAGIC,
        _VERSION if certify else 1,
        dtype_code(data.dtype),
        data.ndim,
        q,
        abs_tol,
    ) + struct.pack(f"<{data.ndim}Q", *data.shape)
    # NOTE: the bit-plane payload is stored raw — real zfp emits a plain
    # concatenation of per-block bitstreams with no entropy stage, and a
    # DEFLATE pass here would couple blocks and overstate zfp's ratio
    # (blocks must stay independent for its random-access property).
    sections = [
        header,
        compress_bytes(e.tobytes(), max(zlib_level, 1)),
        compress_bytes(nplanes.tobytes(), max(zlib_level, 1)),
        compress_bytes(payload, 0),
    ]
    if not certify:
        return pack_sections(sections), None

    # exact-outlier pass (v2): reconstruct with the decoder's shared
    # arithmetic and store every point outside the tolerance exactly —
    # this is what upgrades the advisory tolerance to a certified bound
    rec = _unblockify(
        _bitplane_reconstruct(e, nplanes, payload, data.ndim, q, abs_tol)
        .astype(data.dtype),
        pshape,
        data.shape,
    )
    flat = data.reshape(-1)
    with np.errstate(invalid="ignore"):
        err = np.abs(
            flat.astype(np.float64) - rec.reshape(-1).astype(np.float64)
        )
        bad = np.flatnonzero(~np.isfinite(flat) | (err > abs_tol))
    outliers = (
        struct.pack("<Q", bad.size)
        + bad.astype(np.uint64).tobytes()
        + flat[bad].tobytes()
    )
    sections.append(compress_bytes(outliers, max(zlib_level, 1)))
    # the decoder ends with the same outlier patch, so ``rec`` with the
    # exact values scattered back *is* its output
    rec.reshape(-1)[bad] = flat[bad]
    return pack_sections(sections), rec


def zfp_decompress(blob: bytes | memoryview) -> np.ndarray:
    sections = unpack_sections(blob)
    header = bytes(sections[0])
    magic, version, dt, ndim, q, abs_tol = _HEADER.unpack(
        header[: _HEADER.size]
    )
    if magic != _MAGIC:
        raise ValueError("not a ZFP-like container")
    if version not in (1, _VERSION):
        raise ValueError(f"unsupported version {version}")
    shape = struct.unpack(f"<{ndim}Q", header[_HEADER.size :])
    dtype = dtype_from_code(dt)

    e = np.frombuffer(decompress_bytes(sections[1]), dtype=np.int16)
    nplanes = np.frombuffer(decompress_bytes(sections[2]), dtype=np.uint8)
    payload = decompress_bytes(sections[3])
    guard = _V1_GUARD_BITS if version == 1 else _GUARD_BITS
    blocks = _bitplane_reconstruct(
        e, nplanes, payload, ndim, q, abs_tol, guard
    )

    pshape = tuple(-(-n // BLOCK) * BLOCK for n in shape)
    rec = _unblockify(blocks.astype(dtype), pshape, shape)

    if version >= 2:  # exact-outlier correction (absent in v1 blobs)
        out = decompress_bytes(sections[4])
        (n_out,) = struct.unpack_from("<Q", out, 0)
        if n_out:
            pos = np.frombuffer(
                out, dtype=np.uint64, count=n_out, offset=8
            ).astype(np.int64)
            vals = np.frombuffer(out, dtype=dtype, offset=8 + 8 * n_out)
            rec.reshape(-1)[pos] = vals
    return rec


class ZFPCompressor:
    """Object API with Table 1 capability flags.

    Random access: any 4-aligned block region can be reconstructed
    independently (the codec is block-wise); this reference
    implementation decodes whole containers and exposes the flag for the
    feature-matrix benchmark.
    """

    name = "ZFP"
    supports_progressive = False
    supports_random_access = True

    def __init__(self, tol: float, eb_mode: str = "abs"):
        self.tol = tol
        self.eb_mode = eb_mode

    def compress(self, data: np.ndarray) -> bytes:
        return zfp_compress(data, self.tol, self.eb_mode)

    def decompress(self, blob: bytes) -> np.ndarray:
        return zfp_decompress(blob)
