"""ZFP-like fixed-accuracy codec (vectorized across blocks).

Pipeline per 4^d block: common-exponent alignment -> integer lifting
transform -> sequency reorder -> negabinary -> keep only the bit planes
above the tolerance-derived cutoff.  Blocks with equal kept-plane counts
are encoded together plane-major (so the sparse high planes compress
well under DEFLATE), which keeps every stage a whole-array numpy op.

As with real zfp's accuracy mode, the tolerance steers quantization and
holds in practice but is not a certified bound (the lifting transform
itself rounds low bits).  The test suite checks the empirical bound with
a small safety factor.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.util.sections import pack_sections, unpack_sections
from repro.util.validation import (
    as_float_array,
    dtype_code,
    dtype_from_code,
    resolve_eb,
)
from repro.zfp.transform import (
    BLOCK,
    forward_transform,
    from_negabinary,
    inverse_transform,
    sequency_order,
    to_negabinary,
)

_MAGIC = b"ZFPr"
_VERSION = 1
_HEADER = struct.Struct("<4sBBBBd")
# magic, version, dtype, ndim, q, tol
_Q_BITS = {np.dtype(np.float32): 26, np.dtype(np.float64): 52}


def _blockify(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Edge-pad to multiples of 4 and reshape to ``(nblocks, 4**d)``."""
    pad = [(0, (-n) % BLOCK) for n in data.shape]
    padded = np.pad(data, pad, mode="edge")
    pshape = padded.shape
    d = data.ndim
    counts = tuple(n // BLOCK for n in pshape)
    # split each axis into (count, 4) and bring the block axes last
    arr = padded.reshape(
        tuple(v for n in counts for v in (n, BLOCK))
    )
    arr = arr.transpose(
        tuple(range(0, 2 * d, 2)) + tuple(range(1, 2 * d, 2))
    )
    return np.ascontiguousarray(arr.reshape(int(np.prod(counts)), BLOCK**d)), pshape


def _unblockify(
    blocks: np.ndarray, pshape: tuple[int, ...], shape: tuple[int, ...]
) -> np.ndarray:
    d = len(shape)
    counts = tuple(n // BLOCK for n in pshape)
    arr = blocks.reshape(counts + (BLOCK,) * d)
    perm = []
    for a in range(d):
        perm += [a, d + a]
    arr = arr.transpose(perm).reshape(pshape)
    return np.ascontiguousarray(arr[tuple(slice(0, n) for n in shape)])


def _max_exponents(blocks: np.ndarray) -> np.ndarray:
    """Per-block exponent e with max|v| < 2**e (e = 0 for all-zero)."""
    m = np.abs(blocks).max(axis=1)
    _, e = np.frexp(m)
    return e.astype(np.int16)


def zfp_compress(
    data: np.ndarray,
    tol: float,
    eb_mode: str = "abs",
    zlib_level: int = 1,
) -> bytes:
    """Compress with a (soft) absolute/relative error tolerance."""
    data = as_float_array(data)
    if data.ndim > 4:
        raise ValueError("ZFP-like codec supports 1-4 dimensions")
    abs_tol = resolve_eb(data, tol, eb_mode)
    q = _Q_BITS[data.dtype]
    perm = sequency_order(data.ndim)

    blocks, pshape = _blockify(data)
    nblocks = blocks.shape[0]
    e = _max_exponents(blocks)
    scale = np.ldexp(1.0, (q - e).astype(np.int32))[:, None]
    ints = np.rint(blocks.astype(np.float64) * scale).astype(np.int64)

    tblocks = ints.reshape((nblocks,) + (BLOCK,) * data.ndim)
    forward_transform(tblocks)
    u = to_negabinary(tblocks.reshape(nblocks, -1)[:, perm])

    # tolerance cutoff per block, in scaled units (one guard bit)
    tol_scaled = abs_tol * np.ldexp(1.0, (q - e).astype(np.int32))
    p_keep = np.where(
        tol_scaled >= 4.0, np.floor(np.log2(tol_scaled)).astype(np.int64) - 2, 0
    )
    umax = u.max(axis=1)
    # bit length of the largest coefficient (exact: values < 2**55)
    maxbit = np.zeros(nblocks, dtype=np.int64)
    nz = umax > 0
    maxbit[nz] = np.floor(np.log2(umax[nz].astype(np.float64))).astype(np.int64) + 1
    nplanes = np.clip(maxbit - p_keep, 0, 63).astype(np.uint8)

    payload_parts: list[bytes] = []
    for np_val in np.unique(nplanes):
        if np_val == 0:
            continue
        sel = np.flatnonzero(nplanes == np_val)
        v = u[sel] >> p_keep[sel].astype(np.uint64)[:, None]
        planes = np.arange(int(np_val) - 1, -1, -1, dtype=np.uint64)
        # plane-major bit tensor: (nplanes, gblocks, 64)
        bits = ((v[None, :, :] >> planes[:, None, None]) & np.uint64(1)).astype(
            np.uint8
        )
        payload_parts.append(np.packbits(bits.reshape(-1)).tobytes())

    header = _HEADER.pack(
        _MAGIC, _VERSION, dtype_code(data.dtype), data.ndim, q, abs_tol
    ) + struct.pack(f"<{data.ndim}Q", *data.shape)
    # NOTE: the bit-plane payload is stored raw — real zfp emits a plain
    # concatenation of per-block bitstreams with no entropy stage, and a
    # DEFLATE pass here would couple blocks and overstate zfp's ratio
    # (blocks must stay independent for its random-access property).
    sections = [
        header,
        compress_bytes(e.tobytes(), max(zlib_level, 1)),
        compress_bytes(nplanes.tobytes(), max(zlib_level, 1)),
        compress_bytes(b"".join(payload_parts), 0),
    ]
    return pack_sections(sections)


def zfp_decompress(blob: bytes | memoryview) -> np.ndarray:
    sections = unpack_sections(blob)
    header = bytes(sections[0])
    magic, version, dt, ndim, q, abs_tol = _HEADER.unpack(
        header[: _HEADER.size]
    )
    if magic != _MAGIC:
        raise ValueError("not a ZFP-like container")
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    shape = struct.unpack(f"<{ndim}Q", header[_HEADER.size :])
    dtype = dtype_from_code(dt)
    perm = sequency_order(ndim)
    inv_perm = np.argsort(perm)

    e = np.frombuffer(decompress_bytes(sections[1]), dtype=np.int16)
    nplanes = np.frombuffer(decompress_bytes(sections[2]), dtype=np.uint8)
    payload = decompress_bytes(sections[3])
    nblocks = e.size
    ncoef = BLOCK**ndim

    tol_scaled = abs_tol * np.ldexp(1.0, (q - e).astype(np.int32))
    p_keep = np.where(
        tol_scaled >= 4.0, np.floor(np.log2(tol_scaled)).astype(np.int64) - 2, 0
    )

    u = np.zeros((nblocks, ncoef), dtype=np.uint64)
    off = 0
    for np_val in np.unique(nplanes):
        if np_val == 0:
            continue
        sel = np.flatnonzero(nplanes == np_val)
        g = sel.size
        nbits = int(np_val) * g * ncoef
        nbytes = (nbits + 7) // 8
        bits = np.unpackbits(
            np.frombuffer(payload, dtype=np.uint8, count=nbytes, offset=off),
            count=nbits,
        ).reshape(int(np_val), g, ncoef)
        off += nbytes
        planes = np.arange(int(np_val) - 1, -1, -1, dtype=np.uint64)
        v = (bits.astype(np.uint64) << planes[:, None, None]).sum(
            axis=0, dtype=np.uint64
        )
        u[sel] = v << p_keep[sel].astype(np.uint64)[:, None]

    ints = from_negabinary(u[:, inv_perm]).reshape((nblocks,) + (BLOCK,) * ndim)
    inverse_transform(ints)
    scale = np.ldexp(1.0, (e.astype(np.int32) - q))[:, None]
    blocks = ints.reshape(nblocks, -1).astype(np.float64) * scale

    pshape = tuple(-(-n // BLOCK) * BLOCK for n in shape)
    return _unblockify(blocks.astype(dtype), pshape, shape)


class ZFPCompressor:
    """Object API with Table 1 capability flags.

    Random access: any 4-aligned block region can be reconstructed
    independently (the codec is block-wise); this reference
    implementation decodes whole containers and exposes the flag for the
    feature-matrix benchmark.
    """

    name = "ZFP"
    supports_progressive = False
    supports_random_access = True

    def __init__(self, tol: float, eb_mode: str = "abs"):
        self.tol = tol
        self.eb_mode = eb_mode

    def compress(self, data: np.ndarray) -> bytes:
        return zfp_compress(data, self.tol, self.eb_mode)

    def decompress(self, blob: bytes) -> np.ndarray:
        return zfp_decompress(blob)
