"""Compression-as-a-service: the asyncio multi-tenant server.

One :class:`CompressionServer` owns an asyncio TCP listener, a
:class:`~repro.serve.engine.ServeEngine` (shared worker pool + decoded
chunk cache) and a dict of :class:`~repro.serve.session.TenantSession`
objects keyed by the ``X-Tenant`` header.  The event loop only parses
and routes; every CPU-bound byte of work is admission-gated and then
offloaded to the engine's dispatch pool, so a slow decode never stalls
another tenant's request parsing.

Endpoints (all under ``/v1``; arrays travel as raw C-order bytes with
``X-Shape``/``X-Dtype`` headers):

===========================  ===========================================
``POST /v1/compress``        body = array; ``X-EB`` (+ ``X-EB-Mode``,
                             ``X-Chunks``, ``X-Codec``); returns the
                             checksummed sharded archive, stores it in
                             the session, ``X-Archive-Digest`` names it
``POST /v1/archives``        body = archive; parse, store, return digest
``POST /v1/decompress``      ``?digest=``; returns the full array
``GET  /v1/roi``             ``?digest=&box=a:b,c:d,..``; returns the box
``POST /v1/stream/open``     ``X-EB``/``X-Shape``/``X-Dtype`` (+
                             ``X-Keyframe-Interval``): open a streaming
                             compressor for this session
``POST /v1/stream/append``   body = one step; returns frame accounting
``POST /v1/stream/close``    finalize; returns the multi-frame archive
``GET  /v1/stats``           engine + cache + per-tenant counters
``GET  /v1/health``          liveness
===========================  ===========================================

Admission control: at most ``max_inflight`` gated requests execute
concurrently; up to ``max_queue`` more wait; beyond that the server
answers **429 immediately** with ``Retry-After`` — a full service
sheds load at the door instead of queueing unboundedly (the
closed-loop bench measures exactly this knee).  Each gated request
carries a deadline (``request_timeout``, counted from admission
*request*, so time spent queued burns budget too); expiry surfaces as
**503** and, through ``execute_map``'s timeout, cancels or abandons
the pooled work without poisoning the shared pool.

Error contract (:mod:`repro.serve.errors`): every response a tenant
receives is either a 2xx with verified bytes or a structured 4xx/5xx —
corruption detected while serving is **422**, never silently decoded
garbage (the fault-injection suite's "hard error bounds on every
served byte" assertion).
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import KNOWN_CODECS, STZConfig
from repro.core.integrity import ChunkCorruptionError
from repro.core.streaming import (
    DEFAULT_KEYFRAME_INTERVAL,
    StreamingCompressor,
)
from repro.serve.engine import ServeEngine
from repro.serve.errors import (
    BadRequest,
    RequestTimeout,
    ServeError,
    ServerBusy,
)
from repro.serve.http import (
    ProtocolError,
    Request,
    error_bytes,
    json_bytes,
    read_request,
    response_bytes,
)
from repro.serve.session import ActiveStream, ServedArchive, TenantSession

_DTYPES = ("float32", "float64")


@dataclass
class ServeConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (tests); CLI defaults to 8641
    #: gated requests executing concurrently / waiting; beyond = 429
    max_inflight: int = 4
    max_queue: int = 16
    #: Retry-After hint on 429 (seconds)
    retry_after: float = 1.0
    #: per-request wall-clock budget, queued time included; None = off
    request_timeout: float | None = 30.0
    #: per-tenant byte quota (stored archives + streamed steps)
    quota_bytes: int = 256 * 1024 * 1024
    #: decoded-chunk cache capacity; 0 disables (bench baseline)
    cache_bytes: int = 64 * 1024 * 1024
    max_body: int = 512 * 1024 * 1024
    executor: str = "thread"
    workers: int = 2


class AdmissionGate:
    """Bounded two-stage admission: run now, wait, or 429.

    ``asyncio.Semaphore`` provides the run-now/wait split; the queue
    bound is an explicit counter checked *before* waiting, so a
    request either starts waiting with a reserved queue slot or is
    rejected immediately — there is no state where more than
    ``max_queue`` requests sit behind the semaphore.
    """

    def __init__(self, max_inflight: int, max_queue: int, retry_after: float):
        self._sem = asyncio.Semaphore(max_inflight)
        self._queued = 0
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.retry_after = retry_after
        self.admitted = 0
        self.rejected = 0

    @contextlib.asynccontextmanager
    async def admit(self):
        if self._sem.locked() and self._queued >= self.max_queue:
            self.rejected += 1
            raise ServerBusy(
                f"admission queue full ({self.max_inflight} in flight, "
                f"{self._queued} queued)",
                retry_after=self.retry_after,
            )
        self._queued += 1
        try:
            await self._sem.acquire()
        finally:
            self._queued -= 1
        self.admitted += 1
        try:
            yield
        finally:
            self._sem.release()

    def stats(self) -> dict:
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "queued": self._queued,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


def _parse_shape(spec: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(s) for s in spec.split(","))
    except ValueError:
        raise BadRequest(f"invalid X-Shape {spec!r}") from None
    if not shape or any(n < 1 for n in shape):
        raise BadRequest(f"invalid X-Shape {spec!r}")
    return shape


def _parse_dtype(spec: str) -> np.dtype:
    # closed allowlist: the dtype string comes off the wire, and only
    # the pipeline's two float types are servable anyway
    if spec not in _DTYPES:
        raise BadRequest(f"X-Dtype must be one of {_DTYPES}, got {spec!r}")
    return np.dtype(spec)


def _parse_box(spec: str, ndim: int) -> tuple:
    """Parse 'a:b,c:d,e' into a per-axis ROI tuple (CLI grammar)."""
    parts = spec.split(",")
    if len(parts) != ndim:
        raise BadRequest(
            f"box {spec!r} has {len(parts)} axes; archive has {ndim}"
        )
    roi = []
    try:
        for part in parts:
            if part == ":":
                roi.append(slice(None))
            elif ":" in part:
                lo, hi = part.split(":", 1)
                roi.append(
                    slice(int(lo) if lo else None, int(hi) if hi else None)
                )
            else:
                roi.append(int(part))
    except ValueError:
        raise BadRequest(f"invalid box spec {spec!r}") from None
    return tuple(roi)


def _parse_chunks(spec: str | None) -> int | tuple[int, ...] | None:
    if spec is None:
        return None
    try:
        parts = [int(s) for s in spec.split(",")]
    except ValueError:
        raise BadRequest(f"invalid X-Chunks {spec!r}") from None
    return parts[0] if len(parts) == 1 else tuple(parts)


def _parse_eb(req: Request) -> tuple[float, str]:
    try:
        eb = float(req.require("X-EB"))
    except ValueError:
        raise BadRequest("X-EB must be a float") from None
    mode = req.header("X-EB-Mode", "abs")
    if mode not in ("abs", "rel"):
        raise BadRequest(f"X-EB-Mode must be abs|rel, got {mode!r}")
    return eb, mode


def _array_from_request(req: Request) -> np.ndarray:
    shape = _parse_shape(req.require("X-Shape"))
    dtype = _parse_dtype(req.require("X-Dtype"))
    expected = int(np.prod(shape)) * dtype.itemsize
    if len(req.body) != expected:
        raise BadRequest(
            f"body is {len(req.body)} B; shape {shape} {dtype} needs "
            f"{expected} B"
        )
    return np.frombuffer(req.body, dtype=dtype).reshape(shape)


def _array_response(arr: np.ndarray, extra: dict | None = None) -> bytes:
    headers = {
        "X-Shape": ",".join(map(str, arr.shape)),
        "X-Dtype": str(arr.dtype),
    }
    if extra:
        headers.update(extra)
    return response_bytes(
        200, np.ascontiguousarray(arr).tobytes(), headers
    )


class CompressionServer:
    """The serve-layer composition root (see module docstring)."""

    def __init__(self, config: ServeConfig, engine: ServeEngine | None = None):
        self.config = config
        self.engine = engine or ServeEngine(
            executor=config.executor,
            workers=config.workers,
            cache_bytes=config.cache_bytes,
            dispatchers=config.max_inflight + 2,
        )
        self._owns_engine = engine is None
        self.gate = AdmissionGate(
            config.max_inflight, config.max_queue, config.retry_after
        )
        self.sessions: dict[str, TenantSession] = {}
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.requests = 0
        self.disconnects = 0
        self.responses_by_status: dict[int, int] = {}

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # idle keep-alive connections sit parked in read_request();
        # cancel their handler tasks so shutdown never strands a task
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
        for session in self.sessions.values():
            stream = session.stream
            if stream is not None:
                session.stream = None
                # finalize off-loop: close() drains the encode chain
                await self.engine.run(stream.compressor.close)
        if self._owns_engine:
            self.engine.close()

    # -- connection / routing ---------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    req = await read_request(reader, self.config.max_body)
                except ProtocolError as exc:
                    # malformed framing: answer once, then drop — the
                    # stream position is no longer trustworthy
                    self._count(exc.status)
                    writer.write(
                        error_bytes(
                            exc.status, str(exc), {"Connection": "close"}
                        )
                    )
                    await writer.drain()
                    break
                if req is None:
                    break
                self.requests += 1
                response = await self._dispatch(req)
                writer.write(response)
                await writer.drain()
                if not req.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            # mid-request disconnect: the tenant is gone; nothing to
            # answer, nothing to log as a server fault
            self.disconnects += 1
        finally:
            writer.close()
            # CancelledError included: a shutdown cancel landing on this
            # last await must end the handler *normally* — a handler
            # task that finishes "cancelled" trips asyncio's stream
            # protocol callback (task.exception() on a cancelled task)
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()
            # deregister only after the last await: a task that parks
            # here during shutdown must still be visible to close()'s
            # cancel+gather sweep, or loop teardown would strand it
            if task is not None:
                self._conn_tasks.discard(task)

    def _count(self, status: int) -> None:
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )

    def _session(self, req: Request) -> TenantSession:
        tenant = req.require("X-Tenant")
        session = self.sessions.get(tenant)
        if session is None:
            session = TenantSession(tenant, self.config.quota_bytes)
            self.sessions[tenant] = session
        return session

    async def _dispatch(self, req: Request) -> bytes:
        """Route one request and translate the error taxonomy."""
        try:
            response = await self._route(req)
        except ServerBusy as exc:
            response = error_bytes(
                exc.status,
                str(exc),
                {"Retry-After": f"{exc.retry_after:g}"},
            )
        except ChunkCorruptionError as exc:
            # detected corruption: a structured refusal, never bytes
            # whose error bound cannot be vouched for
            response = error_bytes(422, str(exc))
        except ServeError as exc:
            response = error_bytes(exc.status, str(exc))
        except ProtocolError as exc:
            response = error_bytes(exc.status, str(exc))
        except (ValueError, TypeError) as exc:
            response = error_bytes(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            response = error_bytes(500, f"{type(exc).__name__}: {exc}")
        status = int(response.split(b" ", 2)[1])
        self._count(status)
        if status >= 400 and req.header("X-Tenant"):
            session = self.sessions.get(req.header("X-Tenant"))
            if session is not None:
                session.errors += 1
        return response

    async def _route(self, req: Request) -> bytes:
        path, method = req.path, req.method
        if path == "/v1/health":
            return json_bytes(200, {"status": "ok"})
        if path == "/v1/stats":
            return json_bytes(200, self.stats())
        session = self._session(req)
        session.requests += 1
        routes = {
            ("POST", "/v1/compress"): self._compress,
            ("POST", "/v1/archives"): self._upload,
            ("POST", "/v1/decompress"): self._decompress,
            ("GET", "/v1/roi"): self._roi,
            ("POST", "/v1/stream/open"): self._stream_open,
            ("POST", "/v1/stream/append"): self._stream_append,
            ("POST", "/v1/stream/close"): self._stream_close,
        }
        handler = routes.get((method, path))
        if handler is None:
            known = {p for (_, p) in routes}
            if path in known:
                return error_bytes(405, f"{method} not allowed on {path}")
            return error_bytes(404, f"unknown route {path}")
        return await handler(req, session)

    def _deadline(self) -> float | None:
        timeout = self.config.request_timeout
        return None if timeout is None else time.monotonic() + timeout

    # -- handlers ----------------------------------------------------------

    async def _compress(self, req: Request, session: TenantSession) -> bytes:
        data = _array_from_request(req)
        eb, mode = _parse_eb(req)
        chunks = _parse_chunks(req.header("X-Chunks"))
        codec = req.header("X-Codec", "stz")
        if codec not in KNOWN_CODECS:
            raise BadRequest(
                f"X-Codec must be one of {KNOWN_CODECS}, got {codec!r}"
            )
        config = STZConfig(codec=codec)
        deadline = self._deadline()
        async with self.gate.admit():
            blob = await self.engine.run(
                self.engine.compress, data, eb, mode, config, chunks,
                deadline,
            )
        archive = ServedArchive.open(blob)
        session.add_archive(archive)
        return response_bytes(
            200, blob, {"X-Archive-Digest": archive.hex}
        )

    async def _upload(self, req: Request, session: TenantSession) -> bytes:
        if not req.body:
            raise BadRequest("empty archive upload")
        archive = ServedArchive.open(req.body)
        key = session.add_archive(archive)
        return json_bytes(
            201,
            {
                "digest": key,
                "nchunks": archive.reader.nchunks,
                "shape": list(archive.reader.shape),
                "dtype": str(archive.reader.dtype),
            },
        )

    def _requested_archive(
        self, req: Request, session: TenantSession
    ) -> ServedArchive:
        digest = req.query.get("digest") or req.header("X-Archive-Digest")
        if not digest:
            raise BadRequest("digest is required (?digest= or header)")
        return session.get_archive(digest)

    async def _decompress(self, req: Request, session: TenantSession) -> bytes:
        archive = self._requested_archive(req, session)
        deadline = self._deadline()
        async with self.gate.admit():
            arr = await self.engine.run(
                self.engine.decode_full, archive, deadline
            )
        return _array_response(arr, {"X-Archive-Digest": archive.hex})

    async def _roi(self, req: Request, session: TenantSession) -> bytes:
        archive = self._requested_archive(req, session)
        box_spec = req.query.get("box")
        if not box_spec:
            raise BadRequest("box is required (?box=a:b,c:d,..)")
        roi = _parse_box(box_spec, len(archive.reader.shape))
        deadline = self._deadline()
        async with self.gate.admit():
            arr = await self.engine.run(
                self.engine.decode_roi, archive, roi, deadline
            )
        return _array_response(arr, {"X-Archive-Digest": archive.hex})

    async def _stream_open(self, req: Request, session: TenantSession) -> bytes:
        eb, mode = _parse_eb(req)
        shape = _parse_shape(req.require("X-Shape"))
        dtype = _parse_dtype(req.require("X-Dtype"))
        try:
            interval = int(
                req.header(
                    "X-Keyframe-Interval", str(DEFAULT_KEYFRAME_INTERVAL)
                )
            )
        except ValueError:
            raise BadRequest("X-Keyframe-Interval must be an int") from None
        async with session.stream_lock:
            if session.stream is not None:
                raise BadRequest(
                    "session already has an open stream; close it first"
                )
            compressor = StreamingCompressor(
                eb, mode, keyframe_interval=interval
            )
            session.stream = ActiveStream(compressor, shape, dtype)
        return json_bytes(201, {"frames": 0})

    async def _stream_append(
        self, req: Request, session: TenantSession
    ) -> bytes:
        async with session.stream_lock:
            stream = session.stream
            if stream is None:
                raise BadRequest("no open stream (POST /v1/stream/open)")
            expected = (
                int(np.prod(stream.shape)) * stream.dtype.itemsize
            )
            if len(req.body) != expected:
                raise BadRequest(
                    f"step is {len(req.body)} B; stream frame "
                    f"{stream.shape} {stream.dtype} needs {expected} B"
                )
            session.charge(len(req.body), "stream step")
            step = np.frombuffer(req.body, dtype=stream.dtype).reshape(
                stream.shape
            )
            async with self.gate.admit():
                stats = await self.engine.run(
                    stream.compressor.append, step
                )
            stream.frames += 1
            return json_bytes(
                200,
                {
                    "frame": stats.index,
                    "nbytes": stats.nbytes,
                    "is_delta": bool(stats.is_delta),
                },
            )

    async def _stream_close(
        self, req: Request, session: TenantSession
    ) -> bytes:
        async with session.stream_lock:
            stream = session.stream
            if stream is None:
                raise BadRequest("no open stream to close")
            session.stream = None
            async with self.gate.admit():
                blob = await self.engine.run(stream.compressor.close)
        return response_bytes(
            200, blob or b"", {"X-Frames": str(stream.frames)}
        )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "disconnects": self.disconnects,
            "responses": {
                str(k): v
                for k, v in sorted(self.responses_by_status.items())
            },
            "admission": self.gate.stats(),
            "engine": self.engine.stats(),
            "tenants": {
                t: s.stats() for t, s in sorted(self.sessions.items())
            },
        }


async def run_server(config: ServeConfig) -> None:
    """CLI entry: start and serve until cancelled (Ctrl-C)."""
    server = CompressionServer(config)
    await server.start()
    print(
        f"stz serve: listening on {config.host}:{server.port} "
        f"(executor={server.engine.kind} x{server.engine.workers}, "
        f"cache={config.cache_bytes // (1024 * 1024)} MiB)"
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
