"""Compression-as-a-service: asyncio multi-tenant serve layer.

Public surface of the PR-8 subsystem (DESIGN.md §11): an HTTP server
exposing compress / decompress / ROI-extract / stream-append over
per-tenant sessions, one shared warm worker pool for all tenants' CPU
work, and a content-addressed decoded-chunk LRU cache.  Stdlib +
numpy only — no new dependencies.
"""

from repro.serve.cache import DecodedChunkCache, archive_digest
from repro.serve.engine import ServeEngine
from repro.serve.errors import (
    BadRequest,
    QuotaExceeded,
    RequestTimeout,
    ServeError,
    ServerBusy,
    UnknownArchive,
)
from repro.serve.server import (
    AdmissionGate,
    CompressionServer,
    ServeConfig,
    run_server,
)
from repro.serve.session import ServedArchive, TenantSession

__all__ = [
    "AdmissionGate",
    "BadRequest",
    "CompressionServer",
    "DecodedChunkCache",
    "QuotaExceeded",
    "RequestTimeout",
    "ServeConfig",
    "ServeEngine",
    "ServeError",
    "ServedArchive",
    "ServerBusy",
    "TenantSession",
    "UnknownArchive",
    "archive_digest",
    "run_server",
]
