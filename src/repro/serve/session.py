"""Per-tenant session state: archives, stream, quota.

A *session* is the multi-tenant isolation boundary.  Every request
names its tenant (``X-Tenant``) and resolves to one
:class:`TenantSession`; everything a tenant can address — uploaded or
compressed archives (by content digest), the open append stream, the
remaining byte quota — lives inside the session.  Tenant B asking for
tenant A's digest gets 404, full stop: the server never consults other
sessions, so cross-tenant bleed is structurally impossible rather than
access-controlled.  (The *decoded-chunk cache* is deliberately shared
across tenants — it is keyed by content digest, so two tenants can
only ever share cache entries for byte-identical archives, which leak
nothing either tenant did not already hold.  DESIGN.md §11.)

Quota accounting charges bytes a session causes the server to *retain*
or *ingest*: stored archive bytes and appended stream-step bytes.
Charges are all-or-nothing (:meth:`TenantSession.charge` raises before
mutating), so a 413 response leaves the session exactly as it was.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.stream import ShardedReader
from repro.core.streaming import StreamingCompressor
from repro.serve.cache import archive_digest
from repro.serve.errors import BadRequest, QuotaExceeded, UnknownArchive


@dataclass(frozen=True)
class ServedArchive:
    """One immutable, content-addressed archive held by a session.

    The :class:`~repro.core.stream.ShardedReader` is parsed once at
    admission (an unparseable upload is rejected as 400 before it can
    occupy quota) and reused by every later request; the raw ``blob``
    stays alive alongside it because the reader's chunk payloads are
    zero-copy views into it, and because pool workers read payloads
    straight from the (fork-inherited) buffer.
    """

    blob: bytes
    digest: bytes
    reader: ShardedReader

    @classmethod
    def open(cls, blob: bytes) -> "ServedArchive":
        try:
            reader = ShardedReader(blob)
        except Exception as exc:  # noqa: BLE001 — any parse failure is 400
            raise BadRequest(
                f"not a sharded STZ archive: {exc}"
            ) from exc
        return cls(blob, archive_digest(blob), reader)

    @property
    def hex(self) -> str:
        return self.digest.hex()


class ActiveStream:
    """One open ``StreamingCompressor`` plus the frame geometry every
    append must match (the wire carries raw bytes; shape/dtype are
    fixed at open time so appends cannot silently reinterpret)."""

    def __init__(
        self,
        compressor: StreamingCompressor,
        shape: tuple[int, ...],
        dtype: np.dtype,
    ):
        self.compressor = compressor
        self.shape = shape
        self.dtype = dtype
        self.frames = 0


class TenantSession:
    """Everything one tenant can see or spend."""

    def __init__(self, tenant: str, quota_bytes: int):
        self.tenant = tenant
        self.quota_bytes = int(quota_bytes)
        self.used_bytes = 0
        self.archives: dict[str, ServedArchive] = {}
        self.stream: ActiveStream | None = None
        #: serializes this tenant's *stream* mutations — the
        #: StreamingCompressor is a stateful delta chain, so two
        #: concurrent appends from one tenant must run in arrival
        #: order, while other tenants (and this tenant's read-only
        #: archive requests) proceed untouched
        self.stream_lock = asyncio.Lock()
        self.requests = 0
        self.errors = 0

    def charge(self, nbytes: int, what: str) -> None:
        """Reserve quota or raise (without mutating) — 413's source."""
        if self.used_bytes + nbytes > self.quota_bytes:
            raise QuotaExceeded(
                f"{what} of {nbytes} B exceeds tenant {self.tenant!r} "
                f"quota ({self.used_bytes}/{self.quota_bytes} B used)"
            )
        self.used_bytes += nbytes

    def add_archive(self, archive: ServedArchive) -> str:
        """Store an archive under its digest (idempotent: re-adding
        identical bytes re-uses the entry and charges nothing)."""
        key = archive.hex
        if key not in self.archives:
            self.charge(len(archive.blob), "archive")
            self.archives[key] = archive
        return key

    def get_archive(self, hex_digest: str) -> ServedArchive:
        archive = self.archives.get(hex_digest)
        if archive is None:
            raise UnknownArchive(
                f"tenant {self.tenant!r} holds no archive {hex_digest!r}"
            )
        return archive

    def stats(self) -> dict:
        return {
            "tenant": self.tenant,
            "quota_bytes": self.quota_bytes,
            "used_bytes": self.used_bytes,
            "archives": len(self.archives),
            "stream_open": self.stream is not None,
            "requests": self.requests,
            "errors": self.errors,
        }
