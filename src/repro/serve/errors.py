"""Serve-layer error taxonomy and its HTTP status contract.

Every error a tenant can cause carries the status it maps to, so the
server's translation layer is one lookup instead of a scatter of
``isinstance`` chains, and the test suite can assert the contract by
class:

* 400 — malformed request (bad shape/dtype/box spec, unparseable
  archive bytes)
* 404 — unknown route, or a digest the *requesting tenant's* session
  does not hold (another tenant holding it is irrelevant by design:
  sessions are the isolation boundary)
* 413 — per-session byte quota exhausted (admission control of the
  storage kind)
* 422 — chunk corruption detected while serving
  (:class:`~repro.core.integrity.ChunkCorruptionError` is mapped here
  by the server; it is the one outside class in the contract)
* 429 — admission queue full (carries ``Retry-After``)
* 503 — request deadline expired (the work was cancelled/abandoned,
  pools stay clean — DESIGN.md §11)
"""

from __future__ import annotations


class ServeError(Exception):
    """Base of the serve-layer errors; ``status`` is the HTTP reply."""

    status = 500


class BadRequest(ServeError):
    status = 400


class UnknownArchive(ServeError):
    status = 404


class QuotaExceeded(ServeError):
    status = 413


class ServerBusy(ServeError):
    """Admission queue full: rejected up front, with a hint."""

    status = 429

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class RequestTimeout(ServeError):
    status = 503
