"""Decoded-chunk LRU cache for the serve layer.

The Fig.-10 detect-then-extract workflow is a *hot-read* pattern: many
small ROI requests land on the same few chunks of the same archive
(the halos everyone is looking at).  Re-decoding a chunk costs
milliseconds of Huffman + interpolation work; returning the decoded
array from memory costs a dict lookup.  This cache holds decoded chunk
arrays under ``(archive digest, chunk index)`` keys with a **byte**
capacity (entries are multi-hundred-KiB arrays, so counting entries
would let a few large chunks blow the memory budget an operator
configured).

Coherence rule (DESIGN.md §11): entries are immutable *because
archives are content-addressed*.  The digest half of the key is a
blake2b hash of the full archive bytes, so a cached chunk can never be
stale — a "modified" archive is a different archive with a different
digest, and its chunks occupy different keys.  Two tenants holding
byte-identical archives share entries harmlessly (same bytes, same
decoded chunks); tenants holding different archives cannot collide
even on equal chunk indices.  Nothing is ever invalidated, only
evicted.

Integrity rule: callers must verify a chunk (checksum + successful
decode) *before* :meth:`put` — a :class:`ChunkCorruptionError` path
must never populate the cache, or one corrupt request would poison
every later hit.  The serve engine enforces this ordering; the cache
enforces immutability by marking stored arrays read-only.

Accounting is deterministic: ``stats()["bytes"]`` is exactly the sum
of the stored arrays' ``nbytes`` at all times (:meth:`check` asserts
it, and the concurrency tests call it under load), hits/misses/
evictions are monotonic counters, and every mutation happens under one
lock so concurrent tenants can never tear an insert.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

#: digest width for archive content addresses (matches the probe
#: cache's blake2b-16 convention)
DIGEST_SIZE = 16


def archive_digest(blob: bytes | memoryview) -> bytes:
    """Content address of an archive: blake2b-16 of its full bytes."""
    return hashlib.blake2b(blob, digest_size=DIGEST_SIZE).digest()


class DecodedChunkCache:
    """Byte-bounded LRU of decoded chunk arrays.

    ``capacity_bytes=0`` disables the cache entirely (every get
    misses, every put is rejected) — the bench's cache-off baseline
    runs the identical code path minus the memory.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[tuple[bytes, int], np.ndarray]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: puts refused because the single array exceeds the whole
        #: capacity (or the cache is disabled) — distinct from
        #: evictions so the accounting test can tell "never stored"
        #: from "stored then displaced"
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.capacity_bytes > 0

    def get(self, digest: bytes, index: int) -> np.ndarray | None:
        """The cached decoded chunk (recency-refreshed), or None."""
        with self._lock:
            arr = self._entries.get((digest, index))
            if arr is None:
                self.misses += 1
                return None
            self._entries.move_to_end((digest, index))
            self.hits += 1
            return arr

    def put(self, digest: bytes, index: int, chunk: np.ndarray) -> bool:
        """Store a *verified* decoded chunk; returns whether it was
        kept.  Oversized arrays (bigger than the whole capacity) are
        rejected rather than evicting everything for one entry.  A
        re-put of an existing key — two tenants racing on the same
        missing chunk — replaces the entry without double-counting its
        bytes."""
        nbytes = int(chunk.nbytes)
        with self._lock:
            if nbytes > self.capacity_bytes:
                self.rejected += 1
                return False
            chunk.setflags(write=False)  # immutability is the contract
            key = (digest, index)
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = chunk
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                self.evictions += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[tuple[bytes, int]]:
        """LRU-ordered key snapshot (oldest first) — test introspection."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        """Consistent counter snapshot (one lock acquisition)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity_bytes": self.capacity_bytes,
                "bytes": self._bytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

    def check(self) -> None:
        """Assert the deterministic-accounting invariants: tracked
        bytes equal the sum of stored arrays' nbytes, the byte bound
        holds, and every entry is read-only."""
        with self._lock:
            actual = sum(a.nbytes for a in self._entries.values())
            if actual != self._bytes:
                raise AssertionError(
                    f"cache accounting drifted: tracked {self._bytes} B, "
                    f"stored {actual} B"
                )
            if self._bytes > self.capacity_bytes:
                raise AssertionError(
                    f"cache over capacity: {self._bytes} B > "
                    f"{self.capacity_bytes} B"
                )
            for (digest, index), arr in self._entries.items():
                if arr.flags.writeable:
                    raise AssertionError(
                        f"cached chunk ({digest.hex()}, {index}) is "
                        "writable; entries must be immutable"
                    )
