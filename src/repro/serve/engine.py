"""CPU engine behind the serve endpoints.

All tenants' CPU-bound work funnels through one :class:`ServeEngine`:

* a small **dispatch** thread pool that the asyncio loop offloads
  blocking calls onto (``loop.run_in_executor``) — sized with the
  admission gate so a full gate, not a full pool, is what callers hit
  first;
* one shared warm :class:`~repro.core.parallel.WorkerPool` that every
  dispatched call drives through :func:`~repro.core.parallel.
  execute_map` — chunk-level decode/compress parallelism is pooled
  across tenants instead of per-request pool startup.  The fork side
  of a ``WorkerPool`` is not thread-safe (its warm-pool key is caller
  state), so process-executor maps are serialized by ``_fork_mutex``;
  the thread side is driven concurrently as designed — and since the
  compiled decode kernels (DESIGN.md §10) release the GIL for the
  Huffman/reconstruction work, concurrent cache-miss decodes on the
  thread executor genuinely overlap instead of serializing on the
  interpreter;
* the process-wide :class:`~repro.serve.cache.DecodedChunkCache`,
  consulted before any decode work is scheduled and populated only
  with *verified* chunks (checksum passed and decode succeeded —
  the :class:`~repro.core.integrity.ChunkCorruptionError` path can
  never insert).

Request deadlines ride on :func:`execute_map`'s ``timeout``: when a
request's remaining budget expires mid-map, the map raises, abandoned
work is drained or the warm fork pool discarded (the PR-8 contract in
``core/parallel.py``), and the engine translates the
:class:`TimeoutError` into a 503 :class:`~repro.serve.errors.
RequestTimeout`.  A timed-out request therefore cannot poison the
pool for the tenants behind it.

``fault_prologue`` is the test seam: a callable invoked inside every
decode task (in the worker, wherever the worker runs).  The
:class:`~repro.testing.ServerHarness` injects sleeps (admission/
timeout tests) and :class:`~repro.testing.WorkerKiller` (pool-death
tests) through it; production servers leave it ``None``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro.core.chunked import (
    _check_chunk_payload,
    _decode_chunk_payload,
    compress_chunked,
    roi_chunk_windows,
)
from repro.core.config import STZConfig
from repro.core.integrity import ChunkCorruptionError
from repro.core.parallel import WorkerPool, execute_map, resolve_executor
from repro.core.random_access import normalize_roi
from repro.serve.cache import DecodedChunkCache
from repro.serve.errors import RequestTimeout
from repro.serve.session import ServedArchive


def _seconds_left(deadline: float | None) -> float | None:
    if deadline is None:
        return None
    return max(0.0, deadline - time.monotonic())


def _check_deadline(deadline: float | None, what: str) -> None:
    if deadline is not None and time.monotonic() >= deadline:
        raise RequestTimeout(f"deadline expired before {what}")


def _decode_task(state, index: int) -> np.ndarray:
    """Executor task: verify + decode one whole chunk.

    Raises :class:`ChunkCorruptionError` with chunk context on any
    failure — under ``execute_map(retry=1)`` a *deterministic* failure
    (real corruption) re-raises identically on the serial retry, while
    a killed worker's items re-run cleanly; retries can heal pool
    casualties but never mask corruption.
    """
    blob, entries, prologue = state
    if prologue is not None:
        prologue(index)
    entry = entries[index]
    payload = memoryview(blob)[entry.offset : entry.offset + entry.length]
    _check_chunk_payload(entry, payload)
    try:
        return np.ascontiguousarray(_decode_chunk_payload(payload, None))
    except ChunkCorruptionError:
        raise
    except Exception as exc:  # noqa: BLE001 — structured 422, see above
        err = ChunkCorruptionError(entry.index, entry.codec, str(exc))
        err.__cause__ = exc
        raise err from exc


class ServeEngine:
    """Shared CPU executor + decoded-chunk cache for one server."""

    def __init__(
        self,
        executor: str = "thread",
        workers: int | None = 2,
        cache_bytes: int = 64 * 1024 * 1024,
        dispatchers: int = 8,
        fault_prologue: Callable[[int], None] | None = None,
    ):
        self.kind, self.workers = resolve_executor(executor, workers)
        self.pool = (
            WorkerPool(self.kind, self.workers)
            if self.kind != "serial"
            else None
        )
        self._dispatch = ThreadPoolExecutor(
            max_workers=dispatchers, thread_name_prefix="stz-serve"
        )
        self.cache = DecodedChunkCache(cache_bytes)
        self._fork_mutex = threading.Lock()
        self.fault_prologue = fault_prologue

    # -- offload ----------------------------------------------------------

    async def run(self, fn, *args):
        """Run a blocking engine call on the dispatch pool."""
        import asyncio

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._dispatch, lambda: fn(*args))

    # -- blocking engine calls (dispatch-pool side) -----------------------

    def _map(self, fn, items, state, deadline: float | None) -> list:
        """One ``execute_map`` over the shared pool, deadline-bounded,
        fork side serialized (`WorkerPool` thread-safety contract)."""
        kwargs = dict(
            retry=1, pool=self.pool, timeout=_seconds_left(deadline)
        )
        try:
            if self.kind == "process":
                with self._fork_mutex:
                    return execute_map(
                        fn, items, state, self.kind, self.workers, **kwargs
                    )
            return execute_map(
                fn, items, state, self.kind, self.workers, **kwargs
            )
        except TimeoutError as exc:
            raise RequestTimeout(str(exc)) from None

    def decode_chunks(
        self,
        archive: ServedArchive,
        indices: list[int],
        deadline: float | None = None,
    ) -> dict[int, np.ndarray]:
        """Decoded chunk arrays for ``indices`` — cache first, one
        pooled map for the misses, verified results cached."""
        out: dict[int, np.ndarray] = {}
        missing: list[int] = []
        for index in indices:
            arr = self.cache.get(archive.digest, index)
            if arr is None:
                missing.append(index)
            else:
                out[index] = arr
        if missing:
            _check_deadline(deadline, "decoding started")
            state = (archive.blob, archive.reader.chunks, self.fault_prologue)
            decoded = self._map(_decode_task, missing, state, deadline)
            for index, arr in zip(missing, decoded):
                # only here — after checksum + decode succeeded — may a
                # chunk enter the cache (the 422 path raised above us)
                self.cache.put(archive.digest, index, arr)
                out[index] = arr
        return out

    def decode_roi(
        self,
        archive: ServedArchive,
        roi: tuple,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Cache-fed ROI extraction: decode (or fetch) only the chunks
        intersecting the box, crop each through the same
        :func:`roi_chunk_windows` geometry the offline path uses."""
        plan = archive.reader.plan
        box = normalize_roi(plan.shape, roi)
        indices = plan.intersecting(box)
        chunks = self.decode_chunks(archive, indices, deadline)
        out = np.empty(
            tuple(hi - lo for lo, hi in box), dtype=archive.reader.dtype
        )
        for index in indices:
            local, dest = roi_chunk_windows(box, plan.chunk(index))
            out[dest] = chunks[index][local]
        return out

    def decode_full(
        self, archive: ServedArchive, deadline: float | None = None
    ) -> np.ndarray:
        """Full reconstruction, assembled from (possibly cached) chunks."""
        plan = archive.reader.plan
        chunks = self.decode_chunks(
            archive, list(range(plan.nchunks)), deadline
        )
        out = np.empty(plan.shape, dtype=archive.reader.dtype)
        for index in range(plan.nchunks):
            out[plan.chunk(index).slices] = chunks[index]
        return out

    def compress(
        self,
        data: np.ndarray,
        eb: float,
        eb_mode: str,
        config: STZConfig | None,
        chunks: int | tuple[int, ...] | None,
        deadline: float | None = None,
    ) -> bytes:
        """Compress one array into a checksummed sharded archive.

        ``checksum=True`` unconditionally: every archive this server
        stores must be verifiable at decode time, or the 422 contract
        (bounded error on every served byte) would be unenforceable
        for server-compressed data.  The deadline is checked at the
        boundaries; the map inside ``compress_chunked`` is not
        deadline-bounded (its own retry/degradation contract applies)
        — the serve timeout tests therefore drive the decode paths.
        """
        _check_deadline(deadline, "compression started")
        if self.kind == "process":
            with self._fork_mutex:
                blob = compress_chunked(
                    data, eb, eb_mode, config=config, chunks=chunks,
                    executor=self.kind, workers=self.workers,
                    pool=self.pool, checksum=True,
                )
        else:
            blob = compress_chunked(
                data, eb, eb_mode, config=config, chunks=chunks,
                executor=self.kind, workers=self.workers,
                pool=self.pool, checksum=True,
            )
        _check_deadline(deadline, "compression finished")
        return blob

    # -- lifecycle --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "executor": self.kind,
            "workers": self.workers,
            "cache": self.cache.stats(),
        }

    def close(self) -> None:
        self._dispatch.shutdown(wait=True)
        if self.pool is not None:
            self.pool.close()
