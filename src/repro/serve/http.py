"""Minimal HTTP/1.1 request/response layer over asyncio streams.

The serve layer deliberately speaks a handwritten subset of HTTP/1.1
instead of pulling in a framework: the repo's no-new-hard-dependency
rule aside, the subset a compression service needs is tiny — request
line, headers, ``Content-Length`` bodies, keep-alive — and owning the
parser means the fault-injection tests can exercise *exact* failure
modes (mid-body disconnects, oversized bodies, garbage request lines)
against the code that will actually see them.

Scope honestly stated: no chunked transfer-encoding, no pipelining
beyond sequential keep-alive, no TLS, bodies are read fully into
memory (bounded by ``max_body``).  Anything outside the subset gets a
clean 4xx via :class:`ProtocolError`, never a hang or a traceback.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: request-line / single-header size bound (a malicious or confused
#: client cannot balloon the loop's memory before Content-Length is
#: even known)
MAX_LINE = 16 * 1024
MAX_HEADERS = 100

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A request the subset cannot (or refuses to) serve; carries the
    status the connection handler should answer with before closing."""

    def __init__(self, status: int, reason: str):
        super().__init__(reason)
        self.status = status


@dataclass
class Request:
    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def require(self, name: str) -> str:
        value = self.header(name)
        if value is None:
            raise ProtocolError(400, f"missing required header {name}")
        return value

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from None


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise ConnectionResetError("peer closed mid-line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(400, "header line too long") from None
    if len(line) > MAX_LINE:
        raise ProtocolError(400, "header line too long")
    return line[:-2]


async def read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Request | None:
    """Parse one request off the stream.

    Returns ``None`` on a clean end-of-stream (keep-alive connection
    closed between requests).  A peer that disappears *mid-request* —
    the disconnect fault the test harness injects — surfaces as
    :class:`ConnectionResetError` so the connection handler can drop
    the connection without logging it as a server error.  Malformed
    requests raise :class:`ProtocolError` with the right 4xx.
    """
    start = await _read_line(reader)
    if not start:
        return None
    parts = start.split(b" ")
    if len(parts) != 3 or not parts[2].startswith(b"HTTP/1."):
        raise ProtocolError(400, "malformed request line")
    method = parts[0].decode("ascii", "replace").upper()
    target = parts[1].decode("ascii", "replace")
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if not line:
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, "malformed header")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(400, "too many headers")
    if "transfer-encoding" in headers:
        raise ProtocolError(400, "transfer-encoding is not supported")
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise ProtocolError(400, "invalid Content-Length") from None
    if length < 0:
        raise ProtocolError(400, "invalid Content-Length")
    if length > max_body:
        raise ProtocolError(
            413, f"body of {length} B exceeds the {max_body} B limit"
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ConnectionResetError("peer closed mid-body") from None
    return Request(method, path, query, headers, body)


def response_bytes(
    status: int,
    body: bytes = b"",
    headers: dict[str, str] | None = None,
    content_type: str = "application/octet-stream",
) -> bytes:
    """Serialize one keep-alive HTTP/1.1 response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    merged = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "keep-alive",
    }
    if headers:
        merged.update(headers)
    lines.extend(f"{k}: {v}" for k, v in merged.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_bytes(
    status: int, payload: dict, headers: dict[str, str] | None = None
) -> bytes:
    return response_bytes(
        status,
        json.dumps(payload, sort_keys=True).encode("utf-8"),
        headers,
        content_type="application/json",
    )


def error_bytes(
    status: int, message: str, headers: dict[str, str] | None = None
) -> bytes:
    return json_bytes(status, {"error": message, "status": status}, headers)
