"""repro: reproduction of STZ (SC'25) — streaming error-bounded lossy compression."""
from repro.util.alloc import tune_allocator  # noqa: F401  (opt-in re-export)

__version__ = "1.1.0"

# Allocator tuning is deliberately NOT applied at import time: it
# mutates process-wide glibc malloc policy (higher steady-state RSS),
# which is not a side effect a library import should have on a host
# application.  Throughput-sensitive entry points — the benchmarks and
# the CLI — call :func:`tune_allocator` themselves; see DESIGN.md §3.
