"""repro: reproduction of STZ (SC'25) — streaming error-bounded lossy compression."""
__version__ = "1.0.0"
