"""repro: reproduction of STZ (SC'25) — streaming error-bounded lossy compression."""
from repro.util.alloc import tune_allocator

__version__ = "1.1.0"

#: large numpy temporaries dominate the hot paths; keep them off the
#: mmap/munmap churn (no-op outside glibc).  See DESIGN.md §3.
tune_allocator()
