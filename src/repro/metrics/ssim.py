"""Structural similarity (Wang et al., 2004), for 2D slices and 3D
volumes.

Uses a uniform (moving-average) window, the common choice for
volumetric scientific data; constants are the standard K1=0.01,
K2=0.03.  The paper reports SSIM next to every rendering (Figures 1, 3,
12, 13); our benchmarks reproduce those numbers directly from the
arrays.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter


def ssim(
    orig: np.ndarray,
    rec: np.ndarray,
    data_range: float | None = None,
    win: int = 7,
) -> float:
    """Mean SSIM over a uniform ``win``-wide window (any ndim >= 1)."""
    a = np.asarray(orig, dtype=np.float64)
    b = np.asarray(rec, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if min(a.shape) < win:
        win = max(3, (min(a.shape) // 2) * 2 - 1)  # shrink for small arrays
    if data_range is None:
        data_range = float(a.max() - a.min())
        if data_range == 0:
            return 1.0 if np.array_equal(a, b) else 0.0

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_a = uniform_filter(a, win)
    mu_b = uniform_filter(b, win)
    mu_aa = uniform_filter(a * a, win)
    mu_bb = uniform_filter(b * b, win)
    mu_ab = uniform_filter(a * b, win)

    var_a = mu_aa - mu_a * mu_a
    var_b = mu_bb - mu_b * mu_b
    cov = mu_ab - mu_a * mu_b

    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    smap = num / den

    # crop the window-radius border (filter edge effects), as
    # skimage-style implementations do
    pad = win // 2
    interior = tuple(
        slice(pad, max(pad + 1, n - pad)) for n in a.shape
    )
    return float(np.mean(smap[interior]))
