"""Point-wise error metrics (PSNR convention of the SZ/ZFP literature:
peak = value range of the original field)."""

from __future__ import annotations

import numpy as np


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return a, b


def mse(orig: np.ndarray, rec: np.ndarray) -> float:
    a, b = _pair(orig, rec)
    return float(np.mean((a - b) ** 2))


def max_abs_error(orig: np.ndarray, rec: np.ndarray) -> float:
    a, b = _pair(orig, rec)
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def psnr(
    orig: np.ndarray, rec: np.ndarray, data_range: float | None = None
) -> float:
    """Peak signal-to-noise ratio in dB; peak = value range of ``orig``
    (the convention of the paper's rate-distortion plots).  Returns
    ``inf`` for exact reconstructions."""
    a, b = _pair(orig, rec)
    if data_range is None:
        data_range = float(a.max() - a.min())
    err = mse(a, b)
    if err == 0:
        return float("inf")
    if data_range <= 0:
        raise ValueError("data_range must be positive")
    return float(20.0 * np.log10(data_range) - 10.0 * np.log10(err))


def nrmse(orig: np.ndarray, rec: np.ndarray) -> float:
    """Root-mean-square error normalized by the value range."""
    a, b = _pair(orig, rec)
    rng = float(a.max() - a.min())
    if rng == 0:
        return 0.0 if mse(a, b) == 0 else float("inf")
    return float(np.sqrt(mse(a, b)) / rng)
