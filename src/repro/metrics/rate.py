"""Rate metrics and rate-distortion curve assembly.

In lossy compression quality and ratio are interchangeable (§2.2 of the
paper), so every quality comparison is made *along the rate axis*:
:func:`rd_curve` sweeps error bounds and records (CR, bitrate, PSNR)
triples, which is exactly how Figures 5 and 11 are built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.metrics.error import max_abs_error, psnr


@dataclass(frozen=True)
class RDPoint:
    """One rate-distortion sample."""

    eb: float  # error bound handed to the compressor
    cr: float  # compression ratio (original bytes / compressed bytes)
    bitrate: float  # compressed bits per value
    psnr: float  # dB
    max_err: float  # measured L-infinity error

    def as_row(self) -> tuple[float, float, float, float, float]:
        return (self.eb, self.cr, self.bitrate, self.psnr, self.max_err)


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    return original_bytes / compressed_bytes


def bitrate(data: np.ndarray, blob: bytes) -> float:
    """Compressed bits per scalar value."""
    return 8.0 * len(blob) / data.size


def rd_curve(
    compress: Callable[[np.ndarray, float], bytes],
    decompress: Callable[[bytes], np.ndarray],
    data: np.ndarray,
    ebs: Sequence[float],
) -> list[RDPoint]:
    """Sweep error bounds and collect rate-distortion points."""
    points = []
    for eb in ebs:
        blob = compress(data, eb)
        rec = decompress(blob)
        points.append(
            RDPoint(
                eb=float(eb),
                cr=compression_ratio(data.nbytes, len(blob)),
                bitrate=bitrate(data, blob),
                psnr=psnr(data, rec),
                max_err=max_abs_error(data, rec),
            )
        )
    return points


def interpolate_psnr_at_cr(points: list[RDPoint], cr: float) -> float:
    """PSNR at a given CR by piecewise-linear interpolation in log-CR —
    used to compare compressors "at the same compression ratio" as the
    paper does in its figures."""
    pts = sorted(points, key=lambda p: p.cr)
    crs = np.array([p.cr for p in pts])
    ps = np.array([p.psnr for p in pts])
    if cr <= crs[0]:
        return float(ps[0])
    if cr >= crs[-1]:
        return float(ps[-1])
    return float(np.interp(np.log(cr), np.log(crs), ps))
