"""Quality and rate metrics used throughout the paper's evaluation:
PSNR and SSIM for distortion (Figures 3, 5, 11-13), compression ratio /
bitrate for rate, plus rate-distortion curve assembly."""

from repro.metrics.error import max_abs_error, mse, nrmse, psnr
from repro.metrics.rate import (
    RDPoint,
    bitrate,
    compression_ratio,
    rd_curve,
)
from repro.metrics.ssim import ssim

__all__ = [
    "psnr",
    "mse",
    "nrmse",
    "max_abs_error",
    "ssim",
    "RDPoint",
    "bitrate",
    "compression_ratio",
    "rd_curve",
]
