"""Shared synthetic-volume fixtures for the test and benchmark trees.

``tests/conftest.py`` and ``benchmarks/conftest.py`` used to each
define their own copies of these fixtures; both now import from here,
so the two trees cannot drift apart (pytest discovers fixtures by name
in whatever conftest namespace they are imported into).  The module
also re-exports :func:`smooth_field` and :func:`max_err`, the helper
pair every test module pulls from its conftest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import smooth_field  # noqa: F401
from repro.metrics.error import max_abs_error as max_err  # noqa: F401


@pytest.fixture
def smooth3d_f32() -> np.ndarray:
    return smooth_field((32, 32, 32), seed=1).astype(np.float32)


@pytest.fixture
def smooth3d_f64() -> np.ndarray:
    return smooth_field((24, 20, 28), seed=2)


@pytest.fixture
def smooth2d_f32() -> np.ndarray:
    return smooth_field((48, 40), seed=3).astype(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def evolving_field(
    nsteps: int,
    shape: tuple[int, ...] = (16, 16, 16),
    dtype=np.float32,
    scale: float = 0.05,
    seed: int = 7,
    step_seed: int = 300,
):
    """Lazily yield a slowly evolving deterministic sequence: each step
    adds a small smooth forcing term to the previous one (the
    delta-friendly shape the streaming tests and benchmarks share)."""
    field = smooth_field(shape, seed=seed).astype(dtype)
    for t in range(nsteps):
        field = field + dtype(scale) * smooth_field(
            shape, seed=step_seed + t
        ).astype(dtype)
        yield field
