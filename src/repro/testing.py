"""Shared synthetic-volume fixtures for the test and benchmark trees.

``tests/conftest.py`` and ``benchmarks/conftest.py`` used to each
define their own copies of these fixtures; both now import from here,
so the two trees cannot drift apart (pytest discovers fixtures by name
in whatever conftest namespace they are imported into).  The module
also re-exports :func:`smooth_field` and :func:`max_err`, the helper
pair every test module pulls from its conftest.

:func:`conformance_field` and :func:`registry_field` are the *cached*
dataset builders shared by the conformance sweep and the
codec-selection tests: each (shape, dtype, variant) pair is generated
once per process instead of once per parametrized test (the sweep
multiplies every field by codecs x bounds), and the arrays are handed
out read-only so no codec under test can corrupt a neighbour's input.

The **fault-injection harness** (:func:`flip_bit` / :func:`flip_byte` /
:func:`truncate_at` / :func:`corrupt_chunk_payload` /
:func:`corrupt_frame_payload` / :class:`WorkerKiller`) drives the
corruption conformance suite (DESIGN.md §9): every injector is
deterministic — same archive + same arguments = same damaged bytes —
so a failing corruption test reproduces exactly.

The **server harness** (:class:`ServerHarness` / :class:`ServeClient`)
runs a real in-process :class:`~repro.serve.server.CompressionServer`
on a background event-loop thread and talks to it over real TCP — the
shared substrate of ``tests/test_serve.py`` and
``benchmarks/bench_serve.py``, so the concurrency tests and the load
generator exercise the same client path.  Fault injection composes:
``fault_prologue`` threads a hook into every decode task (sleeps for
admission/timeout tests, :meth:`WorkerKiller.maybe_die` for
pool-death tests), and :meth:`ServeClient.abort_mid_request` produces
the mid-request disconnect the connection handler must absorb.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import socket
import threading
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.synthetic import smooth_field  # noqa: F401
from repro.metrics.error import max_abs_error as max_err  # noqa: F401

#: value-scale edge variants swept by the conformance and selector
#: suites (NaN-free by construction; non-finite handling has its own
#: dedicated tests)
FIELD_VARIANTS = ("unit", "large", "tiny", "shifted", "constant")


@lru_cache(maxsize=None)
def conformance_field(
    shape: tuple[int, ...],
    dtype_name: str = "float32",
    variant: str = "unit",
    seed: int = 11,
) -> np.ndarray:
    """One cached, read-only test field per (shape, dtype, variant)."""
    dtype = np.dtype(dtype_name)
    if variant == "constant":
        data = np.full(shape, 3.25, dtype=dtype)
    else:
        data = smooth_field(shape, seed=seed).astype(dtype)
        if variant == "large":
            data = data * dtype.type(1e6)
        elif variant == "tiny":
            data = data * dtype.type(1e-6)
        elif variant == "shifted":
            data = data + dtype.type(1000.0)
        elif variant != "unit":
            raise ValueError(f"unknown variant {variant!r}")
    data.setflags(write=False)
    return data


@lru_cache(maxsize=None)
def registry_field(
    name: str, shape: tuple[int, ...] = (32, 32, 32), seed: int = 0
) -> np.ndarray:
    """One cached, read-only registry dataset per (name, shape, seed)."""
    from repro.datasets.registry import load

    data = load(name, shape=shape, seed=seed)
    data.setflags(write=False)
    return data


@pytest.fixture
def smooth3d_f32() -> np.ndarray:
    return smooth_field((32, 32, 32), seed=1).astype(np.float32)


@pytest.fixture
def smooth3d_f64() -> np.ndarray:
    return smooth_field((24, 20, 28), seed=2)


@pytest.fixture
def smooth2d_f32() -> np.ndarray:
    return smooth_field((48, 40), seed=3).astype(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def evolving_field(
    nsteps: int,
    shape: tuple[int, ...] = (16, 16, 16),
    dtype=np.float32,
    scale: float = 0.05,
    seed: int = 7,
    step_seed: int = 300,
):
    """Lazily yield a slowly evolving deterministic sequence: each step
    adds a small smooth forcing term to the previous one (the
    delta-friendly shape the streaming tests and benchmarks share)."""
    field = smooth_field(shape, seed=seed).astype(dtype)
    for t in range(nsteps):
        field = field + dtype(scale) * smooth_field(
            shape, seed=step_seed + t
        ).astype(dtype)
        yield field


# ---------------------------------------------------------------------------
# fault-injection harness
# ---------------------------------------------------------------------------

def flip_bit(blob: bytes, byte_offset: int, bit: int = 0) -> bytes:
    """Return ``blob`` with one bit flipped (deterministic bit rot)."""
    if not 0 <= byte_offset < len(blob):
        raise ValueError(
            f"byte_offset {byte_offset} outside blob of {len(blob)} B"
        )
    if not 0 <= bit < 8:
        raise ValueError(f"bit must be 0..7, got {bit}")
    damaged = bytearray(blob)
    damaged[byte_offset] ^= 1 << bit
    return bytes(damaged)


def flip_byte(blob: bytes, byte_offset: int, xor: int = 0xFF) -> bytes:
    """Return ``blob`` with one byte XORed (``xor`` must not be 0 —
    that would be a no-op masquerading as an injected fault)."""
    if not 0 <= byte_offset < len(blob):
        raise ValueError(
            f"byte_offset {byte_offset} outside blob of {len(blob)} B"
        )
    if not 1 <= xor <= 0xFF:
        raise ValueError(f"xor must be 1..255, got {xor}")
    damaged = bytearray(blob)
    damaged[byte_offset] ^= xor
    return bytes(damaged)


def truncate_at(blob: bytes, offset: int) -> bytes:
    """Return the first ``offset`` bytes of ``blob`` (a crash before
    the remaining bytes reached disk)."""
    if not 0 <= offset <= len(blob):
        raise ValueError(
            f"offset {offset} outside blob of {len(blob)} B"
        )
    return blob[:offset]


def corrupt_chunk_payload(
    blob: bytes, index: int, byte: int = 0, xor: int = 0xFF
) -> bytes:
    """Flip one payload byte of chunk ``index`` of a sharded archive."""
    from repro.core.stream import ShardedReader

    entry = ShardedReader(blob).chunk(index)
    if not 0 <= byte < entry.length:
        raise ValueError(
            f"byte {byte} outside chunk {index} payload of "
            f"{entry.length} B"
        )
    return flip_byte(blob, entry.offset + byte, xor)


def corrupt_frame_payload(
    blob: bytes, index: int, byte: int = 0, xor: int = 0xFF
) -> bytes:
    """Flip one payload byte of frame ``index`` of a multi-frame
    archive."""
    from repro.core.stream import MultiFrameReader

    info = MultiFrameReader(blob).frame(index)
    if not 0 <= byte < info.length:
        raise ValueError(
            f"byte {byte} outside frame {index} payload of "
            f"{info.length} B"
        )
    return flip_byte(blob, info.offset + byte, xor)


class WorkerKiller:
    """One-shot SIGKILL for exactly one pool worker.

    The claim is a file created with ``O_CREAT | O_EXCL`` — an atomic
    filesystem token that exactly one process can win, which makes the
    injector safe under any executor (fork pool, thread pool, serial)
    and idempotent across retries: the retried item finds the token
    taken and runs normally.  Usage::

        killer = WorkerKiller(tmp_path)
        def fn(state, item):
            killer.maybe_die()      # first worker to arrive dies
            return real_work(item)

    The parent observes the casualty as ``BrokenProcessPool``; with
    ``execute_map(..., retry=1)`` the item is re-run serially and the
    map heals (DESIGN.md §9's executor retry rule).
    """

    def __init__(self, directory: str | os.PathLike, name: str = "kill-token"):
        self.token = Path(directory) / name
        # the constructing process (the test) is never a valid target —
        # under the serial/thread executors maybe_die() must be a no-op
        # or the injector would kill the test run itself
        self._parent = os.getpid()

    def armed(self) -> bool:
        """Whether the kill has not happened yet."""
        return not self.token.exists()

    def maybe_die(self) -> None:
        """SIGKILL the calling *worker* process if it wins the claim
        (no-op in the constructing process and for every later
        caller)."""
        if os.getpid() == self._parent:
            return
        try:
            fd = os.open(self.token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# serve-layer harness (shared by tests/test_serve.py and bench_serve.py)
# ---------------------------------------------------------------------------

@dataclass
class ServeResponse:
    """One HTTP reply, fully drained (keep-alive safe)."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    def array(self) -> np.ndarray:
        """Decode an ``X-Shape``/``X-Dtype`` raw-array response."""
        shape = tuple(int(s) for s in self.headers["x-shape"].split(","))
        dtype = np.dtype(self.headers["x-dtype"])
        return np.frombuffer(self.body, dtype=dtype).reshape(shape)


class ServeClient:
    """Blocking keep-alive client for one tenant.

    Deliberately synchronous (``http.client`` over one reused TCP
    connection): the concurrency tests get real parallelism by running
    many clients on threads, and the closed-loop bench wants
    one-request-at-a-time latency per simulated tenant anyway.  Not
    thread-safe — one client per thread, like one tenant per terminal.
    """

    def __init__(
        self, host: str, port: int, tenant: str, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> ServeResponse:
        merged = {"X-Tenant": self.tenant}
        if headers:
            merged.update(headers)
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=merged)
            resp = conn.getresponse()
            payload = resp.read()
        except (http.client.HTTPException, OSError):
            # server closed the connection (e.g. after a framing 4xx):
            # reconnect once and retry — keep-alive is an optimization,
            # not part of the test contract
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=merged)
            resp = conn.getresponse()
            payload = resp.read()
        return ServeResponse(
            resp.status,
            {k.lower(): v for k, v in resp.getheaders()},
            payload,
        )

    # -- endpoint conveniences -------------------------------------------

    @staticmethod
    def _array_headers(arr: np.ndarray) -> dict[str, str]:
        return {
            "X-Shape": ",".join(map(str, arr.shape)),
            "X-Dtype": str(arr.dtype),
        }

    def compress(
        self,
        data: np.ndarray,
        eb: float,
        mode: str = "abs",
        chunks: "int | tuple[int, ...] | None" = None,
        codec: str | None = None,
    ) -> ServeResponse:
        headers = self._array_headers(data)
        headers["X-EB"] = repr(float(eb))
        headers["X-EB-Mode"] = mode
        if chunks is not None:
            spec = (
                str(chunks)
                if isinstance(chunks, int)
                else ",".join(map(str, chunks))
            )
            headers["X-Chunks"] = spec
        if codec is not None:
            headers["X-Codec"] = codec
        return self.request(
            "POST", "/v1/compress",
            np.ascontiguousarray(data).tobytes(), headers,
        )

    def upload(self, blob: bytes) -> ServeResponse:
        return self.request("POST", "/v1/archives", blob)

    def decompress(self, digest: str) -> ServeResponse:
        return self.request("POST", f"/v1/decompress?digest={digest}")

    def roi(self, digest: str, box: str) -> ServeResponse:
        return self.request("GET", f"/v1/roi?digest={digest}&box={box}")

    def stream_open(
        self,
        eb: float,
        shape: tuple[int, ...],
        dtype: str,
        mode: str = "abs",
        keyframe_interval: int | None = None,
    ) -> ServeResponse:
        headers = {
            "X-EB": repr(float(eb)),
            "X-EB-Mode": mode,
            "X-Shape": ",".join(map(str, shape)),
            "X-Dtype": dtype,
        }
        if keyframe_interval is not None:
            headers["X-Keyframe-Interval"] = str(keyframe_interval)
        return self.request("POST", "/v1/stream/open", b"", headers)

    def stream_append(self, step: np.ndarray) -> ServeResponse:
        return self.request(
            "POST", "/v1/stream/append",
            np.ascontiguousarray(step).tobytes(),
        )

    def stream_close(self) -> ServeResponse:
        return self.request("POST", "/v1/stream/close")

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats").json()

    def abort_mid_request(self, claimed_body: int = 1 << 20) -> None:
        """The mid-request disconnect fault: open a raw socket, send a
        request head claiming ``claimed_body`` bytes, ship only a
        fragment, and vanish.  The server must absorb this as a
        disconnect (counted, never answered, never a 5xx in the log)
        and keep serving everyone else."""
        head = (
            f"POST /v1/compress HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"X-Tenant: {self.tenant}\r\n"
            f"Content-Length: {claimed_body}\r\n\r\n"
        ).encode("ascii")
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(head + b"\x00" * min(64, claimed_body))
            # hard close: RST-ish abandonment, not a polite shutdown


class ServerHarness:
    """A real :class:`~repro.serve.server.CompressionServer` on a
    background event-loop thread, reachable over TCP on an ephemeral
    port.  Usage::

        with ServerHarness(workers=2, cache_bytes=1 << 20) as h:
            client = h.client("tenant-a")
            r = client.compress(data, eb=1e-3, chunks=16)

    ``fault_prologue`` (a callable invoked inside every decode task)
    is the injection seam shared with :class:`WorkerKiller` — pass
    ``killer.maybe_die`` wrapped to ignore the index, or a sleep to
    congest the admission gate.  Keyword overrides go straight into
    :class:`~repro.serve.server.ServeConfig` (``port`` defaults to 0 =
    ephemeral).
    """

    def __init__(self, fault_prologue=None, **config_overrides):
        from repro.serve import CompressionServer, ServeConfig, ServeEngine

        self.config = ServeConfig(**config_overrides)
        self.engine = ServeEngine(
            executor=self.config.executor,
            workers=self.config.workers,
            cache_bytes=self.config.cache_bytes,
            dispatchers=self.config.max_inflight + 2,
            fault_prologue=fault_prologue,
        )
        self.server = CompressionServer(self.config, engine=self.engine)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._clients: list[ServeClient] = []
        self.port: int | None = None

    def start(self) -> "ServerHarness":
        ready = threading.Event()
        startup: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                startup.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.close())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="stz-serve-harness", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("serve harness failed to start in 30 s")
        if startup:
            raise startup[0]
        self.port = self.server.port
        return self

    def client(self, tenant: str, timeout: float = 60.0) -> ServeClient:
        assert self.port is not None, "harness not started"
        client = ServeClient(
            self.config.host, self.port, tenant, timeout=timeout
        )
        self._clients.append(client)
        return client

    def stop(self) -> None:
        for client in self._clients:
            client.close()
        self._clients.clear()
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop = None
            self._thread = None
        self.engine.close()

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
