"""Shared synthetic-volume fixtures for the test and benchmark trees.

``tests/conftest.py`` and ``benchmarks/conftest.py`` used to each
define their own copies of these fixtures; both now import from here,
so the two trees cannot drift apart (pytest discovers fixtures by name
in whatever conftest namespace they are imported into).  The module
also re-exports :func:`smooth_field` and :func:`max_err`, the helper
pair every test module pulls from its conftest.

:func:`conformance_field` and :func:`registry_field` are the *cached*
dataset builders shared by the conformance sweep and the
codec-selection tests: each (shape, dtype, variant) pair is generated
once per process instead of once per parametrized test (the sweep
multiplies every field by codecs x bounds), and the arrays are handed
out read-only so no codec under test can corrupt a neighbour's input.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.datasets.synthetic import smooth_field  # noqa: F401
from repro.metrics.error import max_abs_error as max_err  # noqa: F401

#: value-scale edge variants swept by the conformance and selector
#: suites (NaN-free by construction; non-finite handling has its own
#: dedicated tests)
FIELD_VARIANTS = ("unit", "large", "tiny", "shifted", "constant")


@lru_cache(maxsize=None)
def conformance_field(
    shape: tuple[int, ...],
    dtype_name: str = "float32",
    variant: str = "unit",
    seed: int = 11,
) -> np.ndarray:
    """One cached, read-only test field per (shape, dtype, variant)."""
    dtype = np.dtype(dtype_name)
    if variant == "constant":
        data = np.full(shape, 3.25, dtype=dtype)
    else:
        data = smooth_field(shape, seed=seed).astype(dtype)
        if variant == "large":
            data = data * dtype.type(1e6)
        elif variant == "tiny":
            data = data * dtype.type(1e-6)
        elif variant == "shifted":
            data = data + dtype.type(1000.0)
        elif variant != "unit":
            raise ValueError(f"unknown variant {variant!r}")
    data.setflags(write=False)
    return data


@lru_cache(maxsize=None)
def registry_field(
    name: str, shape: tuple[int, ...] = (32, 32, 32), seed: int = 0
) -> np.ndarray:
    """One cached, read-only registry dataset per (name, shape, seed)."""
    from repro.datasets.registry import load

    data = load(name, shape=shape, seed=seed)
    data.setflags(write=False)
    return data


@pytest.fixture
def smooth3d_f32() -> np.ndarray:
    return smooth_field((32, 32, 32), seed=1).astype(np.float32)


@pytest.fixture
def smooth3d_f64() -> np.ndarray:
    return smooth_field((24, 20, 28), seed=2)


@pytest.fixture
def smooth2d_f32() -> np.ndarray:
    return smooth_field((48, 40), seed=3).astype(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def evolving_field(
    nsteps: int,
    shape: tuple[int, ...] = (16, 16, 16),
    dtype=np.float32,
    scale: float = 0.05,
    seed: int = 7,
    step_seed: int = 300,
):
    """Lazily yield a slowly evolving deterministic sequence: each step
    adds a small smooth forcing term to the previous one (the
    delta-friendly shape the streaming tests and benchmarks share)."""
    field = smooth_field(shape, seed=seed).astype(dtype)
    for t in range(nsteps):
        field = field + dtype(scale) * smooth_field(
            shape, seed=step_seed + t
        ).astype(dtype)
        yield field
