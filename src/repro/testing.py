"""Shared synthetic-volume fixtures for the test and benchmark trees.

``tests/conftest.py`` and ``benchmarks/conftest.py`` used to each
define their own copies of these fixtures; both now import from here,
so the two trees cannot drift apart (pytest discovers fixtures by name
in whatever conftest namespace they are imported into).  The module
also re-exports :func:`smooth_field` and :func:`max_err`, the helper
pair every test module pulls from its conftest.

:func:`conformance_field` and :func:`registry_field` are the *cached*
dataset builders shared by the conformance sweep and the
codec-selection tests: each (shape, dtype, variant) pair is generated
once per process instead of once per parametrized test (the sweep
multiplies every field by codecs x bounds), and the arrays are handed
out read-only so no codec under test can corrupt a neighbour's input.

The **fault-injection harness** (:func:`flip_bit` / :func:`flip_byte` /
:func:`truncate_at` / :func:`corrupt_chunk_payload` /
:func:`corrupt_frame_payload` / :class:`WorkerKiller`) drives the
corruption conformance suite (DESIGN.md §9): every injector is
deterministic — same archive + same arguments = same damaged bytes —
so a failing corruption test reproduces exactly.
"""

from __future__ import annotations

import os
import signal
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.synthetic import smooth_field  # noqa: F401
from repro.metrics.error import max_abs_error as max_err  # noqa: F401

#: value-scale edge variants swept by the conformance and selector
#: suites (NaN-free by construction; non-finite handling has its own
#: dedicated tests)
FIELD_VARIANTS = ("unit", "large", "tiny", "shifted", "constant")


@lru_cache(maxsize=None)
def conformance_field(
    shape: tuple[int, ...],
    dtype_name: str = "float32",
    variant: str = "unit",
    seed: int = 11,
) -> np.ndarray:
    """One cached, read-only test field per (shape, dtype, variant)."""
    dtype = np.dtype(dtype_name)
    if variant == "constant":
        data = np.full(shape, 3.25, dtype=dtype)
    else:
        data = smooth_field(shape, seed=seed).astype(dtype)
        if variant == "large":
            data = data * dtype.type(1e6)
        elif variant == "tiny":
            data = data * dtype.type(1e-6)
        elif variant == "shifted":
            data = data + dtype.type(1000.0)
        elif variant != "unit":
            raise ValueError(f"unknown variant {variant!r}")
    data.setflags(write=False)
    return data


@lru_cache(maxsize=None)
def registry_field(
    name: str, shape: tuple[int, ...] = (32, 32, 32), seed: int = 0
) -> np.ndarray:
    """One cached, read-only registry dataset per (name, shape, seed)."""
    from repro.datasets.registry import load

    data = load(name, shape=shape, seed=seed)
    data.setflags(write=False)
    return data


@pytest.fixture
def smooth3d_f32() -> np.ndarray:
    return smooth_field((32, 32, 32), seed=1).astype(np.float32)


@pytest.fixture
def smooth3d_f64() -> np.ndarray:
    return smooth_field((24, 20, 28), seed=2)


@pytest.fixture
def smooth2d_f32() -> np.ndarray:
    return smooth_field((48, 40), seed=3).astype(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def evolving_field(
    nsteps: int,
    shape: tuple[int, ...] = (16, 16, 16),
    dtype=np.float32,
    scale: float = 0.05,
    seed: int = 7,
    step_seed: int = 300,
):
    """Lazily yield a slowly evolving deterministic sequence: each step
    adds a small smooth forcing term to the previous one (the
    delta-friendly shape the streaming tests and benchmarks share)."""
    field = smooth_field(shape, seed=seed).astype(dtype)
    for t in range(nsteps):
        field = field + dtype(scale) * smooth_field(
            shape, seed=step_seed + t
        ).astype(dtype)
        yield field


# ---------------------------------------------------------------------------
# fault-injection harness
# ---------------------------------------------------------------------------

def flip_bit(blob: bytes, byte_offset: int, bit: int = 0) -> bytes:
    """Return ``blob`` with one bit flipped (deterministic bit rot)."""
    if not 0 <= byte_offset < len(blob):
        raise ValueError(
            f"byte_offset {byte_offset} outside blob of {len(blob)} B"
        )
    if not 0 <= bit < 8:
        raise ValueError(f"bit must be 0..7, got {bit}")
    damaged = bytearray(blob)
    damaged[byte_offset] ^= 1 << bit
    return bytes(damaged)


def flip_byte(blob: bytes, byte_offset: int, xor: int = 0xFF) -> bytes:
    """Return ``blob`` with one byte XORed (``xor`` must not be 0 —
    that would be a no-op masquerading as an injected fault)."""
    if not 0 <= byte_offset < len(blob):
        raise ValueError(
            f"byte_offset {byte_offset} outside blob of {len(blob)} B"
        )
    if not 1 <= xor <= 0xFF:
        raise ValueError(f"xor must be 1..255, got {xor}")
    damaged = bytearray(blob)
    damaged[byte_offset] ^= xor
    return bytes(damaged)


def truncate_at(blob: bytes, offset: int) -> bytes:
    """Return the first ``offset`` bytes of ``blob`` (a crash before
    the remaining bytes reached disk)."""
    if not 0 <= offset <= len(blob):
        raise ValueError(
            f"offset {offset} outside blob of {len(blob)} B"
        )
    return blob[:offset]


def corrupt_chunk_payload(
    blob: bytes, index: int, byte: int = 0, xor: int = 0xFF
) -> bytes:
    """Flip one payload byte of chunk ``index`` of a sharded archive."""
    from repro.core.stream import ShardedReader

    entry = ShardedReader(blob).chunk(index)
    if not 0 <= byte < entry.length:
        raise ValueError(
            f"byte {byte} outside chunk {index} payload of "
            f"{entry.length} B"
        )
    return flip_byte(blob, entry.offset + byte, xor)


def corrupt_frame_payload(
    blob: bytes, index: int, byte: int = 0, xor: int = 0xFF
) -> bytes:
    """Flip one payload byte of frame ``index`` of a multi-frame
    archive."""
    from repro.core.stream import MultiFrameReader

    info = MultiFrameReader(blob).frame(index)
    if not 0 <= byte < info.length:
        raise ValueError(
            f"byte {byte} outside frame {index} payload of "
            f"{info.length} B"
        )
    return flip_byte(blob, info.offset + byte, xor)


class WorkerKiller:
    """One-shot SIGKILL for exactly one pool worker.

    The claim is a file created with ``O_CREAT | O_EXCL`` — an atomic
    filesystem token that exactly one process can win, which makes the
    injector safe under any executor (fork pool, thread pool, serial)
    and idempotent across retries: the retried item finds the token
    taken and runs normally.  Usage::

        killer = WorkerKiller(tmp_path)
        def fn(state, item):
            killer.maybe_die()      # first worker to arrive dies
            return real_work(item)

    The parent observes the casualty as ``BrokenProcessPool``; with
    ``execute_map(..., retry=1)`` the item is re-run serially and the
    map heals (DESIGN.md §9's executor retry rule).
    """

    def __init__(self, directory: str | os.PathLike, name: str = "kill-token"):
        self.token = Path(directory) / name
        # the constructing process (the test) is never a valid target —
        # under the serial/thread executors maybe_die() must be a no-op
        # or the injector would kill the test run itself
        self._parent = os.getpid()

    def armed(self) -> bool:
        """Whether the kill has not happened yet."""
        return not self.token.exists()

    def maybe_die(self) -> None:
        """SIGKILL the calling *worker* process if it wins the claim
        (no-op in the constructing process and for every later
        caller)."""
        if os.getpid() == self._parent:
            return
        try:
            fd = os.open(self.token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)
