"""Thread-parallel execution of independent sub-block tasks.

The paper's "OMP mode" (Table 3).  STZ's hierarchy makes every
(level, parity-offset) sub-block task independent once the coarser
lattice is reconstructed, so parallelism is a plain map.  We use threads
rather than processes: the heavy kernels (interpolation arithmetic,
quantization, Huffman bit manipulation) are numpy C loops that release
the GIL, and threads avoid pickling multi-MB arrays.

DESIGN.md §3 documents the substitution: absolute speedups are below a
C++ OpenMP build, but the *structural* contrast the paper reports — STZ
parallelizes without a compression-ratio penalty while SZ3's OMP mode
must domain-split and lose CR — is reproduced.  In the batched encode
pipeline (DESIGN.md §2) threads cover the prediction and zlib/assembly
stages; the fused quantize/Huffman stages are single vectorized passes.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

DEFAULT_THREADS = 8


def effective_threads(threads: int | None) -> int:
    """Resolve a thread-count request (None/0/1 mean serial)."""
    if threads is None or threads <= 1:
        return 1
    return min(threads, 4 * (os.cpu_count() or 1))


def parallel_capacity() -> int:
    """CPUs that can actually run numpy kernels concurrently.

    On a single-core host a thread pool is pure overhead (the kernels
    are CPU-bound even though they release the GIL), so callers use
    this to fall back to their serial path — the same behavior as an
    OpenMP build with one core.  Thread-count *requests* are still
    honored by :func:`effective_threads` on multi-core hosts.
    """
    return os.cpu_count() or 1


def pmap(
    fn: Callable[[T], R], items: Sequence[T], threads: int | None = None
) -> list[R]:
    """Order-preserving map, serial or thread-pooled."""
    n = effective_threads(threads)
    if n == 1 or len(items) <= 1 or parallel_capacity() < 2:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=n) as pool:
        return list(pool.map(fn, items))


def pstarmap(
    fn: Callable[..., R],
    items: Iterable[tuple],
    threads: int | None = None,
) -> list[R]:
    """`pmap` for argument tuples."""
    items = list(items)
    return pmap(lambda args: fn(*args), items, threads)
