"""Execution of independent sub-block and chunk tasks.

Two layers share this module:

* **Thread facade** (:func:`pmap` / :func:`pstarmap`) — the paper's
  "OMP mode" (Table 3).  STZ's hierarchy makes every (level,
  parity-offset) sub-block task independent once the coarser lattice is
  reconstructed, so parallelism is a plain map.  The heavy kernels
  (interpolation arithmetic, quantization, Huffman bit manipulation)
  are numpy C loops that release the GIL, and threads avoid pickling
  multi-MB arrays.
* **Executor layer** (:func:`resolve_executor` / :func:`execute_map` /
  :func:`fork_map`) — the chunked engine's worker pool.  ``"serial"``
  and ``"thread"`` are what they say; ``"process"`` runs a fork-based
  pool whose workers *inherit* the parent's task payload (the source
  array or archive buffer) through the fork instead of receiving it by
  pickle: only chunk indices cross the pipe inbound, and outputs either
  come back as (small, already compressed) bytes or are written into a
  shared mapping (``multiprocessing.shared_memory`` / a file-backed
  ``np.memmap``) the workers inherited.  Hosts without the ``fork``
  start method fall back to the thread pool — same results, the chunked
  byte stream is deterministic by construction (each chunk's bytes
  depend only on its content and the config, and assembly order is the
  plan order).

DESIGN.md §3 documents the thread-mode substitution: absolute speedups
are below a C++ OpenMP build, but the *structural* contrast the paper
reports — STZ parallelizes without a compression-ratio penalty while
SZ3's OMP mode must domain-split and lose CR — is reproduced.  DESIGN.md
§8 documents the chunked executor contract.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

DEFAULT_THREADS = 8

#: executor kinds accepted by the chunked engine / CLI
EXECUTORS = ("serial", "thread", "process")


def effective_workers(workers: int | None) -> int:
    """Resolve a worker/thread-count request (None/0/1 mean serial).

    The single resolution rule shared by the thread facade and the
    process executor: requests are honored up to ``4 * cpu_count`` (an
    oversubscription allowance for I/O-ish stages), never below 1.
    """
    if workers is None or workers <= 1:
        return 1
    return min(workers, 4 * (os.cpu_count() or 1))


def effective_threads(threads: int | None) -> int:
    """Thread facade for :func:`effective_workers` (historic name)."""
    return effective_workers(threads)


def parallel_capacity() -> int:
    """CPUs that can actually run numpy kernels concurrently.

    On a single-core host a thread pool is pure overhead (the kernels
    are CPU-bound even though they release the GIL), so callers use
    this to fall back to their serial path — the same behavior as an
    OpenMP build with one core.  Thread-count *requests* are still
    honored by :func:`effective_threads` on multi-core hosts.
    """
    return os.cpu_count() or 1


def pmap(
    fn: Callable[[T], R], items: Sequence[T], threads: int | None = None
) -> list[R]:
    """Order-preserving map, serial or thread-pooled."""
    n = effective_threads(threads)
    if n == 1 or len(items) <= 1 or parallel_capacity() < 2:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=n) as pool:
        return list(pool.map(fn, items))


def pstarmap(
    fn: Callable[..., R],
    items: Iterable[tuple],
    threads: int | None = None,
) -> list[R]:
    """`pmap` for argument tuples."""
    if not isinstance(items, Sequence):
        # materialize once, only for single-shot iterables; a list/tuple
        # argument is used in place (pmap only indexes and iterates)
        items = list(items)
    return pmap(lambda args: fn(*args), items, threads)


# ---------------------------------------------------------------------------
# chunked executor layer
# ---------------------------------------------------------------------------

def fork_available() -> bool:
    """Whether the no-pickle process executor can run on this host."""
    return "fork" in mp.get_all_start_methods()


def resolve_executor(
    executor: str, workers: int | None
) -> tuple[str, int]:
    """Normalize an (executor, workers) request.

    Returns the effective ``(kind, nworkers)``: unknown kinds are
    rejected, a resolved worker count of 1 degrades any kind to
    ``"serial"``, and ``"process"`` degrades to ``"thread"`` where the
    ``fork`` start method is unavailable (the process path relies on
    fork inheritance to avoid pickling chunk arrays).  Unlike
    :func:`pmap`'s capacity gate, an explicit multi-worker request is
    honored even on a single-core host — the chunked tests exercise
    real pools there, and determinism cannot depend on the fallback.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; known: {EXECUTORS}"
        )
    n = effective_workers(workers)
    if executor == "serial" or n == 1:
        return "serial", 1
    if executor == "process" and not fork_available():
        return "thread", n
    return executor, n


#: payload inherited by fork-pool workers: ``(fn, state)`` set by
#: :func:`fork_map` immediately before the pool forks.  Module-level on
#: purpose — fork inheritance is the whole point (no pickling of the
#: state, which holds the source array / archive buffer / output
#: mapping).  One pool at a time: ``_FORK_LOCK`` makes the
#: publish→fork→clear sequence atomic, so a second concurrent caller
#: (or a nested call — a forked child inherits the lock held) degrades
#: to the inline serial loop instead of hijacking the first pool's
#: published ``(fn, state)``.
_FORK_STATE: tuple | None = None
_FORK_LOCK = threading.Lock()


def _fork_invoke(item):
    fn, state = _FORK_STATE
    return fn(state, item)


class _ItemFailure:
    """Per-item failure marker inside an outcome list — keeps one bad
    item from discarding the results of every other item (the raw
    material of :func:`execute_map`'s retry pass)."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


def _thread_outcomes(
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    workers: int,
) -> list:
    def run(x):
        try:
            return fn(state, x)
        except Exception as exc:  # noqa: BLE001 — outcome, re-raised later
            return _ItemFailure(exc)

    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(run, items))


def _fork_outcomes(
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    workers: int,
) -> list | None:
    """Per-item outcomes over a fresh fork pool, or ``None`` when the
    pool cannot run here (fork unavailable, or another pool is mid
    publish→fork→clear) and the caller should run inline.

    Uses one future per item instead of ``Pool.map`` so failures are
    *identifiable*: a child that raises fails only its own future, and
    a child that dies outright (OOM kill, segfault, SIGKILL) surfaces
    as ``BrokenProcessPool`` on the futures still in flight rather than
    hanging the map — that is what lets :func:`execute_map` retry the
    affected items serially in the parent.
    """
    global _FORK_STATE
    if not fork_available():
        return None
    if not _FORK_LOCK.acquire(blocking=False):
        # another thread is mid publish→fork→clear (or this is a nested
        # call inside a forked worker, which inherited the lock held):
        # run inline rather than overwrite its published state
        return None
    try:
        _FORK_STATE = (fn, state)
        try:
            ctx = mp.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=min(workers, len(items)), mp_context=ctx
            ) as pool:
                futures = [pool.submit(_fork_invoke, x) for x in items]
                outcomes: list = []
                for fut in futures:
                    try:
                        outcomes.append(fut.result())
                    except Exception as exc:  # noqa: BLE001 — see above
                        outcomes.append(_ItemFailure(exc))
                return outcomes
        finally:
            _FORK_STATE = None
    finally:
        _FORK_LOCK.release()


def _settle(
    outcomes: list,
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    retry: int,
) -> list[R]:
    """Resolve ``_ItemFailure`` outcomes: re-run each failed item
    serially in the calling process up to ``retry`` times, then raise
    the (last) failure.  Serial re-execution is the degradation path
    for *worker* casualties — a ``BrokenProcessPool`` wipes every
    in-flight future, but the items themselves are typically fine."""
    for i, outcome in enumerate(outcomes):
        if not isinstance(outcome, _ItemFailure):
            continue
        exc = outcome.exc
        for _ in range(max(0, retry)):
            try:
                outcomes[i] = fn(state, items[i])
                break
            except Exception as retry_exc:  # noqa: BLE001 — raised below
                exc = retry_exc
        else:
            raise exc
    return outcomes


def fork_map(
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    workers: int,
) -> list[R]:
    """Order-preserving ``fn(state, item)`` map over a fork pool.

    ``state`` (and ``fn``) reach the workers through fork inheritance:
    they are published in :data:`_FORK_STATE` before the pool is
    created, so the only bytes pickled per task are ``item`` (a chunk
    index) and the return value.  Callers that need zero-copy *output*
    put a shared mapping (``SharedMemory`` buffer or file-backed
    memmap) into ``state`` and have ``fn`` write into it — shared
    mappings, unlike copy-on-write anonymous memory, propagate child
    writes back to the parent.

    Falls back to a serial loop when ``workers`` resolves to 1, fork
    is unavailable (:func:`resolve_executor` normally routes those
    cases away first), or another fork pool is already in flight —
    concurrent or nested pools would race on :data:`_FORK_STATE`.
    A child exception fails the whole map (first failed item in item
    order, like the serial loop); callers that want degradation go
    through :func:`execute_map` with ``retry``.
    """
    if workers <= 1 or len(items) <= 1:
        return [fn(state, x) for x in items]
    outcomes = _fork_outcomes(fn, items, state, workers)
    if outcomes is None:
        return [fn(state, x) for x in items]
    return _settle(outcomes, fn, items, state, retry=0)


def execute_map(
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    executor: str = "serial",
    workers: int | None = None,
    retry: int = 0,
) -> list[R]:
    """Run ``fn(state, item)`` for every item under the chosen executor.

    The one entry point the chunked engine uses for both directions:
    ``serial`` is the reference loop, ``thread`` shares ``state`` by
    virtue of threads, ``process`` goes through the fork pool.
    Results are returned in item order for every executor — the
    byte-determinism contract of the v3 container.

    ``retry`` bounds a serial re-execution pass over items whose pooled
    run failed: a crashed worker (``BrokenProcessPool`` — OOM killer,
    segfault) fails every in-flight future, but the items are usually
    healthy, so the chunked engine passes ``retry=1`` and loses nothing
    but time.  Deterministic failures (a genuinely corrupt chunk) fail
    again in the parent and surface with their original, contextual
    exception — retries never mask an error, they only strip away pool
    mechanics.  The serial path never retries: it would deterministically
    re-raise.
    """
    kind, n = resolve_executor(executor, workers)
    if kind == "serial" or len(items) <= 1:
        return [fn(state, x) for x in items]
    if kind == "thread":
        outcomes = _thread_outcomes(fn, items, state, n)
    else:
        outcomes = _fork_outcomes(fn, items, state, n)
        if outcomes is None:
            return [fn(state, x) for x in items]
    return _settle(outcomes, fn, items, state, retry)
