"""Execution of independent sub-block and chunk tasks.

Two layers share this module:

* **Thread facade** (:func:`pmap` / :func:`pstarmap`) — the paper's
  "OMP mode" (Table 3).  STZ's hierarchy makes every (level,
  parity-offset) sub-block task independent once the coarser lattice is
  reconstructed, so parallelism is a plain map.  The heavy kernels
  (interpolation arithmetic, quantization, Huffman bit manipulation)
  are numpy C loops that release the GIL, and threads avoid pickling
  multi-MB arrays.
* **Executor layer** (:func:`resolve_executor` / :func:`execute_map` /
  :func:`fork_map` / :class:`WorkerPool`) — the chunked engine's worker
  pool.  ``"serial"`` and ``"thread"`` are what they say; ``"process"``
  runs a fork-based pool whose workers *inherit* the parent's task
  payload (the source array or archive buffer) through the fork instead
  of receiving it by pickle: chunk indices cross the pipe inbound in
  contiguous per-worker slices (one task and one result pickle per
  worker, not per chunk), and outputs either come back as (small,
  already compressed) bytes or are written into a shared mapping
  (``multiprocessing.shared_memory`` / a file-backed ``np.memmap``) the
  workers inherited.  A :class:`WorkerPool` handle keeps workers warm
  across maps; :func:`engine_executor` adds the capacity gate the
  chunked entry points use to degrade to the serial walk on truly
  1-core hosts.  Hosts without the ``fork`` start method fall back to
  the thread pool — same results, the chunked byte stream is
  deterministic by construction (each chunk's bytes depend only on its
  content and the config, and assembly order is the plan order).

DESIGN.md §3 documents the thread-mode substitution: absolute speedups
are below a C++ OpenMP build, but the *structural* contrast the paper
reports — STZ parallelizes without a compression-ratio penalty while
SZ3's OMP mode must domain-split and lose CR — is reproduced.  DESIGN.md
§8 documents the chunked executor contract.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

DEFAULT_THREADS = 8

#: executor kinds accepted by the chunked engine / CLI
EXECUTORS = ("serial", "thread", "process")


def _usable_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the *machine*, not the process: under a
    container quota or a ``taskset`` affinity mask the scheduler
    confines the process to a subset, and sizing pools (or arming the
    chunked bench's speedup gate) off the machine count claims
    parallelism that does not exist.  Resolution order:
    ``os.process_cpu_count`` (3.13+), the affinity mask, the machine
    count.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        n = counter()
        if n:
            return n
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            n = len(getaffinity(0))
            if n:
                return n
        except OSError:
            pass
    return os.cpu_count() or 1


def effective_workers(workers: int | None) -> int:
    """Resolve a worker/thread-count request (None/0/1 mean serial).

    The single resolution rule shared by the thread facade and the
    process executor: requests are honored up to ``4 *`` the usable-CPU
    count (an oversubscription allowance for I/O-ish stages), never
    below 1.
    """
    if workers is None or workers <= 1:
        return 1
    return min(workers, 4 * _usable_cpus())


def effective_threads(threads: int | None) -> int:
    """Thread facade for :func:`effective_workers` (historic name)."""
    return effective_workers(threads)


def parallel_capacity() -> int:
    """CPUs that can actually run numpy kernels concurrently.

    On a single-core host a thread pool is pure overhead (the kernels
    are CPU-bound even though they release the GIL), so callers use
    this to fall back to their serial path — the same behavior as an
    OpenMP build with one core.  Thread-count *requests* are still
    honored by :func:`effective_threads` on multi-core hosts.
    Affinity-aware (:func:`_usable_cpus`): a 48-core machine with a
    1-CPU container quota has capacity 1, not 48.
    """
    return _usable_cpus()


def force_pools() -> bool:
    """Whether ``STZ_FORCE_POOLS`` disables the engine capacity gate.

    CI (and the executor test-suite) sets it so real pool mechanics
    are exercised even on 1-core runners, where
    :func:`engine_executor` would otherwise degrade every parallel
    request to the serial walk.
    """
    return os.environ.get("STZ_FORCE_POOLS", "").lower() in (
        "1", "true", "on", "yes"
    )


def engine_executor(executor: str, workers: int | None) -> tuple[str, int]:
    """:func:`resolve_executor` plus the chunked engine's capacity gate.

    On a host whose usable-CPU count is 1, a chunk-level pool cannot
    run anything concurrently: every pooled chunk pays submit/pickle/
    collect overhead for zero parallelism, which is exactly how the
    process executor used to *lose* to the serial walk on 1-core CI
    runners.  The chunked-engine entry points route parallel requests
    through this gate and degrade them to the serial walk when
    capacity is truly 1 — byte-identical output by the determinism
    contract, never slower than serial.  ``STZ_FORCE_POOLS=1``
    disables the gate.  Direct :func:`execute_map` / :func:`fork_map`
    calls are never gated: explicit requests are honored there (the
    fault-injection tests rely on real pools on any host).
    """
    kind, n = resolve_executor(executor, workers)
    if kind != "serial" and _usable_cpus() < 2 and not force_pools():
        return "serial", 1
    return kind, n


def pmap(
    fn: Callable[[T], R], items: Sequence[T], threads: int | None = None
) -> list[R]:
    """Order-preserving map, serial or thread-pooled."""
    n = effective_threads(threads)
    if n == 1 or len(items) <= 1 or parallel_capacity() < 2:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=n) as pool:
        return list(pool.map(fn, items))


def pstarmap(
    fn: Callable[..., R],
    items: Iterable[tuple],
    threads: int | None = None,
) -> list[R]:
    """`pmap` for argument tuples."""
    if not isinstance(items, Sequence):
        # materialize once, only for single-shot iterables; a list/tuple
        # argument is used in place (pmap only indexes and iterates)
        items = list(items)
    return pmap(lambda args: fn(*args), items, threads)


# ---------------------------------------------------------------------------
# chunked executor layer
# ---------------------------------------------------------------------------

def fork_available() -> bool:
    """Whether the no-pickle process executor can run on this host."""
    return "fork" in mp.get_all_start_methods()


def resolve_executor(
    executor: str, workers: int | None
) -> tuple[str, int]:
    """Normalize an (executor, workers) request.

    Returns the effective ``(kind, nworkers)``: unknown kinds are
    rejected, a resolved worker count of 1 degrades any kind to
    ``"serial"``, and ``"process"`` degrades to ``"thread"`` where the
    ``fork`` start method is unavailable (the process path relies on
    fork inheritance to avoid pickling chunk arrays).  Unlike
    :func:`pmap`'s capacity gate, an explicit multi-worker request is
    honored even on a single-core host — the chunked tests exercise
    real pools there, and determinism cannot depend on the fallback.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; known: {EXECUTORS}"
        )
    n = effective_workers(workers)
    if executor == "serial" or n == 1:
        return "serial", 1
    if executor == "process" and not fork_available():
        return "thread", n
    return executor, n


#: payload inherited by fork-pool workers: ``(fn, state)`` set by
#: :func:`fork_map` immediately before the pool forks.  Module-level on
#: purpose — fork inheritance is the whole point (no pickling of the
#: state, which holds the source array / archive buffer / output
#: mapping).  One pool at a time: ``_FORK_LOCK`` makes the
#: publish→fork→clear sequence atomic, so a second concurrent caller
#: (or a nested call — a forked child inherits the lock held) degrades
#: to the inline serial loop instead of hijacking the first pool's
#: published ``(fn, state)``.
_FORK_STATE: tuple | None = None
_FORK_LOCK = threading.Lock()


class _ItemFailure:
    """Per-item failure marker inside an outcome list — keeps one bad
    item from discarding the results of every other item (the raw
    material of :func:`execute_map`'s retry pass)."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


def _fork_invoke_batch(batch):
    """Worker task: run a contiguous slice of items, one result list
    back.  The *slice* is the submit/pickle unit (one task and one
    result pickle per worker instead of per chunk); the *item* stays
    the failure unit via per-item ``_ItemFailure`` markers, so the
    retry contract still identifies exactly which items failed."""
    fn, state = _FORK_STATE
    out = []
    for item in batch:
        try:
            out.append(fn(state, item))
        except Exception as exc:  # noqa: BLE001 — outcome, re-raised later
            out.append(_ItemFailure(exc))
    return out


def _same_payload(old, new) -> bool:
    """Whether a warm fork pool's snapshot of ``old`` can stand in for
    ``new``.  Identical objects always can; tuples/lists recurse;
    arrays and other mutable buffers must be the *same object* — the
    children hold a copy-on-write snapshot from fork time, and the
    caller's side of the warm-pool contract is not to mutate payload
    it passes by identity while the pool is warm.  Everything else
    (frozen configs, plans, floats, paths, ``bytes``) compares by
    equality.
    """
    if old is new:
        return True
    if type(old) is not type(new):
        return False
    if isinstance(old, (tuple, list)):
        return len(old) == len(new) and all(
            _same_payload(a, b) for a, b in zip(old, new)
        )
    if (
        hasattr(old, "__array_interface__")
        or isinstance(old, (bytearray, memoryview))
    ):
        return False  # mutable buffers only match by identity (above)
    try:
        return bool(old == new)
    except Exception:  # noqa: BLE001 — incomparable payloads never match
        return False


def _slice_spans(nitems: int, nslices: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``(start, stop)`` spans — one per worker."""
    nslices = max(1, min(nslices, nitems))
    base, extra = divmod(nitems, nslices)
    spans, start = [], 0
    for i in range(nslices):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def _remaining(deadline: float | None) -> float | None:
    """Seconds left until ``deadline`` (None = unbounded; 0 = expired)."""
    if deadline is None:
        return None
    return max(0.0, deadline - time.monotonic())


def _expired(deadline: float | None) -> bool:
    return deadline is not None and time.monotonic() >= deadline


def _cancel_all(futures) -> None:
    for fut in futures:
        fut.cancel()


def _map_timeout(nleft: int) -> TimeoutError:
    return TimeoutError(
        f"execute_map deadline expired with {nleft} task(s) still "
        "in flight; pending work was cancelled"
    )


def _collect_slices(
    pool_exec: ProcessPoolExecutor,
    items: Sequence,
    spans: list[tuple[int, int]],
    deadline: float | None = None,
) -> tuple[list, bool]:
    """Submit one slice per span and flatten the per-item outcomes.

    A child that *raises* fails only its own items (markers travel
    back inside the slice result); a child that dies outright (OOM
    kill, segfault, SIGKILL) breaks the pool and surfaces as
    ``BrokenProcessPool`` on the in-flight slice futures — every item
    of an affected slice is marked failed, and the second return value
    reports the breakage so a warm pool can be discarded.

    ``deadline`` (``time.monotonic()`` seconds) bounds the wait: on
    expiry the not-yet-started slices are cancelled and the whole map
    raises :class:`TimeoutError` — a timed-out map is the *caller's*
    casualty, never folded into per-item failure markers (the retry
    pass re-running every abandoned item serially would exactly defeat
    the timeout).  The caller is responsible for discarding a warm
    pool whose in-flight slices were abandoned.
    """
    futures = [
        pool_exec.submit(_fork_invoke_batch, list(items[a:b]))
        for a, b in spans
    ]
    outcomes: list = []
    broken = False
    for i, (fut, (a, b)) in enumerate(zip(futures, spans)):
        try:
            outcomes.extend(fut.result(timeout=_remaining(deadline)))
        except Exception as exc:  # noqa: BLE001 — see above
            if isinstance(exc, TimeoutError) and _expired(deadline):
                # the *wait* timed out (not a task raising TimeoutError
                # of its own before the deadline): abandon the map
                _cancel_all(futures[i:])
                raise _map_timeout(len(futures) - i) from None
            outcomes.extend(_ItemFailure(exc) for _ in range(b - a))
            broken = True
    return outcomes, broken


class WorkerPool:
    """Reusable executor handle: keeps workers warm across
    :func:`execute_map` calls.

    Pool startup is pure overhead charged to every map — thread-stack
    or fork+interpreter setup, then teardown — and the chunked bench,
    the streaming subsystem and repeated engine invocations issue many
    maps back to back.  A ``WorkerPool`` amortizes it: the thread pool
    is created once and reused unconditionally; a fork pool is reused
    while the published ``(fn, state)`` pair is the *same objects* as
    at fork time (children snapshot them when they fork, so different
    state must repool), and while warm it keeps :data:`_FORK_STATE`
    published under :data:`_FORK_LOCK` — late-spawned workers of the
    same pool still snapshot the right payload, and concurrent
    :func:`fork_map` callers degrade inline exactly as they would
    against an in-flight one-shot pool.

    Thread-safety: the *thread* side is safe to drive from concurrent
    callers — :meth:`thread_pool` creation is lock-guarded and
    ``ThreadPoolExecutor`` itself is thread-safe — which is what lets
    the serve layer funnel every tenant's CPU work onto one shared
    handle.  The *fork* side is not: :meth:`fork_pool` /
    :meth:`discard_fork` mutate the warm-pool key, so concurrent fork
    maps over one handle must be serialized by the caller (one engine
    invocation or bench loop drives it from one thread; the serve
    layer holds a mutex around process-executor maps).  Always
    :meth:`close` (or use as a context manager) — a warm fork pool
    holds the module fork lock.
    """

    def __init__(self, executor: str, workers: int | None = None):
        self.kind, self.workers = resolve_executor(executor, workers)
        self._threads: ThreadPoolExecutor | None = None
        self._tcreate = threading.Lock()
        self._proc: ProcessPoolExecutor | None = None
        self._key: tuple | None = None
        self._lock_held = False

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def thread_pool(self) -> ThreadPoolExecutor:
        """The warm thread pool (created on first use; creation is
        atomic so concurrent first callers cannot leak a pool)."""
        if self._threads is None:
            with self._tcreate:
                if self._threads is None:
                    self._threads = ThreadPoolExecutor(
                        max_workers=self.workers
                    )
        return self._threads

    def fork_pool(self, fn, state) -> ProcessPoolExecutor | None:
        """The warm fork pool for ``(fn, state)``, or ``None`` when no
        pool can run right now (fork unavailable, or another fork pool
        holds the lock) and the caller should run inline."""
        global _FORK_STATE
        if self._proc is not None:
            if self._key[0] is fn and _same_payload(self._key[1], state):
                return self._proc
            self._release_fork()  # children hold a stale snapshot
        if not fork_available():
            return None
        if not _FORK_LOCK.acquire(blocking=False):
            return None
        _FORK_STATE = (fn, state)
        self._lock_held = True
        try:
            self._proc = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=mp.get_context("fork")
            )
        except BaseException:
            self._release_fork()
            raise
        self._key = (fn, state)
        return self._proc

    def discard_fork(self, wait: bool = True) -> None:
        """Drop a (broken or abandoned) fork pool so the next call
        builds afresh.  ``wait=False`` is the cancellation path: a
        timed-out map must not block behind a worker still chewing an
        orphaned slice — pending slices are cancelled, running ones
        finish detached in children that hold their own fork-time
        snapshot, and the handle (plus the module fork lock) is free
        for the next map immediately."""
        self._release_fork(wait)

    def _release_fork(self, wait: bool = True) -> None:
        global _FORK_STATE
        if self._proc is not None:
            try:
                self._proc.shutdown(wait=wait, cancel_futures=True)
            except Exception:  # noqa: BLE001 — broken pools may misbehave
                pass
            self._proc = None
            self._key = None
        if self._lock_held:
            _FORK_STATE = None
            self._lock_held = False
            _FORK_LOCK.release()

    def close(self) -> None:
        self._release_fork()
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None


def _thread_outcomes(
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    workers: int,
    pool: WorkerPool | None = None,
    deadline: float | None = None,
) -> list:
    """Per-item outcomes over a thread pool (warm via ``pool``, else
    one-shot).  A ``deadline`` expiry cancels every not-yet-started
    item and raises :class:`TimeoutError`; already-running items finish
    in the background and their results are discarded — thread pools
    are not poisoned by abandonment, so a warm pool stays usable."""

    def run(x):
        try:
            return fn(state, x)
        except Exception as exc:  # noqa: BLE001 — outcome, re-raised later
            return _ItemFailure(exc)

    def collect(tpe: ThreadPoolExecutor) -> list:
        futures = [tpe.submit(run, x) for x in items]
        outcomes: list = []
        for i, fut in enumerate(futures):
            try:
                outcomes.append(fut.result(timeout=_remaining(deadline)))
            except TimeoutError:
                if _expired(deadline):
                    _cancel_all(futures[i:])
                    raise _map_timeout(len(futures) - i) from None
                raise
        return outcomes

    if pool is not None:
        return collect(pool.thread_pool())
    tpe = ThreadPoolExecutor(max_workers=min(workers, len(items)))
    try:
        return collect(tpe)
    finally:
        # cancellation path: don't block teardown behind abandoned items
        tpe.shutdown(wait=deadline is None, cancel_futures=True)


def _fork_outcomes(
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    workers: int,
    pool: WorkerPool | None = None,
    deadline: float | None = None,
) -> list | None:
    """Per-item outcomes over the fork pool — warm via ``pool``, else a
    one-shot pool — or ``None`` when no pool can run here (fork
    unavailable, or another pool is in flight) and the caller should
    run inline.

    Items are submitted as contiguous per-worker slices
    (:func:`_slice_spans` / :func:`_collect_slices`): only one task
    pickle and one result pickle per worker instead of per chunk,
    while per-item failure markers keep :func:`execute_map`'s retry
    pass item-granular.

    Drain-or-discard: if the waiting caller is torn away mid-map — a
    ``deadline`` expiry, ``KeyboardInterrupt``, anything — a *warm*
    pool is discarded (without waiting on the orphaned in-flight
    slices) before the exception propagates.  A warm handle must never
    come back from an abandoned map still holding live slices: the
    next map on it would interleave with work the previous caller gave
    up on, and :meth:`WorkerPool.close` would block on it.
    """
    global _FORK_STATE
    spans = _slice_spans(len(items), workers)
    if pool is not None:
        proc = pool.fork_pool(fn, state)
        if proc is None:
            return None
        try:
            outcomes, broken = _collect_slices(proc, items, spans, deadline)
        except BaseException:
            pool.discard_fork(wait=False)
            raise
        if broken:
            pool.discard_fork()
        return outcomes
    if not fork_available():
        return None
    if not _FORK_LOCK.acquire(blocking=False):
        # another thread is mid publish→fork→clear (or this is a nested
        # call inside a forked worker, which inherited the lock held):
        # run inline rather than overwrite its published state
        return None
    try:
        _FORK_STATE = (fn, state)
        try:
            ctx = mp.get_context("fork")
            pool_exec = ProcessPoolExecutor(
                max_workers=min(workers, len(items)), mp_context=ctx
            )
            try:
                outcomes, _ = _collect_slices(
                    pool_exec, items, spans, deadline
                )
            except BaseException:
                # one-shot pool, torn-away caller: cancel what hasn't
                # started and leave the rest to finish detached —
                # waiting here would hang the very caller that timed out
                pool_exec.shutdown(wait=False, cancel_futures=True)
                raise
            pool_exec.shutdown(wait=True)
            return outcomes
        finally:
            _FORK_STATE = None
    finally:
        _FORK_LOCK.release()


def _settle(
    outcomes: list,
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    retry: int,
) -> list[R]:
    """Resolve ``_ItemFailure`` outcomes: re-run each failed item
    serially in the calling process up to ``retry`` times, then raise
    the (last) failure.  Serial re-execution is the degradation path
    for *worker* casualties — a ``BrokenProcessPool`` wipes every
    in-flight future, but the items themselves are typically fine."""
    for i, outcome in enumerate(outcomes):
        if not isinstance(outcome, _ItemFailure):
            continue
        exc = outcome.exc
        for _ in range(max(0, retry)):
            try:
                outcomes[i] = fn(state, items[i])
                break
            except Exception as retry_exc:  # noqa: BLE001 — raised below
                exc = retry_exc
        else:
            raise exc
    return outcomes


def fork_map(
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    workers: int,
) -> list[R]:
    """Order-preserving ``fn(state, item)`` map over a fork pool.

    ``state`` (and ``fn``) reach the workers through fork inheritance:
    they are published in :data:`_FORK_STATE` before the pool is
    created, so the only bytes pickled per task are ``item`` (a chunk
    index) and the return value.  Callers that need zero-copy *output*
    put a shared mapping (``SharedMemory`` buffer or file-backed
    memmap) into ``state`` and have ``fn`` write into it — shared
    mappings, unlike copy-on-write anonymous memory, propagate child
    writes back to the parent.

    Falls back to a serial loop when ``workers`` resolves to 1, fork
    is unavailable (:func:`resolve_executor` normally routes those
    cases away first), or another fork pool is already in flight —
    concurrent or nested pools would race on :data:`_FORK_STATE`.
    A child exception fails the whole map (first failed item in item
    order, like the serial loop); callers that want degradation go
    through :func:`execute_map` with ``retry``.
    """
    if workers <= 1 or len(items) <= 1:
        return [fn(state, x) for x in items]
    outcomes = _fork_outcomes(fn, items, state, workers)
    if outcomes is None:
        return [fn(state, x) for x in items]
    return _settle(outcomes, fn, items, state, retry=0)


def execute_map(
    fn: Callable[[object, T], R],
    items: Sequence[T],
    state: object,
    executor: str = "serial",
    workers: int | None = None,
    retry: int = 0,
    pool: WorkerPool | None = None,
    timeout: float | None = None,
) -> list[R]:
    """Run ``fn(state, item)`` for every item under the chosen executor.

    The one entry point the chunked engine uses for both directions:
    ``serial`` is the reference loop, ``thread`` shares ``state`` by
    virtue of threads, ``process`` goes through the fork pool.
    Results are returned in item order for every executor — the
    byte-determinism contract of the v3 container.

    ``retry`` bounds a serial re-execution pass over items whose pooled
    run failed: a crashed worker (``BrokenProcessPool`` — OOM killer,
    segfault) fails every in-flight future, but the items are usually
    healthy, so the chunked engine passes ``retry=1`` and loses nothing
    but time.  Deterministic failures (a genuinely corrupt chunk) fail
    again in the parent and surface with their original, contextual
    exception — retries never mask an error, they only strip away pool
    mechanics.  The serial path never retries: it would deterministically
    re-raise.

    ``pool`` (a :class:`WorkerPool` of the matching kind) reuses warm
    workers across calls instead of paying pool startup/teardown per
    map; a mismatched or absent handle falls back to a one-shot pool.
    The handle's lifetime belongs to the caller (the chunked engine
    scopes one to an engine invocation; benches to the timing loop).

    ``timeout`` (seconds) bounds the whole map's wall clock.  On
    expiry the map raises :class:`TimeoutError`: not-yet-started work
    is cancelled, in-flight pooled work is abandoned (running thread
    items finish detached and are discarded; a warm fork pool is
    discarded without waiting so its orphaned slices can never leak
    into a later map on the same handle), and the timeout is *never*
    converted into per-item failures — a retry pass serially re-running
    everything the deadline cut off would defeat it.  This is the serve
    layer's request-timeout contract: a cancelled caller leaves every
    pool either drained or discarded, never poisoned.
    """
    kind, n = resolve_executor(executor, workers)
    deadline = None if timeout is None else time.monotonic() + timeout
    if pool is not None and pool.kind != kind:
        pool = None
    if kind == "serial" or len(items) <= 1:
        out = []
        for x in items:
            if _expired(deadline):
                raise _map_timeout(len(items) - len(out))
            out.append(fn(state, x))
        return out
    if kind == "thread":
        outcomes = _thread_outcomes(fn, items, state, n, pool, deadline)
    else:
        outcomes = _fork_outcomes(fn, items, state, n, pool, deadline)
        if outcomes is None:
            out = []
            for x in items:
                if _expired(deadline):
                    raise _map_timeout(len(items) - len(out))
                out.append(fn(state, x))
            return out
    return _settle(outcomes, fn, items, state, retry)
