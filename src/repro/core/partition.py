"""Hierarchical stride partition (paper §3.1-3.2, Figures 4 and 9).

A level-``L`` partition decimates the grid with strides ``2**(L-1), ...,
2, 1``.  Level 1 is the single coarsest sub-block ``A = data[::2**(L-1),
...]``.  Each refinement step from the level-``l-1`` lattice (stride
``2t``) to the level-``l`` lattice (stride ``t``) adds ``2**d - 1``
sub-blocks, one per nonzero parity offset ``eps in {0,1}**d``:
``data[eps*t :: 2*t]`` along each axis.  The union of all sub-blocks
tiles the grid exactly once for any shape (odd sizes produce ragged,
possibly empty sub-blocks, which every function here tolerates).

All helpers operate on *lattice index space*: the level-``l`` lattice of
a grid of shape ``s`` has shape ``ceil(s / 2**(L-l))``.
"""

from __future__ import annotations

import itertools

import numpy as np

Offset = tuple[int, ...]


def nonzero_offsets(ndim: int) -> list[Offset]:
    """The ``2**ndim - 1`` nonzero parity offsets, in binary order.

    Binary order means offset ``(0,...,0,1)`` first; the paper's 3D
    sub-block letters b..h correspond to these in its Figure 7.
    """
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    offs = list(itertools.product((0, 1), repeat=ndim))
    return [o for o in offs if any(o)]


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def lattice_shape(shape: tuple[int, ...], stride: int) -> tuple[int, ...]:
    """Shape of the decimated lattice ``data[::stride, ...]``."""
    return tuple(ceil_div(n, stride) for n in shape)


def subblock_shape(fine_shape: tuple[int, ...], eps: Offset) -> tuple[int, ...]:
    """Shape of the parity-``eps`` sub-block of a lattice of ``fine_shape``.

    Sub-block points are the lattice points with index ``= eps (mod 2)``
    per axis; counts can be zero for size-1 axes with ``eps=1``.
    """
    return tuple(max(0, ceil_div(n - e, 2)) for n, e in zip(fine_shape, eps))


def take_subblock(fine: np.ndarray, eps: Offset) -> np.ndarray:
    """Extract (as a contiguous copy) the parity-``eps`` sub-block."""
    sl = tuple(slice(e, None, 2) for e in eps)
    return np.ascontiguousarray(fine[sl])


def subblock_view_in(data: np.ndarray, eps: Offset, stride: int) -> np.ndarray:
    """View of the parity-``eps`` sub-block of the stride-``stride``
    lattice, taken directly from the original array (no intermediate
    lattice materialization): ``data[eps*stride :: 2*stride, ...]``."""
    sl = tuple(slice(e * stride, None, 2 * stride) for e in eps)
    return data[sl]


def place_subblock(fine: np.ndarray, eps: Offset, values: np.ndarray) -> None:
    """Scatter a sub-block back into its lattice positions."""
    sl = tuple(slice(e, None, 2) for e in eps)
    fine[sl] = values


def interleave(
    coarse: np.ndarray,
    blocks: dict[Offset, np.ndarray],
    fine_shape: tuple[int, ...],
) -> np.ndarray:
    """Rebuild the stride-``t`` lattice from the stride-``2t`` lattice
    plus the ``2**d - 1`` refinement sub-blocks (inverse of partition).

    This is the paper's "reassemble" stage (Table 4's ``L2 rec.`` /
    ``L3 rec.`` columns).
    """
    ndim = coarse.ndim
    out = np.empty(fine_shape, dtype=coarse.dtype)
    zero = (0,) * ndim
    place_subblock(out, zero, coarse)
    for eps in nonzero_offsets(ndim):
        place_subblock(out, eps, blocks[eps])
    return out


def deinterleave(
    fine: np.ndarray,
) -> tuple[np.ndarray, dict[Offset, np.ndarray]]:
    """Split a lattice into its stride-2 coarse lattice and refinement
    sub-blocks (the partition of Figure 4)."""
    ndim = fine.ndim
    zero = (0,) * ndim
    coarse = take_subblock(fine, zero)
    blocks = {eps: take_subblock(fine, eps) for eps in nonzero_offsets(ndim)}
    return coarse, blocks


def level_strides(nlevels: int) -> list[int]:
    """Grid stride of each level's lattice, coarsest first.

    For 3 levels: ``[4, 2, 1]`` — level 1 is the stride-4 lattice (1.6%
    of a 3D grid), level 3 is the full grid.
    """
    if nlevels < 1:
        raise ValueError("nlevels must be >= 1")
    return [2 ** (nlevels - l) for l in range(1, nlevels + 1)]


def level_fraction(ndim: int, nlevels: int) -> float:
    """Fraction of the dataset owned by the coarsest level (the paper's
    12.5% for 2-level 3D, 1.6% for 3-level 3D)."""
    return float(2 ** (-(ndim * (nlevels - 1))))
