"""Hierarchical stride partition (paper §3.1-3.2, Figures 4 and 9).

A level-``L`` partition decimates the grid with strides ``2**(L-1), ...,
2, 1``.  Level 1 is the single coarsest sub-block ``A = data[::2**(L-1),
...]``.  Each refinement step from the level-``l-1`` lattice (stride
``2t``) to the level-``l`` lattice (stride ``t``) adds ``2**d - 1``
sub-blocks, one per nonzero parity offset ``eps in {0,1}**d``:
``data[eps*t :: 2*t]`` along each axis.  The union of all sub-blocks
tiles the grid exactly once for any shape (odd sizes produce ragged,
possibly empty sub-blocks, which every function here tolerates).

All helpers operate on *lattice index space*: the level-``l`` lattice of
a grid of shape ``s`` has shape ``ceil(s / 2**(L-l))``.

The second half of the module is the *chunk* plan — the regular domain
decomposition above the stride hierarchy.  A :class:`ChunkPlan` splits
the full grid into axis-aligned boxes of a fixed chunk shape (the last
chunk per axis may be ragged), each of which the chunked execution
engine (:mod:`repro.core.chunked`) compresses as an independent array
through the unchanged per-array pipeline.  Chunks are ordered
C-style over the chunk grid, so a plan is fully determined by
``(shape, chunk_shape)`` — the sharded container (v3) stores exactly
those two tuples and both sides rebuild the identical plan.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.util import jit

Offset = tuple[int, ...]
Box = tuple[tuple[int, int], ...]  # per-axis (lo, hi), hi exclusive


def nonzero_offsets(ndim: int) -> list[Offset]:
    """The ``2**ndim - 1`` nonzero parity offsets, in binary order.

    Binary order means offset ``(0,...,0,1)`` first; the paper's 3D
    sub-block letters b..h correspond to these in its Figure 7.
    """
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    offs = list(itertools.product((0, 1), repeat=ndim))
    return [o for o in offs if any(o)]


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def lattice_shape(shape: tuple[int, ...], stride: int) -> tuple[int, ...]:
    """Shape of the decimated lattice ``data[::stride, ...]``."""
    return tuple(ceil_div(n, stride) for n in shape)


def subblock_shape(fine_shape: tuple[int, ...], eps: Offset) -> tuple[int, ...]:
    """Shape of the parity-``eps`` sub-block of a lattice of ``fine_shape``.

    Sub-block points are the lattice points with index ``= eps (mod 2)``
    per axis; counts can be zero for size-1 axes with ``eps=1``.
    """
    return tuple(max(0, ceil_div(n - e, 2)) for n, e in zip(fine_shape, eps))


def take_subblock(fine: np.ndarray, eps: Offset) -> np.ndarray:
    """Extract (as a contiguous copy) the parity-``eps`` sub-block."""
    sl = tuple(slice(e, None, 2) for e in eps)
    return np.ascontiguousarray(fine[sl])


def subblock_view_in(data: np.ndarray, eps: Offset, stride: int) -> np.ndarray:
    """View of the parity-``eps`` sub-block of the stride-``stride``
    lattice, taken directly from the original array (no intermediate
    lattice materialization): ``data[eps*stride :: 2*stride, ...]``."""
    sl = tuple(slice(e * stride, None, 2 * stride) for e in eps)
    return data[sl]


def place_subblock(fine: np.ndarray, eps: Offset, values: np.ndarray) -> None:
    """Scatter a sub-block back into its lattice positions.

    Routes through the compiled strided-scatter kernel when available
    (a pure bit copy, exactly NumPy's assignment) — the reassembly
    stage is a large strided write on the decode hot path."""
    sl = tuple(slice(e, None, 2) for e in eps)
    if values.size and jit.scatter(fine[sl], values):
        return
    fine[sl] = values


def interleave(
    coarse: np.ndarray,
    blocks: dict[Offset, np.ndarray],
    fine_shape: tuple[int, ...],
) -> np.ndarray:
    """Rebuild the stride-``t`` lattice from the stride-``2t`` lattice
    plus the ``2**d - 1`` refinement sub-blocks (inverse of partition).

    This is the paper's "reassemble" stage (Table 4's ``L2 rec.`` /
    ``L3 rec.`` columns).
    """
    ndim = coarse.ndim
    out = np.empty(fine_shape, dtype=coarse.dtype)
    zero = (0,) * ndim
    place_subblock(out, zero, coarse)
    for eps in nonzero_offsets(ndim):
        place_subblock(out, eps, blocks[eps])
    return out


def deinterleave(
    fine: np.ndarray,
) -> tuple[np.ndarray, dict[Offset, np.ndarray]]:
    """Split a lattice into its stride-2 coarse lattice and refinement
    sub-blocks (the partition of Figure 4)."""
    ndim = fine.ndim
    zero = (0,) * ndim
    coarse = take_subblock(fine, zero)
    blocks = {eps: take_subblock(fine, eps) for eps in nonzero_offsets(ndim)}
    return coarse, blocks


def level_strides(nlevels: int) -> list[int]:
    """Grid stride of each level's lattice, coarsest first.

    For 3 levels: ``[4, 2, 1]`` — level 1 is the stride-4 lattice (1.6%
    of a 3D grid), level 3 is the full grid.
    """
    if nlevels < 1:
        raise ValueError("nlevels must be >= 1")
    return [2 ** (nlevels - l) for l in range(1, nlevels + 1)]


def level_fraction(ndim: int, nlevels: int) -> float:
    """Fraction of the dataset owned by the coarsest level (the paper's
    12.5% for 2-level 3D, 1.6% for 3-level 3D)."""
    return float(2 ** (-(ndim * (nlevels - 1))))


# ---------------------------------------------------------------------------
# chunk plan: regular domain decomposition for the chunked engine
# ---------------------------------------------------------------------------

def normalize_chunk_shape(
    shape: tuple[int, ...], chunks: int | tuple[int, ...]
) -> tuple[int, ...]:
    """Resolve a user chunk spec to a per-axis chunk shape.

    A single int applies to every axis; entries are clamped to the
    array extent (a chunk larger than the axis is just "one chunk").
    Zero-size axes are rejected — a chunk plan over an empty array has
    no chunks to order.
    """
    if isinstance(chunks, (int, np.integer)):
        chunks = (int(chunks),) * len(shape)
    chunks = tuple(int(c) for c in chunks)
    if len(chunks) != len(shape):
        raise ValueError(
            f"chunk spec rank {len(chunks)} != data rank {len(shape)}"
        )
    if any(c < 1 for c in chunks):
        raise ValueError(f"chunk extents must be >= 1, got {chunks}")
    if any(n < 1 for n in shape):
        raise ValueError(f"cannot chunk zero-size shape {shape}")
    return tuple(min(c, n) for c, n in zip(chunks, shape))


@dataclass(frozen=True)
class ChunkInfo:
    """One chunk of a :class:`ChunkPlan` (an axis-aligned box)."""

    index: int
    origin: tuple[int, ...]
    shape: tuple[int, ...]

    @property
    def slices(self) -> tuple[slice, ...]:
        """Index expression selecting this chunk from the full array."""
        return tuple(
            slice(o, o + n) for o, n in zip(self.origin, self.shape)
        )

    @property
    def box(self) -> Box:
        return tuple((o, o + n) for o, n in zip(self.origin, self.shape))

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n


@dataclass(frozen=True)
class ChunkPlan:
    """Regular decomposition of ``shape`` into ``chunk_shape`` boxes.

    Chunk ``i`` covers ``[origin, origin + chunk_extent)`` where the
    chunk-grid coordinates of ``i`` follow C order (last axis fastest)
    — the deterministic ordering every executor and the v3 container
    rely on.  Edge chunks are ragged: the last chunk along an axis
    holds the remainder, never spills past the array.
    """

    shape: tuple[int, ...]
    chunk_shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.chunk_shape) != len(self.shape):
            raise ValueError(
                f"chunk rank {len(self.chunk_shape)} != data rank "
                f"{len(self.shape)}"
            )
        if any(n < 1 for n in self.shape):
            raise ValueError(f"cannot chunk zero-size shape {self.shape}")
        if any(not (1 <= c <= n) for c, n in zip(self.chunk_shape, self.shape)):
            raise ValueError(
                f"chunk shape {self.chunk_shape} out of range for "
                f"array shape {self.shape}"
            )

    @classmethod
    def regular(
        cls, shape: tuple[int, ...], chunks: int | tuple[int, ...]
    ) -> "ChunkPlan":
        """Build a plan from a user chunk spec (int or per-axis tuple)."""
        shape = tuple(int(n) for n in shape)
        return cls(shape, normalize_chunk_shape(shape, chunks))

    @cached_property
    def grid(self) -> tuple[int, ...]:
        """Number of chunks along each axis."""
        return tuple(
            ceil_div(n, c) for n, c in zip(self.shape, self.chunk_shape)
        )

    @property
    def nchunks(self) -> int:
        n = 1
        for g in self.grid:
            n *= g
        return n

    def coords(self, index: int) -> tuple[int, ...]:
        """Chunk-grid coordinates of chunk ``index`` (C order)."""
        if not (0 <= index < self.nchunks):
            raise IndexError(
                f"chunk index {index} out of range [0, {self.nchunks})"
            )
        out = []
        for g in reversed(self.grid):
            out.append(index % g)
            index //= g
        return tuple(reversed(out))

    def chunk(self, index: int) -> ChunkInfo:
        cc = self.coords(index)
        origin = tuple(k * c for k, c in zip(cc, self.chunk_shape))
        shape = tuple(
            min(c, n - o)
            for c, n, o in zip(self.chunk_shape, self.shape, origin)
        )
        return ChunkInfo(index, origin, shape)

    def __len__(self) -> int:
        return self.nchunks

    def __iter__(self):
        for i in range(self.nchunks):
            yield self.chunk(i)

    def intersecting(self, box: Box) -> list[int]:
        """Indices of every chunk whose box intersects ``box`` (the
        chunk-granular random-access query), in plan order."""
        if len(box) != len(self.shape):
            raise ValueError(
                f"box rank {len(box)} != plan rank {len(self.shape)}"
            )
        ranges = []
        for (lo, hi), c, n, g in zip(
            box, self.chunk_shape, self.shape, self.grid
        ):
            if not (0 <= lo < hi <= n):
                raise ValueError(
                    f"box ({lo},{hi}) out of bounds for axis of {n}"
                )
            ranges.append(range(lo // c, min((hi - 1) // c + 1, g)))
        out = []
        for cc in itertools.product(*ranges):
            flat = 0
            for k, g in zip(cc, self.grid):
                flat = flat * g + k
            out.append(flat)
        return out
