"""Random-access (ROI) decompression (paper §3.3, Table 4).

Reconstructs an arbitrary box (including 2D slices of 3D data) at full
resolution while touching as little work as possible:

* **prediction/reassembly savings** — levels 2+ have no intra-level
  dependencies, so only points inside a *dilated* ROI are predicted and
  reconstructed; the dilation (2 coarse cells per side per level) covers
  the cubic interpolation stencil.
* **decoding savings** — sub-blocks are Huffman-encoded independently,
  so sub-blocks whose parity pattern cannot intersect the ROI are never
  entropy-decoded (for a 2D slice of 3D data that skips 4 of 7 finest
  sub-blocks — the paper's "up to 57%" decode saving); a decoded
  sub-block is decoded in full (intra-sub-block bit dependencies),
  which is why box access saves little decode time, exactly as Table 4
  shows.
* **I/O savings** — the container's segment table lets skipped
  sub-blocks stay unread on disk.

The result is *bit-identical* to cropping a full decompression, which
the test suite asserts; it follows from the gather-path predictor being
bit-identical to the grid path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.partition import (
    lattice_shape,
    level_strides,
    nonzero_offsets,
    subblock_shape,
)
from repro.core.pipeline import _split_residual_payload
from repro.core.predict import predict_points
from repro.encoding.huffman import huffman_decode_many
from repro.core.stream import StreamReader
from repro.encoding.quantizer import dequantize
from repro.sz3.compressor import sz3_decompress
from repro.util.timer import StageTimer

Box = tuple[tuple[int, int], ...]  # per-axis (lo, hi), hi exclusive

#: stencil halo per side, in coarse cells (cubic needs k-1 .. k+2)
_DILATION = 2


@dataclass
class RandomAccessResult:
    """ROI reconstruction plus the §4.5 accounting."""

    data: np.ndarray
    box: Box
    timer: StageTimer
    segments_decoded: int
    segments_skipped: int
    bytes_read: int

    @property
    def total_time(self) -> float:
        return self.timer.total


def normalize_roi(
    shape: tuple[int, ...], roi: tuple[slice | int, ...]
) -> Box:
    """Normalize a user ROI (slices and/or ints) to per-axis (lo, hi)."""
    if len(roi) != len(shape):
        raise ValueError(f"ROI rank {len(roi)} != data rank {len(shape)}")
    box = []
    for n, r in zip(shape, roi):
        if isinstance(r, (int, np.integer)):
            lo, hi = int(r), int(r) + 1
        else:
            lo, hi, step = r.indices(n)
            if step != 1:
                raise ValueError("ROI slices must have step 1")
        if not (0 <= lo < hi <= n):
            raise ValueError(f"ROI ({lo},{hi}) out of bounds for axis of {n}")
        box.append((lo, hi))
    return tuple(box)


def _coarsen_box(box: Box, coarse_shape: tuple[int, ...]) -> Box:
    """The coarse-lattice window needed to predict a fine-lattice box.

    A fine point ``f`` uses coarse cells ``floor(f/2) - 2`` through
    ``floor(f/2) + 2`` (cubic stencil and reassembly included)."""
    out = []
    for (lo, hi), cn in zip(box, coarse_shape):
        clo = max(0, lo // 2 - _DILATION)
        chi = min(cn, (hi - 1) // 2 + _DILATION + 2)
        out.append((clo, chi))
    return tuple(out)


def stz_decompress_roi(
    source: bytes | memoryview | StreamReader,
    roi: tuple[slice | int, ...],
    threads: int | None = None,
) -> RandomAccessResult:
    """Decompress only the given region of interest at full resolution."""
    reader = source if isinstance(source, StreamReader) else StreamReader(source)
    header = reader.header
    config = header.config
    if config.partition_only:
        raise NotImplementedError(
            "random access is not implemented for the partition-only "
            "ablation variant"
        )
    if config.interp == "cubic" and config.cubic_mode == "tensor":
        raise NotImplementedError(
            "tensor cubic mode has no random-access path (use diagonal)"
        )
    if config.residual_codec != "quantize":
        raise NotImplementedError(
            "random access requires the quantize residual codec "
            "(the sz3-residual ablation variant couples whole sub-blocks)"
        )
    ndim = header.ndim
    L = config.levels
    strides = level_strides(L)
    timer = StageTimer()
    bytes_before = reader.bytes_read

    # per-level windows, finest first
    boxes: list[Box] = [None] * (L + 1)  # type: ignore[assignment]
    boxes[L] = normalize_roi(header.shape, roi)
    for lvl in range(L - 1, 0, -1):
        cshape = lattice_shape(header.shape, strides[lvl - 1])
        boxes[lvl] = _coarsen_box(boxes[lvl + 1], cshape)

    # level 1: tiny, decompress fully then crop to its window
    seg1 = header.segments_at(1)[0]
    with timer.time("l1_sz3"):
        C1 = sz3_decompress(reader.read_segment(seg1))
    region = np.ascontiguousarray(
        C1[tuple(slice(lo, hi) for lo, hi in boxes[1])]
    )
    origin = tuple(lo for lo, _ in boxes[1])

    decoded_count = 0
    skipped_count = 0
    offsets = nonzero_offsets(ndim)
    for lvl in range(2, L + 1):
        fs = lattice_shape(header.shape, strides[lvl - 1])
        prev_fs = lattice_shape(header.shape, strides[lvl - 2])
        ebl = config.level_eb(header.abs_eb, lvl)
        box = boxes[lvl]
        segs = {s.eps: s for s in header.segments_at(lvl)}
        newshape = tuple(hi - lo for lo, hi in box)
        new_region = np.empty(newshape, dtype=header.dtype)
        new_origin = tuple(lo for lo, _ in box)

        # aligned (even-parity) points come straight from the coarser
        # window — the reassembly stage of Table 4
        with timer.time(f"l{lvl}_reassemble"):
            dst = []
            src = []
            for a, (lo, hi) in enumerate(box):
                f0 = lo + (lo & 1)
                dst.append(slice(f0 - lo, hi - lo, 2))
                src.append(slice(f0 // 2 - origin[a], None))
            probe = new_region[tuple(dst)]
            src = tuple(
                slice(s.start, s.start + ext)
                for s, ext in zip(src, probe.shape)
            )
            new_region[tuple(dst)] = region[src]

        # pass 1 — which sub-blocks intersect the window, and where:
        # f = 2k + eps in [lo, hi) per axis
        needed: list[tuple] = []
        for eps in offsets:
            ts = subblock_shape(fs, eps)
            kmin, kmax = [], []
            empty = False
            for a, (lo, hi) in enumerate(box):
                k0 = max(0, -(-(lo - eps[a]) // 2))
                k1 = min(ts[a] - 1, (hi - 1 - eps[a]) // 2)
                if k0 > k1:
                    empty = True
                    break
                kmin.append(k0)
                kmax.append(k1)
            if empty or segs[eps].length == 0:
                skipped_count += 1
                continue
            needed.append((eps, ts, kmin, kmax))

        # pass 2 — entropy-decode all needed sub-blocks in one batched
        # call (whole sub-blocks: intra-sub-block bit dependencies)
        with timer.time(f"l{lvl}_decode"):
            parts = [
                _split_residual_payload(
                    reader.read_segment(segs[eps]), header.dtype
                )
                for eps, _, _, _ in needed
            ]
            # compiled per-segment decoders release the GIL, so the
            # thread fan-out inside huffman_decode_many overlaps the
            # entropy stage — the dominant cost of sub-chunk ROI reads
            code_arrays = huffman_decode_many(
                [p[0] for p in parts], threads=threads
            )
        decoded_count += len(needed)

        # pass 3 — predict/reconstruct only the windowed points
        for (eps, ts, kmin, kmax), (_, opos, oval), codes in zip(
            needed, parts, code_arrays
        ):
            with timer.time(f"l{lvl}_predict"):
                kranges = [
                    np.arange(k0, k1 + 1, dtype=np.int64)
                    for k0, k1 in zip(kmin, kmax)
                ]
                grids = np.meshgrid(*kranges, indexing="ij")
                idx = tuple(g.ravel() for g in grids)
                pred = predict_points(
                    region,
                    eps,
                    idx,
                    config.interp,
                    config.cubic_mode,
                    origin=origin,
                    full_shape=tuple(prev_fs),
                )
                sel = tuple(
                    slice(k0, k1 + 1) for k0, k1 in zip(kmin, kmax)
                )
                need_codes = np.ascontiguousarray(
                    codes.reshape(ts)[sel]
                ).reshape(-1)
                # remap outliers into the selected window
                o_idx = np.unravel_index(opos, ts) if opos.size else None
                if o_idx is not None:
                    inside = np.ones(opos.size, dtype=bool)
                    for a in range(ndim):
                        inside &= (o_idx[a] >= kmin[a]) & (
                            o_idx[a] <= kmax[a]
                        )
                    local = tuple(
                        o_idx[a][inside] - kmin[a] for a in range(ndim)
                    )
                    opos_local = np.ravel_multi_index(
                        local, tuple(k1 - k0 + 1 for k0, k1 in zip(kmin, kmax))
                    )
                    oval_local = oval[inside]
                else:
                    opos_local = np.zeros(0, dtype=np.int64)
                    oval_local = oval[:0]
                rec = dequantize(
                    need_codes,
                    pred,
                    ebl,
                    opos_local,
                    oval_local,
                    config.quant_radius,
                    config.f32_quant,
                )
            with timer.time(f"l{lvl}_reassemble"):
                dst = tuple(
                    slice(
                        2 * k0 + eps[a] - box[a][0],
                        2 * k1 + eps[a] - box[a][0] + 1,
                        2,
                    )
                    for a, (k0, k1) in enumerate(zip(kmin, kmax))
                )
                new_region[dst] = rec.reshape(
                    tuple(k1 - k0 + 1 for k0, k1 in zip(kmin, kmax))
                )

        region = new_region
        origin = new_origin

    return RandomAccessResult(
        data=region,
        box=boxes[L],
        timer=timer,
        segments_decoded=decoded_count,
        segments_skipped=skipped_count,
        bytes_read=reader.bytes_read - bytes_before,
    )
