"""Adaptive online codec/config selection ("auto" mode).

STZ's pitch is high quality *and* high speed, but no single backend
wins everywhere: the interpolation cascade dominates on smooth fields,
the ZFP-like transform tier is cheap on rough data, the SZx-style fast
tier crushes constant regions at a fraction of everyone's latency.
Following Tao et al.'s automatic online SZ/ZFP selection and Liu
et al.'s dynamic quality-metric-oriented compression (PAPERS.md), this
module routes each array — and, through
:mod:`repro.core.streaming`, each time step — to the winning backend
using cheap probes instead of user guesswork:

1. :func:`probe_features` samples a few contiguous chunks of the data
   (head / middle / tail, a few thousand points total) and derives
   value range, a second-difference smoothness score, and the fraction
   of sampled blocks that are constant within the bound; the resulting
   label in {``constant``, ``smooth``, ``rough``} gates which
   candidates are worth probing at all (constant data short-circuits
   straight to the SZx tier).
2. Every backend is registered as a :class:`CodecCandidate` behind one
   ``compress``/``decompress``/``compress_with_recon`` interface, so
   the engine is pluggable — adding a codec is one registry entry plus
   a container codec id (:data:`repro.core.stream.CODEC_NAMES`).
3. :class:`CodecSelector` scores candidates online by *estimated
   bits-per-value at the requested L-inf bound*: a full probe
   compresses a small centered tile with each shortlisted candidate;
   scores are folded into per-codec exponential moving averages, and a
   seeded epsilon-greedy draw schedules refresh probes between the
   periodic full ones (bandit-style).  Everything is deterministic
   given (input, seed) — ``auto`` containers are reproducible byte for
   byte, which the determinism tests and golden archives pin.

The chosen backend's container is wrapped in the ``'STZC'`` envelope
(single arrays) or recorded in the v2 frame table's codec-id byte
(streams).  The user's hard L-infinity bound survives selection
unconditionally: every candidate here certifies the bound itself, and
the engine *additionally* verifies the chosen reconstruction in exact
float64 before committing, falling back down the ranking (ultimately
to STZ) on any violation — selection can change size and speed, never
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.config import STZConfig
from repro.core.pipeline import stz_compress_with_recon, stz_decompress
from repro.core.stream import (
    CODEC_IDS,
    CODEC_NAMES,
    unwrap_selected,
    wrap_selected,
)
from repro.mgard.codec import mgard_compress, mgard_decompress
from repro.sperr.codec import sperr_compress, sperr_decompress
from repro.sz3.compressor import (
    sz3_compress,
    sz3_compress_with_recon,
    sz3_decompress,
)
from repro.szx.codec import szx_compress, szx_decompress
from repro.util.validation import as_float_array, resolve_eb
from repro.zfp.codec import zfp_compress, zfp_decompress

#: probe geometry: total sampled points, contiguous chunk count, and
#: the block size used for the constant-fraction feature
_PROBE_BUDGET = 4096
_PROBE_CHUNKS = 3
_PROBE_BLOCK = 64
#: full probes compress tiles of at most this edge per axis, taken at
#: three positions along the array diagonal — one tile can sit on an
#: unrepresentative feature (a density spike, a flat void) and flip the
#: ranking on heterogeneous fields
_TILE_EDGE = 24

#: second-difference-to-range ratio below which data counts as smooth
#: (smooth synthetic fields score ~0.02-0.035 even at 16^3 resolution;
#: white noise scores ~0.3 — an order of magnitude of margin each way)
_SMOOTH_THRESHOLD = 0.05


# ---------------------------------------------------------------------------
# candidate registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CodecCandidate:
    """One selectable backend behind the uniform engine interface.

    ``compress`` takes ``(data, abs_eb, config, threads)`` — candidates
    ignore the knobs they do not have.  ``decompress`` takes the blob.
    """

    name: str
    codec_id: int
    compress: Callable[..., bytes]
    decompress: Callable[..., np.ndarray]

    def compress_with_recon(
        self,
        data: np.ndarray,
        abs_eb: float,
        config: STZConfig,
        threads: int | None,
    ) -> tuple[bytes, np.ndarray]:
        """Compress plus the decoder's exact reconstruction.

        STZ and SZ3 track their reconstruction during encoding (no
        extra pass); the other backends pay one decompression — the
        price of the engine's commit-time bound verification.
        """
        if self.name == "stz":
            return stz_compress_with_recon(
                data, abs_eb, "abs", config.with_(codec="stz"), threads
            )
        if self.name == "sz3":
            return sz3_compress_with_recon(
                data, abs_eb, "abs", config.sz3_interp,
                config.quant_radius, config.zlib_level,
            )
        blob = self.compress(data, abs_eb, config, threads)
        return blob, self.decompress(blob)


def _stz_c(data, eb, config, threads):
    return stz_compress_with_recon(
        data, eb, "abs", config.with_(codec="stz"), threads
    )[0]


def _sz3_c(data, eb, config, threads):
    return sz3_compress(
        data, eb, "abs", config.sz3_interp, config.quant_radius,
        config.zlib_level,
    )


def _zfp_c(data, eb, config, threads):
    return zfp_compress(data, eb, "abs", config.zlib_level)


def _sperr_c(data, eb, config, threads):
    return sperr_compress(data, eb, "abs", zlib_level=config.zlib_level)


def _szx_c(data, eb, config, threads):
    return szx_compress(data, eb, "abs", config.zlib_level)


def _mgard_c(data, eb, config, threads):
    return mgard_compress(
        data, eb, "abs", radius=config.quant_radius,
        zlib_level=config.zlib_level,
    )


#: name -> candidate; ids come from the container layer so the registry
#: cannot drift from what the format can record
CANDIDATES: dict[str, CodecCandidate] = {
    name: CodecCandidate(name, CODEC_IDS[name], comp, dec)
    for name, comp, dec in [
        ("stz", _stz_c, lambda blob: stz_decompress(blob)),
        ("sz3", _sz3_c, sz3_decompress),
        ("zfp", _zfp_c, zfp_decompress),
        ("sperr", _sperr_c, sperr_decompress),
        ("szx", _szx_c, szx_decompress),
        ("mgard", _mgard_c, mgard_decompress),
    ]
}
assert set(CANDIDATES) == set(CODEC_NAMES.values())

#: probe shortlists per probe label.  Constant data short-circuits to
#: the SZx tier (with the engine's STZ fallback behind it); the other
#: labels probe in a label-informed order — ordering matters only for
#: ties and for which codec wins when scores are missing (a candidate
#: that failed to probe is ranked last).  The MGARD-like backend stays
#: registered (selectable as a fixed codec, decodable by id) but is
#: not probed by default: it is an order of magnitude slower than any
#: other candidate here and loses on ratio across the registry
#: datasets, so probing it would only inflate selection overhead.
SHORTLISTS: dict[str, tuple[str, ...]] = {
    "constant": ("szx",),
    "smooth": ("stz", "sz3", "sperr", "szx", "zfp"),
    "rough": ("zfp", "szx", "sz3", "stz", "sperr"),
}


# ---------------------------------------------------------------------------
# probe features
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockProbe:
    """Cheap sampled features of one array (see :func:`probe_features`)."""

    vrange: float
    smoothness: float  # mean |second difference| / vrange
    const_frac: float  # sampled blocks constant within the bound
    nonfinite_frac: float
    label: str  # "constant" | "smooth" | "rough"


def _sample_chunks(flat: np.ndarray) -> list[np.ndarray]:
    """Up to three contiguous chunks (head/middle/tail) of the flat view.

    Contiguity matters: the smoothness feature is a second difference,
    which strided sampling would destroy.
    """
    n = flat.size
    per = _PROBE_BUDGET // _PROBE_CHUNKS
    if n <= _PROBE_BUDGET:
        return [flat]
    mid = (n - per) // 2
    return [flat[:per], flat[mid : mid + per], flat[n - per :]]


def probe_features(data: np.ndarray, abs_eb: float) -> BlockProbe:
    """Classify ``data`` from a few thousand sampled points."""
    chunks = [c.astype(np.float64) for c in _sample_chunks(data.reshape(-1))]
    s = np.concatenate(chunks)
    finite = np.isfinite(s)
    nonfinite_frac = float(1.0 - finite.mean())
    sf = s[finite]
    if sf.size == 0:
        return BlockProbe(0.0, 0.0, 0.0, nonfinite_frac, "rough")
    vrange = float(sf.max() - sf.min())

    d2_parts = [c[2:] - 2.0 * c[1:-1] + c[:-2] for c in chunks if c.size >= 3]
    if d2_parts and vrange > 0:
        d2 = np.concatenate(d2_parts)
        d2 = d2[np.isfinite(d2)]
        smoothness = float(np.mean(np.abs(d2)) / vrange) if d2.size else 0.0
    else:
        smoothness = 0.0

    nconst = 0
    nblocks = 0
    for c in chunks:
        nb = c.size // _PROBE_BLOCK
        if nb == 0:
            continue
        b = c[: nb * _PROBE_BLOCK].reshape(nb, _PROBE_BLOCK)
        with np.errstate(invalid="ignore"):
            spread = b.max(axis=1) - b.min(axis=1)
        nconst += int((spread <= 2.0 * abs_eb).sum())
        nblocks += nb
    const_frac = nconst / nblocks if nblocks else float(vrange <= 2.0 * abs_eb)

    # "constant" means the *sampled array* is constant within the bound
    # (the szx short-circuit is provably near-optimal then).  A high
    # constant-block fraction alone is NOT enough: a field that is
    # mostly flat but has structured features (e.g. the Nyx density
    # spikes) is routed far better by a probe than by this label.
    if nonfinite_frac == 0.0 and vrange <= 2.0 * abs_eb:
        label = "constant"
    elif nonfinite_frac == 0.0 and smoothness <= _SMOOTH_THRESHOLD:
        label = "smooth"
    else:
        label = "rough"
    return BlockProbe(vrange, smoothness, const_frac, nonfinite_frac, label)


def sample_tile(data: np.ndarray, edge: int = _TILE_EDGE) -> np.ndarray:
    """Centered contiguous sub-box of at most ``edge`` per axis."""
    sl = tuple(
        slice((n - min(n, edge)) // 2, (n - min(n, edge)) // 2 + min(n, edge))
        for n in data.shape
    )
    return np.ascontiguousarray(data[sl])


def sample_tiles(data: np.ndarray, edge: int = _TILE_EDGE) -> list[np.ndarray]:
    """Up to three distinct sub-boxes along the array diagonal (origin,
    center, far corner) — the payloads full probes compress to estimate
    bits-per-value.  Degenerates to one tile when the array is small
    enough that the positions coincide."""
    edges = tuple(min(n, edge) for n in data.shape)
    if edges == data.shape:
        return [np.ascontiguousarray(data)]
    tiles = []
    seen = set()
    for frac in (0.0, 0.5, 1.0):
        starts = tuple(
            int(round((n - k) * frac)) for n, k in zip(data.shape, edges)
        )
        if starts in seen:
            continue
        seen.add(starts)
        sl = tuple(
            slice(s, s + k) for s, k in zip(starts, edges)
        )
        tiles.append(np.ascontiguousarray(data[sl]))
    return tiles


# ---------------------------------------------------------------------------
# the selector
# ---------------------------------------------------------------------------

class CodecSelector:
    """Online bits-per-value scorer over the candidate registry.

    ``probe`` compresses a sample tile with each shortlisted candidate
    and folds the observed bits-per-value into a per-codec exponential
    moving average (decay keeps old evidence relevant but lets the
    ranking track drifting data).  ``explore_draw`` is the seeded
    epsilon-greedy coin that schedules refresh probes between periodic
    full ones.  All state is deterministic given the seed and the call
    sequence — the engine's reproducibility contract.
    """

    def __init__(
        self,
        seed: int = 0,
        decay: float = 0.6,
        explore: float = 0.25,
    ):
        if not (0.0 <= decay < 1.0):
            raise ValueError("decay must be in [0, 1)")
        self.decay = float(decay)
        self.explore = float(explore)
        self.scores: dict[str, float] = {}  # EMA bits-per-value
        self.nprobes = 0
        self._rng = np.random.default_rng(seed)

    def probe(
        self,
        data: np.ndarray,
        abs_eb: float,
        config: STZConfig,
        names: tuple[str, ...],
    ) -> dict[str, float]:
        """Full probe: score ``names`` on diagonal sample tiles of
        ``data``; returns the raw (pre-EMA) scores.

        The score is the *marginal* bits-per-value between two tile
        sizes: each candidate compresses the diagonal tiles at
        ``_TILE_EDGE`` and at half that edge, and the size difference
        is what scales to the full array.  Absolute tile sizes would
        systematically punish backends with per-container overhead
        (anchors, code tables) that does not grow with the data —
        small-tile probes then rank the low-overhead fast tier above
        codecs that are 2x better at scale; differencing cancels the
        fixed cost exactly.  When the tiles already cover the whole
        array the absolute size *is* the truth and is used directly.
        Candidates that cannot handle the data (e.g. ZFP beyond 4
        dimensions) are skipped.
        """
        tiles = sample_tiles(data)
        npoints = sum(t.size for t in tiles)
        small: list[np.ndarray] | None = None
        nsmall = 0
        if not (len(tiles) == 1 and tiles[0].size == data.size):
            small = sample_tiles(data, _TILE_EDGE // 2)
            nsmall = sum(t.size for t in small)
            if nsmall >= npoints:  # overlapping tiles on a small array
                small = None
        raw: dict[str, float] = {}
        for name in names:
            cand = CANDIDATES[name]
            try:
                nbytes = sum(
                    len(cand.compress(t, abs_eb, config, None))
                    for t in tiles
                )
                if small is not None:
                    nbytes_small = sum(
                        len(cand.compress(t, abs_eb, config, None))
                        for t in small
                    )
                    bpv = (
                        8.0 * max(nbytes - nbytes_small, 1)
                        / (npoints - nsmall)
                    )
                else:
                    bpv = 8.0 * nbytes / npoints
            except (ValueError, TypeError):
                continue
            raw[name] = bpv
            old = self.scores.get(name)
            self.scores[name] = (
                bpv if old is None
                else self.decay * old + (1.0 - self.decay) * bpv
            )
        self.nprobes += 1
        return raw

    def explore_draw(self) -> bool:
        """Seeded epsilon-greedy coin (one deterministic draw)."""
        return float(self._rng.random()) < self.explore

    def rank(self, shortlist: tuple[str, ...]) -> list[str]:
        """Shortlist ordered best-scored first; unscored names keep
        their shortlist order after every scored one; the certified STZ
        fallback is always present and always last when unscored."""
        scored = sorted(
            (self.scores[n], n) for n in shortlist if n in self.scores
        )
        order = [n for _, n in scored]
        order += [n for n in shortlist if n not in self.scores]
        if "stz" not in order:
            order.append("stz")
        return order


# ---------------------------------------------------------------------------
# bound verification and envelope round-trip
# ---------------------------------------------------------------------------

def bound_holds(orig: np.ndarray, recon: np.ndarray, abs_eb: float) -> bool:
    """Exact float64 check of the hard bound, non-finite points
    bit-exact — the engine's commit-time gate (the boolean twin of the
    test suite's ``assert_error_bounded``)."""
    if recon.shape != orig.shape or recon.dtype != orig.dtype:
        return False
    o = orig.reshape(-1)
    r = recon.reshape(-1)
    o64 = o.astype(np.float64)
    finite = np.isfinite(o64)
    if not finite.all():
        if o[~finite].tobytes() != r[~finite].tobytes():
            return False
    if not finite.any():
        return True
    err = np.abs(o64[finite] - r[finite].astype(np.float64))
    return bool(err.max() <= abs_eb)


def select_and_compress(
    data: np.ndarray,
    abs_eb: float,
    config: STZConfig,
    threads: int | None = None,
    selector: CodecSelector | None = None,
    shortlist: tuple[str, ...] | None = None,
) -> tuple[str, bytes, np.ndarray]:
    """Pick a backend for ``data``, compress, verify, return
    ``(name, blob, recon)``.

    The ranking comes from a full probe (fresh selector) or the
    caller's selector state (streaming reuse); the first candidate
    whose verified reconstruction holds the bound wins.  STZ certifies
    the bound by construction, so the loop always terminates with a
    valid container.
    """
    selector = selector or CodecSelector(seed=config.select_seed)
    if shortlist is None:
        shortlist = SHORTLISTS[probe_features(data, abs_eb).label]
        selector.probe(data, abs_eb, config, shortlist)
    last_err: Exception | None = None
    for name in selector.rank(shortlist):
        cand = CANDIDATES[name]
        try:
            blob, recon = cand.compress_with_recon(
                data, abs_eb, config, threads
            )
        except (ValueError, TypeError) as exc:
            last_err = exc
            continue
        if bound_holds(data, recon, abs_eb):
            return name, blob, recon
    if last_err is not None:
        # every candidate rejected the input (e.g. 9+ dimensions);
        # surface the final — STZ — rejection instead of burying it
        raise last_err
    raise AssertionError("unreachable: the STZ fallback certifies the bound")


def compress_selected(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    threads: int | None = None,
) -> bytes:
    """Single-array entry point for fixed non-STZ codecs and ``auto``;
    returns an 'STZC' envelope."""
    config = config or STZConfig(codec="auto")
    data = as_float_array(data)
    abs_eb = resolve_eb(data, eb, eb_mode)
    if config.codec != "auto":
        cand = CANDIDATES[config.codec]
        blob = cand.compress(data, abs_eb, config, threads)
        return wrap_selected(cand.codec_id, blob)
    name, blob, _ = select_and_compress(data, abs_eb, config, threads)
    return wrap_selected(CANDIDATES[name].codec_id, blob)


def decode_by_id(
    codec_id: int,
    payload: bytes | memoryview,
    threads: int | None = None,
) -> np.ndarray:
    """Decode a payload by container codec id (unknown ids were already
    rejected by the container layer; reject again for direct callers)."""
    if codec_id not in CODEC_NAMES:
        raise ValueError(f"unknown codec id {codec_id}")
    name = CODEC_NAMES[codec_id]
    if name == "stz":
        return stz_decompress(payload, threads=threads)
    return CANDIDATES[name].decompress(payload)


def decompress_selected(
    source: bytes | memoryview, threads: int | None = None
) -> np.ndarray:
    """Decode an 'STZC' envelope produced by :func:`compress_selected`."""
    codec_id, payload = unwrap_selected(source)
    return decode_by_id(codec_id, payload, threads)
