"""Adaptive online codec/config selection ("auto" mode).

STZ's pitch is high quality *and* high speed, but no single backend
wins everywhere: the interpolation cascade dominates on smooth fields,
the ZFP-like transform tier is cheap on rough data, the SZx-style fast
tier crushes constant regions at a fraction of everyone's latency.
Following Tao et al.'s automatic online SZ/ZFP selection and Liu
et al.'s dynamic quality-metric-oriented compression (PAPERS.md), this
module routes each array — and, through
:mod:`repro.core.streaming`, each time step — to the winning backend
using cheap probes instead of user guesswork:

1. :func:`probe_features` samples a few contiguous chunks of the data
   (head / middle / tail, a few thousand points total) and derives
   value range, a second-difference smoothness score, and the fraction
   of sampled blocks that are constant within the bound; the resulting
   label in {``constant``, ``smooth``, ``rough``} gates which
   candidates are worth probing at all (constant data short-circuits
   straight to the SZx tier).
2. Every backend is registered as a :class:`CodecCandidate` behind one
   ``compress``/``decompress``/``compress_with_recon`` interface, so
   the engine is pluggable — adding a codec is one registry entry plus
   a container codec id (:data:`repro.core.stream.CODEC_NAMES`).
3. :class:`CodecSelector` scores candidates online by *estimated
   bits-per-value at the requested L-inf bound*: a full probe
   compresses a small centered tile with each shortlisted candidate;
   scores are folded into per-codec exponential moving averages, and a
   seeded epsilon-greedy draw schedules refresh probes between the
   periodic full ones (bandit-style).  Everything is deterministic
   given (input, seed) — ``auto`` containers are reproducible byte for
   byte, which the determinism tests and golden archives pin.

The chosen backend's container is wrapped in the ``'STZC'`` envelope
(single arrays) or recorded in the v2 frame table's codec-id byte
(streams).  The user's hard L-infinity bound survives selection
unconditionally: every candidate here certifies the bound itself, and
the engine *additionally* verifies the chosen reconstruction in exact
float64 before committing, falling back down the ranking (ultimately
to STZ) on any violation — selection can change size and speed, never
correctness.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import STZConfig
from repro.core.parallel import pmap
from repro.core.pipeline import stz_compress_with_recon, stz_decompress
from repro.core.stream import (
    CODEC_IDS,
    CODEC_NAMES,
    unwrap_selected,
    wrap_selected,
)
from repro.mgard.codec import (
    mgard_compress,
    mgard_compress_with_recon,
    mgard_decompress,
)
from repro.sperr.codec import (
    sperr_compress,
    sperr_compress_with_recon,
    sperr_decompress,
)
from repro.sz3.compressor import (
    sz3_compress,
    sz3_compress_with_recon,
    sz3_decompress,
)
from repro.szx.codec import (
    szx_compress,
    szx_compress_with_recon,
    szx_decompress,
)
from repro.util.cache import BoundedLRU
from repro.util.validation import as_float_array, resolve_eb
from repro.zfp.codec import zfp_compress, zfp_compress_with_recon, zfp_decompress

#: probe geometry: total sampled points, contiguous chunk count, and
#: the block size used for the constant-fraction feature
_PROBE_BUDGET = 4096
_PROBE_CHUNKS = 3
_PROBE_BLOCK = 64
#: full probes compress tiles of at most this edge per axis, taken at
#: three positions along the array diagonal — one tile can sit on an
#: unrepresentative feature (a density spike, a flat void) and flip the
#: ranking on heterogeneous fields
_TILE_EDGE = 24

#: second-difference-to-range ratio below which data counts as smooth
#: (smooth synthetic fields score ~0.02-0.035 even at 16^3 resolution;
#: white noise scores ~0.3 — an order of magnitude of margin each way)
_SMOOTH_THRESHOLD = 0.05


# ---------------------------------------------------------------------------
# candidate registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CodecCandidate:
    """One selectable backend behind the uniform engine interface.

    ``compress`` takes ``(data, abs_eb, config, threads)`` — candidates
    ignore the knobs they do not have.  ``decompress`` takes the blob.
    ``with_recon`` (same signature as ``compress``) returns ``(blob,
    recon)`` where ``recon`` is bit-identical to decompressing the
    blob; every built-in backend supplies its encoder-tracked variant,
    and a candidate registered without one falls back to an explicit
    decompression pass.
    """

    name: str
    codec_id: int
    compress: Callable[..., bytes]
    decompress: Callable[..., np.ndarray]
    with_recon: Callable[..., tuple] | None = field(default=None)

    def compress_with_recon(
        self,
        data: np.ndarray,
        abs_eb: float,
        config: STZConfig,
        threads: int | None,
    ) -> tuple[bytes, np.ndarray]:
        """Compress plus the decoder's exact reconstruction.

        Every built-in backend tracks (or cheaply replays) the
        decoder's output during encoding, so the engine's commit-time
        bound verification costs one array comparison instead of a
        second full decompression — the single-pass verified commit
        (DESIGN.md §7).  The decompression fallback exists only for
        externally registered candidates.
        """
        if self.with_recon is not None:
            return self.with_recon(data, abs_eb, config, threads)
        blob = self.compress(data, abs_eb, config, threads)
        return blob, self.decompress(blob)


def _stz_wr(data, eb, config, threads):
    return stz_compress_with_recon(
        data, eb, "abs", config.with_(codec="stz"), threads
    )


def _stz_c(data, eb, config, threads):
    return _stz_wr(data, eb, config, threads)[0]


def _sz3_wr(data, eb, config, threads):
    return sz3_compress_with_recon(
        data, eb, "abs", config.sz3_interp, config.quant_radius,
        config.zlib_level, config.f32_quant,
    )


def _sz3_c(data, eb, config, threads):
    return sz3_compress(
        data, eb, "abs", config.sz3_interp, config.quant_radius,
        config.zlib_level, config.f32_quant,
    )


def _zfp_c(data, eb, config, threads):
    return zfp_compress(data, eb, "abs", config.zlib_level)


def _zfp_wr(data, eb, config, threads):
    return zfp_compress_with_recon(data, eb, "abs", config.zlib_level)


def _sperr_c(data, eb, config, threads):
    return sperr_compress(data, eb, "abs", zlib_level=config.zlib_level)


def _sperr_wr(data, eb, config, threads):
    return sperr_compress_with_recon(
        data, eb, "abs", zlib_level=config.zlib_level
    )


def _szx_c(data, eb, config, threads):
    return szx_compress(data, eb, "abs", config.zlib_level)


def _szx_wr(data, eb, config, threads):
    return szx_compress_with_recon(data, eb, "abs", config.zlib_level)


def _mgard_c(data, eb, config, threads):
    return mgard_compress(
        data, eb, "abs", radius=config.quant_radius,
        zlib_level=config.zlib_level,
    )


def _mgard_wr(data, eb, config, threads):
    return mgard_compress_with_recon(
        data, eb, "abs", radius=config.quant_radius,
        zlib_level=config.zlib_level,
    )


#: name -> candidate; ids come from the container layer so the registry
#: cannot drift from what the format can record
CANDIDATES: dict[str, CodecCandidate] = {
    name: CodecCandidate(name, CODEC_IDS[name], comp, dec, wr)
    for name, comp, dec, wr in [
        ("stz", _stz_c, lambda blob: stz_decompress(blob), _stz_wr),
        ("sz3", _sz3_c, sz3_decompress, _sz3_wr),
        ("zfp", _zfp_c, zfp_decompress, _zfp_wr),
        ("sperr", _sperr_c, sperr_decompress, _sperr_wr),
        ("szx", _szx_c, szx_decompress, _szx_wr),
        ("mgard", _mgard_c, mgard_decompress, _mgard_wr),
    ]
}
assert set(CANDIDATES) == set(CODEC_NAMES.values())

#: probe shortlists per probe label.  Constant data short-circuits to
#: the SZx tier (with the engine's STZ fallback behind it); the other
#: labels probe in a label-informed order — ordering matters only for
#: ties and for which codec wins when scores are missing (a candidate
#: that failed to probe is ranked last).  The MGARD-like backend stays
#: registered (selectable as a fixed codec, decodable by id) but is
#: not probed by default: it is an order of magnitude slower than any
#: other candidate here and loses on ratio across the registry
#: datasets, so probing it would only inflate selection overhead.
SHORTLISTS: dict[str, tuple[str, ...]] = {
    "constant": ("szx",),
    "smooth": ("stz", "sz3", "sperr", "szx", "zfp"),
    "rough": ("zfp", "szx", "sz3", "stz", "sperr"),
}


# ---------------------------------------------------------------------------
# probe features
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockProbe:
    """Cheap sampled features of one array (see :func:`probe_features`)."""

    vrange: float
    smoothness: float  # mean |second difference| / vrange
    const_frac: float  # sampled blocks constant within the bound
    nonfinite_frac: float
    label: str  # "constant" | "smooth" | "rough"


def _sample_chunks(flat: np.ndarray) -> list[np.ndarray]:
    """Up to three contiguous chunks (head/middle/tail) of the flat view.

    Contiguity matters: the smoothness feature is a second difference,
    which strided sampling would destroy.
    """
    n = flat.size
    per = _PROBE_BUDGET // _PROBE_CHUNKS
    if n <= _PROBE_BUDGET:
        return [flat]
    mid = (n - per) // 2
    return [flat[:per], flat[mid : mid + per], flat[n - per :]]


def probe_features(data: np.ndarray, abs_eb: float) -> BlockProbe:
    """Classify ``data`` from a few thousand sampled points."""
    chunks = [c.astype(np.float64) for c in _sample_chunks(data.reshape(-1))]
    s = np.concatenate(chunks)
    finite = np.isfinite(s)
    nonfinite_frac = float(1.0 - finite.mean())
    sf = s[finite]
    if sf.size == 0:
        return BlockProbe(0.0, 0.0, 0.0, nonfinite_frac, "rough")
    vrange = float(sf.max() - sf.min())

    d2_parts = [c[2:] - 2.0 * c[1:-1] + c[:-2] for c in chunks if c.size >= 3]
    if d2_parts and vrange > 0:
        d2 = np.concatenate(d2_parts)
        d2 = d2[np.isfinite(d2)]
        smoothness = float(np.mean(np.abs(d2)) / vrange) if d2.size else 0.0
    else:
        smoothness = 0.0

    nconst = 0
    nblocks = 0
    for c in chunks:
        nb = c.size // _PROBE_BLOCK
        if nb == 0:
            continue
        b = c[: nb * _PROBE_BLOCK].reshape(nb, _PROBE_BLOCK)
        with np.errstate(invalid="ignore"):
            spread = b.max(axis=1) - b.min(axis=1)
        nconst += int((spread <= 2.0 * abs_eb).sum())
        nblocks += nb
    const_frac = nconst / nblocks if nblocks else float(vrange <= 2.0 * abs_eb)

    # "constant" means the *sampled array* is constant within the bound
    # (the szx short-circuit is provably near-optimal then).  A high
    # constant-block fraction alone is NOT enough: a field that is
    # mostly flat but has structured features (e.g. the Nyx density
    # spikes) is routed far better by a probe than by this label.
    if nonfinite_frac == 0.0 and vrange <= 2.0 * abs_eb:
        label = "constant"
    elif nonfinite_frac == 0.0 and smoothness <= _SMOOTH_THRESHOLD:
        label = "smooth"
    else:
        label = "rough"
    return BlockProbe(vrange, smoothness, const_frac, nonfinite_frac, label)


def features_drifted(
    prev: BlockProbe, cur: BlockProbe, tol: float = 0.5
) -> bool:
    """Has the data's character moved enough to invalidate a ranking?

    The cheap gate of the streaming engine's amortized probing: each
    step computes :func:`probe_features` (~0.1 ms) and a full
    compression probe re-runs only when the label flips, non-finite
    values appear/disappear, or any scale feature (value range,
    smoothness, constant-block fraction) moves by more than ``tol``
    relative.  Below the gate the previous ranking keeps serving —
    selection can only affect size/speed, never the bound, so a missed
    drift costs ratio until the next epsilon refresh, not correctness.
    """
    if prev.label != cur.label:
        return True
    if (prev.nonfinite_frac == 0.0) != (cur.nonfinite_frac == 0.0):
        return True

    def rel(a: float, b: float) -> float:
        m = max(abs(a), abs(b))
        return 0.0 if m == 0.0 else abs(a - b) / m

    return (
        rel(prev.vrange, cur.vrange) > tol
        or rel(prev.smoothness, cur.smoothness) > tol
        or abs(prev.const_frac - cur.const_frac) > tol
    )


def sample_tile(data: np.ndarray, edge: int = _TILE_EDGE) -> np.ndarray:
    """Centered contiguous sub-box of at most ``edge`` per axis."""
    sl = tuple(
        slice((n - min(n, edge)) // 2, (n - min(n, edge)) // 2 + min(n, edge))
        for n in data.shape
    )
    return np.ascontiguousarray(data[sl])


def sample_tiles(data: np.ndarray, edge: int = _TILE_EDGE) -> list[np.ndarray]:
    """Up to three distinct sub-boxes along the array diagonal (origin,
    center, far corner) — the payloads full probes compress to estimate
    bits-per-value.  Degenerates to one tile when the array is small
    enough that the positions coincide."""
    edges = tuple(min(n, edge) for n in data.shape)
    if edges == data.shape:
        return [np.ascontiguousarray(data)]
    tiles = []
    seen = set()
    for frac in (0.0, 0.5, 1.0):
        starts = tuple(
            int(round((n - k) * frac)) for n, k in zip(data.shape, edges)
        )
        if starts in seen:
            continue
        seen.add(starts)
        sl = tuple(
            slice(s, s + k) for s, k in zip(starts, edges)
        )
        tiles.append(np.ascontiguousarray(data[sl]))
    return tiles


# ---------------------------------------------------------------------------
# the selector
# ---------------------------------------------------------------------------

#: process-level probe-result cache: digest of (feature label, probe
#: payload bytes, bound, config, shortlist) -> the raw scores a live
#: probe would produce.  The key is *content-derived*, so a hit returns
#: exactly what recomputation would — determinism ("same input + seed
#: => same bytes") is preserved no matter what was compressed before —
#: while repeated compressions of the same data (benchmark repeats,
#: conformance sweeps, golden regeneration) skip the ~30 tile
#: compressions entirely.  Concurrent compressions (the serve layer
#: probes from every request thread) are safe: ops are lock-guarded
#: and the get→score→put window is the benign pure-function race
#: documented in :mod:`repro.util.cache` — both racers compute the
#: same scores for the same content key, so last-put-wins loses
#: nothing.  The stored dict is never handed out: probe() returns a
#: copy on hit and puts a copy, so no caller can mutate a cached entry.
_PROBE_CACHE: BoundedLRU[dict] = BoundedLRU(128)


def clear_probe_cache() -> None:
    """Drop all cached probe results (tests, memory pressure)."""
    _PROBE_CACHE.clear()


def _tile_scores(
    tiles: list[np.ndarray],
    small: list[np.ndarray] | None,
    abs_eb: float,
    config: STZConfig,
    names: tuple[str, ...],
    threads: int | None,
) -> dict[str, float]:
    """Marginal bits-per-value of each candidate on the sample tiles.

    One candidate's tile compressions are independent of another's, so
    the candidates run through :func:`pmap`; scores are folded back in
    ``names`` order, which keeps the result identical to the serial
    loop.  Candidates that reject the data return no score.
    """
    npoints = sum(t.size for t in tiles)
    nsmall = sum(t.size for t in small) if small is not None else 0

    def score(name: str) -> tuple[str, float | None]:
        cand = CANDIDATES[name]
        try:
            nbytes = sum(
                len(cand.compress(t, abs_eb, config, None)) for t in tiles
            )
            if small is not None:
                nbytes_small = sum(
                    len(cand.compress(t, abs_eb, config, None))
                    for t in small
                )
                return name, (
                    8.0 * max(nbytes - nbytes_small, 1) / (npoints - nsmall)
                )
            return name, 8.0 * nbytes / npoints
        except (ValueError, TypeError):
            return name, None

    n = threads if threads is not None else len(names)
    results = pmap(score, list(names), n)
    return {name: bpv for name, bpv in results if bpv is not None}


def _probe_tiles(
    data: np.ndarray,
) -> tuple[list[np.ndarray], list[np.ndarray] | None]:
    """The (large, small) diagonal tile sets one probe compresses.

    ``small`` is None when the large tiles already cover the whole
    array (absolute size is then the truth) or would overlap the small
    set — the single definition of the probe geometry, shared by full
    probes and challenger refreshes so their scores stay comparable.
    """
    tiles = sample_tiles(data)
    if len(tiles) == 1 and tiles[0].size == data.size:
        return tiles, None
    small = sample_tiles(data, _TILE_EDGE // 2)
    if sum(t.size for t in small) >= sum(t.size for t in tiles):
        return tiles, None  # overlapping tiles on a small array
    return tiles, small


def _probe_cache_key(
    tiles: list[np.ndarray],
    small: list[np.ndarray] | None,
    abs_eb: float,
    config: STZConfig,
    names: tuple[str, ...],
    label: str,
) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    h.update(label.encode())
    h.update(struct.pack("<d", abs_eb))
    h.update(repr(names).encode())
    # only the fields the candidate compressors read can change a
    # score; selection-layer knobs (codec, seed, explore, drift) are
    # excluded so e.g. varying the seed still shares the cache entry
    h.update(
        repr(
            (
                config.levels, config.interp, config.cubic_mode,
                config.residual_codec, config.adaptive_eb, config.eb_ratio,
                config.quant_radius, config.zlib_level,
                config.partition_only, config.sz3_interp, config.f32_quant,
            )
        ).encode()
    )
    for t in tiles:
        h.update(str(t.dtype).encode() + repr(t.shape).encode())
        h.update(t.tobytes())
    if small is not None:
        for t in small:
            h.update(t.tobytes())
    return h.digest()


class CodecSelector:
    """Online bits-per-value scorer over the candidate registry.

    ``probe`` compresses a sample tile with each shortlisted candidate
    and folds the observed bits-per-value into a per-codec exponential
    moving average (decay keeps old evidence relevant but lets the
    ranking track drifting data).  ``explore_draw`` is the seeded
    epsilon-greedy coin that schedules refresh probes between periodic
    full ones.  All state is deterministic given the seed and the call
    sequence — the engine's reproducibility contract.
    """

    def __init__(
        self,
        seed: int = 0,
        decay: float = 0.6,
        explore: float = 0.25,
    ):
        if not (0.0 <= decay < 1.0):
            raise ValueError("decay must be in [0, 1)")
        self.decay = float(decay)
        self.explore = float(explore)
        self.scores: dict[str, float] = {}  # EMA bits-per-value
        self.nprobes = 0
        self._rng = np.random.default_rng(seed)

    def probe(
        self,
        data: np.ndarray,
        abs_eb: float,
        config: STZConfig,
        names: tuple[str, ...],
        threads: int | None = None,
        use_cache: bool = True,
        label: str = "",
    ) -> dict[str, float]:
        """Full probe: score ``names`` on diagonal sample tiles of
        ``data``; returns the raw (pre-EMA) scores.

        The score is the *marginal* bits-per-value between two tile
        sizes: each candidate compresses the diagonal tiles at
        ``_TILE_EDGE`` and at half that edge, and the size difference
        is what scales to the full array.  Absolute tile sizes would
        systematically punish backends with per-container overhead
        (anchors, code tables) that does not grow with the data —
        small-tile probes then rank the low-overhead fast tier above
        codecs that are 2x better at scale; differencing cancels the
        fixed cost exactly.  When the tiles already cover the whole
        array the absolute size *is* the truth and is used directly.
        Candidates that cannot handle the data (e.g. ZFP beyond 4
        dimensions) are skipped.

        Two amortizations (DESIGN.md §7), neither of which changes the
        scores a live probe would compute: candidates are probed
        concurrently through :func:`repro.core.parallel.pmap` (the
        per-candidate tile compressions are independent), and the raw
        results are cached process-wide under a content digest of the
        probe inputs plus the caller's :class:`BlockProbe` label, so
        re-probing identical data is a hash lookup.
        """
        tiles, small = _probe_tiles(data)
        key = None
        if use_cache:
            key = _probe_cache_key(tiles, small, abs_eb, config, names, label)
            cached = _PROBE_CACHE.get(key)
            if cached is not None:
                self.fold(cached)
                self.nprobes += 1
                return dict(cached)
        raw = _tile_scores(tiles, small, abs_eb, config, names, threads)
        if key is not None:
            _PROBE_CACHE.put(key, dict(raw))
        self.fold(raw)
        self.nprobes += 1
        return raw

    def refresh_probe(
        self,
        data: np.ndarray,
        abs_eb: float,
        config: STZConfig,
        names: tuple[str, ...],
        threads: int | None = None,
    ) -> dict[str, float]:
        """Cheap bandit refresh: re-score one seeded challenger.

        The epsilon-greedy cadence used to re-run the *full* probe —
        most of ``auto``'s streaming overhead.  A refresh instead draws
        one non-leader candidate (seeded, deterministic) and scores
        only it with the same marginal-bits formula, folding the result
        into its EMA; the leader needs no re-measurement because every
        committed frame feeds its achieved bits-per-value back through
        :meth:`observe` for free.  A challenger that now beats the
        leader's EMA wins the next :meth:`rank` call.
        """
        order = self.rank(names)
        challengers = [n for n in names if n != order[0]]
        if not challengers:
            return {}
        pick = challengers[int(self._rng.integers(len(challengers)))]
        tiles, small = _probe_tiles(data)
        raw = _tile_scores(tiles, small, abs_eb, config, (pick,), threads)
        self.fold(raw)
        return raw

    def observe(self, name: str, bpv: float) -> None:
        """Fold a committed frame's achieved bits-per-value into the
        chosen codec's EMA — free, full-array evidence that keeps the
        incumbent's score honest between probes."""
        self.fold({name: float(bpv)})

    def fold(self, raw: dict[str, float]) -> None:
        """Fold raw bits-per-value scores into the per-codec EMAs (the
        path every probe/refresh/observation goes through; also how the
        streaming engine applies label-cached scores as a prior)."""
        for name, bpv in raw.items():
            old = self.scores.get(name)
            self.scores[name] = (
                bpv if old is None
                else self.decay * old + (1.0 - self.decay) * bpv
            )

    def explore_draw(self) -> bool:
        """Seeded epsilon-greedy coin (one deterministic draw)."""
        return float(self._rng.random()) < self.explore

    def rank(self, shortlist: tuple[str, ...]) -> list[str]:
        """Shortlist ordered best-scored first; unscored names keep
        their shortlist order after every scored one; the certified STZ
        fallback is always present and always last when unscored."""
        scored = sorted(
            (self.scores[n], n) for n in shortlist if n in self.scores
        )
        order = [n for _, n in scored]
        order += [n for n in shortlist if n not in self.scores]
        if "stz" not in order:
            order.append("stz")
        return order


# ---------------------------------------------------------------------------
# bound verification and envelope round-trip
# ---------------------------------------------------------------------------

def bound_holds(orig: np.ndarray, recon: np.ndarray, abs_eb: float) -> bool:
    """Exact float64 check of the hard bound, non-finite points
    bit-exact — the engine's commit-time gate (the boolean twin of the
    test suite's ``assert_error_bounded``)."""
    if recon.shape != orig.shape or recon.dtype != orig.dtype:
        return False
    if orig.size == 0:
        return True
    o = orig.reshape(-1)
    r = recon.reshape(-1)
    finite = np.isfinite(o)
    if not finite.all():
        if o[~finite].tobytes() != r[~finite].tobytes():
            return False
        if not finite.any():
            return True
        o = o[finite]
        r = r[finite]
    # one fused upcast-subtract: exact float64 of (f64(r) - f64(o))
    err = np.abs(np.subtract(r, o, dtype=np.float64))
    return bool(err.max() <= abs_eb)


def select_and_compress(
    data: np.ndarray,
    abs_eb: float,
    config: STZConfig,
    threads: int | None = None,
    selector: CodecSelector | None = None,
    shortlist: tuple[str, ...] | None = None,
) -> tuple[str, bytes, np.ndarray]:
    """Pick a backend for ``data``, compress, verify, return
    ``(name, blob, recon)``.

    The ranking comes from a full probe (fresh selector) or the
    caller's selector state (streaming reuse); the first candidate
    whose verified reconstruction holds the bound wins.  STZ certifies
    the bound by construction, so the loop always terminates with a
    valid container.
    """
    selector = selector or CodecSelector(seed=config.select_seed)
    if shortlist is None:
        probe = probe_features(data, abs_eb)
        shortlist = SHORTLISTS[probe.label]
        selector.probe(
            data, abs_eb, config, shortlist,
            threads=threads, label=probe.label,
        )
    last_err: Exception | None = None
    for name in selector.rank(shortlist):
        cand = CANDIDATES[name]
        try:
            blob, recon = cand.compress_with_recon(
                data, abs_eb, config, threads
            )
        except (ValueError, TypeError) as exc:
            last_err = exc
            continue
        if bound_holds(data, recon, abs_eb):
            return name, blob, recon
    if last_err is not None:
        # every candidate rejected the input (e.g. 9+ dimensions);
        # surface the final — STZ — rejection instead of burying it
        raise last_err
    raise AssertionError("unreachable: the STZ fallback certifies the bound")


def compress_selected(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    threads: int | None = None,
) -> bytes:
    """Single-array entry point for fixed non-STZ codecs and ``auto``;
    returns an 'STZC' envelope."""
    config = config or STZConfig(codec="auto")
    data = as_float_array(data)
    abs_eb = resolve_eb(data, eb, eb_mode)
    if config.codec != "auto":
        cand = CANDIDATES[config.codec]
        blob = cand.compress(data, abs_eb, config, threads)
        return wrap_selected(cand.codec_id, blob)
    name, blob, _ = select_and_compress(data, abs_eb, config, threads)
    return wrap_selected(CANDIDATES[name].codec_id, blob)


def decode_by_id(
    codec_id: int,
    payload: bytes | memoryview,
    threads: int | None = None,
) -> np.ndarray:
    """Decode a payload by container codec id (unknown ids were already
    rejected by the container layer; reject again for direct callers)."""
    if codec_id not in CODEC_NAMES:
        raise ValueError(f"unknown codec id {codec_id}")
    name = CODEC_NAMES[codec_id]
    if name == "stz":
        return stz_decompress(payload, threads=threads)
    return CANDIDATES[name].decompress(payload)


def decompress_selected(
    source: bytes | memoryview, threads: int | None = None
) -> np.ndarray:
    """Decode an 'STZC' envelope produced by :func:`compress_selected`."""
    codec_id, payload = unwrap_selected(source)
    return decode_by_id(codec_id, payload, threads)
