"""Archive integrity: structured corruption errors, scrubbing, repair.

This module is the read-side half of the integrity layer whose on-disk
format lives in :mod:`repro.core.stream` (DESIGN.md §9):

* **Errors** — :class:`ChunkCorruptionError` / :class:`FrameCorruptionError`
  carry the failing unit's index and codec so a partial-failure report
  is actionable (which chunk of which archive, encoded by what).  Both
  pickle cleanly across process boundaries — the chunked decoder's fork
  workers raise them.
* **Decode reports** — :class:`DecodeReport` accumulates the failures a
  fault-tolerant decode (``on_error="skip"|"fill"``) degraded over, so
  callers can distinguish "clean" from "NaN-filled two chunks".
* **Scrubbing** — :func:`verify_archive` walks any container version
  and classifies every unit as ``ok`` (checksum present and matching),
  ``unchecked`` (written before checksums existed — the backward-compat
  state every pre-existing archive is in), or ``corrupt``.  It is the
  only place the whole-archive digest is checked: doing that on every
  open would read the entire file and defeat chunk-granular random
  access.
* **Repair** — :func:`repair_archive` rebuilds the table/trailer of a
  ``recoverable=True`` archive from its 'STZR' record prefixes by
  forward scan, salvaging the longest valid prefix of a stream
  truncated mid-append (crash before ``finalize()``).  The rebuild
  re-runs the normal writer, so a repaired archive is byte-identical to
  what the writer would have produced for the surviving frames.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.core.stream import (
    _DIGEST,
    _FLAG_BYTE_OFFSET,
    _FLAG_CHECKSUM,
    _MULTI_FIXED,
    _RECORD,
    _SHARD_FIXED,
    CODEC_NAMES,
    FRAME_CHECKSUM,
    MAGIC,
    MULTI_CODEC,
    MULTI_MAGIC,
    MULTI_RECOVER,
    MultiFrameReader,
    MultiFrameWriter,
    RECORD_MAGIC,
    SELECT_CHECKSUM,
    SELECT_MAGIC,
    SHARD_MAGIC,
    SHARD_RECOVER,
    ShardedReader,
    ShardedWriter,
)
from repro.util.validation import dtype_from_code

__all__ = [
    "ChunkCorruptionError",
    "FrameCorruptionError",
    "DecodeReport",
    "UnitStatus",
    "VerifyReport",
    "RepairReport",
    "verify_archive",
    "repair_archive",
]


class ChunkCorruptionError(ValueError):
    """A chunk of a sharded archive failed verification or decode.

    Carries the chunk index and codec name so multi-chunk failure
    reports are actionable.  Defined with an explicit ``__reduce__``:
    fork workers raise these and the default ``ValueError`` reduction
    would drop the structured fields in transit.
    """

    def __init__(self, chunk_index: int, codec: str, detail: str):
        self.chunk_index = int(chunk_index)
        self.codec = codec
        self.detail = detail
        super().__init__(f"chunk {chunk_index} ({codec}): {detail}")

    def __reduce__(self):
        return (type(self), (self.chunk_index, self.codec, self.detail))


class FrameCorruptionError(ValueError):
    """A frame of a multi-frame archive failed verification or decode."""

    def __init__(self, frame_index: int, codec: str, detail: str):
        self.frame_index = int(frame_index)
        self.codec = codec
        self.detail = detail
        super().__init__(f"frame {frame_index} ({codec}): {detail}")

    def __reduce__(self):
        return (type(self), (self.frame_index, self.codec, self.detail))


@dataclass
class DecodeReport:
    """What a fault-tolerant decode degraded over.

    Passed as ``report=`` to the decode entry points; populated in
    place so one report can span a whole stream (every frame's chunk
    failures accumulate into it).
    """

    #: the Chunk/FrameCorruptionError of every unit that was skipped or
    #: NaN-filled instead of decoded
    failures: list = field(default_factory=list)
    #: units (chunks/frames) the decode attempted
    attempted: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def nfailed(self) -> int:
        return len(self.failures)

    def record(self, err: Exception) -> None:
        self.failures.append(err)

    def summary(self) -> str:
        if self.ok:
            return f"{self.attempted} units decoded, no failures"
        lines = [
            f"{self.nfailed} of {self.attempted} units failed:",
        ]
        lines += [f"  {err}" for err in self.failures]
        return "\n".join(lines)


@dataclass(frozen=True)
class UnitStatus:
    """Verification outcome for one archive unit."""

    kind: str  # "archive" | "frame" | "chunk" | "digest"
    index: int | None
    status: str  # "ok" | "unchecked" | "corrupt"
    detail: str = ""
    codec: str | None = None

    def describe(self) -> str:
        where = self.kind if self.index is None else f"{self.kind} {self.index}"
        codec = f" ({self.codec})" if self.codec else ""
        tail = f": {self.detail}" if self.detail else ""
        return f"{where}{codec}: {self.status}{tail}"


@dataclass(frozen=True)
class VerifyReport:
    """The full scrub result for one archive."""

    fmt: str  # "stz1" | "stzc" | "multiframe" | "sharded"
    units: tuple[UnitStatus, ...]

    @property
    def corrupt(self) -> tuple[UnitStatus, ...]:
        return tuple(u for u in self.units if u.status == "corrupt")

    @property
    def unchecked(self) -> tuple[UnitStatus, ...]:
        return tuple(u for u in self.units if u.status == "unchecked")

    @property
    def ok(self) -> bool:
        """No corruption found (unchecked units do not fail a scrub —
        they are the documented state of pre-checksum archives)."""
        return not self.corrupt

    def summary(self) -> str:
        counts = {"ok": 0, "unchecked": 0, "corrupt": 0}
        for u in self.units:
            counts[u.status] += 1
        parts = [f"{n} {s}" for s, n in counts.items() if n]
        return f"{self.fmt}: {len(self.units)} units ({', '.join(parts)})"


def _crc(data) -> int:
    return zlib.crc32(data)


def _verify_single(blob: memoryview, fmt: str) -> VerifyReport:
    """Scrub an STZ1 container or STZC envelope (trailing-CRC layout)."""
    off = _FLAG_BYTE_OFFSET[MAGIC if fmt == "stz1" else SELECT_MAGIC]
    bit = _FLAG_CHECKSUM if fmt == "stz1" else SELECT_CHECKSUM
    if len(blob) <= off:
        unit = UnitStatus("archive", None, "corrupt", "truncated header")
    elif not blob[off] & bit:
        unit = UnitStatus("archive", None, "unchecked")
    elif len(blob) < off + 5:
        unit = UnitStatus("archive", None, "corrupt", "truncated checksum")
    else:
        (stored,) = struct.unpack("<I", blob[-4:])
        computed = _crc(blob[:-4])
        if computed == stored:
            unit = UnitStatus("archive", None, "ok")
        else:
            unit = UnitStatus(
                "archive",
                None,
                "corrupt",
                f"checksum mismatch (stored 0x{stored:08x}, "
                f"computed 0x{computed:08x})",
            )
    return VerifyReport(fmt, (unit,))


def _digest_unit(blob: memoryview, reader) -> UnitStatus:
    if not reader.has_digest:
        return UnitStatus("digest", None, "unchecked")
    computed = _crc(blob[: reader.digest_offset])
    if computed == reader.stored_digest:
        return UnitStatus("digest", None, "ok")
    return UnitStatus(
        "digest",
        None,
        "corrupt",
        f"whole-archive digest mismatch (stored "
        f"0x{reader.stored_digest:08x}, computed 0x{computed:08x})",
    )


def _verify_sharded_units(blob: memoryview) -> list[UnitStatus]:
    """Per-chunk + digest statuses of a v3 archive (shared between the
    top-level scrub and the recursive scrub of sharded v2 frames)."""
    try:
        reader = ShardedReader(blob)
    except ValueError as exc:
        return [UnitStatus("archive", None, "corrupt", str(exc))]
    units = []
    for entry in reader.chunks:
        try:
            payload = reader.read_chunk(entry.index)
        except ValueError as exc:
            units.append(
                UnitStatus("chunk", entry.index, "corrupt", str(exc), entry.codec)
            )
            continue
        if not entry.has_checksum:
            units.append(
                UnitStatus("chunk", entry.index, "unchecked", "", entry.codec)
            )
        elif _crc(payload) == entry.crc:
            units.append(UnitStatus("chunk", entry.index, "ok", "", entry.codec))
        else:
            units.append(
                UnitStatus(
                    "chunk",
                    entry.index,
                    "corrupt",
                    "payload checksum mismatch",
                    entry.codec,
                )
            )
    units.append(_digest_unit(blob, reader))
    return units


def _verify_multiframe(blob: memoryview) -> VerifyReport:
    try:
        reader = MultiFrameReader(blob)
    except ValueError as exc:
        return VerifyReport(
            "multiframe", (UnitStatus("archive", None, "corrupt", str(exc)),)
        )
    units: list[UnitStatus] = []
    for info in reader.frames:
        try:
            payload = reader.read_frame(info.index)
        except ValueError as exc:
            units.append(
                UnitStatus("frame", info.index, "corrupt", str(exc), info.codec)
            )
            continue
        if info.has_checksum:
            if _crc(payload) == info.crc:
                status = UnitStatus("frame", info.index, "ok", "", info.codec)
            else:
                status = UnitStatus(
                    "frame",
                    info.index,
                    "corrupt",
                    "payload checksum mismatch",
                    info.codec,
                )
        else:
            status = UnitStatus("frame", info.index, "unchecked", "", info.codec)
        units.append(status)
        if info.is_sharded and status.status != "corrupt":
            # a sharded frame is a whole v3 archive: scrub its chunks
            # too, annotated with the frame they belong to
            for u in _verify_sharded_units(memoryview(payload)):
                units.append(
                    UnitStatus(
                        u.kind,
                        u.index,
                        u.status,
                        (
                            f"frame {info.index}: {u.detail}"
                            if u.detail
                            else f"frame {info.index}"
                        ),
                        u.codec,
                    )
                )
    units.append(_digest_unit(blob, reader))
    return VerifyReport("multiframe", tuple(units))


def verify_archive(source: bytes | bytearray | memoryview) -> VerifyReport:
    """Scrub any STZ archive; never raises on corrupt input.

    Every verifiable unit (chunk, frame, whole-archive digest, trailing
    CRC) is classified as ``ok`` / ``unchecked`` / ``corrupt``; archives
    written before checksums existed come back all-``unchecked`` with
    ``report.ok`` still true — absence of checksums is not corruption.
    """
    blob = memoryview(source)
    magic = bytes(blob[:4])
    if magic == MULTI_MAGIC:
        return _verify_multiframe(blob)
    if magic == SHARD_MAGIC:
        return VerifyReport("sharded", tuple(_verify_sharded_units(blob)))
    if magic == MAGIC:
        return _verify_single(blob, "stz1")
    if magic == SELECT_MAGIC:
        return _verify_single(blob, "stzc")
    return VerifyReport(
        "unknown",
        (UnitStatus("archive", None, "corrupt", "not an STZ container"),),
    )


# ---------------------------------------------------------------------------
# forward-scan repair of recoverable archives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RepairReport:
    """What :func:`repair_archive` salvaged."""

    fmt: str  # "multiframe" | "sharded"
    nrecovered: int  # frames/chunks in the rebuilt archive
    bytes_in: int
    bytes_out: int
    #: the input was already a complete, finalized archive (the rebuild
    #: reproduced it byte-exactly)
    intact: bool

    def summary(self) -> str:
        if self.intact:
            return f"{self.fmt}: intact, {self.nrecovered} units"
        return (
            f"{self.fmt}: recovered {self.nrecovered} units "
            f"({self.bytes_in} B damaged -> {self.bytes_out} B repaired)"
        )


def _scan_records(
    blob: memoryview, start: int
) -> list[tuple[memoryview, int, int]]:
    """Forward-scan 'STZR' records from ``start``; returns the longest
    valid prefix as (payload, flags, codec_id) tuples.

    The scan stops at the first record whose magic, length bound or
    payload CRC fails — everything after a torn write is untrusted, so
    a mid-stream corruption truncates the recovery there (longest
    *valid prefix*, by design).
    """
    out: list[tuple[memoryview, int, int]] = []
    pos = start
    while pos + _RECORD.size <= len(blob):
        magic, length, crc, flags, codec_id = _RECORD.unpack(
            blob[pos : pos + _RECORD.size]
        )
        if magic != RECORD_MAGIC:
            break
        payload_start = pos + _RECORD.size
        if payload_start + length > len(blob):
            break
        payload = blob[payload_start : payload_start + length]
        if zlib.crc32(payload) != crc:
            break
        if codec_id not in CODEC_NAMES:
            break
        out.append((payload, flags, codec_id))
        pos = payload_start + length
    return out


def repair_archive(source: bytes | bytearray | memoryview) -> tuple[
    bytes, RepairReport
]:
    """Rebuild a recoverable archive's table/trailer by forward scan.

    Only archives written with ``recoverable=True`` carry the per-unit
    'STZR' records the scan needs; anything else raises.  Multi-frame
    streams are salvaged up to the last complete frame.  Sharded
    archives can only be repaired when *every* chunk survived (a v3
    archive is one array — the chunk table must cover the whole plan),
    which handles the lost-trailer crash but not payload loss.
    """
    blob = memoryview(source)
    magic = bytes(blob[:4])
    if magic == MULTI_MAGIC:
        if len(blob) < _MULTI_FIXED.size:
            raise ValueError("multi-frame head truncated; unrecoverable")
        _, version, flags, _ = _MULTI_FIXED.unpack(blob[: _MULTI_FIXED.size])
        if not flags & MULTI_RECOVER:
            raise ValueError(
                "archive was not written in recoverable mode (no 'STZR' "
                "records to scan); only recoverable=True archives can be "
                "repaired"
            )
        recovered = _scan_records(blob, _MULTI_FIXED.size)
        if not recovered:
            raise ValueError("no complete frames could be recovered")
        writer = MultiFrameWriter(
            flags=flags & MULTI_CODEC, checksum=True, recoverable=True
        )
        for payload, fflags, codec_id in recovered:
            # the writer re-derives the checksum flag and CRC itself —
            # that is what makes the rebuild byte-exact vs. a reference
            # archive of the same frames
            writer.add_frame(payload, fflags & ~FRAME_CHECKSUM, codec_id)
        rebuilt = writer.getvalue()
        return rebuilt, RepairReport(
            "multiframe",
            len(recovered),
            len(blob),
            len(rebuilt),
            intact=rebuilt == bytes(blob),
        )
    if magic == SHARD_MAGIC:
        if len(blob) < _SHARD_FIXED.size:
            raise ValueError("sharded head truncated; unrecoverable")
        _, version, flags, dt, ndim = _SHARD_FIXED.unpack(
            blob[: _SHARD_FIXED.size]
        )
        head_size = _SHARD_FIXED.size + 16 * ndim
        if len(blob) < head_size:
            raise ValueError("sharded head truncated; unrecoverable")
        if not flags & SHARD_RECOVER:
            raise ValueError(
                "archive was not written in recoverable mode (no 'STZR' "
                "records to scan); only recoverable=True archives can be "
                "repaired"
            )
        dims = struct.unpack(
            f"<{2 * ndim}Q", blob[_SHARD_FIXED.size : head_size]
        )
        shape, chunk_shape = dims[:ndim], dims[ndim:]
        recovered = _scan_records(blob, head_size)
        writer = ShardedWriter(
            shape,
            dtype_from_code(dt),
            chunk_shape,
            checksum=True,
            recoverable=True,
        )
        if len(recovered) != writer.plan.nchunks:
            raise ValueError(
                f"only {len(recovered)} of {writer.plan.nchunks} chunks "
                "recoverable; a sharded archive is one array and cannot "
                "be partially rebuilt (use on_error='fill' decode for "
                "partial extraction instead)"
            )
        for payload, _fflags, codec_id in recovered:
            writer.add_chunk(payload, codec_id)
        rebuilt = writer.getvalue()
        return rebuilt, RepairReport(
            "sharded",
            len(recovered),
            len(blob),
            len(rebuilt),
            intact=rebuilt == bytes(blob),
        )
    raise ValueError(
        "repair applies to multi-frame ('STZM') and sharded ('STZS') "
        "archives; single-array containers have no table to rebuild"
    )
