"""The STZ compression/decompression pipeline (paper §3.1-3.2, Figure 2).

Compression walks the hierarchy coarsest-first:

1. level 1 (the stride ``2**(levels-1)`` lattice) is compressed with the
   embedded SZ3 codec at the tightest error bound of the adaptive
   schedule, then *decompressed* so every later prediction uses exactly
   the values the decompressor will have;
2. each finer level's ``2**d - 1`` parity sub-blocks are predicted from
   the reconstructed coarser lattice (multi-dimensional interpolation),
   their residuals quantized and Huffman-encoded per sub-block — the
   per-sub-block segmentation is what later enables selective decoding;
3. the reconstructed sub-blocks are interleaved with the coarse lattice
   to form the next level's prediction basis.

Decompression mirrors this and may stop at any level (progressive).
All per-sub-block work at one level is independent, so both directions
accept a ``threads`` argument (the paper's OMP mode).

The hot kernels under this pipeline — quantization, Huffman tree and
packing, interpolation combination — engage compiled implementations
through the ``repro.util.jit`` facade when available (DESIGN.md §10);
the facade's contract is byte-identical output, so nothing at this
layer branches on it.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.config import STZConfig
from repro.core.partition import (
    Offset,
    interleave,
    lattice_shape,
    level_strides,
    nonzero_offsets,
    subblock_shape,
    subblock_view_in,
)
from repro.core.parallel import effective_threads, parallel_capacity, pmap
from repro.core.predict import (
    populate_shift_cache,
    predict_block,
    predict_dequant_block,
    uses_shift_cache,
)
from repro.core.stream import (
    KIND_L1_SZ3,
    KIND_RESIDUAL_Q,
    KIND_RESIDUAL_SZ3,
    KIND_SZ3_BLOCK,
    SegmentInfo,
    StreamReader,
    StreamWriter,
)
from repro.encoding.huffman import (
    huffman_decode,
    huffman_decode_many,
    huffman_encode,
    huffman_encode_many,
)
from repro.encoding.lossless import compress_bytes, decompress_bytes
from repro.encoding.quantizer import (
    _f32_mode,
    dequantize_many,
    quantize,
    quantize_many,
)
from repro.sz3.compressor import (
    sz3_compress,
    sz3_compress_with_recon,
    sz3_decompress,
)
from repro.util.sections import pack_sections, unpack_sections
from repro.util.timer import StageTimer
from repro.util.validation import as_float_array, resolve_eb

_ZERO_EPS_LIMIT = 8  # eps mask fits u8
#: per-sub-block element count above which a level is encoded block by
#: block even serially: level-wide staging would roughly double peak
#: memory while the fused stages no longer amortize anything at that
#: size (quantize_many bypasses fusion for large blocks anyway)
_LEVEL_FUSE_LIMIT = 1 << 23


# ---------------------------------------------------------------------------
# residual segment payloads
# ---------------------------------------------------------------------------

def _encode_residual_q(
    values: np.ndarray,
    pred: np.ndarray,
    eb: float,
    config: STZConfig,
) -> tuple[bytes, np.ndarray]:
    """Quantize + Huffman one sub-block; returns (payload, recon).

    Kept as the single-block reference path (ablations, benchmarks);
    the pipeline itself goes through :func:`_encode_residual_level`.
    """
    qb = quantize(values, pred, eb, config.quant_radius, config.f32_quant)
    return (
        _residual_payload(huffman_encode(qb.codes), qb, config),
        qb.recon.reshape(values.shape),
    )


def _residual_payload(huff_blob: bytes, qb, config: STZConfig) -> bytes:
    """Assemble one sub-block payload from its Huffman blob + outliers.

    Huffman output is near entropy-optimal, so the lossless backend is
    applied in probe mode: segments that will not deflate skip the full
    zlib pass and are stored raw (same tagged format either way).
    """
    return pack_sections(
        [
            compress_bytes(huff_blob, config.zlib_level, probe=True),
            struct.pack("<Q", qb.outlier_pos.size)
            + qb.outlier_pos.astype(np.uint32).tobytes()
            + qb.outlier_val.tobytes(),
        ]
    )


def _encode_residual_level(
    blocks: list[np.ndarray],
    preds: list[np.ndarray],
    eb: float,
    config: STZConfig,
) -> tuple[list[bytes], list[np.ndarray]]:
    """Quantize + Huffman all sub-blocks of one level, batched.

    The encode-side mirror of :func:`_decode_level`: one fused
    :func:`quantize_many` pass and one fused :func:`huffman_encode_many`
    pack cover every sub-block, so per-stage numpy dispatch is paid once
    per level.  Payload bytes are identical to per-block
    :func:`_encode_residual_q`.
    """
    qbs = quantize_many(blocks, preds, eb, config.quant_radius, config.f32_quant)
    huffs = huffman_encode_many([qb.codes for qb in qbs])
    payloads = [
        _residual_payload(huff, qb, config) for huff, qb in zip(huffs, qbs)
    ]
    return payloads, [qb.recon for qb in qbs]


def _split_residual_payload(
    payload: bytes | memoryview, dtype: np.dtype
) -> tuple[bytes, np.ndarray, np.ndarray]:
    """Parse one sub-block payload into (huffman blob, out_pos, out_val).

    Parses the outlier section straight from the zero-copy section
    view — the returned arrays alias the container buffer.
    """
    sections = unpack_sections(payload)
    blob = sections[1]
    (n_out,) = struct.unpack_from("<Q", blob, 0)
    pos = np.frombuffer(blob, dtype=np.uint32, count=n_out, offset=8).astype(
        np.int64
    )
    val = np.frombuffer(blob, dtype=dtype, offset=8 + 4 * n_out)
    return decompress_bytes(sections[0]), pos, val


def _decode_residual_codes(
    payload: bytes | memoryview, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Huffman-decode one sub-block; returns (codes, out_pos, out_val).

    This is the paper's "L{2,3} dec." stage: it decodes the *whole*
    sub-block (intra-sub-block encoding has dependencies) but performs
    no prediction work.
    """
    huff, pos, val = _split_residual_payload(payload, dtype)
    return huffman_decode(huff), pos, val


# ---------------------------------------------------------------------------
# compression
# ---------------------------------------------------------------------------

def stz_compress(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    threads: int | None = None,
) -> bytes:
    """Compress ``data`` with finest-level absolute bound ``abs(eb)``.

    Every reconstructed value is within the user bound: finer levels use
    exactly ``abs_eb`` and coarser levels tighter bounds (when
    ``config.adaptive_eb``), so the container-wide guarantee is
    ``max|x - x_hat| <= abs_eb``.
    """
    return stz_compress_with_recon(data, eb, eb_mode, config, threads)[0]


def stz_compress_with_recon(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    threads: int | None = None,
) -> tuple[bytes, np.ndarray]:
    """:func:`stz_compress` plus the decompressor's exact reconstruction.

    The encoder already tracks the decoded values level by level (it
    must, to keep prediction consistent), so the final prediction basis
    ``C`` *is* the full-resolution array :func:`stz_decompress` will
    produce — bit for bit.  Callers that need both, like the streaming
    subsystem's closed-loop temporal predictor
    (:mod:`repro.core.streaming`), avoid a decompression pass per frame.
    The ``partition_only`` ablation tracks no reconstruction and falls
    back to an explicit round-trip.
    """
    config = config or STZConfig()
    if config.codec != "stz":
        # codec dispatch (fixed foreign backends, "auto" selection)
        # happens a layer up; silently running the STZ cascade under a
        # config that names another backend would mislabel the output
        raise ValueError(
            f"config.codec={config.codec!r}: use repro.core.api.compress "
            "for codec dispatch; the STZ pipeline only encodes codec='stz'"
        )
    data = as_float_array(data)
    if data.ndim > _ZERO_EPS_LIMIT:
        raise ValueError("STZ supports at most 8 dimensions")
    abs_eb = resolve_eb(data, eb, eb_mode)
    writer = StreamWriter(data.shape, data.dtype, config, abs_eb)
    offsets = nonzero_offsets(data.ndim)
    strides = level_strides(config.levels)

    if config.partition_only:
        _compress_partition_only(data, abs_eb, config, writer, threads)
        blob = writer.tobytes()
        return blob, stz_decompress(blob)

    # level 1: embedded SZ3 on the coarsest lattice; the encoder tracks
    # the decoder's exact reconstruction, so no decompression round-trip
    eb1 = config.level_eb(abs_eb, 1)
    A = np.ascontiguousarray(data[tuple(slice(0, None, strides[0]) for _ in data.shape)])
    seg1, C = sz3_compress_with_recon(
        A, eb1, "abs", config.sz3_interp, config.quant_radius, config.zlib_level
    )
    writer.add_segment(1, (0,) * data.ndim, KIND_L1_SZ3, seg1)

    for level in range(2, config.levels + 1):
        stride = strides[level - 1]
        fine_shape = lattice_shape(data.shape, stride)
        ebl = config.level_eb(abs_eb, level)

        if config.residual_codec == "quantize":
            C = _compress_level_q(
                data, C, level, stride, fine_shape, ebl, config, writer,
                offsets, threads,
            )
            continue

        def work(eps: Offset, _C=C, _stride=stride, _ebl=ebl, _fs=fine_shape):
            B = np.ascontiguousarray(subblock_view_in(data, eps, _stride))
            ts = subblock_shape(_fs, eps)
            if B.size == 0:
                return eps, b"", np.empty(ts, dtype=data.dtype)
            pred = predict_block(
                _C, eps, ts, config.interp, config.cubic_mode
            )
            diff = B - pred
            payload = sz3_compress(
                diff,
                _ebl,
                "abs",
                config.sz3_interp,
                config.quant_radius,
                config.zlib_level,
            )
            recon = pred + sz3_decompress(payload)
            return eps, payload, recon

        results = pmap(work, offsets, threads)
        blocks = {}
        for eps, payload, recon in results:
            writer.add_segment(level, eps, KIND_RESIDUAL_SZ3, payload)
            blocks[eps] = recon
        C = interleave(C, blocks, fine_shape)

    return writer.tobytes(), C


def _compress_level_q(
    data: np.ndarray,
    C: np.ndarray,
    level: int,
    stride: int,
    fine_shape: tuple[int, ...],
    ebl: float,
    config: STZConfig,
    writer: StreamWriter,
    offsets: list[Offset],
    threads: int | None,
) -> np.ndarray:
    """One level of the batched quantize-residual encode path.

    Serial mode fuses stages across the level: prediction per
    sub-block, then one :func:`quantize_many` pass and one
    :func:`huffman_encode_many` pack — the encode counterpart of
    :func:`_decode_level`'s batched entropy decode.  Threaded mode
    (the paper's OMP) instead runs the whole per-sub-block chain in
    the pool, spreading prediction, quantization, Huffman *and* zlib
    across cores; because the fused and per-block primitives are
    bit-identical, both modes emit the same container bytes.
    """
    shift_cache: dict = {}  # clamp-shifts shared by all parity offsets

    def block_work(eps: Offset):
        """Per-sub-block chain: predict, quantize, encode, assemble."""
        B = np.ascontiguousarray(subblock_view_in(data, eps, stride))
        ts = subblock_shape(fine_shape, eps)
        if B.size == 0:
            return eps, b"", np.empty(ts, dtype=data.dtype)
        pred = predict_block(
            C, eps, ts, config.interp, config.cubic_mode, shift_cache
        )
        payload, recon = _encode_residual_q(B, pred, ebl, config)
        return eps, payload, recon

    level_points = 1
    for n in fine_shape:
        level_points *= n
    huge = level_points // (2 ** data.ndim) > _LEVEL_FUSE_LIMIT
    threaded = effective_threads(threads) > 1 and parallel_capacity() > 1
    if huge or threaded:
        # threaded (the paper's OMP: the whole chain spreads across
        # cores) or huge sub-blocks (level-wide staging would hold
        # ~2x the data live while per-stage fusion no longer buys
        # anything at that size) — run the per-block chain, which is
        # bit-identical to the fused path
        if threaded and uses_shift_cache(config.interp, config.cubic_mode):
            # fill the cache before the pool spawns so the workers only
            # ever read it (lazy fill is a check-then-insert race)
            populate_shift_cache(C, shift_cache)
        blocks = {}
        for eps, payload, recon in pmap(block_work, offsets, threads):
            writer.add_segment(level, eps, KIND_RESIDUAL_Q, payload)
            blocks[eps] = recon
        return interleave(C, blocks, fine_shape)

    def pred_work(eps: Offset):
        B = np.ascontiguousarray(subblock_view_in(data, eps, stride))
        ts = subblock_shape(fine_shape, eps)
        if B.size == 0:
            return eps, ts, None, None
        pred = predict_block(
            C, eps, ts, config.interp, config.cubic_mode, shift_cache
        )
        return eps, ts, B, pred

    items = [pred_work(eps) for eps in offsets]
    live = [(eps, ts, B, pred) for eps, ts, B, pred in items if B is not None]
    payloads, recons = _encode_residual_level(
        [B for _, _, B, _ in live],
        [pred for _, _, _, pred in live],
        ebl,
        config,
    )
    by_eps = {
        eps: (payload, recon.reshape(ts))
        for (eps, ts, _, _), payload, recon in zip(live, payloads, recons)
    }
    blocks = {}
    for eps, ts, _B, _pred in items:
        payload, recon = by_eps.get(
            eps, (b"", np.empty(ts, dtype=data.dtype))
        )
        writer.add_segment(level, eps, KIND_RESIDUAL_Q, payload)
        blocks[eps] = recon
    return interleave(C, blocks, fine_shape)


def _compress_partition_only(
    data: np.ndarray,
    abs_eb: float,
    config: STZConfig,
    writer: StreamWriter,
    threads: int | None,
) -> None:
    """Figure 5 "Partition" baseline: every sub-block through SZ3
    independently, no cross-level prediction."""
    strides = level_strides(config.levels)
    tasks: list[tuple[int, Offset, np.ndarray]] = []
    A = np.ascontiguousarray(
        data[tuple(slice(0, None, strides[0]) for _ in data.shape)]
    )
    tasks.append((1, (0,) * data.ndim, A))
    for level in range(2, config.levels + 1):
        stride = strides[level - 1]
        for eps in nonzero_offsets(data.ndim):
            B = np.ascontiguousarray(subblock_view_in(data, eps, stride))
            tasks.append((level, eps, B))

    def work(task):
        level, eps, block = task
        ebl = config.level_eb(abs_eb, level)
        if block.size == 0:
            return level, eps, b""
        return level, eps, sz3_compress(
            block,
            ebl,
            "abs",
            config.sz3_interp,
            config.quant_radius,
            config.zlib_level,
        )

    for level, eps, payload in pmap(work, tasks, threads):
        writer.add_segment(level, eps, KIND_SZ3_BLOCK, payload)


# ---------------------------------------------------------------------------
# decompression (full / progressive)
# ---------------------------------------------------------------------------

def stz_decompress(
    source: bytes | memoryview | "StreamReader",
    level: int | None = None,
    threads: int | None = None,
    timer: StageTimer | None = None,
) -> np.ndarray:
    """Reconstruct up to ``level`` (None = full resolution).

    ``level=1`` returns the coarsest lattice (1/64th of a 3D grid for 3
    levels) — the paper's progressive preview.  ``timer`` (optional)
    collects the per-stage breakdown of Table 4.
    """
    reader = source if isinstance(source, StreamReader) else StreamReader(source)
    header = reader.header
    config = header.config
    target = config.levels if level is None else level
    if not (1 <= target <= config.levels):
        raise ValueError(
            f"level must be in [1, {config.levels}], got {target}"
        )
    timer = timer if timer is not None else StageTimer()
    strides = level_strides(config.levels)
    offsets = nonzero_offsets(header.ndim)

    if config.partition_only:
        return _decompress_partition_only(reader, target, threads)

    seg1 = header.segments_at(1)[0]
    with timer.time("l1_sz3"):
        C = sz3_decompress(reader.read_segment(seg1))
    for lvl in range(2, target + 1):
        fine_shape = lattice_shape(header.shape, strides[lvl - 1])
        ebl = config.level_eb(header.abs_eb, lvl)
        segs = {s.eps: s for s in header.segments_at(lvl)}

        with timer.time(f"l{lvl}_decode"):
            decoded = _decode_level(reader, segs, offsets, header, config, threads)
        with timer.time(f"l{lvl}_predict"):
            threaded = (
                effective_threads(threads) > 1 and parallel_capacity() > 1
            )
            shift_cache: dict = {}
            if threaded and uses_shift_cache(config.interp, config.cubic_mode):
                # pre-fill serially so the pmap workers only read the
                # cache (lazy fill is a check-then-insert race)
                populate_shift_cache(C, shift_cache)

            if config.residual_codec == "quantize" and not threaded:
                blocks = _reconstruct_level_q(
                    C, decoded, fine_shape, ebl, config, header.dtype,
                    shift_cache,
                )
            else:
                def reconstruct(
                    item, _C=C, _fs=fine_shape, _ebl=ebl, _sc=shift_cache
                ):
                    eps, decoded_payload = item
                    if config.residual_codec == "quantize":
                        # single-item batch through the same helper the
                        # fused serial path uses, so the two decode
                        # paths cannot drift (they are bit-identical)
                        blk = _reconstruct_level_q(
                            _C, [item], _fs, _ebl, config, header.dtype,
                            _sc,
                        )
                        return eps, blk[eps]
                    ts = subblock_shape(_fs, eps)
                    if decoded_payload is None:
                        return eps, np.empty(ts, dtype=header.dtype)
                    pred = predict_block(
                        _C, eps, ts, config.interp, config.cubic_mode, _sc
                    )
                    return eps, pred + decoded_payload  # sz3 residual array

                blocks = dict(pmap(reconstruct, decoded, threads))
        with timer.time(f"l{lvl}_reassemble"):
            C = interleave(C, blocks, fine_shape)
    return C


def _reconstruct_level_q(
    C: np.ndarray,
    decoded: list[tuple[Offset, object]],
    fine_shape: tuple[int, ...],
    ebl: float,
    config: STZConfig,
    dtype: np.dtype,
    shift_cache: dict,
) -> dict[Offset, np.ndarray]:
    """Predict + dequantize all sub-blocks of one level, batched.

    The decode-side mirror of :func:`_encode_residual_level`.  Each
    sub-block first tries the compiled fused
    :func:`~repro.core.predict.predict_dequant_block` kernel — predict
    combine and dequantize arithmetic in one GIL-releasing native pass,
    no materialized prediction array (DESIGN.md §10).  Sub-blocks the
    kernel declines run the reference: prediction per sub-block (it is
    geometry-bound), then a single fused :func:`dequantize_many` pass —
    bit-identical to the compiled path and to per-block
    :func:`dequantize`, since the core is element-wise (DESIGN.md §2).
    """
    f32_mode = config.f32_quant and _f32_mode(
        dtype, dtype, ebl, config.quant_radius
    )
    blocks: dict[Offset, np.ndarray] = {}
    live: list[tuple[Offset, tuple[int, ...]]] = []
    codes, preds, positions, values = [], [], [], []
    for eps, payload in decoded:
        ts = subblock_shape(fine_shape, eps)
        if payload is None:
            blocks[eps] = np.empty(ts, dtype=dtype)
            continue
        c, pos, val = payload
        rec = predict_dequant_block(
            C, eps, ts, config.interp, config.cubic_mode, shift_cache,
            c, ebl, config.quant_radius, f32_mode,
        )
        if rec is not None:
            if pos.size:
                rec.reshape(-1)[pos] = val
            blocks[eps] = rec
            continue
        pred = predict_block(
            C, eps, ts, config.interp, config.cubic_mode, shift_cache
        )
        live.append((eps, ts))
        codes.append(c)
        preds.append(pred)
        positions.append(pos)
        values.append(val)
    recons = dequantize_many(
        codes, preds, ebl, positions, values, config.quant_radius,
        config.f32_quant,
    )
    for (eps, ts), rec in zip(live, recons):
        blocks[eps] = rec.reshape(ts)
    return blocks


def _decode_payload(
    reader: StreamReader,
    seg: SegmentInfo,
    dtype: np.dtype,
    config: STZConfig,
):
    """Entropy-decode one segment (no prediction)."""
    if seg.length == 0:
        return None
    payload = reader.read_segment(seg)
    if seg.kind == KIND_RESIDUAL_Q:
        return _decode_residual_codes(payload, dtype)
    if seg.kind == KIND_RESIDUAL_SZ3:
        return sz3_decompress(payload)
    raise ValueError(f"unexpected segment kind {seg.kind}")


def _decode_level(
    reader: StreamReader,
    segs: dict[Offset, SegmentInfo],
    offsets: list[Offset],
    header,
    config: STZConfig,
    threads: int | None,
) -> list[tuple[Offset, object]]:
    """Entropy-decode all sub-blocks of one level.

    Quantized sub-blocks are batched into one
    :func:`huffman_decode_many` call.  With the compiled decoder that
    is one GIL-releasing native call per segment (threaded across the
    pool when ``threads`` asks for it); on the pure-NumPy reference it
    is a single interleaved decode loop for the whole level, which
    beats per-segment decoding even against a thread pool (the loop is
    numpy-dispatch-bound and holds the GIL, so batching amortizes the
    dispatch across every stream at once).
    """
    if config.residual_codec != "quantize":
        return pmap(
            lambda eps: (
                eps,
                _decode_payload(reader, segs[eps], header.dtype, config),
            ),
            offsets,
            threads,
        )
    parts = []
    huffs = []
    for eps in offsets:
        seg = segs[eps]
        if seg.length == 0:
            parts.append((eps, None, None, None))
            continue
        huff, pos, val = _split_residual_payload(
            reader.read_segment(seg), header.dtype
        )
        parts.append((eps, len(huffs), pos, val))
        huffs.append(huff)
    # threads fan the compiled per-segment decoders across a pool (the
    # kernels release the GIL); on the reference path the batched
    # lockstep loop ignores them — it already amortizes across streams
    decoded_codes = huffman_decode_many(huffs, threads=threads) if huffs else []
    out: list[tuple[Offset, object]] = []
    for eps, idx, pos, val in parts:
        if idx is None:
            out.append((eps, None))
        else:
            out.append((eps, (decoded_codes[idx], pos, val)))
    return out


def _decompress_partition_only(
    reader: StreamReader, target: int, threads: int | None
) -> np.ndarray:
    header = reader.header
    strides = level_strides(header.config.levels)
    seg1 = header.segments_at(1)[0]
    C = sz3_decompress(reader.read_segment(seg1))
    for lvl in range(2, target + 1):
        fine_shape = lattice_shape(header.shape, strides[lvl - 1])
        segs = header.segments_at(lvl)

        def work(seg, _fs=fine_shape):
            ts = subblock_shape(_fs, seg.eps)
            if seg.length == 0:
                return seg.eps, np.empty(ts, dtype=header.dtype)
            return seg.eps, sz3_decompress(reader.read_segment(seg))

        blocks = dict(pmap(work, segs, threads))
        C = interleave(C, blocks, fine_shape)
    return C


def level_output_shape(
    shape: tuple[int, ...], levels: int, level: int
) -> tuple[int, ...]:
    """Shape returned by :func:`stz_decompress` at ``level``."""
    return lattice_shape(shape, level_strides(levels)[level - 1])
