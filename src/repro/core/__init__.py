"""STZ core: hierarchical partition + prediction streaming compressor.

Public entry points:

* :class:`repro.core.config.STZConfig` — all knobs (levels, interpolation,
  adaptive error-bound ratio, ablation switches),
* :func:`repro.core.api.compress` / :func:`repro.core.api.decompress`,
* :class:`repro.core.api.STZCompressor` — object API with progressive and
  random-access decompression,
* :func:`repro.core.api.compress_stream` / :func:`repro.core.api.iter_decompress`
  and :class:`repro.core.streaming.StreamingCompressor` /
  :class:`repro.core.streaming.StreamingDecompressor` — time-step
  sequences in the multi-frame container,
* :func:`repro.core.api.compress_chunked` and
  :mod:`repro.core.chunked` — the chunked execution engine (sharded
  container v3): out-of-core compression, parallel chunk-level decode,
  chunk-granular random access,
* :mod:`repro.core.roi` — region-of-interest selection (Fig. 10).
"""

from repro.core.config import STZConfig

__all__ = ["STZConfig"]


def __getattr__(name):  # lazy: api pulls in every submodule
    if name in (
        "STZCompressor",
        "compress",
        "compress_chunked",
        "compress_stream",
        "decompress",
        "decompress_frame",
        "decompress_progressive",
        "decompress_roi",
        "iter_decompress",
        "StreamingCompressor",
        "StreamingDecompressor",
    ):
        from repro.core import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
