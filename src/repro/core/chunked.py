"""Chunked execution engine: out-of-core compression, parallel
chunk-level decode, and chunk-granular random access (container v3).

Every other path in the repo materializes the full array and runs one
monolithic pipeline over it.  This module decomposes the domain with a
:class:`~repro.core.partition.ChunkPlan` and runs the *unchanged*
per-array pipeline over each chunk independently:

* **compression** (:func:`compress_chunked`) accepts an in-memory
  array, a memory-mapped array, or an iterator of chunk arrays in plan
  order.  Each chunk is compressed exactly as a standalone array would
  be — ``codec="stz"`` produces an STZ1 blob, fixed foreign codecs and
  ``codec="auto"`` produce 'STZC' envelopes through the selection
  engine (:mod:`repro.core.select`) unchanged, including its
  process-wide content-digest probe cache, which similar chunks hit —
  and appended to a :class:`~repro.core.stream.ShardedWriter`.  With a
  ``sink`` and the serial executor, peak memory is O(chunk) end to end
  (memory-mapped inputs additionally have their paged-in chunks
  dropped as the plan advances).
* **decompression** (:func:`decompress_chunked`) decodes chunks
  independently — in parallel under the thread or process executor —
  into a caller-supplied output array or a freshly allocated one.  A
  ``np.memmap`` output under the *serial* executor keeps the reverse
  direction O(chunk) too; the parallel executors leave decoded pages
  resident (speed over the memory bound — DESIGN.md §8).  With the
  compiled decode kernels engaged (DESIGN.md §10) the hot per-chunk
  work — Huffman walk, fused predict+dequantize, reassembly scatter —
  runs inside GIL-releasing ctypes calls, so the *thread* executor
  gets real chunk-level concurrency, not interpreter turn-taking.
* **random access** (:func:`decompress_chunked_roi`) uses the chunk
  table to touch only the chunks intersecting the query box, and
  within STZ-coded chunks reuses the sub-chunk random-access path.

Executor semantics (:mod:`repro.core.parallel`): results are assembled
in plan order and every chunk's bytes depend only on its content and
the config, so the archive is byte-identical across ``serial``,
``thread`` and ``process`` executors — the determinism contract the v3
golden/determinism tests pin.  The process paths avoid pickling chunk
arrays: workers inherit the source array (or archive buffer) through
fork and slice/decode locally; decoded chunks are written into a
shared mapping (``multiprocessing.shared_memory`` or the file-backed
output memmap) instead of being shipped back.

The hard L-infinity bound is preserved trivially: the absolute bound is
resolved once for the whole array (``"rel"`` scans the value range
chunk by chunk, matching the monolithic resolution exactly) and every
chunk is independently encoded at that bound, so no chunk seam can
exceed it — the chunked conformance sweep asserts this across seams
for every backend.  What chunking *does* cost is compression ratio
(per-chunk container overhead and lost cross-chunk prediction);
``benchmarks/bench_chunked.py`` measures that penalty honestly.
"""

from __future__ import annotations

import io
import mmap
import zlib
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.config import STZConfig
from repro.core.integrity import ChunkCorruptionError, DecodeReport
from repro.core.parallel import (
    WorkerPool,
    engine_executor,
    execute_map,
    resolve_executor,
)
from repro.core.partition import ChunkPlan
from repro.core.pipeline import stz_compress_with_recon, stz_decompress
from repro.core.random_access import normalize_roi, stz_decompress_roi
from repro.core.select import CANDIDATES, decode_by_id, select_and_compress
from repro.core.stream import (
    CODEC_STZ,
    ChunkEntry,
    ShardedReader,
    ShardedWriter,
    is_selected,
    unwrap_selected,
    wrap_selected,
)
from repro.util.validation import check_positive

#: default per-axis chunk extent when the caller gives no spec — large
#: enough that per-chunk container overhead is small against payload,
#: small enough that O(chunk) working sets are a real memory bound
DEFAULT_CHUNK_EDGE = 64


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _validate_array(data: np.ndarray) -> None:
    """Dtype/size checks without materializing (memmap-safe: the
    :func:`repro.util.validation.as_float_array` contiguity copy would
    page the whole file in)."""
    if data.dtype not in (np.float32, np.float64):
        raise TypeError(
            f"expected float32/float64 data, got {data.dtype}"
        )
    if data.size == 0:
        raise ValueError("cannot compress an empty array")


def _release_mapped(arr: np.ndarray) -> None:
    """Drop a memory-mapped array's resident pages (best effort).

    Called between chunks on the serial paths so walking an
    arbitrarily large ``np.memmap`` keeps RSS at O(chunk): without it
    every paged-in chunk stays resident until the kernel feels memory
    pressure, and the out-of-core benchmark's peak-RSS assertion would
    measure page-cache behavior instead of the engine's working set.
    Dirty pages of writable maps are flushed first so DONTNEED cannot
    discard unwritten output.
    """
    mm = getattr(arr, "_mmap", None)
    if mm is None and isinstance(getattr(arr, "base", None), mmap.mmap):
        mm = arr.base
    if mm is None:
        return
    try:  # flush fails on read-only maps; DONTNEED is still safe there
        mm.flush()
    except (AttributeError, ValueError, OSError):
        pass
    try:
        mm.madvise(mmap.MADV_DONTNEED)
    except (AttributeError, ValueError, OSError):
        pass  # madvise is advisory; platforms without it just keep pages


def _chunkwise_range(data: np.ndarray, plan: ChunkPlan) -> tuple[float, float]:
    """Global (min, max) computed one chunk at a time (O(chunk) memory,
    same result as ``np.min``/``np.max`` over the whole array).

    Accumulation uses ``np.minimum``/``np.maximum`` so a NaN anywhere
    poisons the result exactly like the monolithic reduction would —
    Python's ``min``/``max`` would silently *drop* NaN chunks and
    resolve a relative bound from whatever finite chunks remain, a
    bound that would depend on chunk geometry.
    """
    lo = np.float64(np.inf)
    hi = np.float64(-np.inf)
    for info in plan:
        block = data[info.slices]
        lo = np.minimum(lo, np.min(block))
        hi = np.maximum(hi, np.max(block))
        _release_mapped(data)
    return float(lo), float(hi)


def _resolve_eb_chunked(
    data: np.ndarray, eb: float, eb_mode: str, plan: ChunkPlan
) -> float:
    """Chunk-wise twin of :func:`repro.util.validation.resolve_eb` —
    one absolute bound for the whole array, every chunk encodes at it."""
    check_positive(eb, "error bound")
    if eb_mode == "abs":
        return float(eb)
    if eb_mode == "rel":
        lo, hi = _chunkwise_range(data, plan)
        rng = hi - lo
        return float(eb) * (rng if rng > 0 else 1.0)
    raise ValueError(f"unknown eb_mode {eb_mode!r} (use 'abs' or 'rel')")


def _encode_chunk(
    chunk: np.ndarray,
    abs_eb: float,
    config: STZConfig,
    threads: int | None,
    with_recon: bool,
) -> tuple[bytes, int, np.ndarray | None]:
    """Compress one chunk exactly like a standalone array.

    Returns ``(payload, codec_id, recon-or-None)``: an STZ1 blob for
    ``codec="stz"``, an 'STZC' envelope otherwise — byte-identical to
    what :func:`repro.core.api.compress` would emit for this chunk with
    an absolute bound, which is what lets per-chunk ``auto`` reuse the
    selection engine (probes, verification, probe cache) unchanged.
    """
    chunk = np.ascontiguousarray(chunk)
    if config.codec == "stz":
        blob, recon = stz_compress_with_recon(
            chunk, abs_eb, "abs", config, threads
        )
        return blob, CODEC_STZ, recon if with_recon else None
    if config.codec == "auto":
        name, blob, recon = select_and_compress(
            chunk, abs_eb, config, threads
        )
        cand = CANDIDATES[name]
        return (
            wrap_selected(cand.codec_id, blob),
            cand.codec_id,
            recon if with_recon else None,
        )
    cand = CANDIDATES[config.codec]
    if with_recon:
        blob, recon = cand.compress_with_recon(chunk, abs_eb, config, threads)
    else:
        blob = cand.compress(chunk, abs_eb, config, threads)
        recon = None
    return wrap_selected(cand.codec_id, blob), cand.codec_id, recon


def _decode_chunk_payload(
    payload: bytes | memoryview, threads: int | None = None
) -> np.ndarray:
    """Decode one chunk payload (plain STZ1 blob or 'STZC' envelope)."""
    if is_selected(payload):
        codec_id, inner = unwrap_selected(payload)
        return decode_by_id(codec_id, inner, threads)
    return stz_decompress(payload, threads=threads)


def _check_chunk_payload(
    entry: ChunkEntry, payload: bytes | memoryview
) -> None:
    """Verify a chunk payload against its table CRC (checksummed
    archives only — pre-checksum rows are "unchecked" by design)."""
    if not entry.has_checksum:
        return
    computed = zlib.crc32(payload)
    if computed != entry.crc:
        raise ChunkCorruptionError(
            entry.index,
            entry.codec,
            f"payload checksum mismatch (stored 0x{entry.crc:08x}, "
            f"computed 0x{computed:08x})",
        )


def _as_chunk_error(exc: Exception, entry: ChunkEntry) -> ChunkCorruptionError:
    """Attach chunk index + codec context to a decode failure (already
    structured errors pass through untouched)."""
    if isinstance(exc, ChunkCorruptionError):
        return exc
    err = ChunkCorruptionError(entry.index, entry.codec, str(exc))
    err.__cause__ = exc
    return err


def roi_chunk_windows(
    box: tuple[tuple[int, int], ...], info
) -> tuple[tuple[slice, ...], tuple[slice, ...]]:
    """The two windows a chunk contributes to a normalized ROI box:
    ``(local, dest)`` — the chunk-local slice of the intersection and
    where it lands in the box-shaped output.  One definition shared by
    :func:`decompress_chunked_roi` and the serve layer's cache-fed ROI
    assembly, so the two paths cannot disagree about geometry."""
    local = tuple(
        slice(max(lo, o) - o, min(hi, o + n) - o)
        for (lo, hi), o, n in zip(box, info.origin, info.shape)
    )
    dest = tuple(
        slice(o + sl.start - lo, o + sl.stop - lo)
        for (lo, _), o, sl in zip(box, info.origin, local)
    )
    return local, dest


def _validate_on_error(on_error: str) -> None:
    if on_error not in ("raise", "skip", "fill"):
        raise ValueError(
            f"unknown on_error policy {on_error!r} "
            "(use 'raise', 'skip' or 'fill')"
        )


# ---------------------------------------------------------------------------
# compression
# ---------------------------------------------------------------------------

def _compress_worker(state, index: int) -> tuple[bytes, int]:
    """Executor task: slice chunk ``index`` out of the (inherited or
    shared) source array and compress it.  Only the index crosses a
    process boundary inbound; the returned payload is already
    compressed."""
    data, plan, abs_eb, config, threads, recon_out = state
    info = plan.chunk(index)
    try:
        blob, codec_id, recon = _encode_chunk(
            data[info.slices], abs_eb, config, threads, recon_out is not None
        )
    except Exception as exc:
        # chunk context makes multi-chunk failure reports actionable —
        # and survives the pickle back from a fork worker
        raise RuntimeError(
            f"compressing chunk {index} (codec {config.codec!r}, origin "
            f"{info.origin}) failed: {exc}"
        ) from exc
    if recon_out is not None:
        recon_out[info.slices] = recon
    return blob, codec_id


def _run_compress(
    data: np.ndarray,
    plan: ChunkPlan,
    abs_eb: float,
    config: STZConfig,
    writer: ShardedWriter,
    executor: str,
    workers: int | None,
    threads: int | None,
    recon_out: np.ndarray | None,
    pool: WorkerPool | None = None,
) -> None:
    # capacity-gated: a 1-core host runs the serial reference walk
    # (byte-identical output, none of the pool overhead)
    kind, n = engine_executor(executor, workers)
    if kind == "serial":
        # the O(chunk)-memory reference walk: one chunk in flight,
        # memmap pages dropped as the plan advances
        state = (data, plan, abs_eb, config, threads, recon_out)
        for index in range(plan.nchunks):
            blob, codec_id = _compress_worker(state, index)
            writer.add_chunk(blob, codec_id)
            _release_mapped(data)
        return
    # parallel chunk-level compression: intra-chunk threading is
    # disabled (chunk-level parallelism replaces it; nesting pools
    # oversubscribes), and results are folded back in plan order
    state = (data, plan, abs_eb, config, None, recon_out)
    if kind == "process" and recon_out is not None and not _is_shared(recon_out):
        # fork gives workers copy-on-write memory: their recon writes
        # would be invisible to the parent.  Private recon buffers only
        # work in-process.
        raise ValueError(
            "process executor needs a shared (memmap/shared-memory) "
            "reconstruction buffer"
        )
    # retry=1: a worker lost to the OOM killer / a segfault breaks the
    # pool, not the chunks — the survivors re-run serially in-process
    for blob, codec_id in execute_map(
        _compress_worker, list(range(plan.nchunks)), state, kind, n,
        retry=1, pool=pool,
    ):
        writer.add_chunk(blob, codec_id)
    _release_mapped(data)


def _is_shared(arr: np.ndarray) -> bool:
    """Whether child-process writes into ``arr`` reach this process
    (file-backed memmap or shared-memory-backed ndarray)."""
    if getattr(arr, "_mmap", None) is not None:
        return True
    base = arr
    while getattr(base, "base", None) is not None:
        base = base.base
        if isinstance(base, (mmap.mmap, shared_memory.SharedMemory)):
            return True
    return isinstance(base, mmap.mmap)


def compress_chunked(
    data: "np.ndarray | Iterable[np.ndarray]",
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    chunks: int | tuple[int, ...] | None = None,
    executor: str = "thread",
    workers: int | None = None,
    threads: int | None = None,
    sink: io.IOBase | None = None,
    shape: tuple[int, ...] | None = None,
    checksum: bool = False,
    recoverable: bool = False,
    pool: WorkerPool | None = None,
) -> bytes | None:
    """Compress ``data`` into a sharded (container v3) archive.

    ``checksum=True`` records per-chunk CRC32s plus a whole-archive
    digest (flag-gated: pre-checksum readers reject the archive
    cleanly); ``recoverable=True`` additionally prefixes every chunk
    with an 'STZR' record so a crash before finalize leaves a
    repairable stream — see DESIGN.md §9.

    ``data`` is an ndarray (memory-mapped arrays welcome — chunks are
    sliced out one at a time and released) or an iterator yielding the
    plan's chunk arrays in C order (``shape`` is then required and
    ``eb_mode`` must be ``"abs"``; the engine never holds more than the
    in-flight chunks).  ``chunks`` is a per-axis chunk shape or one
    edge for all axes (default ``64``); ``executor``/``workers`` pick
    the chunk-level pool (:data:`repro.core.parallel.EXECUTORS`) and
    ``threads`` feeds the intra-chunk pipeline on the serial executor.
    With a ``sink`` the archive streams to it and ``None`` is returned;
    otherwise the archive bytes are returned.  ``pool`` (an optional
    :class:`~repro.core.parallel.WorkerPool` of the matching kind)
    reuses warm workers across engine calls — repeated compressions,
    streaming frames, bench reps — instead of paying pool startup per
    call; its lifetime (and ``close()``) belongs to the caller.

    The archive bytes are identical for every executor (module
    docstring); the hard bound is the single resolved absolute bound,
    enforced independently inside every chunk.
    """
    config = config or STZConfig()
    if isinstance(data, np.ndarray):
        return _compress_chunked_array(
            data, eb, eb_mode, config, chunks, executor, workers,
            threads, sink, None, checksum, recoverable, pool,
        )
    if shape is None:
        raise ValueError("chunk-iterator input requires shape=")
    if eb_mode != "abs":
        raise ValueError(
            "chunk-iterator input supports only eb_mode='abs' (the "
            "relative range cannot be known without buffering the "
            "whole stream)"
        )
    check_positive(eb, "error bound")
    return _compress_chunk_iter(
        iter(data), float(eb), config, chunks, executor, workers,
        threads, shape, sink, checksum, recoverable, pool,
    )


def compress_chunked_with_recon(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    chunks: int | tuple[int, ...] | None = None,
    executor: str = "thread",
    workers: int | None = None,
    threads: int | None = None,
    checksum: bool = False,
    pool: WorkerPool | None = None,
) -> tuple[bytes, np.ndarray]:
    """:func:`compress_chunked` plus the decoder's exact reconstruction
    (assembled chunk by chunk from the encoder-tracked per-chunk
    recons) — the closed-loop input the streaming subsystem's sharded
    delta frames need.  In-memory by necessity: the reconstruction is
    a full array.  ``pool`` follows the :func:`compress_chunked`
    contract (the streaming subsystem passes one so its per-frame
    thread pool stays warm across the whole stream)."""
    config = config or STZConfig()
    _validate_array(data)
    recon = np.empty(data.shape, dtype=data.dtype)
    kind, _ = resolve_executor(executor, workers)
    if kind == "process":
        executor = "thread"  # private recon buffer: stay in-process
    blob = _compress_chunked_array(
        data, eb, eb_mode, config, chunks, executor, workers, threads,
        None, recon, checksum, False, pool,
    )
    return blob, recon


def _compress_chunked_array(
    data: np.ndarray,
    eb: float,
    eb_mode: str,
    config: STZConfig,
    chunks: int | tuple[int, ...] | None,
    executor: str,
    workers: int | None,
    threads: int | None,
    sink: io.IOBase | None,
    recon_out: np.ndarray | None,
    checksum: bool = False,
    recoverable: bool = False,
    pool: WorkerPool | None = None,
) -> bytes | None:
    _validate_array(data)
    plan = ChunkPlan.regular(
        data.shape, chunks if chunks is not None else DEFAULT_CHUNK_EDGE
    )
    abs_eb = _resolve_eb_chunked(data, eb, eb_mode, plan)
    writer = ShardedWriter(
        data.shape, data.dtype, plan.chunk_shape, sink,
        checksum=checksum, recoverable=recoverable,
    )
    _run_compress(
        data, plan, abs_eb, config, writer, executor, workers, threads,
        recon_out, pool,
    )
    writer.finalize()
    return writer.getvalue() if writer.in_memory else None


def _compress_chunk_iter(
    it: Iterator[np.ndarray],
    abs_eb: float,
    config: STZConfig,
    chunks: int | tuple[int, ...] | None,
    executor: str,
    workers: int | None,
    threads: int | None,
    shape: tuple[int, ...],
    sink: io.IOBase | None,
    checksum: bool = False,
    recoverable: bool = False,
    pool: WorkerPool | None = None,
) -> bytes | None:
    """Compress a chunk iterator with a bounded in-flight window.

    The thread executor keeps at most ``workers`` chunks in flight (a
    depth-``workers`` pipeline: the producer fills the window while
    finished chunks drain to the writer in plan order); the serial
    executor holds exactly one.  The process executor degrades to
    threads — future chunks cannot be fork-inherited.  A matching
    ``pool`` supplies the (warm) thread pool instead of a per-call one.
    """
    shape = tuple(int(n) for n in shape)
    plan = ChunkPlan.regular(
        shape, chunks if chunks is not None else DEFAULT_CHUNK_EDGE
    )
    kind, n = engine_executor(
        "thread" if executor == "process" else executor, workers
    )
    writer: ShardedWriter | None = None
    dtype: np.dtype | None = None

    def pull(index: int) -> np.ndarray:
        nonlocal writer, dtype
        info = plan.chunk(index)
        try:
            chunk = np.asarray(next(it))
        except StopIteration:
            raise ValueError(
                f"chunk iterator exhausted at chunk {index}; the plan "
                f"needs {plan.nchunks} chunks"
            ) from None
        if dtype is None:
            if chunk.dtype not in (np.float32, np.float64):
                raise TypeError(
                    f"expected float32/float64 chunks, got {chunk.dtype}"
                )
            dtype = chunk.dtype
            writer = ShardedWriter(
                shape, dtype, plan.chunk_shape, sink,
                checksum=checksum, recoverable=recoverable,
            )
        if chunk.shape != info.shape or chunk.dtype != dtype:
            raise ValueError(
                f"chunk {index} is {chunk.shape} {chunk.dtype}; the plan "
                f"expects {info.shape} {dtype}"
            )
        return np.ascontiguousarray(chunk)

    if kind == "serial":
        for index in range(plan.nchunks):
            blob, codec_id, _ = _encode_chunk(
                pull(index), abs_eb, config, threads, False
            )
            writer.add_chunk(blob, codec_id)
    else:
        from concurrent.futures import ThreadPoolExecutor

        window = max(2, n)
        warm = pool is not None and pool.kind == "thread"
        tpe = pool.thread_pool() if warm else ThreadPoolExecutor(max_workers=n)
        try:
            pending: list = []
            for index in range(plan.nchunks):
                pending.append(
                    tpe.submit(
                        _encode_chunk, pull(index), abs_eb, config, None,
                        False,
                    )
                )
                while len(pending) >= window:
                    blob, codec_id, _ = pending.pop(0).result()
                    writer.add_chunk(blob, codec_id)
            for fut in pending:
                blob, codec_id, _ = fut.result()
                writer.add_chunk(blob, codec_id)
        finally:
            if not warm:  # a caller-owned pool outlives this call
                tpe.shutdown(wait=True)
    remaining = next(it, None)
    if remaining is not None:
        raise ValueError(
            f"chunk iterator yielded more than the plan's "
            f"{plan.nchunks} chunks"
        )
    writer.finalize()
    return writer.getvalue() if writer.in_memory else None


# ---------------------------------------------------------------------------
# decompression
# ---------------------------------------------------------------------------

def _open_sharded(
    source: "bytes | memoryview | io.IOBase | ShardedReader",
) -> ShardedReader:
    if isinstance(source, ShardedReader):
        return source
    return ShardedReader(source)


def _decode_worker(state, index: int) -> "ChunkCorruptionError | None":
    """Executor task: fetch chunk ``index``'s payload from the
    (inherited) archive, verify its checksum, decode it, and write it
    into the shared output mapping.  Nothing heavier than the index
    crosses a process boundary in either direction.

    Under ``on_error != "raise"`` a failed chunk *returns* its
    structured error instead of raising — one corrupt chunk must not
    fail the other chunks' futures (and the error still pickles back
    with full context, via ``ChunkCorruptionError.__reduce__``).
    """
    src, entries, plan, out, threads, on_error = state
    entry = entries[index]
    try:
        if isinstance(src, (bytes, memoryview)):
            payload = memoryview(src)[
                entry.offset : entry.offset + entry.length
            ]
        else:  # file path: workers read independently (no shared fd offset)
            with open(src, "rb") as fh:
                fh.seek(entry.offset)
                payload = fh.read(entry.length)
                if len(payload) != entry.length:
                    raise ValueError("truncated sharded STZ container")
        _check_chunk_payload(entry, payload)
        decoded = _decode_chunk_payload(payload, threads)
        out[plan.chunk(index).slices] = decoded
    except Exception as exc:
        err = _as_chunk_error(exc, entry)
        if on_error == "raise":
            raise err
        return err
    return None


def _worker_source(
    reader: ShardedReader, source
) -> "bytes | memoryview | str":
    """What a pool worker reads payloads from: the in-memory buffer
    (zero-copy via fork/thread sharing) or the archive's file path.
    File objects without a real path are drained into memory once."""
    if reader._buf is not None:
        return reader._buf
    name = getattr(reader._file, "name", None)
    if isinstance(name, (str, Path)) and Path(name).is_file():
        return str(name)
    reader._file.seek(0)
    return reader._file.read()


def decompress_chunked(
    source: "bytes | memoryview | io.IOBase | ShardedReader",
    out: np.ndarray | None = None,
    executor: str = "serial",
    workers: int | None = None,
    threads: int | None = None,
    on_error: str = "raise",
    report: DecodeReport | None = None,
    pool: WorkerPool | None = None,
) -> np.ndarray:
    """Reconstruct a sharded archive, chunk-parallel.

    ``out`` (optional) receives the reconstruction in place — pass a
    ``np.memmap`` with the serial executor to keep decompression at
    O(chunk) memory (decoded pages are dropped as the walk advances;
    the parallel executors skip that release, so their peak RSS is
    bounded by the output size, not the chunk size — DESIGN.md §8's
    memory contract).  ``out`` must match the archive's shape and
    dtype.  ``executor``/``workers`` parallelize across chunks; under
    the process executor decoded chunks land directly in a shared
    mapping (the ``out`` memmap, or an anonymous shared-memory buffer
    that is copied out once at the end), never in a pickle.

    ``on_error`` is the fault-tolerance contract (DESIGN.md §9):
    ``"raise"`` (default) surfaces the first corrupt chunk as a
    :class:`~repro.core.integrity.ChunkCorruptionError`; ``"fill"``
    decodes everything decodable and NaN-fills the failed chunks'
    regions; ``"skip"`` leaves failed regions untouched in a
    caller-provided ``out`` (without ``out`` a fresh allocation has no
    prior contents, so skip fills NaN too — never uninitialized
    memory).  Degraded chunks are recorded in ``report`` (a
    :class:`~repro.core.integrity.DecodeReport`), so "clean" and
    "NaN-filled two chunks" are distinguishable.
    """
    _validate_on_error(on_error)
    reader = _open_sharded(source)
    plan = reader.plan
    if out is not None:
        if tuple(out.shape) != plan.shape or out.dtype != reader.dtype:
            raise ValueError(
                f"out is {tuple(out.shape)} {out.dtype}; archive is "
                f"{plan.shape} {reader.dtype}"
            )
    # capacity-gated like _run_compress: a truly 1-core host decodes
    # through the serial walk (identical result, no pool overhead)
    kind, n = engine_executor(executor, workers)
    if report is not None:
        report.attempted += plan.nchunks
    # "skip" without a caller buffer would leave np.empty garbage —
    # silent wrong data, the one thing this layer exists to prevent
    fill_failed = on_error == "fill" or (on_error == "skip" and out is None)

    def degrade(err: ChunkCorruptionError, target: np.ndarray) -> None:
        if report is not None:
            report.record(err)
        if fill_failed:
            target[plan.chunk(err.chunk_index).slices] = np.nan

    if kind == "serial":
        result = (
            out if out is not None
            else np.empty(plan.shape, dtype=reader.dtype)
        )
        for info in plan:
            entry = reader.chunk(info.index)
            try:
                payload = reader.read_chunk(info.index)
                _check_chunk_payload(entry, payload)
                result[info.slices] = _decode_chunk_payload(payload, threads)
            except Exception as exc:
                err = _as_chunk_error(exc, entry)
                if on_error == "raise":
                    raise err
                degrade(err, result)
            _release_mapped(result)
        return result

    shm: shared_memory.SharedMemory | None = None
    if out is not None and (kind != "process" or _is_shared(out)):
        target = out
    elif kind == "process":
        # decoded chunks must reach the parent: write them into an
        # anonymous shared-memory buffer the workers inherit
        shm = shared_memory.SharedMemory(
            create=True, size=int(np.prod(plan.shape)) * reader.dtype.itemsize
        )
        target = np.ndarray(plan.shape, dtype=reader.dtype, buffer=shm.buf)
    else:
        target = np.empty(plan.shape, dtype=reader.dtype)
    if target is not out and out is not None and on_error == "skip":
        # skipped regions must keep the caller buffer's prior contents
        # even though the decode stages through a separate mapping
        target[...] = out
    try:
        state = (
            _worker_source(reader, source),
            reader.chunks,
            plan,
            target,
            None,  # intra-chunk threads off under chunk-level pools
            on_error,
        )
        # retry=1: BrokenProcessPool (a killed worker) fails futures,
        # not chunks — the affected chunks re-run serially in-process.
        # Genuinely corrupt chunks raise the same structured error on
        # the retry (on_error="raise") or came back as error values
        # (skip/fill), so retries never mask corruption.
        for outcome in execute_map(
            _decode_worker, list(range(plan.nchunks)), state, kind, n,
            retry=1, pool=pool,
        ):
            if isinstance(outcome, ChunkCorruptionError):
                degrade(outcome, target)
        reader.bytes_read += sum(c.length for c in reader.chunks)
        if target is out:
            return out
        if out is not None:
            out[...] = target
            return out
        if shm is not None:
            return target.copy()
        return target
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()


# ---------------------------------------------------------------------------
# chunk-granular random access
# ---------------------------------------------------------------------------

def decompress_chunked_roi(
    source: "bytes | memoryview | io.IOBase | ShardedReader",
    roi: tuple[slice | int, ...],
    threads: int | None = None,
    workers: int | None = None,
    on_error: str = "raise",
    report: DecodeReport | None = None,
    pool: WorkerPool | None = None,
) -> np.ndarray:
    """Reconstruct only the chunks intersecting ``roi``.

    The chunk table bounds the work to the intersecting chunks (all
    others are never read — the I/O half), and STZ-coded chunks
    additionally run the sub-chunk random-access path
    (:func:`repro.core.random_access.stz_decompress_roi`) over their
    local window, so a small box inside a large chunk still skips the
    sub-blocks it cannot touch.  Bit-identical to cropping a full
    decompression.

    ``on_error``/``report`` follow the :func:`decompress_chunked`
    contract; the ROI output is always freshly allocated, so both
    ``"skip"`` and ``"fill"`` NaN-fill a failed chunk's slice of the
    box (never uninitialized memory).
    """
    _validate_on_error(on_error)
    reader = _open_sharded(source)
    plan = reader.plan
    box = normalize_roi(plan.shape, roi)
    out = np.empty(tuple(hi - lo for lo, hi in box), dtype=reader.dtype)

    indices = plan.intersecting(box)
    # when the decode fans out, payloads are fetched serially up front:
    # file-backed readers share one fd whose seek()+read() pairs must
    # not interleave across threads (in-memory sources hand back
    # zero-copy views, so the prefetch costs nothing there).  The
    # serial walk has no such hazard and keeps reading one payload at a
    # time.  Only the intersecting chunks are ever read either way.
    fan_out = bool(workers and workers > 1) and len(indices) > 1
    if fan_out:
        # same capacity gate as the other engine entry points: on a
        # truly 1-core host the serial walk wins (and skips the
        # up-front payload prefetch the fan-out needs)
        fan_out = engine_executor("thread", workers)[0] == "thread"

    def prefetch(index: int) -> "bytes | memoryview | None":
        # a payload that cannot even be *read* is re-fetched (and
        # re-failed, with chunk context) inside one() — where the
        # on_error policy applies
        try:
            return reader.read_chunk(index)
        except ValueError:
            return None

    tasks = [
        (index, prefetch(index) if fan_out else None)
        for index in indices
    ]
    if report is not None:
        report.attempted += len(indices)
    # chunk-level parallelism replaces intra-chunk threading (nesting
    # pools oversubscribes — same rule as _run_compress)
    threads = None if fan_out else threads

    def one(task: "tuple[int, bytes | memoryview | None]") -> None:
        index, payload = task
        entry = reader.chunk(index)
        info = plan.chunk(index)
        local, dest = roi_chunk_windows(box, info)
        try:
            if payload is None:
                payload = reader.read_chunk(index)
            _check_chunk_payload(entry, payload)
            # STZ-coded chunks (plain STZ1 blobs *and* 'STZC'-enveloped
            # auto selections) run the sub-chunk random-access path over
            # their local window; foreign codecs decode fully and crop
            if is_selected(payload):
                inner_id, inner = unwrap_selected(payload)
            else:
                inner_id, inner = entry.codec_id, payload
            sub: np.ndarray | None = None
            if inner_id == CODEC_STZ:
                try:
                    sub = stz_decompress_roi(
                        inner, local, threads=threads
                    ).data
                except NotImplementedError:
                    sub = None  # ablation configs: fall back to full decode
            if sub is None:
                sub = _decode_chunk_payload(payload, threads)[local]
            out[dest] = sub
        except Exception as exc:
            err = _as_chunk_error(exc, entry)
            if on_error == "raise":
                raise err
            if report is not None:
                report.record(err)
            out[dest] = np.nan

    # same worker semantics as the other chunked entry points: an
    # explicit multi-worker request is honored (resolve_executor), not
    # capacity-gated away like pmap would on a 1-core host.  Threads
    # only — the workers write into the caller-local `out` closure.
    execute_map(
        lambda _state, task: one(task),
        tasks,
        None,
        "thread" if fan_out else "serial",
        workers,
        pool=pool,
    )
    return out
