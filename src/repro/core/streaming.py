"""Stateful streaming compression of time-step sequences (container v2).

Scientific simulations (WarpX, Nyx, ...) emit one field snapshot per
time step, and consecutive snapshots are highly correlated.  The
batch pipeline in :mod:`repro.core.pipeline` treats every array as an
island; this module adds the temporal dimension on top of it without
touching the per-frame format:

* :class:`StreamingCompressor` accepts steps one at a time under a
  bounded-memory window — it holds the previous step's *reconstruction*
  (never the raw inputs) plus one in-flight frame, so memory is O(1
  step) for arbitrarily long sequences.
* Each step is compressed as a *temporal delta*: the residual
  ``step - recon(previous step)`` runs through the full spatial STZ
  cascade (SZ3 level 1 + interpolation levels, the batched
  ``quantize_many``/``huffman_encode_many`` encode path).  Prediction
  is closed-loop — the delta is taken against the decoder's exact
  reconstruction (:func:`repro.core.pipeline.stz_compress_with_recon`),
  so per-step errors never accumulate: every step individually
  satisfies ``max|x_t - x_hat_t| <= abs_eb``.
* Every ``keyframe_interval``-th step is encoded *intra* (no temporal
  prediction), which bounds the roll-forward cost of random access to
  any frame; frame 0 is always intra.
* Frames land in the v2 multi-frame container
  (:class:`repro.core.stream.MultiFrameWriter`): each one is a
  complete, independently seekable STZ1 blob, with the temporal-delta
  fact recorded as a per-frame flag bit.

``codec="auto"`` re-selects the backend per step with *amortized*
probing (DESIGN.md §7): every step pays only a ~0.1 ms feature sample;
full compression probes run once per distinct data regime — at stream
start, when :func:`repro.core.select.features_drifted` fires, or when
the seeded epsilon-greedy cadence schedules a one-candidate refresh.
Scores transfer between the intra and delta selectors through a
stream-scoped cache keyed on the :class:`~repro.core.select.BlockProbe`
feature label, and every committed frame feeds its achieved
bits-per-value back into the winner's score for free.  All of it is
deterministic given (steps, seed).

``overlap=True`` opts into the double-buffered engine: ``append``
hands the encode/verify/write chain to a single worker thread and
returns a future, so the caller's next-step work (simulation output,
file loads, validation, feature sampling) overlaps the previous step's
encode.  The worker runs the *same* serial state machine in the same
order, so the archive is byte-identical to ``overlap=False`` — the
serial path is the determinism reference, and the equality is pinned
by tests.

The hard bound on delta frames deserves a note.  The decoder computes
``recon_t = recon_{t-1} + decode(frame_t)`` in the payload dtype; the
encoder performs the bit-identical addition with bit-identical operands
(both reconstructions are decoder-exact by induction), so it *knows*
the decoder's output and verifies ``max|step - recon_t| <= abs_eb`` in
exact float64.  The spatial pipeline guarantees the residual itself is
within the bound, but the final addition can round in float32 near the
bound edge; on the (rare) step where verification fails, the encoder
falls back to an intra frame — the guarantee stays hard instead of
probabilistic.  :class:`StreamingDecompressor` mirrors all of this and
serves both sequential iteration (O(1) work per step via a one-frame
cache) and per-frame random access (roll-forward from the nearest
keyframe at or before the request).
"""

from __future__ import annotations

import io
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.chunked import (
    _validate_on_error,
    compress_chunked_with_recon,
    decompress_chunked,
)
from repro.core.integrity import (
    ChunkCorruptionError,
    DecodeReport,
    FrameCorruptionError,
)
from repro.core.config import STZConfig
from repro.core.parallel import WorkerPool
from repro.core.pipeline import stz_compress_with_recon
from repro.core.select import (
    CANDIDATES,
    SHORTLISTS,
    BlockProbe,
    CodecSelector,
    bound_holds,
    decode_by_id,
    features_drifted,
    probe_features,
    select_and_compress,
)
from repro.core.stream import (
    CODEC_IDS,
    CODEC_NAMES,
    CODEC_STZ,
    FRAME_DELTA,
    FRAME_SHARDED,
    MULTI_CODEC,
    FrameInfo,
    MultiFrameReader,
    MultiFrameWriter,
)
from repro.util.validation import as_float_array, resolve_eb

#: default intra-frame cadence: random access rolls forward through at
#: most this many delta frames
DEFAULT_KEYFRAME_INTERVAL = 8


@dataclass(frozen=True)
class FrameStats:
    """Accounting for one appended step."""

    index: int
    nbytes: int
    is_delta: bool
    #: the delta encoding was attempted but its closed-loop verification
    #: exceeded the bound (float32 rounding of the final addition), so
    #: the step was re-encoded intra
    fallback: bool
    #: backend that encoded this frame's payload (always "stz" unless
    #: the stream runs a fixed foreign codec or codec="auto")
    codec: str = "stz"


class StreamingCompressor:
    """Compress a sequence of equal-shape time steps, one at a time.

    Parameters
    ----------
    eb, eb_mode:
        Error bound for *every* step.  ``"rel"`` resolves against the
        value range of the first step and then stays fixed, so the
        whole stream shares one absolute bound (a per-step relative
        bound would make the guarantee depend on decode order).
    config:
        Spatial pipeline configuration, applied per frame.
    keyframe_interval:
        Every ``k``-th frame is encoded intra; 1 disables temporal
        prediction entirely.
    sink:
        Optional append-only binary sink (e.g. a file opened ``"wb"``).
        Frames stream straight into it; without a sink the archive
        accumulates in memory and :meth:`close` returns the bytes.
    threads:
        Passed through to the spatial pipeline (the paper's OMP mode).
    overlap:
        Double-buffer the engine: :meth:`append` validates and
        feature-samples on the calling thread, queues the
        encode/verify/write chain on a single worker, and returns a
        ``concurrent.futures.Future[FrameStats]`` instead of a
        :class:`FrameStats` — at most one frame is in flight, so
        memory stays O(1 step).  The archive bytes are identical to
        the serial engine (module docstring).
    chunks, chunk_executor, chunk_workers:
        When ``chunks`` is set, every frame payload — intra steps and
        temporal-delta residuals alike — is a sharded (container v3)
        archive produced by the chunked engine
        (:func:`repro.core.chunked.compress_chunked_with_recon`) under
        the given chunk-level executor, and the frame carries the
        :data:`~repro.core.stream.FRAME_SHARDED` flag (pre-sharding
        readers reject such archives at open).  ``codec="auto"``
        re-selects *per chunk* through the selection engine's
        content-digest probe cache; the stream-level amortized probe
        gate does not apply.  The closed-loop delta contract is
        unchanged: the sharded encoder tracks the decoder-exact
        reconstruction chunk by chunk, and every frame is verified in
        float64 before commit with the intra fallback behind it.
    """

    def __init__(
        self,
        eb: float,
        eb_mode: str = "abs",
        config: STZConfig | None = None,
        keyframe_interval: int = DEFAULT_KEYFRAME_INTERVAL,
        sink: io.IOBase | None = None,
        threads: int | None = None,
        overlap: bool = False,
        chunks: int | tuple[int, ...] | None = None,
        chunk_executor: str = "thread",
        chunk_workers: int | None = None,
        checksum: bool = False,
        recoverable: bool = False,
    ):
        if keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        self.eb = eb
        self.eb_mode = eb_mode
        self.config = config or STZConfig()
        self.keyframe_interval = int(keyframe_interval)
        self.threads = threads
        # codec-selected streams set the MULTI_CODEC gate bit so
        # pre-codec-id readers reject the archive at open; plain STZ
        # streams keep flags 0 and stay byte-identical to before the
        # codec byte existed
        self._chunks = chunks
        self._chunk_executor = chunk_executor
        self._chunk_workers = chunk_workers
        # integrity options (DESIGN.md §9): checksum => per-frame CRCs
        # + whole-archive digest; recoverable => 'STZR' record prefixes
        # so a crash mid-stream leaves a repairable archive.  Sharded
        # frame payloads inherit the checksum so their inner chunk
        # tables verify too.
        self._checksum = bool(checksum) or bool(recoverable)
        # sharded frames record codec id 0 (the codec story lives in
        # the per-chunk v3 table), so the MULTI_CODEC gate only matters
        # for non-sharded foreign-codec frames
        self._writer = MultiFrameWriter(
            sink,
            flags=MULTI_CODEC
            if (self.config.codec != "stz" and chunks is None)
            else 0,
            checksum=checksum,
            recoverable=recoverable,
        )
        if self.config.codec == "auto":
            # independent scorers for intra and delta payloads: a field
            # and its temporal residual have very different statistics,
            # and one EMA would let either pollute the other's ranking.
            # Scores still *transfer* between them when the feature
            # label matches, via the stream-scoped label cache below —
            # a cheap prior that a probe/refresh later corrects.
            explore = self.config.select_explore
            self._sel_intra = CodecSelector(
                seed=self.config.select_seed, explore=explore
            )
            self._sel_delta = CodecSelector(
                seed=self.config.select_seed + 1, explore=explore
            )
            self._last_probe: dict[str, BlockProbe | None] = {
                "intra": None, "delta": None,
            }
            #: feature label -> raw scores of the last full probe in
            #: this stream (either selector) — the label-keyed probe
            #: cache that lets the first delta frame inherit the intra
            #: probe's ranking instead of paying its own
            self._label_scores: dict[str, dict[str, float]] = {}
        self.abs_eb: float | None = None  # resolved at the first step
        self._shape: tuple[int, ...] | None = None
        self._dtype: np.dtype | None = None
        self._prev_recon: np.ndarray | None = None
        self._result: bytes | None = None
        self._closed = False
        self._nappended = 0
        self._overlap = bool(overlap)
        self._pool = ThreadPoolExecutor(max_workers=1) if overlap else None
        self._pending: Future | None = None
        #: warm chunk-level worker pool shared by every sharded frame —
        #: without it each frame pays thread-pool startup/teardown
        #: inside compress_chunked_with_recon (process requests run as
        #: threads there: the private recon buffer must stay in-process)
        self._chunk_pool = (
            WorkerPool("thread", chunk_workers)
            if self._chunks is not None
            else None
        )

    @property
    def nframes(self) -> int:
        """Steps appended so far (including one possibly still being
        encoded by the overlap worker)."""
        return self._nappended

    def _delta_eb(self, step: np.ndarray) -> float:
        """Residual bound for a delta frame: the user bound minus the
        worst-case rounding of the decoder's final ``prev + residual``
        addition (0.5 ulp at the reconstruction's magnitude).  The
        spatial pipeline uses its bound fully — quantized points sit up
        to exactly ``eb`` off — so without this headroom the edge points
        spill past the user bound and every delta frame would fail
        closed-loop verification.  Nonpositive means the bound is below
        the dtype's resolution at this data scale and delta frames
        cannot guarantee it — the caller encodes intra instead.
        """
        if self._prev_recon is None or not step.size:
            return self.abs_eb
        # max|x| == max(|min|, |max|), without materializing |x|
        scale = (
            max(
                abs(float(self._prev_recon.min())),
                abs(float(self._prev_recon.max())),
            )
            + self.abs_eb
        )
        ulp = 2.0**-23 if step.dtype == np.float32 else 2.0**-52
        return self.abs_eb - scale * ulp

    def _maybe_probe(
        self, kind: str, payload: np.ndarray, eb: float
    ) -> tuple[str, ...]:
        """Amortized probe gate for one ``auto`` frame (module
        docstring): feature-sample always; full-probe only into a cold
        selector, on feature drift, or — via the label cache — not at
        all; epsilon-refresh one challenger otherwise."""
        sel = self._sel_intra if kind == "intra" else self._sel_delta
        probe = probe_features(payload, eb)
        shortlist = SHORTLISTS[probe.label]
        # the drift anchor is the features at the last (real or
        # inherited) scoring event, NOT the previous step: comparing
        # consecutive steps would let slow cumulative drift walk
        # arbitrarily far under the tolerance without ever re-probing
        prev = self._last_probe[kind]
        if prev is None:  # cold selector: first frame of this kind
            cached = self._label_scores.get(probe.label)
            if cached is not None:
                sel.fold(cached)  # cross-selector prior, no compressions
            else:
                raw = sel.probe(
                    payload, eb, self.config, shortlist,
                    threads=self.threads, label=probe.label,
                )
                self._label_scores[probe.label] = raw
            self._last_probe[kind] = probe
        elif features_drifted(prev, probe, self.config.select_drift):
            raw = sel.probe(
                payload, eb, self.config, shortlist,
                threads=self.threads, label=probe.label,
            )
            self._label_scores[probe.label] = raw
            self._last_probe[kind] = probe
        elif sel.explore_draw():
            sel.refresh_probe(
                payload, eb, self.config, shortlist, threads=self.threads
            )
        return shortlist

    def _encode_intra(self, step: np.ndarray) -> tuple[bytes, np.ndarray, str]:
        """Encode ``step`` with no temporal prediction; returns
        ``(blob, recon, codec name)``.

        ``codec="auto"`` re-selects per step through the amortized
        probe gate.  Fixed codecs are verified at commit time against
        their encoder-tracked reconstruction and drop to STZ on a bound
        violation, so the stream guarantee never depends on a foreign
        backend's certification being correct.
        """
        if self._chunks is not None:
            blob, recon = compress_chunked_with_recon(
                step, self.abs_eb, "abs", self.config, self._chunks,
                self._chunk_executor, self._chunk_workers, self.threads,
                checksum=self._checksum, pool=self._chunk_pool,
            )
            return blob, recon, "sharded"
        if self.config.codec == "auto":
            shortlist = self._maybe_probe("intra", step, self.abs_eb)
            name, blob, recon = select_and_compress(
                step, self.abs_eb, self.config, self.threads,
                selector=self._sel_intra, shortlist=shortlist,
            )
            return blob, recon, name
        if self.config.codec != "stz":
            cand = CANDIDATES[self.config.codec]
            blob, recon = cand.compress_with_recon(
                step, self.abs_eb, self.config, self.threads
            )
            if bound_holds(step, recon, self.abs_eb):
                return blob, recon, cand.name
        blob, recon = stz_compress_with_recon(
            step, self.abs_eb, "abs", self.config.with_(codec="stz"),
            self.threads,
        )
        return blob, recon, "stz"

    def _encode_delta(
        self, resid: np.ndarray, delta_eb: float
    ) -> tuple[bytes, np.ndarray, str]:
        """Encode one temporal residual; returns ``(blob, resid recon,
        codec name)``.

        ``codec="auto"`` keeps a separate selector over residual
        statistics, behind the same amortized probe gate (drift
        detector + label cache + epsilon challenger refresh).
        """
        if self._chunks is not None:
            blob, rr = compress_chunked_with_recon(
                resid, delta_eb, "abs", self.config, self._chunks,
                self._chunk_executor, self._chunk_workers, self.threads,
                checksum=self._checksum, pool=self._chunk_pool,
            )
            return blob, rr, "sharded"
        if self.config.codec == "auto":
            shortlist = self._maybe_probe("delta", resid, delta_eb)
            name, blob, rr = select_and_compress(
                resid, delta_eb, self.config, self.threads,
                selector=self._sel_delta, shortlist=shortlist,
            )
            return blob, rr, name
        if self.config.codec != "stz":
            cand = CANDIDATES[self.config.codec]
            blob, rr = cand.compress_with_recon(
                resid, delta_eb, self.config, self.threads
            )
            return blob, rr, cand.name
        blob, rr = stz_compress_with_recon(
            resid, delta_eb, "abs", self.config, self.threads
        )
        return blob, rr, "stz"

    def _prepare(self, step: np.ndarray) -> np.ndarray:
        """Caller-thread half of :meth:`append`: validation, dtype
        conversion, and first-step bound resolution.  In overlap mode
        this is the work that runs concurrently with the previous
        frame's encode."""
        if self._closed:
            raise ValueError("compressor already closed")
        step = as_float_array(np.asarray(step))
        if self._shape is None:
            self._shape = step.shape
            self._dtype = step.dtype
            self.abs_eb = resolve_eb(step, self.eb, self.eb_mode)
        elif step.shape != self._shape or step.dtype != self._dtype:
            raise ValueError(
                f"step {self._nappended} is {step.shape} {step.dtype}; "
                f"stream is {self._shape} {self._dtype}"
            )
        self._nappended += 1
        return step

    def _append_sync(self, step: np.ndarray) -> FrameStats:
        """Encode/verify/write one prepared step (the serial state
        machine; the overlap worker runs exactly this)."""
        index = self._writer.nframes
        is_keyframe = index % self.keyframe_interval == 0
        fallback = False
        delta_eb = self._delta_eb(step)
        if self._prev_recon is not None and not is_keyframe and delta_eb > 0:
            blob, resid_recon, name = self._encode_delta(
                step - self._prev_recon, delta_eb
            )
            # the decoder's exact output for this frame — verify the
            # end-to-end bound in float64 before committing (see module
            # docstring for why the final addition can spill)
            recon = self._prev_recon + resid_recon
            err = (
                float(
                    np.max(
                        np.abs(np.subtract(recon, step, dtype=np.float64))
                    )
                )
                if step.size
                else 0.0
            )
            if err <= self.abs_eb:
                self._writer.add_frame(
                    blob, FRAME_DELTA | self._frame_flags,
                    codec_id=self._frame_codec_id(name),
                )
                self._prev_recon = recon
                if self.config.codec == "auto" and self._chunks is None:
                    self._sel_delta.observe(name, 8.0 * len(blob) / step.size)
                return FrameStats(index, len(blob), True, False, name)
            fallback = True
        blob, recon, name = self._encode_intra(step)
        self._writer.add_frame(
            blob, self._frame_flags, codec_id=self._frame_codec_id(name)
        )
        self._prev_recon = recon
        if self.config.codec == "auto" and self._chunks is None:
            self._sel_intra.observe(name, 8.0 * len(blob) / step.size)
        return FrameStats(index, len(blob), False, fallback, name)

    @property
    def _frame_flags(self) -> int:
        return FRAME_SHARDED if self._chunks is not None else 0

    @staticmethod
    def _frame_codec_id(name: str) -> int:
        # sharded frames park the codec byte at 0: the real per-chunk
        # codec choices live in the payload's v3 chunk table
        return CODEC_STZ if name == "sharded" else CODEC_IDS[name]

    def append(self, step: np.ndarray) -> "FrameStats | Future[FrameStats]":
        """Compress and write one time step; returns its accounting
        (a future resolving to it in overlap mode)."""
        step = self._prepare(step)
        if not self._overlap:
            return self._append_sync(step)
        prev, self._pending = self._pending, None
        if prev is not None:
            prev.result()  # depth-1 pipeline; propagates worker errors
        fut = self._pool.submit(self._append_sync, step)
        self._pending = fut
        return fut

    def extend(self, steps) -> list[FrameStats]:
        """Append every step of an iterable (consumed lazily).  In
        overlap mode the iterable's own work — a simulation producing
        the next step, a loader reading it — runs while the previous
        step encodes; the returned stats are resolved."""
        out = [self.append(step) for step in steps]
        if self._overlap:
            return [f.result() for f in out]
        return out

    def _drain(self) -> None:
        """Wait for the in-flight overlap frame (propagates errors)."""
        pending, self._pending = self._pending, None
        if pending is not None:
            pending.result()

    def close(self) -> bytes | None:
        """Finalize the archive.  Returns its bytes for in-memory
        sinks, ``None`` when streaming to an external sink (idempotent
        either way)."""
        if not self._closed:
            try:
                self._drain()
            finally:
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
                if self._chunk_pool is not None:
                    self._chunk_pool.close()
            self._writer.finalize()
            self._result = (
                self._writer.getvalue() if self._writer.in_memory else None
            )
            self._prev_recon = None
            self._closed = True
        return self._result

    def __enter__(self) -> "StreamingCompressor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamingDecompressor:
    """Decode a multi-frame archive sequentially or by frame index.

    Holds at most one reconstruction (the last frame decoded), so
    iterating an arbitrarily long archive is O(1 step) memory, and
    sequential access decodes each frame exactly once.  Random access
    to frame ``k`` rolls forward from the nearest intra frame at or
    before ``k`` — at most ``keyframe_interval - 1`` extra decodes —
    or from the cache when it is closer.
    """

    def __init__(
        self,
        source: bytes | memoryview | io.IOBase,
        threads: int | None = None,
        on_error: str = "raise",
        report: DecodeReport | None = None,
    ):
        _validate_on_error(on_error)
        self.reader = MultiFrameReader(source)
        self.threads = threads
        #: fault policy (DESIGN.md §9): ``"raise"`` surfaces a
        #: structured :class:`FrameCorruptionError` /
        #: :class:`ChunkCorruptionError`; ``"fill"`` and ``"skip"``
        #: replace an undecodable frame with NaNs of the stream's
        #: shape/dtype and keep going (there is no caller-owned output
        #: buffer at the frame level, so skip degrades to fill).  A
        #: NaN-degraded frame poisons the delta chain after it — NaN +
        #: delta stays NaN — until the next intra frame resets it.
        self.on_error = on_error
        self.report = report
        self._cache_index = -1
        self._cache: np.ndarray | None = None

    @property
    def nframes(self) -> int:
        return self.reader.nframes

    def __len__(self) -> int:
        return self.nframes

    def frame_info(self, index: int) -> FrameInfo:
        return self.reader.frame(index)

    def _degrade(self, err: FrameCorruptionError) -> np.ndarray:
        """Apply the fault policy to an undecodable frame: raise, or
        record the failure and return a NaN frame.  Without a prior
        reconstruction in the cache the stream's shape/dtype are
        unknown, so the very first decodable frame must decode — the
        error propagates regardless of policy."""
        if self.on_error == "raise" or self._cache is None:
            raise err
        if self.report is not None:
            self.report.record(err)
        return np.full(self._cache.shape, np.nan, self._cache.dtype)

    def _decode_one(self, index: int) -> np.ndarray:
        """Decode frame ``index`` given its predecessor in the cache."""
        info = self.reader.frame(index)
        if self.report is not None:
            self.report.attempted += 1
        try:
            payload = self.reader.read_frame(index)
            if info.has_checksum and zlib.crc32(bytes(payload)) != info.crc:
                raise FrameCorruptionError(
                    index,
                    "sharded" if info.is_sharded else info.codec,
                    "frame payload checksum mismatch",
                )
            if info.is_sharded:
                # chunk-parallel when the caller asked for parallelism;
                # chunk-level faults inside the frame are handled by the
                # inner decode under the same policy (NaN regions, not a
                # whole NaN frame)
                arr = decompress_chunked(
                    payload,
                    executor="thread" if self.threads and self.threads > 1
                    else "serial",
                    workers=self.threads,
                    on_error=self.on_error,
                    report=self.report,
                )
            else:
                arr = decode_by_id(
                    info.codec_id, payload, threads=self.threads
                )
        except (FrameCorruptionError, ChunkCorruptionError) as exc:
            arr = self._degrade(
                exc if isinstance(exc, FrameCorruptionError)
                else FrameCorruptionError(index, exc.codec, str(exc))
            )
        except Exception as exc:
            codec = (
                CODEC_NAMES.get(info.codec_id, str(info.codec_id))
                if not info.is_sharded
                else "sharded"
            )
            err = FrameCorruptionError(index, codec, f"decode failed: {exc}")
            err.__cause__ = exc
            arr = self._degrade(err)
        else:
            if info.is_delta:
                # bit-identical to the encoder's commit-time addition
                arr = self._cache + arr
        self._cache = arr
        self._cache_index = index
        return arr

    def read_frame(self, index: int) -> np.ndarray:
        """The reconstruction of time step ``index`` (a private copy —
        mutating it cannot corrupt later decodes)."""
        info = self.reader.frame(index)  # validates the index
        if index == self._cache_index:
            return self._cache.copy()
        start = index
        while self.reader.frame(start).is_delta:
            start -= 1  # frame 0 is intra (enforced at open)
        if info.is_delta and start <= self._cache_index < index:
            start = self._cache_index + 1  # resume from the cache
        for i in range(start, index + 1):
            recon = self._decode_one(i)
        return recon.copy()

    def __iter__(self):
        for index in range(self.nframes):
            yield self.read_frame(index)
