"""STZ streaming container format.

The container is built for *partial reads*: a fixed-size segment table
up front records (level, parity offset, kind, offset, length) for every
compressed segment, so progressive decompression reads a prefix of the
segments and random-access decompression seeks directly to the
sub-blocks it needs — from bytes or from a file on disk without loading
the payload.

Assembly and parsing are zero-copy where the buffer model allows
(DESIGN.md §2): the writer appends payloads into one growing
``bytearray`` and emits the segment table from a packed structured
dtype in one shot; the reader parses the table with a single
``np.frombuffer``, hands out ``memoryview`` segments for in-memory
sources, and serves ``segments_at`` from a prebuilt per-level index.

Layout (little-endian)::

    magic 'STZ1' | u8 version | u8 dtype | u8 ndim | u8 levels
    u8 interp | u8 cubic_mode | u8 residual_codec | u8 flags
    f64 abs_eb | f64 eb_ratio | u32 quant_radius | u32 nseg
    u64 shape[ndim]
    nseg x { u8 level, u8 eps_mask, u8 kind, u8 _pad, u64 offset, u64 length }
    payload bytes (segments back to back)

``eps_mask`` packs the parity offset bitwise (bit a = offset along axis
a); segment kinds are in :data:`KIND_NAMES`.

Container v2 (multi-frame) wraps a *sequence* of the containers above —
one complete, independently decodable STZ1 blob per time step — for the
streaming subsystem (:mod:`repro.core.streaming`).  Layout::

    magic 'STZM' | u8 version | u8 flags | u16 reserved
    frame payloads back to back (each a full STZ1 container)
    frame table: nframes x { u64 offset, u64 length, u8 flags, 7 pad }
    trailer: u64 table_offset | u32 nframes | magic 'STZE'

The frame table lives at the *end*, located through the fixed-size
trailer, so a :class:`MultiFrameWriter` only ever appends — frames
stream to disk as they are produced, with O(1 frame) writer memory.
Per-frame flags reuse the PR-1 flag-bit mechanism: bit 0
(:data:`FRAME_DELTA`) marks a temporal-delta frame whose payload
encodes ``step - recon(previous step)``, and unknown bits are rejected
at open for the same reason unknown STZ1 header flags are — a flag bit
may change decode semantics, and ignoring one would produce
plausible-looking garbage outside the hard error bound.  Single-frame
STZ1 archives are untouched by all of this (the golden-container tests
pin their bytes), and :class:`StreamReader` keeps decoding them.

Codec selection (:mod:`repro.core.select`) adds one byte in two places,
both with the same unknown-value-rejection policy:

* **v2 frame table** — each row carries a *codec id*
  (:data:`CODEC_NAMES`) naming the backend that encoded the frame's
  payload, so ``auto`` streams can route every step to the winning
  codec.  The byte occupies what was a zero pad byte, so all-STZ
  archives written before the field existed (and after: id 0 = STZ)
  are byte-identical.  Archives that *use* a non-STZ codec must set the
  container-level :data:`MULTI_CODEC` flag bit — the version gate that
  makes pre-codec-id readers reject them cleanly at open instead of
  misparsing a foreign payload.  Unknown codec ids are rejected at
  open.
* **selected-codec envelope** (magic ``'STZC'``) — a 8-byte wrapper for
  single-array archives whose codec was chosen per container (``stz
  compress --codec auto``/fixed non-STZ backends): magic, version,
  codec id, flags, then the chosen codec's own container verbatim.
  Unknown codec ids and unknown flag bits are rejected.

Container v3 (magic ``'STZS'``) is the *sharded* archive of the chunked
execution engine (:mod:`repro.core.chunked`): one array decomposed by a
:class:`~repro.core.partition.ChunkPlan` into independently decodable
chunk blobs — each a complete STZ1 container or 'STZC' envelope, i.e.
exactly what the single-array writers produce for that chunk.  Layout::

    magic 'STZS' | u8 version | u8 flags | u8 dtype | u8 ndim
    u64 shape[ndim] | u64 chunk_shape[ndim]
    chunk payloads back to back, in plan (C) order
    chunk table: nchunks x { u64 offset, u64 length, u8 flags, u8 codec }
    trailer: u64 table_offset | u32 nchunks | magic 'STZE'

The chunk grid is *derived* from ``(shape, chunk_shape)`` — both sides
rebuild the identical :class:`~repro.core.partition.ChunkPlan`, so the
table stores only per-chunk byte extents plus the codec id that encoded
the chunk's payload (0 = a plain STZ1 blob; anything else means the
payload is an 'STZC' envelope whose inner codec matches the byte — the
table is how ``stz info`` and the parallel decoder route without
parsing payloads).  The table-at-the-end/trailer geometry mirrors v2:
the writer only ever appends, so out-of-core compression streams chunk
blobs straight to any append-only sink with O(1 chunk) writer memory,
and the reader's chunk-granular random access reads exactly the chunks
a query touches.  Unknown container flags, unknown per-chunk flags and
unknown codec ids are all rejected at open — same policy, same reason,
as every flag field above; v1/v2 readers reject v3 archives cleanly by
magic (and pre-v3 builds never parse past it).

**Integrity and crash recovery** (DESIGN.md §9) ride on the same
flag-bit evolution pattern, in three independent, writer-opt-in layers:

* **Per-unit checksums** — ``checksum=True`` writers record a CRC32 of
  every frame/chunk payload in 4 of the 6 spare pad bytes of the v2
  frame table / v3 chunk table row (old rows parse as crc 0), mark the
  row with :data:`FRAME_CHECKSUM` / :data:`CHUNK_CHECKSUM`, and append
  a *whole-archive digest* (CRC32 of every byte up to the digest
  block) between table and trailer, gated by the container-level
  :data:`MULTI_CHECKSUM` / :data:`SHARD_CHECKSUM` bit.  Archives
  without the bits verify as "unchecked"; archives *with* them are
  rejected cleanly by pre-checksum readers (unknown-flag policy).
  Single-array containers get the same property from a trailing CRC32
  gated by an STZ1 header flag bit / 'STZC' envelope flag bit
  (:func:`add_archive_checksum`).
* **Recoverable appends** — ``recoverable=True`` (implies checksums)
  prefixes every frame/chunk payload with a 20-byte ``'STZR'`` record
  (magic, payload length, payload CRC32, frame flags, codec id) so an
  archive whose table/trailer was lost to a crash mid-stream is
  reconstructible by forward scan: each record revalidates its payload
  by checksum, and :func:`repro.core.integrity.repair_archive` rebuilds
  the table from the longest valid record prefix.  Gated by
  :data:`MULTI_RECOVER` / :data:`SHARD_RECOVER`.
* **Decode-time verification** — readers expose the stored CRCs
  (:class:`FrameInfo.crc` / :class:`ChunkEntry.crc`); the decode layers
  (:mod:`repro.core.chunked`, :mod:`repro.core.streaming`) verify each
  payload before parsing it and surface mismatches as structured
  corruption errors with ``on_error`` degradation.  The whole-archive
  digest is only checked by :func:`repro.core.integrity.verify_archive`
  (checking it on open would read the entire file and defeat random
  access).
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.config import STZConfig
from repro.core.partition import ChunkPlan, Offset
from repro.util.validation import dtype_code, dtype_from_code

MAGIC = b"STZ1"
VERSION = 1

MULTI_MAGIC = b"STZM"
MULTI_END_MAGIC = b"STZE"
MULTI_VERSION = 1

SHARD_MAGIC = b"STZS"
SHARD_VERSION = 1
_SHARD_FIXED = struct.Struct("<4sBBBB")
# magic, version, flags, dtype, ndim
#: container-level v3 flag: the chunk table carries per-chunk payload
#: CRC32s and a whole-archive digest precedes the trailer
SHARD_CHECKSUM = 1
#: container-level v3 flag: every chunk payload is prefixed by a 20-byte
#: 'STZR' record so a lost table/trailer is rebuildable by forward scan
SHARD_RECOVER = 2
#: sharded-container flag bits this reader understands (unknown bits
#: are rejected like every other flag field here)
_KNOWN_SHARD_FLAGS = SHARD_CHECKSUM | SHARD_RECOVER
#: per-chunk flag: the table row's crc field holds the payload's CRC32
CHUNK_CHECKSUM = 1
#: per-chunk flag bits this reader understands
_KNOWN_CHUNK_FLAGS = CHUNK_CHECKSUM

SELECT_MAGIC = b"STZC"
SELECT_VERSION = 1
_SELECT_HEADER = struct.Struct("<4sBBBB")
# magic, version, codec_id, flags, pad
#: envelope flag: the container ends with a CRC32 of every preceding
#: byte (set by :func:`add_archive_checksum`)
SELECT_CHECKSUM = 1
#: envelope flag bits this reader understands (unknown bits are
#: rejected like every other flag field in this module)
_KNOWN_SELECT_FLAGS = SELECT_CHECKSUM

#: frame payload is the STZ1 compression of ``step - prev_recon``; the
#: decoder must add the previous frame's reconstruction back
FRAME_DELTA = 1
#: frame payload is a sharded (container v3, 'STZS') archive instead of
#: a single-codec blob — the chunked streaming mode.  Riding on the
#: unknown-bit rejection below, the bit doubles as the version gate:
#: pre-sharding readers reject such archives at open instead of handing
#: a v3 container to a codec parser.
FRAME_SHARDED = 2
#: the frame-table row's crc field holds the payload's CRC32; decoders
#: verify before parsing (a mismatch is surfaced as corruption, never
#: decoded into plausible garbage)
FRAME_CHECKSUM = 4
#: frame flags this reader understands (unknown bits are rejected at
#: open, mirroring the STZ1 header-flag policy)
_KNOWN_FRAME_FLAGS = FRAME_DELTA | FRAME_SHARDED | FRAME_CHECKSUM
#: container-level v2 flag: some frame's payload may be encoded by a
#: non-STZ backend (see the per-frame codec id).  Writers set it for
#: codec-selected streams so pre-codec-id readers reject the archive at
#: open instead of handing a foreign payload to the STZ1 parser.
MULTI_CODEC = 1
#: container-level v2 flag: frames carry CRC32s and a whole-archive
#: digest precedes the trailer (see the module docstring)
MULTI_CHECKSUM = 2
#: container-level v2 flag: every frame payload is prefixed by a
#: 20-byte 'STZR' record — the crash-recovery discipline
MULTI_RECOVER = 4
#: container-level v2 flags this reader understands (unknown bits are
#: rejected at open so a future semantic change fails loudly)
_KNOWN_MULTI_FLAGS = MULTI_CODEC | MULTI_CHECKSUM | MULTI_RECOVER

#: stable on-disk codec ids for codec-selected containers — the v2
#: frame-table codec byte and the 'STZC' envelope.  0 (STZ) doubles as
#: the pre-codec-id pad byte, which is what keeps old all-STZ v2
#: archives decoding byte-identically.  Ids are append-only: never
#: renumber, never reuse.
CODEC_STZ = 0
CODEC_SZ3 = 1
CODEC_ZFP = 2
CODEC_SPERR = 3
CODEC_SZX = 4
CODEC_MGARD = 5
CODEC_NAMES = {
    CODEC_STZ: "stz",
    CODEC_SZ3: "sz3",
    CODEC_ZFP: "zfp",
    CODEC_SPERR: "sperr",
    CODEC_SZX: "szx",
    CODEC_MGARD: "mgard",
}
CODEC_IDS = {name: cid for cid, name in CODEC_NAMES.items()}

KIND_L1_SZ3 = 0  # coarsest level, full SZ3 container
KIND_RESIDUAL_Q = 1  # quantized prediction residuals (+ Huffman)
KIND_SZ3_BLOCK = 2  # independent SZ3 sub-block ("partition" ablation)
KIND_RESIDUAL_SZ3 = 3  # residuals compressed by full SZ3 (ablation)
KIND_NAMES = {
    KIND_L1_SZ3: "l1-sz3",
    KIND_RESIDUAL_Q: "residual-quant",
    KIND_SZ3_BLOCK: "sz3-block",
    KIND_RESIDUAL_SZ3: "residual-sz3",
}

_INTERP_CODE = {"direct": 0, "linear": 1, "cubic": 2}
_INTERP_NAME = {v: k for k, v in _INTERP_CODE.items()}
_MODE_CODE = {"diagonal": 0, "tensor": 1}
_MODE_NAME = {v: k for k, v in _MODE_CODE.items()}
_RESID_CODE = {"quantize": 0, "sz3": 1}
_RESID_NAME = {v: k for k, v in _RESID_CODE.items()}

_FLAG_PARTITION_ONLY = 1
_FLAG_ADAPTIVE = 2
#: residual quantization ran in float32 arithmetic (where the bound
#: analysis allowed) — the decoder must reconstruct with the same
#: formula, so the bit travels with the container; its absence selects
#: the float64 formula every pre-flag encoder used
_FLAG_F32_QUANT = 4
#: the container ends with a CRC32 of every preceding byte (set by
#: :func:`add_archive_checksum`) — whole-archive integrity for
#: single-array STZ1 blobs
_FLAG_CHECKSUM = 8
#: flags this reader understands; unknown bits are *rejected*, because
#: a flag may change decode semantics (as _FLAG_F32_QUANT does) and
#: silently ignoring one would decode plausibly-looking garbage that
#: can violate the hard error bound
_KNOWN_FLAGS = (
    _FLAG_PARTITION_ONLY | _FLAG_ADAPTIVE | _FLAG_F32_QUANT | _FLAG_CHECKSUM
)

_FIXED = struct.Struct("<4sBBBBBBBBddII")
_SEG = struct.Struct("<BBBBQQ")
_MULTI_FIXED = struct.Struct("<4sBBH")
_MULTI_TRAILER = struct.Struct("<QI4s")
#: the codec byte sits where a zero pad byte used to: old rows parse
#: identically (codec 0 = STZ) and all-STZ tables stay byte-exact.
#: The crc field reuses 4 more of the original pad bytes the same way:
#: pre-checksum rows parse as crc 0 with the checksum flag unset.
_FRAME = struct.Struct("<QQBBI2x")
#: numpy mirror of ``_FRAME`` — table emitted/parsed in one shot
_FRAME_DTYPE = np.dtype(
    [
        ("offset", "<u8"),
        ("length", "<u8"),
        ("flags", "u1"),
        ("codec", "u1"),
        ("crc", "<u4"),
        ("pad", "u1", (2,)),
    ]
)
assert _FRAME_DTYPE.itemsize == _FRAME.size

#: whole-archive digest block (v2/v3, gated by MULTI_CHECKSUM /
#: SHARD_CHECKSUM): CRC32 of every container byte before this block,
#: i.e. head + records + payloads + table.  Sits between the table and
#: the 16-byte trailer so the trailer geometry stays fixed-size.
_DIGEST = struct.Struct("<I4x")

#: recoverable-append record: prefixes each frame/chunk payload when
#: the writer runs with ``recoverable=True``.  Self-delimiting and
#: self-validating (payload length + payload CRC32 + the table fields),
#: which is exactly what a forward scan needs to rebuild a table lost
#: to a crash before :meth:`MultiFrameWriter.finalize`.
RECORD_MAGIC = b"STZR"
_RECORD = struct.Struct("<4sQIBB2x")
# magic, payload length, payload crc32, flags, codec id
#: numpy mirror of ``_SEG`` — lets the writer emit and the reader parse
#: the whole segment table with one vectorized call instead of a
#: per-segment ``struct`` loop
_SEG_DTYPE = np.dtype(
    [
        ("level", "u1"),
        ("mask", "u1"),
        ("kind", "u1"),
        ("pad", "u1"),
        ("offset", "<u8"),
        ("length", "<u8"),
    ]
)
assert _SEG_DTYPE.itemsize == _SEG.size


#: header byte holding the flag field, per magic — used by
#: :func:`add_archive_checksum` and the integrity scrubber
_FLAG_BYTE_OFFSET = {MAGIC: 11, SELECT_MAGIC: 6}


def add_archive_checksum(blob: bytes | memoryview) -> bytes:
    """Append a whole-container CRC32 to a single-array archive.

    Works on 'STZ1' containers and 'STZC' envelopes: sets the
    container's checksum flag bit and appends the CRC32 of every byte
    of the (flag-updated) archive.  Readers that predate the bit reject
    the result cleanly (unknown-flag policy); readers that know it
    verify the trailing CRC before decoding in-memory sources.
    Idempotent on already-checksummed archives.
    """
    buf = bytearray(blob)
    magic = bytes(buf[:4])
    if magic == MAGIC:
        off, bit = _FLAG_BYTE_OFFSET[MAGIC], _FLAG_CHECKSUM
    elif magic == SELECT_MAGIC:
        off, bit = _FLAG_BYTE_OFFSET[SELECT_MAGIC], SELECT_CHECKSUM
    else:
        raise ValueError(
            "whole-archive checksums apply to single-array containers "
            "(STZ1 / STZC); multi-frame and sharded archives carry "
            "per-unit checksums instead (checksum=True writers)"
        )
    if len(buf) <= off:
        raise ValueError("truncated STZ container")
    if buf[off] & bit:
        return bytes(buf)
    buf[off] |= bit
    buf += struct.pack("<I", zlib.crc32(buf))
    return bytes(buf)


def _verify_trailing_crc(buf: memoryview, what: str) -> None:
    """Check a container's trailing CRC32 (covers all preceding bytes,
    including the flag byte that gates it)."""
    if len(buf) < 4:
        raise ValueError(f"truncated {what} container")
    (stored,) = struct.unpack("<I", buf[-4:])
    computed = zlib.crc32(buf[:-4])
    if computed != stored:
        raise ValueError(
            f"{what} container checksum mismatch "
            f"(stored 0x{stored:08x}, computed 0x{computed:08x})"
        )


def eps_to_mask(eps: Offset) -> int:
    return sum(b << a for a, b in enumerate(eps))


def mask_to_eps(mask: int, ndim: int) -> Offset:
    return tuple((mask >> a) & 1 for a in range(ndim))


@dataclass(frozen=True)
class SegmentInfo:
    """One entry of the segment table."""

    level: int
    eps: Offset
    kind: int
    offset: int  # relative to payload start
    length: int


@dataclass(frozen=True)
class StreamHeader:
    """Everything needed to interpret the payload."""

    shape: tuple[int, ...]
    dtype: np.dtype
    config: STZConfig
    abs_eb: float
    segments: tuple[SegmentInfo, ...]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @cached_property
    def _level_index(self) -> dict[int, list[SegmentInfo]]:
        idx: dict[int, list[SegmentInfo]] = {}
        for s in self.segments:
            idx.setdefault(s.level, []).append(s)
        return idx

    def segments_at(self, level: int) -> list[SegmentInfo]:
        """Segments of one level, via a lazily built per-level index
        (every decompression walks levels; a linear scan per call would
        be quadratic in the segment count)."""
        return list(self._level_index.get(level, ()))


class StreamWriter:
    """Accumulates segments, then serializes the container.

    Payloads are appended into one growing ``bytearray`` as they
    arrive — the writer accepts ``bytes`` or ``memoryview`` payloads
    (the batched encoder hands out views into its fused pack buffer),
    and final assembly is a single join of the header with the already
    contiguous body instead of re-joining every payload.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        config: STZConfig,
        abs_eb: float,
    ):
        if len(shape) > 8:
            raise ValueError("eps_mask packing supports at most 8 dims")
        self.shape = tuple(int(n) for n in shape)
        self.dtype = np.dtype(dtype)
        self.config = config
        self.abs_eb = float(abs_eb)
        self._body = bytearray()
        self._levels: list[int] = []
        self._masks: list[int] = []
        self._kinds: list[int] = []
        self._lengths: list[int] = []

    def add_segment(
        self, level: int, eps: Offset, kind: int, payload: bytes | memoryview
    ) -> None:
        if kind not in KIND_NAMES:
            raise ValueError(f"unknown segment kind {kind}")
        self._levels.append(level)
        self._masks.append(eps_to_mask(eps))
        self._kinds.append(kind)
        self._lengths.append(len(payload))
        self._body += payload

    def tobytes(self) -> bytes:
        cfg = self.config
        flags = (
            (_FLAG_PARTITION_ONLY if cfg.partition_only else 0)
            | (_FLAG_ADAPTIVE if cfg.adaptive_eb else 0)
            | (_FLAG_F32_QUANT if cfg.f32_quant else 0)
        )
        fixed = _FIXED.pack(
            MAGIC,
            VERSION,
            dtype_code(self.dtype),
            len(self.shape),
            cfg.levels,
            _INTERP_CODE[cfg.interp],
            _MODE_CODE[cfg.cubic_mode],
            _RESID_CODE[cfg.residual_codec],
            flags,
            self.abs_eb,
            cfg.eb_ratio,
            cfg.quant_radius,
            len(self._levels),
        )
        shape_bytes = struct.pack(f"<{len(self.shape)}Q", *self.shape)
        table = np.empty(len(self._levels), dtype=_SEG_DTYPE)
        table["level"] = self._levels
        table["mask"] = self._masks
        table["kind"] = self._kinds
        table["pad"] = 0
        lengths = np.asarray(self._lengths, dtype=np.uint64)
        ends = np.cumsum(lengths, dtype=np.uint64)
        table["offset"] = ends - lengths
        table["length"] = lengths
        return b"".join([fixed, shape_bytes, table.tobytes(), self._body])


class StreamReader:
    """Parses the header/table and reads segments lazily.

    Accepts in-memory bytes or a binary file object; file mode seeks to
    each requested segment so untouched sub-blocks are never read — the
    I/O half of the paper's random-access story.
    """

    def __init__(self, source: bytes | memoryview | io.IOBase):
        if isinstance(source, (bytes, bytearray, memoryview)):
            self._buf: memoryview | None = memoryview(source)
            self._file: io.IOBase | None = None
        else:
            self._buf = None
            self._file = source
        head = self._read_at(0, _FIXED.size)
        (
            magic,
            version,
            dt,
            ndim,
            levels,
            interp_c,
            mode_c,
            resid_c,
            flags,
            abs_eb,
            eb_ratio,
            radius,
            nseg,
        ) = _FIXED.unpack(head)
        if magic != MAGIC:
            if magic == MULTI_MAGIC:
                raise ValueError(
                    "multi-frame STZ container; open it with "
                    "MultiFrameReader / the streaming API"
                )
            if magic == SELECT_MAGIC:
                raise ValueError(
                    "codec-selected container; open it with "
                    "repro.core.api.decompress"
                )
            if magic == SHARD_MAGIC:
                raise ValueError(
                    "sharded (chunked, container v3) archive; open it "
                    "with ShardedReader / repro.core.api.decompress"
                )
            raise ValueError("not an STZ container")
        if version != VERSION:
            raise ValueError(f"unsupported STZ container version {version}")
        if flags & ~_KNOWN_FLAGS:
            raise ValueError(
                "container uses unknown feature flags "
                f"0x{flags & ~_KNOWN_FLAGS:02x}; upgrade the reader"
            )
        self.has_checksum = bool(flags & _FLAG_CHECKSUM)
        if self.has_checksum and self._buf is not None:
            # in-memory sources verify at open (pure compute, no extra
            # I/O); file sources stay lazy so random access never reads
            # the whole archive — `stz verify` covers them
            _verify_trailing_crc(self._buf, "STZ")
        shape = struct.unpack(
            f"<{ndim}Q", self._read_at(_FIXED.size, 8 * ndim)
        )
        table_off = _FIXED.size + 8 * ndim
        table = np.frombuffer(
            self._read_at(table_off, _SEG.size * nseg), dtype=_SEG_DTYPE
        )
        segs = [
            SegmentInfo(level, mask_to_eps(mask, ndim), kind, off, length)
            for level, mask, kind, _pad, off, length in table.tolist()
        ]
        self._payload_start = table_off + _SEG.size * nseg
        config = STZConfig(
            levels=levels,
            interp=_INTERP_NAME[interp_c],
            cubic_mode=_MODE_NAME[mode_c],
            residual_codec=_RESID_NAME[resid_c],
            adaptive_eb=bool(flags & _FLAG_ADAPTIVE),
            eb_ratio=eb_ratio,
            quant_radius=radius,
            partition_only=bool(flags & _FLAG_PARTITION_ONLY),
            f32_quant=bool(flags & _FLAG_F32_QUANT),
        )
        self.header = StreamHeader(
            shape=tuple(shape),
            dtype=dtype_from_code(dt),
            config=config,
            abs_eb=abs_eb,
            segments=tuple(segs),
        )
        self.bytes_read = 0  # payload bytes actually fetched

    def _read_at(self, offset: int, length: int) -> bytes | memoryview:
        if self._buf is not None:
            if offset + length > len(self._buf):
                raise ValueError("truncated STZ container")
            return self._buf[offset : offset + length]
        self._file.seek(offset)
        data = self._file.read(length)
        if len(data) != length:
            raise ValueError("truncated STZ container")
        return data

    def read_segment(self, seg: SegmentInfo) -> bytes | memoryview:
        """Fetch one segment's payload.

        In-memory sources return a ``memoryview`` into the container
        buffer (no copy); file sources return the ``bytes`` the read
        produced.  All downstream parsers (:mod:`repro.util.sections`,
        ``np.frombuffer``, ``struct``) accept either.
        """
        self.bytes_read += seg.length
        return self._read_at(self._payload_start + seg.offset, seg.length)


# ---------------------------------------------------------------------------
# container v2: multi-frame archives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FrameInfo:
    """One entry of the v2 frame table."""

    index: int
    offset: int  # absolute, from container start
    length: int
    flags: int
    codec_id: int = CODEC_STZ
    crc: int = 0  # CRC32 of the payload, valid iff has_checksum

    @property
    def is_delta(self) -> bool:
        return bool(self.flags & FRAME_DELTA)

    @property
    def has_checksum(self) -> bool:
        """Whether ``crc`` holds the payload's CRC32 (pre-checksum rows
        parse with the flag unset and crc 0 — "unchecked")."""
        return bool(self.flags & FRAME_CHECKSUM)

    @property
    def is_sharded(self) -> bool:
        """Whether the payload is a sharded (container v3) archive."""
        return bool(self.flags & FRAME_SHARDED)

    @property
    def codec(self) -> str:
        """Name of the backend that encoded this frame's payload
        (``"sharded"`` for chunked frames, whose codec choice lives in
        the v3 chunk table)."""
        if self.is_sharded:
            return "sharded"
        return CODEC_NAMES[self.codec_id]


def is_multiframe(source: bytes | memoryview | io.IOBase) -> bool:
    """Whether ``source`` starts with the v2 multi-frame magic.

    File sources are restored to their prior position, so sniffing is
    safe before handing the object to either reader.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return bytes(memoryview(source)[:4]) == MULTI_MAGIC
    pos = source.tell()
    head = source.read(4)
    source.seek(pos)
    return head == MULTI_MAGIC


class MultiFrameWriter:
    """Append-only writer for multi-frame (container v2) archives.

    Frames — complete STZ1 blobs — are written to ``sink`` as they
    arrive; only the per-frame table rows (24 bytes each) are retained,
    so writer memory is O(1 frame) regardless of stream length.  The
    table and trailer land at the end on :meth:`finalize`, which means
    the sink is never seeked: any append-only byte sink works.  With no
    ``sink`` an in-memory buffer is used and :meth:`getvalue` returns
    the archive bytes.

    ``checksum=True`` records a CRC32 per frame plus a whole-archive
    digest; ``recoverable=True`` (implies ``checksum``) additionally
    prefixes every payload with an 'STZR' record so the archive is
    salvageable by forward scan if the process dies before
    :meth:`finalize` — see the module docstring and DESIGN.md §9.
    """

    def __init__(
        self,
        sink: io.IOBase | None = None,
        flags: int = 0,
        checksum: bool = False,
        recoverable: bool = False,
    ):
        if flags & ~_KNOWN_MULTI_FLAGS:
            raise ValueError(f"unknown container flags 0x{flags:02x}")
        # flag bits and keyword arguments are equivalent spellings: a
        # checksum bit without checksum behaviour would produce an
        # archive whose geometry contradicts its own flags
        recoverable = recoverable or bool(flags & MULTI_RECOVER)
        checksum = checksum or recoverable or bool(flags & MULTI_CHECKSUM)
        if checksum:
            flags |= MULTI_CHECKSUM
        if recoverable:
            flags |= MULTI_RECOVER
        self.checksum = checksum
        self.recoverable = recoverable
        self._own = sink is None
        self._sink: io.IOBase = io.BytesIO() if sink is None else sink
        self.flags = flags
        self._pos = 0
        self._digest = 0
        self._write(_MULTI_FIXED.pack(MULTI_MAGIC, MULTI_VERSION, flags, 0))
        self._offsets: list[int] = []
        self._lengths: list[int] = []
        self._flags: list[int] = []
        self._codecs: list[int] = []
        self._crcs: list[int] = []
        self._finalized = False

    def _write(self, data: bytes | memoryview) -> None:
        """Append ``data``, tracking position and the running digest."""
        self._sink.write(data)
        self._pos += len(data)
        if self.checksum:
            self._digest = zlib.crc32(data, self._digest)

    @property
    def nframes(self) -> int:
        return len(self._offsets)

    @property
    def in_memory(self) -> bool:
        """Whether the writer owns an in-memory sink (:meth:`getvalue`
        is only valid then)."""
        return self._own

    def add_frame(
        self,
        payload: bytes | memoryview,
        flags: int = 0,
        codec_id: int = CODEC_STZ,
    ) -> FrameInfo:
        """Append one frame; returns its table entry."""
        if self._finalized:
            raise ValueError("archive already finalized")
        if flags & ~_KNOWN_FRAME_FLAGS:
            raise ValueError(f"unknown frame flags 0x{flags:02x}")
        if codec_id not in CODEC_NAMES:
            raise ValueError(f"unknown codec id {codec_id}")
        if codec_id != CODEC_STZ and not (self.flags & MULTI_CODEC):
            # the version gate: non-STZ payloads are only legal in
            # archives whose header flag warns pre-codec-id readers off
            raise ValueError(
                "non-STZ frame codec requires a writer opened with "
                "flags=MULTI_CODEC"
            )
        crc = 0
        if self.checksum:
            crc = zlib.crc32(payload)
            flags |= FRAME_CHECKSUM
        if self.recoverable:
            # the record carries everything the table row would — a
            # forward scan can rebuild the table byte-exactly from the
            # records alone (integrity.repair_archive)
            self._write(
                _RECORD.pack(RECORD_MAGIC, len(payload), crc, flags, codec_id)
            )
        info = FrameInfo(
            self.nframes, self._pos, len(payload), flags, codec_id, crc
        )
        self._offsets.append(info.offset)
        self._lengths.append(info.length)
        self._flags.append(flags)
        self._codecs.append(codec_id)
        self._crcs.append(crc)
        self._write(payload)
        return info

    def finalize(self) -> None:
        """Write the frame table and trailer (idempotent)."""
        if self._finalized:
            return
        table = np.zeros(self.nframes, dtype=_FRAME_DTYPE)
        table["offset"] = self._offsets
        table["length"] = self._lengths
        table["flags"] = self._flags
        table["codec"] = self._codecs
        table["crc"] = self._crcs
        table_off = self._pos
        self._write(table.tobytes())
        if self.checksum:
            # digest of every byte written so far (head through table);
            # written raw — it cannot cover itself
            self._sink.write(_DIGEST.pack(self._digest))
        self._sink.write(
            _MULTI_TRAILER.pack(table_off, self.nframes, MULTI_END_MAGIC)
        )
        self._finalized = True

    def getvalue(self) -> bytes:
        """The finished archive (in-memory sinks only)."""
        if not self._own:
            raise ValueError("writer streams to an external sink")
        self.finalize()
        return self._sink.getvalue()


class MultiFrameReader:
    """Random-access reader for multi-frame archives.

    Opening parses only the 8-byte head, the 16-byte trailer and the
    frame table; frame payloads are fetched on demand, so random access
    to frame ``k`` of a file archive reads exactly that frame's bytes.
    Unknown container or frame flag bits are rejected at open (they may
    change decode semantics — see the module docstring).
    """

    def __init__(self, source: bytes | memoryview | io.IOBase):
        if isinstance(source, (bytes, bytearray, memoryview)):
            self._buf: memoryview | None = memoryview(source)
            self._file: io.IOBase | None = None
            total = len(self._buf)
        else:
            self._buf = None
            self._file = source
            total = source.seek(0, io.SEEK_END)
        if total < _MULTI_FIXED.size + _MULTI_TRAILER.size:
            raise ValueError("truncated multi-frame STZ container")
        magic, version, flags, _ = _MULTI_FIXED.unpack(
            self._read_at(0, _MULTI_FIXED.size)
        )
        if magic != MULTI_MAGIC:
            if magic == MAGIC:
                raise ValueError(
                    "single-frame STZ container; open it with StreamReader"
                )
            if magic == SHARD_MAGIC:
                raise ValueError(
                    "sharded (chunked, container v3) archive; open it "
                    "with ShardedReader / repro.core.api.decompress"
                )
            raise ValueError("not a multi-frame STZ container")
        if version != MULTI_VERSION:
            raise ValueError(
                f"unsupported multi-frame container version {version}"
            )
        if flags & ~_KNOWN_MULTI_FLAGS:
            raise ValueError(
                "container uses unknown feature flags "
                f"0x{flags & ~_KNOWN_MULTI_FLAGS:02x}; upgrade the reader"
            )
        self.flags = flags
        self.has_digest = bool(flags & MULTI_CHECKSUM)
        table_off, nframes, end_magic = _MULTI_TRAILER.unpack(
            self._read_at(total - _MULTI_TRAILER.size, _MULTI_TRAILER.size)
        )
        if end_magic != MULTI_END_MAGIC:
            raise ValueError("truncated multi-frame STZ container")
        extra = _DIGEST.size if self.has_digest else 0
        if (
            table_off + _FRAME.size * nframes + extra + _MULTI_TRAILER.size
            != total
        ):
            raise ValueError("corrupt multi-frame table geometry")
        #: where the whole-archive digest coverage ends (== digest block
        #: start when has_digest) — verify_archive checks CRC32 of
        #: bytes [0, digest_offset) against stored_digest
        self.digest_offset = table_off + _FRAME.size * nframes
        self.stored_digest: int | None = None
        if self.has_digest:
            (self.stored_digest,) = _DIGEST.unpack(
                self._read_at(self.digest_offset, _DIGEST.size)
            )
        table = np.frombuffer(
            self._read_at(table_off, _FRAME.size * nframes),
            dtype=_FRAME_DTYPE,
        )
        self.frames: tuple[FrameInfo, ...] = tuple(
            FrameInfo(i, int(off), int(length), int(fl), int(cid), int(crc))
            for i, (off, length, fl, cid, crc) in enumerate(
                zip(
                    table["offset"].tolist(),
                    table["length"].tolist(),
                    table["flags"].tolist(),
                    table["codec"].tolist(),
                    table["crc"].tolist(),
                )
            )
        )
        for f in self.frames:
            if f.flags & ~_KNOWN_FRAME_FLAGS:
                raise ValueError(
                    f"frame {f.index} uses unknown frame flags "
                    f"0x{f.flags & ~_KNOWN_FRAME_FLAGS:02x}; "
                    "upgrade the reader"
                )
            if f.codec_id not in CODEC_NAMES:
                raise ValueError(
                    f"frame {f.index} uses unknown codec id "
                    f"{f.codec_id}; upgrade the reader"
                )
            if f.offset + f.length > table_off:
                raise ValueError("corrupt multi-frame table geometry")
        if self.frames and self.frames[0].is_delta:
            raise ValueError("frame 0 cannot be a temporal delta")
        self.bytes_read = 0  # frame payload bytes actually fetched

    @property
    def nframes(self) -> int:
        return len(self.frames)

    def _read_at(self, offset: int, length: int) -> bytes | memoryview:
        if self._buf is not None:
            if offset + length > len(self._buf):
                raise ValueError("truncated multi-frame STZ container")
            return self._buf[offset : offset + length]
        self._file.seek(offset)
        data = self._file.read(length)
        if len(data) != length:
            raise ValueError("truncated multi-frame STZ container")
        return data

    def frame(self, index: int) -> FrameInfo:
        if not (0 <= index < self.nframes):
            raise IndexError(
                f"frame index {index} out of range [0, {self.nframes})"
            )
        return self.frames[index]

    def read_frame(self, index: int) -> bytes | memoryview:
        """The STZ1 payload of frame ``index`` (zero-copy in memory)."""
        info = self.frame(index)
        self.bytes_read += info.length
        return self._read_at(info.offset, info.length)

    def open_frame(self, index: int) -> StreamReader:
        """A :class:`StreamReader` over frame ``index``'s payload."""
        return StreamReader(self.read_frame(index))


# ---------------------------------------------------------------------------
# selected-codec envelope (single-array archives with a chosen backend)
# ---------------------------------------------------------------------------

def is_selected(source: bytes | memoryview | io.IOBase) -> bool:
    """Whether ``source`` starts with the selected-codec envelope magic.

    File sources are restored to their prior position, like
    :func:`is_multiframe`.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return bytes(memoryview(source)[:4]) == SELECT_MAGIC
    pos = source.tell()
    head = source.read(4)
    source.seek(pos)
    return head == SELECT_MAGIC


def wrap_selected(codec_id: int, payload: bytes | memoryview) -> bytes:
    """Wrap one codec's container in the 'STZC' envelope."""
    if codec_id not in CODEC_NAMES:
        raise ValueError(f"unknown codec id {codec_id}")
    return (
        _SELECT_HEADER.pack(SELECT_MAGIC, SELECT_VERSION, codec_id, 0, 0)
        + bytes(payload)
    )


def unwrap_selected(
    source: bytes | memoryview,
) -> tuple[int, memoryview]:
    """Parse an 'STZC' envelope into (codec_id, inner payload view).

    Unknown codec ids and unknown flag bits are rejected — either could
    change decode semantics, and misrouting a payload to the wrong
    backend parser would at best fail confusingly and at worst decode
    plausible garbage.
    """
    buf = memoryview(source)
    if len(buf) < _SELECT_HEADER.size:
        raise ValueError("truncated codec-selected container")
    magic, version, codec_id, flags, _pad = _SELECT_HEADER.unpack(
        buf[: _SELECT_HEADER.size]
    )
    if magic != SELECT_MAGIC:
        raise ValueError("not a codec-selected container")
    if version != SELECT_VERSION:
        raise ValueError(
            f"unsupported codec-selected container version {version}"
        )
    if flags & ~_KNOWN_SELECT_FLAGS:
        raise ValueError(
            "container uses unknown feature flags "
            f"0x{flags & ~_KNOWN_SELECT_FLAGS:02x}; upgrade the reader"
        )
    if codec_id not in CODEC_NAMES:
        raise ValueError(
            f"container uses unknown codec id {codec_id}; "
            "upgrade the reader"
        )
    if flags & SELECT_CHECKSUM:
        # trailing CRC covers the whole envelope; strip it so the
        # inner codec sees exactly the payload it produced
        _verify_trailing_crc(buf, "codec-selected")
        return codec_id, buf[_SELECT_HEADER.size : len(buf) - 4]
    return codec_id, buf[_SELECT_HEADER.size :]


# ---------------------------------------------------------------------------
# container v3: sharded (chunked) archives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChunkEntry:
    """One entry of the v3 chunk table."""

    index: int
    offset: int  # absolute, from container start
    length: int
    flags: int
    codec_id: int = CODEC_STZ
    crc: int = 0  # CRC32 of the payload, valid iff has_checksum

    @property
    def codec(self) -> str:
        """Name of the backend that encoded this chunk's payload."""
        return CODEC_NAMES[self.codec_id]

    @property
    def has_checksum(self) -> bool:
        """Whether ``crc`` holds the payload's CRC32 (pre-checksum rows
        parse with the flag unset and crc 0 — "unchecked")."""
        return bool(self.flags & CHUNK_CHECKSUM)


def is_sharded(source: bytes | memoryview | io.IOBase) -> bool:
    """Whether ``source`` starts with the v3 sharded magic.

    File sources are restored to their prior position, like
    :func:`is_multiframe`.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return bytes(memoryview(source)[:4]) == SHARD_MAGIC
    pos = source.tell()
    head = source.read(4)
    source.seek(pos)
    return head == SHARD_MAGIC


class ShardedWriter:
    """Append-only writer for sharded (container v3) archives.

    Chunk payloads — complete STZ1 blobs or 'STZC' envelopes, in plan
    (C) order — are written to ``sink`` as they arrive; only the
    24-byte table rows are retained, so writer memory is O(1 chunk)
    however large the array.  The table and trailer land at the end on
    :meth:`finalize` (which also checks the plan was fully covered), so
    the sink is never seeked: any append-only byte sink works.  With no
    ``sink`` an in-memory buffer is used and :meth:`getvalue` returns
    the archive bytes.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        chunk_shape: tuple[int, ...],
        sink: io.IOBase | None = None,
        flags: int = 0,
        checksum: bool = False,
        recoverable: bool = False,
    ):
        if flags & ~_KNOWN_SHARD_FLAGS:
            raise ValueError(f"unknown container flags 0x{flags:02x}")
        # flag bits and keyword arguments are equivalent spellings (see
        # MultiFrameWriter)
        recoverable = recoverable or bool(flags & SHARD_RECOVER)
        checksum = checksum or recoverable or bool(flags & SHARD_CHECKSUM)
        if checksum:
            flags |= SHARD_CHECKSUM
        if recoverable:
            flags |= SHARD_RECOVER
        self.checksum = checksum
        self.recoverable = recoverable
        self.plan = ChunkPlan(
            tuple(int(n) for n in shape), tuple(int(c) for c in chunk_shape)
        )
        self.dtype = np.dtype(dtype)
        self.flags = flags
        self._own = sink is None
        self._sink: io.IOBase = io.BytesIO() if sink is None else sink
        ndim = len(self.plan.shape)
        head = _SHARD_FIXED.pack(
            SHARD_MAGIC, SHARD_VERSION, flags, dtype_code(self.dtype), ndim
        ) + struct.pack(
            f"<{2 * ndim}Q", *self.plan.shape, *self.plan.chunk_shape
        )
        self._pos = 0
        self._digest = 0
        self._write(head)
        self._offsets: list[int] = []
        self._lengths: list[int] = []
        self._codecs: list[int] = []
        self._crcs: list[int] = []
        self._finalized = False

    def _write(self, data: bytes | memoryview) -> None:
        """Append ``data``, tracking position and the running digest."""
        self._sink.write(data)
        self._pos += len(data)
        if self.checksum:
            self._digest = zlib.crc32(data, self._digest)

    @property
    def nchunks(self) -> int:
        return len(self._lengths)

    @property
    def in_memory(self) -> bool:
        return self._own

    def add_chunk(
        self, payload: bytes | memoryview, codec_id: int = CODEC_STZ
    ) -> ChunkEntry:
        """Append the next chunk's payload (plan order); returns its
        table entry."""
        if self._finalized:
            raise ValueError("archive already finalized")
        if codec_id not in CODEC_NAMES:
            raise ValueError(f"unknown codec id {codec_id}")
        if self.nchunks >= self.plan.nchunks:
            raise ValueError(
                f"plan has only {self.plan.nchunks} chunks; chunk "
                f"{self.nchunks} does not exist"
            )
        flags = 0
        crc = 0
        if self.checksum:
            crc = zlib.crc32(payload)
            flags = CHUNK_CHECKSUM
        if self.recoverable:
            self._write(
                _RECORD.pack(RECORD_MAGIC, len(payload), crc, flags, codec_id)
            )
        entry = ChunkEntry(
            self.nchunks, self._pos, len(payload), flags, codec_id, crc
        )
        self._offsets.append(entry.offset)
        self._lengths.append(entry.length)
        self._codecs.append(codec_id)
        self._crcs.append(crc)
        self._write(payload)
        return entry

    def finalize(self) -> None:
        """Write the chunk table and trailer (idempotent)."""
        if self._finalized:
            return
        if self.nchunks != self.plan.nchunks:
            raise ValueError(
                f"plan needs {self.plan.nchunks} chunks, got {self.nchunks}"
            )
        table = np.zeros(self.nchunks, dtype=_FRAME_DTYPE)
        table["offset"] = self._offsets
        table["length"] = self._lengths
        table["flags"] = [CHUNK_CHECKSUM if self.checksum else 0] * (
            self.nchunks
        )
        table["codec"] = self._codecs
        table["crc"] = self._crcs
        table_off = self._pos
        self._write(table.tobytes())
        if self.checksum:
            self._sink.write(_DIGEST.pack(self._digest))
        self._sink.write(
            _MULTI_TRAILER.pack(table_off, self.nchunks, MULTI_END_MAGIC)
        )
        self._finalized = True

    def getvalue(self) -> bytes:
        """The finished archive (in-memory sinks only)."""
        if not self._own:
            raise ValueError("writer streams to an external sink")
        self.finalize()
        return self._sink.getvalue()


class ShardedReader:
    """Random-access reader for sharded (container v3) archives.

    Opening parses the fixed head, the 16-byte trailer and the chunk
    table, and rebuilds the :class:`~repro.core.partition.ChunkPlan`
    from the stored ``(shape, chunk_shape)``; chunk payloads are
    fetched on demand, so chunk-granular random access to a file
    archive reads exactly the chunks it touches.  Unknown container
    flags, per-chunk flags and codec ids are rejected at open (they may
    change decode semantics — see the module docstring).
    """

    def __init__(self, source: bytes | memoryview | io.IOBase):
        if isinstance(source, (bytes, bytearray, memoryview)):
            self._buf: memoryview | None = memoryview(source)
            self._file: io.IOBase | None = None
            total = len(self._buf)
        else:
            self._buf = None
            self._file = source
            total = source.seek(0, io.SEEK_END)
        if total < _SHARD_FIXED.size + _MULTI_TRAILER.size:
            raise ValueError("truncated sharded STZ container")
        magic, version, flags, dt, ndim = _SHARD_FIXED.unpack(
            self._read_at(0, _SHARD_FIXED.size)
        )
        if magic != SHARD_MAGIC:
            if magic == MAGIC:
                raise ValueError(
                    "single-frame STZ container; open it with StreamReader"
                )
            if magic == MULTI_MAGIC:
                raise ValueError(
                    "multi-frame STZ container; open it with "
                    "MultiFrameReader / the streaming API"
                )
            raise ValueError("not a sharded STZ container")
        if version != SHARD_VERSION:
            raise ValueError(
                f"unsupported sharded container version {version}"
            )
        if flags & ~_KNOWN_SHARD_FLAGS:
            raise ValueError(
                "container uses unknown feature flags "
                f"0x{flags & ~_KNOWN_SHARD_FLAGS:02x}; upgrade the reader"
            )
        self.flags = flags
        self.has_digest = bool(flags & SHARD_CHECKSUM)
        self.dtype = dtype_from_code(dt)
        dims = struct.unpack(
            f"<{2 * ndim}Q",
            self._read_at(_SHARD_FIXED.size, 16 * ndim),
        )
        shape = tuple(int(n) for n in dims[:ndim])
        chunk_shape = tuple(int(n) for n in dims[ndim:])
        self.plan = ChunkPlan(shape, chunk_shape)
        table_off, nchunks, end_magic = _MULTI_TRAILER.unpack(
            self._read_at(total - _MULTI_TRAILER.size, _MULTI_TRAILER.size)
        )
        if end_magic != MULTI_END_MAGIC:
            raise ValueError("truncated sharded STZ container")
        extra = _DIGEST.size if self.has_digest else 0
        if (
            table_off + _FRAME.size * nchunks + extra + _MULTI_TRAILER.size
            != total
        ):
            raise ValueError("corrupt sharded chunk-table geometry")
        if nchunks != self.plan.nchunks:
            raise ValueError(
                f"chunk table has {nchunks} entries; the stored plan "
                f"{shape} / {chunk_shape} needs {self.plan.nchunks}"
            )
        self.digest_offset = table_off + _FRAME.size * nchunks
        self.stored_digest: int | None = None
        if self.has_digest:
            (self.stored_digest,) = _DIGEST.unpack(
                self._read_at(self.digest_offset, _DIGEST.size)
            )
        table = np.frombuffer(
            self._read_at(table_off, _FRAME.size * nchunks),
            dtype=_FRAME_DTYPE,
        )
        self.chunks: tuple[ChunkEntry, ...] = tuple(
            ChunkEntry(i, int(off), int(length), int(fl), int(cid), int(crc))
            for i, (off, length, fl, cid, crc) in enumerate(
                zip(
                    table["offset"].tolist(),
                    table["length"].tolist(),
                    table["flags"].tolist(),
                    table["codec"].tolist(),
                    table["crc"].tolist(),
                )
            )
        )
        for c in self.chunks:
            if c.flags & ~_KNOWN_CHUNK_FLAGS:
                raise ValueError(
                    f"chunk {c.index} uses unknown chunk flags "
                    f"0x{c.flags & ~_KNOWN_CHUNK_FLAGS:02x}; "
                    "upgrade the reader"
                )
            if c.codec_id not in CODEC_NAMES:
                raise ValueError(
                    f"chunk {c.index} uses unknown codec id "
                    f"{c.codec_id}; upgrade the reader"
                )
            if c.offset + c.length > table_off:
                raise ValueError("corrupt sharded chunk-table geometry")
        self.bytes_read = 0  # chunk payload bytes actually fetched

    @property
    def shape(self) -> tuple[int, ...]:
        return self.plan.shape

    @property
    def nchunks(self) -> int:
        return len(self.chunks)

    def _read_at(self, offset: int, length: int) -> bytes | memoryview:
        if self._buf is not None:
            if offset + length > len(self._buf):
                raise ValueError("truncated sharded STZ container")
            return self._buf[offset : offset + length]
        self._file.seek(offset)
        data = self._file.read(length)
        if len(data) != length:
            raise ValueError("truncated sharded STZ container")
        return data

    def chunk(self, index: int) -> ChunkEntry:
        if not (0 <= index < self.nchunks):
            raise IndexError(
                f"chunk index {index} out of range [0, {self.nchunks})"
            )
        return self.chunks[index]

    def read_chunk(self, index: int) -> bytes | memoryview:
        """The payload of chunk ``index`` (zero-copy in memory)."""
        entry = self.chunk(index)
        self.bytes_read += entry.length
        return self._read_at(entry.offset, entry.length)
