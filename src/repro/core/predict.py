"""Hierarchical multi-dimensional interpolation predictors (paper §3.1).

Predicts a parity-``eps`` sub-block of the next finer lattice from the
reconstructed coarse lattice ``C``.  A sub-block point with index ``k``
sits at coarse coordinate ``k + eps/2`` per axis: axes with ``eps=0`` are
aligned with the coarse grid, axes with ``eps=1`` sit at midpoints.  The
paper's prediction ladder (its Figure 5 ablation) maps to ``interp``:

* ``"direct"``  — Optimization 1, Eq. (1): copy the base coarse neighbor.
* ``"linear"``  — Optimization 2, Eqs. (3)-(5): (bi/tri)linear midpoint
  interpolation.
* ``"cubic"``   — Optimization 4, Eqs. (6)-(8): 1D cubic spline along one
  odd axis, and the paper's *diagonal* bi-/tri-cubic approximations for
  two and three odd axes (``mode="diagonal"``).  ``mode="tensor"``
  applies the 1D cubic operator separably instead (a design-choice
  ablation the benchmarks exercise).

Boundary policy matches the paper: cubic needs the full 4-point stencil,
so points whose stencil leaves the lattice fall back to linear, and the
final midpoint of an even-sized axis (no right neighbor) falls back to a
direct copy — which the clamped-index linear formula produces naturally.

Two code paths share one set of formula helpers so they agree
*bit-for-bit*:

* :func:`predict_block` — full sub-block, pure slicing (fast path used
  by compression and full decompression),
* :func:`predict_points` — arbitrary point sets via gathers (used by
  random-access decompression; the equality of the two paths is what
  makes ``ROI decompression == full decompression`` exact).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.partition import Offset
from repro.util import jit

# diagonal cubic weights per number of odd axes (Eqs. 6, 7, 8):
# pred = wn * sum(nearest 2^j) - wo * sum(outer-diagonal 2^j)
_CUBIC_WEIGHTS = {
    1: (9.0 / 16.0, 1.0 / 16.0),
    2: (9.0 / 32.0, 1.0 / 32.0),
    3: (9.0 / 64.0, 1.0 / 64.0),
}

INTERP_KINDS = ("direct", "linear", "cubic")
CUBIC_MODES = ("diagonal", "tensor")


def _sum_seq(arrays: list[np.ndarray]) -> np.ndarray:
    """Left-to-right sum with a fixed op sequence (bit-reproducible)."""
    s = arrays[0] + arrays[1] if len(arrays) > 1 else arrays[0].copy()
    for a in arrays[2:]:
        s = s + a
    return s


def _linear_combine(corners: list[np.ndarray], j: int) -> np.ndarray:
    # compiled fused combine (repro.util.jit, DESIGN.md §10): one pass
    # over the strided corner views instead of 2^j temporaries; the
    # weights are dyadic, so the scalar cast is exact and the result is
    # bit-identical to the reference expression below
    w = 0.5**j
    out = jit.combine(corners, (), w, 0.0)
    if out is not None:
        return out
    return _sum_seq(corners) * w


def _cubic_combine(
    near: list[np.ndarray], outer: list[np.ndarray], j: int
) -> np.ndarray:
    wn, wo = _CUBIC_WEIGHTS[j]
    out = jit.combine(near, outer, wn, wo)
    if out is not None:
        return out
    return _sum_seq(near) * wn - _sum_seq(outer) * wo


def _clamp_shift(arr: np.ndarray, axis: int) -> np.ndarray:
    """``out[k] = arr[min(k+1, n-1)]`` along ``axis`` (edge-clamped)."""
    n = arr.shape[axis]
    if n == 1:
        return arr
    head = tuple(
        slice(1, None) if a == axis else slice(None) for a in range(arr.ndim)
    )
    tail = tuple(
        slice(n - 1, None) if a == axis else slice(None)
        for a in range(arr.ndim)
    )
    return np.concatenate([arr[head], arr[tail]], axis=axis)


def _fill_shifts(C: np.ndarray, cache: dict, axes) -> dict:
    """Ensure ``cache`` holds the clamp-shift of ``C`` for every subset
    of ``axes`` (keyed by axis frozenset), building each combination
    from its one-axis-smaller parent.  The single construction loop
    shared by the lazy per-call fill and the thread-safe pre-fill."""
    cache.setdefault(frozenset(), C)
    for a in axes:
        for key in list(cache):
            if a not in key and (key | {a}) not in cache:
                cache[key | {a}] = _clamp_shift(cache[key], a)
    return cache


def populate_shift_cache(C: np.ndarray, cache: dict) -> dict:
    """Precompute every clamp-shift combination of ``C`` into ``cache``.

    :func:`predict_block` fills its ``shift_cache`` lazily, which is
    fine serially but is a check-then-insert race when the sub-blocks
    of a level are predicted from a thread pool.  Filling all
    ``2**d - 1`` axis combinations up front (the union every parity
    offset of the level will ask for) makes the dict strictly read-only
    for the workers.  Returns ``cache``.
    """
    return _fill_shifts(C, cache, range(C.ndim))


def uses_shift_cache(interp: str, mode: str) -> bool:
    """Whether :func:`predict_block` reads ``shift_cache`` at all
    (direct prediction and the tensor cubic path never do)."""
    return interp in ("linear", "cubic") and not (
        interp == "cubic" and mode == "tensor"
    )


def _odd_axes(C: np.ndarray, eps: Offset) -> list[int]:
    if len(eps) != C.ndim:
        raise ValueError("eps rank mismatch with coarse array")
    odd = [a for a in range(C.ndim) if eps[a]]
    if not odd:
        raise ValueError("eps must be a nonzero parity offset")
    return odd


def _validate(C: np.ndarray, eps: Offset, ts: tuple[int, ...]) -> list[int]:
    if len(ts) != C.ndim:
        raise ValueError("ts rank mismatch with coarse array")
    odd = _odd_axes(C, eps)
    for a in range(C.ndim):
        if eps[a] == 0 and ts[a] != C.shape[a]:
            raise ValueError(
                f"aligned axis {a}: target size {ts[a]} != coarse {C.shape[a]}"
            )
        if eps[a] == 1 and not (
            ts[a] in (C.shape[a], C.shape[a] - 1) or C.shape[a] <= 1
        ):
            raise ValueError(
                f"odd axis {a}: target size {ts[a]} incompatible with "
                f"coarse {C.shape[a]}"
            )
    return odd


# ---------------------------------------------------------------------------
# grid path
# ---------------------------------------------------------------------------

def predict_block(
    C: np.ndarray,
    eps: Offset,
    ts: tuple[int, ...],
    interp: str = "cubic",
    mode: str = "diagonal",
    shift_cache: dict | None = None,
) -> np.ndarray:
    """Predict the full parity-``eps`` sub-block of shape ``ts``.

    ``shift_cache`` (optional) memoizes the clamp-shifted copies of
    ``C`` across calls: the ``2**d - 1`` sub-blocks of one level share
    shift combinations, so a per-level cache dict avoids recomputing
    (and reallocating) the same shifted array for every parity offset.
    Callers must pass a fresh dict per coarse lattice ``C``.
    """
    odd = _validate(C, eps, ts)
    if any(t == 0 for t in ts):
        return np.empty(ts, dtype=C.dtype)
    if interp not in INTERP_KINDS:
        raise ValueError(f"unknown interp {interp!r}")
    if interp == "cubic" and mode == "tensor":
        return _predict_block_tensor(C, odd, ts)

    restrict = tuple(
        slice(0, ts[a]) if a in set(odd) else slice(None)
        for a in range(C.ndim)
    )
    if interp == "direct":
        return np.ascontiguousarray(C[restrict])

    # linear everywhere (clamped +1 shift handles all boundaries,
    # degenerating to a direct copy at the last midpoint of even axes)
    shifted = _fill_shifts(
        C, shift_cache if shift_cache is not None else {}, odd
    )
    j = len(odd)

    def linear_region(region: tuple[slice, ...] | None) -> np.ndarray:
        corners = []
        for delta in itertools.product((0, 1), repeat=j):
            arr = shifted[frozenset(a for a, d in zip(odd, delta) if d)][
                restrict
            ]
            corners.append(arr if region is None else arr[region])
        return _linear_combine(corners, j)

    if interp == "linear":
        return linear_region(None)

    # cubic upgrade on the interior slab where the 4-point stencil fits:
    # k in [1, cs-3] per odd axis (intersected with the target extent)
    los = {a: 1 for a in odd}
    his = {a: min(C.shape[a] - 2, ts[a]) for a in odd}
    if any(his[a] <= los[a] for a in odd):
        return linear_region(None)

    def slab(delta_map: dict[int, int]) -> tuple[slice, ...]:
        return tuple(
            slice(los[a] + delta_map[a], his[a] + delta_map[a])
            if a in set(odd)
            else slice(None)
            for a in range(C.ndim)
        )

    near = [
        C[slab({a: d for a, d in zip(odd, delta)})]
        for delta in itertools.product((0, 1), repeat=j)
    ]
    outer = [
        C[slab({a: d for a, d in zip(odd, delta)})]
        for delta in itertools.product((-1, 2), repeat=j)
    ]
    target = tuple(
        slice(los[a], his[a]) if a in set(odd) else slice(None)
        for a in range(C.ndim)
    )
    # fill the cubic interior, then evaluate the linear fallback only on
    # the boundary shell (its complement), decomposed into disjoint
    # slabs: slab ``i`` fixes odd axis ``a_i`` to its boundary runs with
    # all earlier odd axes restricted to the interior.  Values are
    # bit-identical to evaluating linear everywhere and overwriting —
    # both paths apply the same element-wise formula per point.
    pred = np.empty(ts, dtype=C.dtype)
    pred[target] = _cubic_combine(near, outer, j)
    for idx_a, a in enumerate(odd):
        for lo, hi in ((0, los[a]), (his[a], ts[a])):
            if hi <= lo:
                continue
            region = tuple(
                slice(lo, hi)
                if ax == a
                else (
                    slice(los[ax], his[ax])
                    if ax in odd[:idx_a]
                    else slice(None)
                )
                for ax in range(C.ndim)
            )
            pred[region] = linear_region(region)
    return pred


def predict_dequant_block(
    C: np.ndarray,
    eps: Offset,
    ts: tuple[int, ...],
    interp: str,
    mode: str,
    shift_cache: dict | None,
    codes: np.ndarray,
    eb: float,
    radius: int,
    f32_mode: bool,
) -> np.ndarray | None:
    """Fused predict + dequantize of one sub-block (DESIGN.md §10).

    Mirrors :func:`predict_block`'s region decomposition exactly, but
    each region runs the compiled ``jit.combine_dequant`` kernel, which
    computes the combine *and* the quantizer reconstruction formula in
    one pass, writing straight into the sub-block — no materialized
    prediction array, no second dequantize sweep.  Returns the
    reconstruction (shape ``ts``, outliers **not** yet scattered), or
    None whenever the compiled path cannot run — the caller falls back
    to ``predict_block`` + ``dequantize``, which is bit-identical: the
    kernel replicates the per-element op order of both stages.

    Eligibility: the compiled kernels loaded, linear or diagonal-cubic
    interpolation (direct and tensor-cubic stay on the reference), at
    most 4 dims, and region corner counts within the kernel's 16-view
    limit.
    """
    if interp not in ("linear", "cubic") or (
        interp == "cubic" and mode == "tensor"
    ):
        return None
    if not jit.has("dqc_f32"):
        return None
    odd = _validate(C, eps, ts)
    if any(t == 0 for t in ts):
        return np.empty(ts, dtype=C.dtype)
    j = len(odd)
    narr = (1 << j) * (2 if interp == "cubic" else 1)
    if C.ndim > 4 or narr > 16:
        return None
    if codes.size != int(np.prod(ts)):
        return None

    restrict = tuple(
        slice(0, ts[a]) if a in set(odd) else slice(None)
        for a in range(C.ndim)
    )
    shifted = _fill_shifts(
        C, shift_cache if shift_cache is not None else {}, odd
    )
    out = np.empty(ts, dtype=C.dtype)
    qv = codes.reshape(ts)

    def linear_region(region: tuple[slice, ...] | None) -> bool:
        corners = []
        for delta in itertools.product((0, 1), repeat=j):
            arr = shifted[frozenset(a for a, d in zip(odd, delta) if d)][
                restrict
            ]
            corners.append(arr if region is None else arr[region])
        q = qv if region is None else qv[region]
        o = out if region is None else out[region]
        return jit.combine_dequant(
            corners, (), 0.5**j, 0.0, q, o, eb, radius, f32_mode
        )

    if interp == "linear":
        return out if linear_region(None) else None

    los = {a: 1 for a in odd}
    his = {a: min(C.shape[a] - 2, ts[a]) for a in odd}
    if any(his[a] <= los[a] for a in odd):
        return out if linear_region(None) else None

    def slab(delta_map: dict[int, int]) -> tuple[slice, ...]:
        return tuple(
            slice(los[a] + delta_map[a], his[a] + delta_map[a])
            if a in set(odd)
            else slice(None)
            for a in range(C.ndim)
        )

    near = [
        C[slab({a: d for a, d in zip(odd, delta)})]
        for delta in itertools.product((0, 1), repeat=j)
    ]
    outer = [
        C[slab({a: d for a, d in zip(odd, delta)})]
        for delta in itertools.product((-1, 2), repeat=j)
    ]
    target = tuple(
        slice(los[a], his[a]) if a in set(odd) else slice(None)
        for a in range(C.ndim)
    )
    wn, wo = _CUBIC_WEIGHTS[j]
    if not jit.combine_dequant(
        near, outer, wn, wo, qv[target], out[target], eb, radius, f32_mode
    ):
        return None
    for idx_a, a in enumerate(odd):
        for lo, hi in ((0, los[a]), (his[a], ts[a])):
            if hi <= lo:
                continue
            region = tuple(
                slice(lo, hi)
                if ax == a
                else (
                    slice(los[ax], his[ax])
                    if ax in odd[:idx_a]
                    else slice(None)
                )
                for ax in range(C.ndim)
            )
            if not linear_region(region):
                return None
    return out


def interp_axis_midpoints(
    C: np.ndarray, axis: int, t: int, interp: str = "cubic"
) -> np.ndarray:
    """1D midpoint interpolation along one axis, producing ``t``
    midpoints (midpoint ``k`` lies between ``C[k]`` and ``C[k+1]``).

    ``interp="cubic"`` uses the 4-point spline stencil in the interior
    with linear/copy fallback at the edges; ``"linear"`` averages the
    two neighbors (copying at a missing right edge).  This is both the
    tensor-mode building block and the 1D pass of the SZ3-style
    cascaded interpolator.
    """
    if interp not in ("linear", "cubic"):
        raise ValueError(f"unknown 1D interp {interp!r}")
    shifted = _clamp_shift(C, axis)
    cut = tuple(
        slice(0, t) if a == axis else slice(None) for a in range(C.ndim)
    )
    pred = _linear_combine([C[cut], shifted[cut]], 1)
    if interp == "linear":
        return pred
    lo, hi = 1, min(C.shape[axis] - 2, t)
    if hi > lo:

        def sl(delta: int) -> tuple[slice, ...]:
            return tuple(
                slice(lo + delta, hi + delta) if a == axis else slice(None)
                for a in range(C.ndim)
            )

        target = tuple(
            slice(lo, hi) if a == axis else slice(None)
            for a in range(C.ndim)
        )
        pred[target] = _cubic_combine(
            [C[sl(0)], C[sl(1)]], [C[sl(-1)], C[sl(2)]], 1
        )
    return pred


def _predict_block_tensor(
    C: np.ndarray, odd: list[int], ts: tuple[int, ...]
) -> np.ndarray:
    """Separable (tensor-product) cubic: apply the 1D operator per odd
    axis in ascending order."""
    X = C
    for a in odd:
        X = interp_axis_midpoints(X, a, ts[a], "cubic")
    return np.ascontiguousarray(X)


# ---------------------------------------------------------------------------
# gather path (random access)
# ---------------------------------------------------------------------------

def predict_points(
    C: np.ndarray,
    eps: Offset,
    idx: tuple[np.ndarray, ...],
    interp: str = "cubic",
    mode: str = "diagonal",
    origin: tuple[int, ...] | None = None,
    full_shape: tuple[int, ...] | None = None,
) -> np.ndarray:
    """Predict arbitrary sub-block points given per-axis index arrays.

    ``idx[a]`` holds the sub-block coordinate of each requested point
    along axis ``a`` (all arrays the same length).  Bit-identical to
    :func:`predict_block` at the same points.

    Random-access decompression reconstructs only a *window* of the
    coarse lattice; pass that window as ``C`` together with its
    ``origin`` (coarse coordinates of ``C[0,...,0]``) and the
    ``full_shape`` of the whole lattice.  Indices stay global:
    boundary clamping and the cubic-stencil test are evaluated against
    ``full_shape``, so a window prediction equals the full-lattice one
    wherever the window covers the stencil (the ROI dilation guarantees
    it does).
    """
    odd = _odd_axes(C, eps)
    if interp == "cubic" and mode == "tensor":
        raise NotImplementedError(
            "tensor cubic has no gather path; use diagonal mode for "
            "random-access decompression"
        )
    if interp not in INTERP_KINDS:
        raise ValueError(f"unknown interp {interp!r}")
    if (origin is None) != (full_shape is None):
        raise ValueError("origin and full_shape must be given together")
    org = origin or (0,) * C.ndim
    cs = full_shape or C.shape
    npts = idx[0].size
    if npts == 0:
        return np.empty(0, dtype=C.dtype)
    ix = [np.asarray(i, dtype=np.int64) for i in idx]

    if interp == "direct":
        return C[tuple(v - o for v, o in zip(ix, org))]

    j = len(odd)
    odd_set = set(odd)

    def corner(delta_map: dict[int, int], clamp: bool) -> np.ndarray:
        sel = []
        for a in range(C.ndim):
            if a in odd_set:
                v = ix[a] + delta_map[a]
                if clamp:
                    v = np.minimum(v, cs[a] - 1)
                sel.append(v - org[a])
            else:
                sel.append(ix[a] - org[a])
        return C[tuple(sel)]

    corners = [
        corner({a: d for a, d in zip(odd, delta)}, clamp=True)
        for delta in itertools.product((0, 1), repeat=j)
    ]
    pred = _linear_combine(corners, j)
    if interp == "linear":
        return pred

    # cubic where every odd axis has the full stencil: 1 <= k <= cs-3
    mask = np.ones(npts, dtype=bool)
    for a in odd:
        mask &= (ix[a] >= 1) & (ix[a] <= cs[a] - 3)
    if not mask.any():
        return pred
    sub = [v[mask] for v in ix]

    def sub_corner(delta_map: dict[int, int]) -> np.ndarray:
        sel = [
            sub[a] + delta_map[a] - org[a]
            if a in odd_set
            else sub[a] - org[a]
            for a in range(C.ndim)
        ]
        return C[tuple(sel)]

    near = [
        sub_corner({a: d for a, d in zip(odd, delta)})
        for delta in itertools.product((0, 1), repeat=j)
    ]
    outer = [
        sub_corner({a: d for a, d in zip(odd, delta)})
        for delta in itertools.product((-1, 2), repeat=j)
    ]
    pred[mask] = _cubic_combine(near, outer, j)
    return pred
