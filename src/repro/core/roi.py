"""ROI selection module (paper §3.3 "Flexible scientific workflow",
Figure 10).

Helps users find regions of interest on a *coarse* (progressively
decompressed) field before paying for full-resolution random access.
Two detectors, matching the paper:

* **max-value thresholding** — suited to over-density halos in
  cosmology (the paper's Nyx example uses threshold 81.66);
* **range (min-max spread) thresholding** — suited to fluid interfaces
  in hydrodynamics.

Statistics are computed per slice (along an axis) or per tile of a
block tiling, and selections can be by absolute threshold or top-x%.

For sharded (container v3) archives the selection closes the loop with
the chunked engine: :func:`selection_chunk_indices` maps a selection
to the set of chunks it touches (the fetch plan), and
:func:`extract_selection` decodes each selected box through the
chunk-granular random-access path — only intersecting chunks are ever
read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import ChunkPlan

STATS = ("max", "min", "range")


def _reduce_axis(data: np.ndarray, axis: int, stat: str) -> np.ndarray:
    others = tuple(a for a in range(data.ndim) if a != axis)
    if stat == "max":
        return data.max(axis=others)
    if stat == "min":
        return data.min(axis=others)
    if stat == "range":
        return data.max(axis=others) - data.min(axis=others)
    raise ValueError(f"unknown stat {stat!r} (use one of {STATS})")


def slice_stats(data: np.ndarray, axis: int, stat: str = "max") -> np.ndarray:
    """Per-slice statistic along ``axis`` (length = data.shape[axis])."""
    if not (0 <= axis < data.ndim):
        raise ValueError(f"axis {axis} out of range")
    return _reduce_axis(data, axis, stat)


def block_stats(
    data: np.ndarray, block: tuple[int, ...] | int, stat: str = "max"
) -> np.ndarray:
    """Per-tile statistic over a block tiling (ragged edges included).

    Returns an array of shape ``ceil(shape/block)``.
    """
    if isinstance(block, int):
        block = (block,) * data.ndim
    if len(block) != data.ndim or any(b < 1 for b in block):
        raise ValueError("block must have one positive entry per axis")
    if stat == "range":
        return block_stats(data, block, "max") - block_stats(
            data, block, "min"
        )
    if stat not in ("max", "min"):
        raise ValueError(f"unknown stat {stat!r} (use one of {STATS})")
    ufunc = np.maximum if stat == "max" else np.minimum
    out = data
    for axis, b in enumerate(block):
        edges = np.arange(0, out.shape[axis], b)
        out = ufunc.reduceat(out, edges, axis=axis)
    return out


@dataclass(frozen=True)
class ROISelection:
    """Blocks/slices chosen by a detector."""

    boxes: tuple[tuple[slice, ...], ...]  # full-resolution boxes
    mask: np.ndarray  # tile/slice selection mask
    fraction: float  # fraction of the *dataset* covered

    def __len__(self) -> int:
        return len(self.boxes)


def _boxes_from_mask(
    mask: np.ndarray, block: tuple[int, ...], shape: tuple[int, ...]
) -> tuple[tuple[slice, ...], ...]:
    coords = np.argwhere(mask)
    boxes = []
    for c in coords:
        boxes.append(
            tuple(
                slice(int(i) * b, min((int(i) + 1) * b, n))
                for i, b, n in zip(c, block, shape)
            )
        )
    return tuple(boxes)


def select_blocks(
    data: np.ndarray,
    block: tuple[int, ...] | int,
    stat: str = "max",
    threshold: float | None = None,
    top_fraction: float | None = None,
) -> ROISelection:
    """Select tiles by ``stat >= threshold`` or the top ``top_fraction``
    of tiles ranked by ``stat`` (exactly one criterion must be given)."""
    if (threshold is None) == (top_fraction is None):
        raise ValueError("give exactly one of threshold / top_fraction")
    if isinstance(block, int):
        block = (block,) * data.ndim
    stats = block_stats(data, block, stat)
    if threshold is not None:
        mask = stats >= threshold
    else:
        if not (0 < top_fraction <= 1):
            raise ValueError("top_fraction must be in (0, 1]")
        k = max(1, int(round(top_fraction * stats.size)))
        cut = np.partition(stats.reshape(-1), stats.size - k)[stats.size - k]
        mask = stats >= cut
    boxes = _boxes_from_mask(mask, block, data.shape)
    covered = sum(
        int(np.prod([s.stop - s.start for s in b])) for b in boxes
    )
    return ROISelection(boxes, mask, covered / data.size)


def select_slices(
    data: np.ndarray,
    axis: int,
    stat: str = "max",
    threshold: float | None = None,
    top_fraction: float | None = None,
) -> ROISelection:
    """Slice-wise analogue of :func:`select_blocks`."""
    if (threshold is None) == (top_fraction is None):
        raise ValueError("give exactly one of threshold / top_fraction")
    stats = slice_stats(data, axis, stat)
    if threshold is not None:
        mask = stats >= threshold
    else:
        if not (0 < top_fraction <= 1):
            raise ValueError("top_fraction must be in (0, 1]")
        k = max(1, int(round(top_fraction * stats.size)))
        cut = np.partition(stats, stats.size - k)[stats.size - k]
        mask = stats >= cut
    boxes = tuple(
        tuple(
            slice(int(i), int(i) + 1) if a == axis else slice(0, data.shape[a])
            for a in range(data.ndim)
        )
        for i in np.flatnonzero(mask)
    )
    frac = float(mask.sum()) / data.shape[axis]
    return ROISelection(boxes, mask, frac)


def selection_chunk_indices(
    selection: ROISelection, plan: ChunkPlan
) -> list[int]:
    """Chunks of ``plan`` that any selected box intersects, in plan
    order — the fetch set a sharded (v3) archive needs to serve this
    selection, sized before any payload is read."""
    seen: set[int] = set()
    for box in selection.boxes:
        seen.update(
            plan.intersecting(tuple((s.start, s.stop) for s in box))
        )
    return sorted(seen)


def extract_selection(
    source, selection: ROISelection, threads: int | None = None
) -> list[np.ndarray]:
    """Decode every selected box from a sharded archive.

    The coarse-preview-then-extract workflow of Figure 10, served by
    the chunk index: each box goes through
    :func:`repro.core.chunked.decompress_chunked_roi`, so only the
    chunks that box intersects are read and decoded (and STZ-coded
    chunks decode only their intersecting sub-blocks).  ``source`` may
    be archive bytes or an open :class:`~repro.core.stream.ShardedReader`
    (reuse one reader across boxes to share its parsed table).
    """
    from repro.core.chunked import decompress_chunked_roi

    return [
        decompress_chunked_roi(source, box, threads=threads)
        for box in selection.boxes
    ]


def capture_recall(
    data: np.ndarray, selection: ROISelection, threshold: float
) -> float:
    """Fraction of super-threshold cells covered by the selection —
    the Figure 10 check that 0.69% of the data captures all halos."""
    target = data >= threshold
    total = int(target.sum())
    if total == 0:
        return 1.0
    covered = np.zeros(data.shape, dtype=bool)
    for box in selection.boxes:
        covered[box] = True
    return float((target & covered).sum()) / total
