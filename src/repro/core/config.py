"""Configuration for the STZ compressor.

The defaults reproduce the paper's final design: 3-level hierarchical
partition, diagonal multi-dimensional cubic interpolation, residual
quantization without a second SZ3 pass, and adaptive per-level error
bounds with ratio 2.5 (§3.1 Optimization 5).  The ablation benchmark
(Figure 5) builds the intermediate designs by overriding fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.encoding.quantizer import DEFAULT_RADIUS

#: residual compression backends for levels >= 2
RESIDUAL_CODECS = ("quantize", "sz3")

#: whole-array compression backends selectable at the API/CLI layer.
#: "stz" is this repo's pipeline (plain STZ1 container); the other
#: fixed names wrap that backend's own container in the selected-codec
#: envelope; "auto" routes each array/stream step to the winning
#: backend online (:mod:`repro.core.select`).
KNOWN_CODECS = ("stz", "sz3", "zfp", "sperr", "szx", "mgard", "auto")


@dataclass(frozen=True)
class STZConfig:
    """All knobs of the STZ pipeline.

    Attributes
    ----------
    levels:
        Number of hierarchy levels (2 or 3 in the paper; any >= 2 works,
        the paper sketches 4+ for 4096^3-scale data as future work).
    interp:
        Prediction operator for levels >= 2: ``"direct"``, ``"linear"``
        or ``"cubic"`` (Optimizations 1/2/4).
    cubic_mode:
        ``"diagonal"`` (paper Eqs. 7-8) or ``"tensor"`` (separable
        product; design-choice ablation, no random-access support).
    residual_codec:
        ``"quantize"`` = quantize+Huffman only (Optimization 3);
        ``"sz3"`` = run the full SZ3 pipeline on the residuals (the
        pre-Optimization-3 design, kept for the Figure 5 ablation).
    adaptive_eb:
        Apply the per-level error-bound schedule (Optimization 5).
    eb_ratio:
        Ratio between consecutive level bounds; level ``l`` of ``L``
        gets ``eb / eb_ratio**(L - l)`` so the user bound holds at the
        finest level and coarser levels are kept cleaner.
    quant_radius:
        Quantizer code radius (alphabet = 2*radius+1 symbols max).
    zlib_level:
        Lossless backend effort for encoded segments (0 disables).
    partition_only:
        Figure 5 "Partition" baseline: compress every sub-block
        independently with SZ3 and skip cross-level prediction.
    sz3_interp:
        Interpolator used by the embedded SZ3 codec (level 1, and
        residuals when ``residual_codec="sz3"``).
    f32_quant:
        Run residual quantization of float32 payloads in float32
        arithmetic where the bound analysis allows.  Recorded as a
        container flag bit so the decoder provably reconstructs with
        the encoder's formula; containers without the bit (written
        before it existed, or with this off) decode with the float64
        formula.
    codec:
        Whole-array backend (:data:`KNOWN_CODECS`).  ``"stz"`` (the
        default) is this pipeline and changes nothing; fixed foreign
        names and ``"auto"`` are dispatched by :mod:`repro.core.api` /
        :mod:`repro.core.streaming` through the selection engine and
        recorded in the container's codec-id byte.  Never serialized
        into the STZ1 header — the container that *carries* the choice
        is the envelope / v2 frame table.
    select_seed:
        Seed for the ``auto`` selector's exploration schedule.  The
        selector is fully deterministic given (input, seed), which is
        what makes ``auto`` containers reproducible byte for byte.
    select_explore:
        Epsilon of the ``auto`` selector's seeded epsilon-greedy
        refresh cadence: the per-step probability (streams only) that
        one non-leading candidate is cheaply re-scored so the ranking
        can track slow drift the feature detector misses.  0 disables
        refresh probes entirely.
    select_drift:
        Relative feature-drift tolerance of the streaming ``auto``
        engine (:func:`repro.core.select.features_drifted`): a full
        re-probe runs only when a step's sampled features move past
        this fraction (or its label flips).  Smaller values re-probe
        more eagerly; selection affects only size/speed, never the
        bound.
    """

    levels: int = 3
    interp: str = "cubic"
    cubic_mode: str = "diagonal"
    residual_codec: str = "quantize"
    adaptive_eb: bool = True
    eb_ratio: float = 2.5
    quant_radius: int = DEFAULT_RADIUS
    zlib_level: int = 1
    partition_only: bool = False
    sz3_interp: str = "cubic"
    f32_quant: bool = True
    codec: str = "stz"
    select_seed: int = 0
    select_explore: float = 0.25
    select_drift: float = 0.5

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ValueError("STZ needs at least 2 levels")
        if self.codec not in KNOWN_CODECS:
            raise ValueError(
                f"unknown codec {self.codec!r}; known: {KNOWN_CODECS}"
            )
        if self.interp not in ("direct", "linear", "cubic"):
            raise ValueError(f"unknown interp {self.interp!r}")
        if self.cubic_mode not in ("diagonal", "tensor"):
            raise ValueError(f"unknown cubic_mode {self.cubic_mode!r}")
        if self.residual_codec not in RESIDUAL_CODECS:
            raise ValueError(f"unknown residual_codec {self.residual_codec!r}")
        if self.eb_ratio < 1.0:
            raise ValueError("eb_ratio must be >= 1")
        if not (0 <= self.zlib_level <= 9):
            raise ValueError("zlib_level must be in [0, 9]")
        if not (0.0 <= self.select_explore <= 1.0):
            raise ValueError("select_explore must be in [0, 1]")
        if self.select_drift <= 0:
            raise ValueError("select_drift must be > 0")

    def level_eb(self, eb: float, level: int) -> float:
        """Error bound applied at ``level`` (1 = coarsest)."""
        if not self.adaptive_eb:
            return eb
        return eb / self.eb_ratio ** (self.levels - level)

    def with_(self, **kw) -> "STZConfig":
        """Functional update (convenience for ablations)."""
        return replace(self, **kw)


#: Figure 5 ablation ladder, in the paper's legend order.
ABLATION_CONFIGS: dict[str, STZConfig] = {
    "partition": STZConfig(levels=2, partition_only=True, adaptive_eb=False),
    "direct_pred": STZConfig(
        levels=2, interp="direct", residual_codec="sz3", adaptive_eb=False
    ),
    "multidim_interp": STZConfig(
        levels=2, interp="linear", residual_codec="sz3", adaptive_eb=False
    ),
    "multidim_qt": STZConfig(
        levels=2, interp="linear", residual_codec="quantize", adaptive_eb=False
    ),
    "cubic_multi_qt": STZConfig(
        levels=2, interp="cubic", residual_codec="quantize", adaptive_eb=False
    ),
    "cubic_multi_qt_adp": STZConfig(
        levels=2, interp="cubic", residual_codec="quantize", adaptive_eb=True
    ),
    "three_level_all": STZConfig(levels=3),
}
