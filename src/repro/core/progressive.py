"""Progressive (resolution-ladder) decompression helpers (§3.3, Fig 13).

``stz_decompress(level=k)`` already stops at any level; this module adds
the workflow conveniences the paper demonstrates: walking the whole
resolution ladder with timings, and upsampling a coarse preview back to
full resolution for visual/SSIM comparison against the original.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import level_output_shape, stz_decompress
from repro.core.stream import StreamReader
from repro.util.timer import Timer


@dataclass(frozen=True)
class ProgressiveStep:
    """One rung of the resolution ladder."""

    level: int
    shape: tuple[int, ...]
    seconds: float
    data: np.ndarray


def decompress_progressive(
    source: bytes | memoryview | StreamReader,
    level: int,
    threads: int | None = None,
) -> np.ndarray:
    """Reconstruct the coarse lattice of ``level`` (1 = coarsest)."""
    return stz_decompress(source, level=level, threads=threads)


def progressive_ladder(
    source: bytes | memoryview | StreamReader,
    threads: int | None = None,
) -> list[ProgressiveStep]:
    """Decompress every level 1..L from scratch, timing each — the data
    behind Figure 13 (decompression time vs resolution).

    Each rung re-reads from the container (as a fresh progressive
    request would), so timings are directly comparable.
    """
    reader = source if isinstance(source, StreamReader) else StreamReader(source)
    levels = reader.header.config.levels
    steps = []
    for level in range(1, levels + 1):
        with Timer() as t:
            arr = stz_decompress(reader, level=level, threads=threads)
        steps.append(
            ProgressiveStep(level, arr.shape, t.elapsed, arr)
        )
    return steps


def upsample_nearest(
    coarse: np.ndarray, full_shape: tuple[int, ...]
) -> np.ndarray:
    """Nearest-neighbor upsample of a stride-``s`` lattice back to the
    full grid (for comparing a coarse preview against the original, as
    the paper's Figure 1/13 renderings do)."""
    out = coarse
    for axis, (c, f) in enumerate(zip(coarse.shape, full_shape)):
        if c == f:
            continue
        reps = -(-f // c)
        out = np.repeat(out, reps, axis=axis)
        out = out[
            tuple(
                slice(0, f) if a == axis else slice(None)
                for a in range(out.ndim)
            )
        ]
    return out
