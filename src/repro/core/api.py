"""Public STZ API.

Functional entry points (:func:`compress`, :func:`decompress`,
:func:`decompress_progressive`, :func:`decompress_roi`) plus the
:class:`STZCompressor` object used by the cross-compressor benchmarks
and :class:`STZFile` for on-disk streaming access.

Time-step sequences go through :func:`compress_stream` /
:func:`iter_decompress` / :func:`decompress_frame`, thin functional
covers over :mod:`repro.core.streaming`'s stateful
:class:`~repro.core.streaming.StreamingCompressor` and
:class:`~repro.core.streaming.StreamingDecompressor`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.chunked import (
    compress_chunked as _compress_chunked_impl,
    decompress_chunked,
    decompress_chunked_roi,
)
from repro.core.config import STZConfig
from repro.core.integrity import (  # noqa: F401 — public re-exports
    ChunkCorruptionError,
    DecodeReport,
    FrameCorruptionError,
    RepairReport,
    VerifyReport,
    repair_archive,
    verify_archive,
)
from repro.core.parallel import WorkerPool  # noqa: F401 — public re-export
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.progressive import progressive_ladder
from repro.core.random_access import RandomAccessResult, stz_decompress_roi
from repro.core.select import (
    CODEC_NAMES,
    compress_selected,
    decompress_selected,
)
from repro.core.stream import (
    CODEC_STZ,
    StreamReader,
    add_archive_checksum,
    is_selected,
    is_sharded,
    unwrap_selected,
)
from repro.core.streaming import (
    DEFAULT_KEYFRAME_INTERVAL,
    StreamingCompressor,
    StreamingDecompressor,
)
from repro.util.io import atomic_write_bytes


def _resolve_codec(
    config: STZConfig | None, codec: str | None
) -> STZConfig:
    """Fold the ``codec=`` convenience argument into the config."""
    config = config or STZConfig()
    if codec is not None and codec != config.codec:
        config = config.with_(codec=codec)
    return config


def compress(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    threads: int | None = None,
    codec: str | None = None,
    checksum: bool = False,
) -> bytes:
    """Compress with the STZ streaming pipeline or a selected backend.

    ``eb`` is the finest-level error bound; ``eb_mode`` is ``"abs"`` or
    ``"rel"`` (relative to the value range).  ``threads`` enables the
    paper's OMP mode.  ``codec`` (or ``config.codec``) picks the
    backend: ``"stz"`` (default, plain STZ1 container), a fixed name
    from :data:`repro.core.config.KNOWN_CODECS`, or ``"auto"`` to let
    the selection engine (:mod:`repro.core.select`) probe the data and
    route it to the winning backend — the result is then a
    codec-selected ('STZC') envelope, which :func:`decompress` handles
    transparently.  Every choice preserves the hard L-inf bound.
    ``checksum=True`` appends a flag-gated CRC32 of the archive so
    :func:`verify_archive` can detect corruption (DESIGN.md §9);
    pre-checksum readers reject the flagged archive cleanly.
    """
    config = _resolve_codec(config, codec)
    if config.codec == "stz":
        blob = stz_compress(data, eb, eb_mode, config, threads)
    else:
        blob = compress_selected(data, eb, eb_mode, config, threads)
    return add_archive_checksum(blob) if checksum else blob


def compress_chunked(
    data,
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    chunks: int | tuple[int, ...] | None = None,
    executor: str = "thread",
    workers: int | None = None,
    threads: int | None = None,
    codec: str | None = None,
    sink: io.IOBase | None = None,
    shape: tuple[int, ...] | None = None,
    checksum: bool = False,
    recoverable: bool = False,
    pool: "WorkerPool | None" = None,
) -> bytes | None:
    """Compress through the chunked execution engine into a sharded
    (container v3) archive.

    ``data`` may be an in-memory array, a ``np.memmap`` (out-of-core:
    peak memory is O(chunk) with the serial executor and a ``sink``),
    or an iterator of chunk arrays in plan order (``shape=`` required).
    ``chunks`` sets the per-axis chunk shape (int = every axis);
    ``executor``/``workers`` pick the chunk-level pool.  ``codec``
    applies per chunk — ``"auto"`` re-selects the backend chunk by
    chunk through the unchanged selection engine.  ``checksum`` records
    per-chunk CRC32s plus a whole-archive digest; ``recoverable``
    additionally makes the byte stream forward-scannable after a crash
    (see :func:`verify_archive` / :func:`repair_archive` and DESIGN.md
    §9).  ``pool`` reuses a warm
    :class:`~repro.core.parallel.WorkerPool` across calls.  See
    :mod:`repro.core.chunked` for the full contract.
    """
    return _compress_chunked_impl(
        data, eb, eb_mode, _resolve_codec(config, codec), chunks,
        executor, workers, threads, sink, shape,
        checksum=checksum, recoverable=recoverable, pool=pool,
    )


def decompress(
    source: bytes | memoryview | StreamReader,
    threads: int | None = None,
    out: np.ndarray | None = None,
    executor: str | None = None,
    workers: int | None = None,
    on_error: str = "raise",
    report: DecodeReport | None = None,
    pool: "WorkerPool | None" = None,
) -> np.ndarray:
    """Full-resolution reconstruction (plain STZ1 containers,
    codec-selected envelopes and sharded v3 archives alike).

    Sharded archives accept ``out=`` (in-place reconstruction; a
    ``np.memmap`` keeps decode memory at O(chunk)) and
    ``executor``/``workers`` for parallel chunk-level decode; the
    default decodes chunks with the thread pool when ``threads`` asks
    for parallelism.  ``on_error``/``report`` apply chunk-granular
    fault tolerance to sharded archives (``"skip"``/``"fill"`` degrade
    a corrupt chunk to NaNs instead of raising — DESIGN.md §9);
    single-array containers are one unit, so a decode failure there
    raises under every policy.
    """
    if not isinstance(source, StreamReader) and is_sharded(source):
        if executor is None:
            executor, workers = (
                ("thread", threads) if threads and threads > 1
                else ("serial", None)
            )
        elif workers is None:
            # an explicit executor without a worker count inherits the
            # threads request — otherwise executor='thread' would
            # resolve to (serial, 1) and decode slower than no
            # executor at all
            workers = threads
        return decompress_chunked(
            source, out=out, executor=executor, workers=workers,
            threads=None if executor != "serial" else threads,
            on_error=on_error, report=report, pool=pool,
        )
    if out is not None:
        raise ValueError("out= is only supported for sharded v3 archives")
    if not isinstance(source, StreamReader) and is_selected(source):
        return decompress_selected(source, threads=threads)
    return stz_decompress(source, threads=threads)


def decompress_progressive(
    source: bytes | memoryview | StreamReader,
    level: int,
    threads: int | None = None,
) -> np.ndarray:
    """Coarse reconstruction at ``level`` (1 = coarsest lattice).

    Codec-selected envelopes are unwrapped first; progressive decode is
    served when the inner backend supports it (STZ, SPERR, MGARD).
    """
    if not isinstance(source, StreamReader) and is_sharded(source):
        raise ValueError(
            "sharded (chunked) archives do not support progressive "
            "decode; use decompress / decompress_roi"
        )
    if not isinstance(source, StreamReader) and is_selected(source):
        codec_id, payload = unwrap_selected(source)
        name = CODEC_NAMES[codec_id]
        if name == "stz":
            return stz_decompress(payload, level=level, threads=threads)
        if name in ("sperr", "mgard"):
            from repro.mgard.codec import mgard_decompress
            from repro.sperr.codec import sperr_decompress

            dec = sperr_decompress if name == "sperr" else mgard_decompress
            return dec(payload, level=level)
        raise ValueError(
            f"selected codec {name!r} does not support progressive decode"
        )
    return stz_decompress(source, level=level, threads=threads)


def _unwrap_stz(
    source: bytes | memoryview | StreamReader, what: str
) -> bytes | memoryview | StreamReader:
    """Open a codec-selected envelope for an STZ-only capability."""
    if isinstance(source, StreamReader) or not is_selected(source):
        return source
    codec_id, payload = unwrap_selected(source)
    if codec_id != CODEC_STZ:
        raise ValueError(
            f"selected codec {CODEC_NAMES[codec_id]!r} does not "
            f"support {what}"
        )
    return payload


def decompress_roi(
    source: bytes | memoryview | StreamReader,
    roi: tuple[slice | int, ...],
    threads: int | None = None,
    on_error: str = "raise",
    report: DecodeReport | None = None,
) -> np.ndarray:
    """Random-access reconstruction of a full-resolution ROI box/slice.

    Sharded v3 archives serve the ROI from the chunk index — only the
    chunks intersecting the box are read and decoded, and STZ-coded
    chunks run the sub-chunk random-access path on top.
    ``on_error``/``report`` follow the :func:`decompress` contract for
    sharded archives.
    """
    if not isinstance(source, StreamReader) and is_sharded(source):
        return decompress_chunked_roi(
            source, roi, threads=threads, on_error=on_error, report=report
        )
    source = _unwrap_stz(source, "random access")
    return stz_decompress_roi(source, roi, threads=threads).data


def decompress_roi_detailed(
    source: bytes | memoryview | StreamReader,
    roi: tuple[slice | int, ...],
    threads: int | None = None,
) -> RandomAccessResult:
    """Like :func:`decompress_roi` but returns the full accounting
    (stage timings, segments decoded/skipped, bytes read)."""
    source = _unwrap_stz(source, "random access")
    return stz_decompress_roi(source, roi, threads=threads)


def compress_stream(
    steps: Iterable[np.ndarray],
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    keyframe_interval: int = DEFAULT_KEYFRAME_INTERVAL,
    threads: int | None = None,
    codec: str | None = None,
    overlap: bool = False,
    chunks: int | tuple[int, ...] | None = None,
    chunk_executor: str = "thread",
    chunk_workers: int | None = None,
    checksum: bool = False,
    recoverable: bool = False,
) -> bytes:
    """Compress an iterable of equal-shape time steps into one
    multi-frame archive.

    ``steps`` is consumed lazily one step at a time (a generator works
    and keeps memory at O(1 step)); each step is temporally
    delta-predicted from the previous step's reconstruction, with an
    intra frame every ``keyframe_interval`` steps.  ``codec="auto"``
    re-selects the backend per step with amortized probing (features
    every step, compression probes only on drift or at the seeded
    refresh cadence); each frame's choice is recorded in the v2 frame
    table.  ``overlap=True`` double-buffers the engine so producing
    step ``k+1`` overlaps encoding step ``k`` — the archive bytes are
    identical to the serial engine.  ``chunks`` (optional) emits every
    frame as a sharded v3 payload through the chunked engine under
    ``chunk_executor``/``chunk_workers`` — chunk-level parallelism and
    per-chunk codec selection per step.  ``checksum`` records per-frame
    CRC32s plus a whole-archive digest; ``recoverable`` additionally
    prefixes each frame with an 'STZR' record so a crash mid-stream
    leaves an archive :func:`repair_archive` can rebuild (DESIGN.md
    §9).  To stream frames to disk instead of accumulating the archive
    in memory, use :class:`~repro.core.streaming.StreamingCompressor`
    with a ``sink``.
    """
    config = _resolve_codec(config, codec)
    with StreamingCompressor(
        eb, eb_mode, config, keyframe_interval, threads=threads,
        overlap=overlap, chunks=chunks, chunk_executor=chunk_executor,
        chunk_workers=chunk_workers, checksum=checksum,
        recoverable=recoverable,
    ) as sc:
        sc.extend(steps)
        return sc.close()


def iter_decompress(
    source: bytes | memoryview | io.IOBase,
    threads: int | None = None,
    on_error: str = "raise",
    report: DecodeReport | None = None,
) -> Iterator[np.ndarray]:
    """Yield the reconstruction of each time step of a multi-frame
    archive in order, decoding each frame exactly once (O(1 step)
    memory).  ``on_error``/``report`` apply frame/chunk-granular fault
    tolerance (a corrupt frame degrades to NaNs until the next intra
    frame — DESIGN.md §9)."""
    return iter(
        StreamingDecompressor(
            source, threads=threads, on_error=on_error, report=report
        )
    )


def decompress_frame(
    source: bytes | memoryview | io.IOBase,
    index: int,
    threads: int | None = None,
    on_error: str = "raise",
    report: DecodeReport | None = None,
) -> np.ndarray:
    """Random access to one time step of a multi-frame archive (rolls
    forward from the nearest keyframe; see
    :class:`~repro.core.streaming.StreamingDecompressor`)."""
    return StreamingDecompressor(
        source, threads=threads, on_error=on_error, report=report
    ).read_frame(index)


class STZCompressor:
    """Object API with the Table 1 capability flags."""

    name = "STZ"
    supports_progressive = True
    supports_random_access = True

    def __init__(
        self,
        eb: float,
        eb_mode: str = "abs",
        config: STZConfig | None = None,
        threads: int | None = None,
    ):
        self.eb = eb
        self.eb_mode = eb_mode
        self.config = config or STZConfig()
        self.threads = threads

    def compress(self, data: np.ndarray) -> bytes:
        return compress(data, self.eb, self.eb_mode, self.config, self.threads)

    def decompress(self, blob: bytes) -> np.ndarray:
        return decompress(blob, threads=self.threads)

    def decompress_progressive(self, blob: bytes, level: int) -> np.ndarray:
        return decompress_progressive(blob, level, threads=self.threads)

    def decompress_roi(
        self, blob: bytes, roi: tuple[slice | int, ...]
    ) -> np.ndarray:
        return decompress_roi(blob, roi, threads=self.threads)


class STZFile:
    """Streaming access to an STZ container on disk.

    Only the header/table is read on open; progressive and ROI requests
    seek to exactly the segments they need (``bytes_read`` reports the
    payload I/O actually performed).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: io.IOBase = open(self.path, "rb")
        self.reader = StreamReader(self._fh)

    # -- writing -----------------------------------------------------------
    @staticmethod
    def write(
        path: str | Path,
        data: np.ndarray,
        eb: float,
        eb_mode: str = "abs",
        config: STZConfig | None = None,
        threads: int | None = None,
        checksum: bool = False,
    ) -> "STZFile":
        blob = compress(data, eb, eb_mode, config, threads, checksum=checksum)
        # crash-safe: the file appears complete or not at all
        atomic_write_bytes(path, blob)
        return STZFile(path)

    # -- reading -----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.reader.header.shape

    @property
    def dtype(self) -> np.dtype:
        return self.reader.header.dtype

    @property
    def levels(self) -> int:
        return self.reader.header.config.levels

    @property
    def bytes_read(self) -> int:
        return self.reader.bytes_read

    def decompress(self, level: int | None = None) -> np.ndarray:
        return stz_decompress(self.reader, level=level)

    def decompress_roi(
        self, roi: tuple[slice | int, ...]
    ) -> RandomAccessResult:
        return stz_decompress_roi(self.reader, roi)

    def ladder(self):
        return progressive_ladder(self.reader)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "STZFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
