"""Public STZ API.

Functional entry points (:func:`compress`, :func:`decompress`,
:func:`decompress_progressive`, :func:`decompress_roi`) plus the
:class:`STZCompressor` object used by the cross-compressor benchmarks
and :class:`STZFile` for on-disk streaming access.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.core.config import STZConfig
from repro.core.pipeline import stz_compress, stz_decompress
from repro.core.progressive import progressive_ladder
from repro.core.random_access import RandomAccessResult, stz_decompress_roi
from repro.core.stream import StreamReader


def compress(
    data: np.ndarray,
    eb: float,
    eb_mode: str = "abs",
    config: STZConfig | None = None,
    threads: int | None = None,
) -> bytes:
    """Compress with the STZ streaming pipeline.

    ``eb`` is the finest-level error bound; ``eb_mode`` is ``"abs"`` or
    ``"rel"`` (relative to the value range).  ``threads`` enables the
    paper's OMP mode.
    """
    return stz_compress(data, eb, eb_mode, config, threads)


def decompress(
    source: bytes | memoryview | StreamReader, threads: int | None = None
) -> np.ndarray:
    """Full-resolution reconstruction."""
    return stz_decompress(source, threads=threads)


def decompress_progressive(
    source: bytes | memoryview | StreamReader,
    level: int,
    threads: int | None = None,
) -> np.ndarray:
    """Coarse reconstruction at ``level`` (1 = coarsest lattice)."""
    return stz_decompress(source, level=level, threads=threads)


def decompress_roi(
    source: bytes | memoryview | StreamReader,
    roi: tuple[slice | int, ...],
    threads: int | None = None,
) -> np.ndarray:
    """Random-access reconstruction of a full-resolution ROI box/slice."""
    return stz_decompress_roi(source, roi, threads=threads).data


def decompress_roi_detailed(
    source: bytes | memoryview | StreamReader,
    roi: tuple[slice | int, ...],
    threads: int | None = None,
) -> RandomAccessResult:
    """Like :func:`decompress_roi` but returns the full accounting
    (stage timings, segments decoded/skipped, bytes read)."""
    return stz_decompress_roi(source, roi, threads=threads)


class STZCompressor:
    """Object API with the Table 1 capability flags."""

    name = "STZ"
    supports_progressive = True
    supports_random_access = True

    def __init__(
        self,
        eb: float,
        eb_mode: str = "abs",
        config: STZConfig | None = None,
        threads: int | None = None,
    ):
        self.eb = eb
        self.eb_mode = eb_mode
        self.config = config or STZConfig()
        self.threads = threads

    def compress(self, data: np.ndarray) -> bytes:
        return compress(data, self.eb, self.eb_mode, self.config, self.threads)

    def decompress(self, blob: bytes) -> np.ndarray:
        return decompress(blob, threads=self.threads)

    def decompress_progressive(self, blob: bytes, level: int) -> np.ndarray:
        return decompress_progressive(blob, level, threads=self.threads)

    def decompress_roi(
        self, blob: bytes, roi: tuple[slice | int, ...]
    ) -> np.ndarray:
        return decompress_roi(blob, roi, threads=self.threads)


class STZFile:
    """Streaming access to an STZ container on disk.

    Only the header/table is read on open; progressive and ROI requests
    seek to exactly the segments they need (``bytes_read`` reports the
    payload I/O actually performed).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: io.IOBase = open(self.path, "rb")
        self.reader = StreamReader(self._fh)

    # -- writing -----------------------------------------------------------
    @staticmethod
    def write(
        path: str | Path,
        data: np.ndarray,
        eb: float,
        eb_mode: str = "abs",
        config: STZConfig | None = None,
        threads: int | None = None,
    ) -> "STZFile":
        blob = compress(data, eb, eb_mode, config, threads)
        Path(path).write_bytes(blob)
        return STZFile(path)

    # -- reading -----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.reader.header.shape

    @property
    def dtype(self) -> np.dtype:
        return self.reader.header.dtype

    @property
    def levels(self) -> int:
        return self.reader.header.config.levels

    @property
    def bytes_read(self) -> int:
        return self.reader.bytes_read

    def decompress(self, level: int | None = None) -> np.ndarray:
        return stz_decompress(self.reader, level=level)

    def decompress_roi(
        self, roi: tuple[slice | int, ...]
    ) -> RandomAccessResult:
        return stz_decompress_roi(self.reader, roi)

    def ladder(self):
        return progressive_ladder(self.reader)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "STZFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
